"""End-to-end shape assertions mirroring the paper's conclusions.

These run at ``small`` scale (seconds, not minutes) and assert the
*qualitative* findings; quantitative paper-scale numbers are produced by
the benchmark suite.
"""

import pytest

from repro.core.runner import ExperimentRunner, RunConfig
from repro.core.workload import Workload
from repro.framework.scheduler import SchedulingOrder, all_orders
from repro.gpu.commands import CopyDirection


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


def pair_workload(x="nn", y="needle", total=8):
    return Workload.heterogeneous_pair(x, y, total, scale="small")


class TestConcurrencyClaims:
    """Section V-A: Hyper-Q concurrency beats serialized execution."""

    def test_concurrent_beats_serial(self, runner):
        wl = pair_workload()
        serial = runner.run_serial(wl)
        full = runner.run(RunConfig(workload=wl, num_streams=8))
        assert full.improvement_over(serial) > 10.0

    def test_improvement_grows_with_streams(self, runner):
        wl = pair_workload(total=8)
        spans = {}
        for ns in (1, 2, 4, 8):
            spans[ns] = runner.run(RunConfig(workload=wl, num_streams=ns)).makespan
        assert spans[8] < spans[2] < spans[1]

    def test_oversubscribed_concurrent_no_worse_than_serial(self, runner):
        """LEFTOVER 'does no worse than serialization' (Section III-A)."""
        wl = Workload.homogeneous("srad", 8, scale="small")  # device-filling
        serial = runner.run_serial(wl)
        conc = runner.run(RunConfig(workload=wl, num_streams=8))
        assert conc.makespan <= serial.makespan * 1.02


class TestMemorySyncClaims:
    """Section V-B: the transfer mutex restores expected latency and helps
    (or at least does not hurt) end-to-end performance."""

    def test_sync_restores_effective_latency(self, runner):
        wl = pair_workload(total=8)
        default = runner.run(RunConfig(workload=wl, num_streams=8))
        synced = runner.run(
            RunConfig(workload=wl, num_streams=8, memory_sync=True)
        )
        le_default = default.harness.effective_latency()
        le_sync = synced.harness.effective_latency()
        assert le_default > 1.5 * le_sync

    def test_sync_does_not_degrade_makespan_materially(self, runner):
        wl = pair_workload(total=8)
        default = runner.run(RunConfig(workload=wl, num_streams=8))
        synced = runner.run(
            RunConfig(workload=wl, num_streams=8, memory_sync=True)
        )
        assert synced.makespan <= default.makespan * 1.10

    def test_dtoh_unaffected_by_htod_mutex(self, runner):
        """The mutex only serializes the HtoD stage."""
        wl = pair_workload(total=4)
        synced = runner.run(
            RunConfig(workload=wl, num_streams=4, memory_sync=True)
        )
        for rec in synced.harness.records:
            assert rec.transfer_events(CopyDirection.DTOH)


class TestOrderingClaims:
    """Section V-C: launch order affects concurrent performance."""

    def test_orders_produce_distinct_makespans(self, runner):
        wl = pair_workload(total=8)
        spans = {
            order: runner.run(
                RunConfig(workload=wl, num_streams=8, order=order,
                          memory_sync=True)
            ).makespan
            for order in all_orders()
        }
        assert len({round(v, 9) for v in spans.values()}) > 1

    def test_reverse_orders_change_first_launch(self, runner):
        wl = pair_workload(total=4)
        fifo = runner.run(RunConfig(workload=wl, num_streams=4))
        rev = runner.run(
            RunConfig(workload=wl, num_streams=4,
                      order=SchedulingOrder.REVERSE_FIFO)
        )
        first = lambda r: min(
            r.harness.records, key=lambda rec: rec.launch_index
        ).type_name
        assert first(fifo) != first(rev)


class TestEnergyClaims:
    """Section V-D: concurrency reduces energy despite higher power."""

    def test_energy_improves_with_concurrency(self, runner):
        wl = pair_workload(total=8)
        serial = runner.run_serial(wl)
        full = runner.run(RunConfig(workload=wl, num_streams=8))
        assert full.energy < serial.energy

    def test_average_power_rises_with_concurrency(self, runner):
        """Power is higher while concurrent — energy wins only through
        shorter makespan (i.e. the GPU is not energy proportional)."""
        wl = pair_workload(total=8)
        serial = runner.run_serial(wl)
        full = runner.run(RunConfig(workload=wl, num_streams=8))
        assert full.average_power > serial.average_power

    def test_energy_improvement_below_time_improvement(self, runner):
        wl = pair_workload(total=8)
        serial = runner.run_serial(wl)
        full = runner.run(RunConfig(workload=wl, num_streams=8))
        assert (
            full.energy_improvement_over(serial)
            < full.improvement_over(serial)
        )


class TestHyperQAblation:
    """Not a paper figure: quantify what Hyper-Q itself buys (Fermi mode)."""

    def test_kepler_beats_fermi_queueing(self, runner):
        from repro.gpu.specs import fermi_c2050, tesla_k20

        wl = pair_workload(total=8)
        kepler = runner.run(
            RunConfig(workload=wl, num_streams=8, spec=tesla_k20())
        )
        # Same SMX array, single hardware queue: isolates the queueing effect.
        fermi_like = tesla_k20().with_hardware_queues(1)
        fermi = runner.run(
            RunConfig(workload=wl, num_streams=8, spec=fermi_like)
        )
        assert kepler.makespan < fermi.makespan


class TestBeyondHardwareQueues:
    """More streams than Hyper-Q queues: aliasing reintroduces false deps."""

    def test_more_apps_than_queues_still_completes(self, runner):
        wl = Workload.heterogeneous_pair("nn", "needle", 40, scale="tiny")
        run = runner.run(RunConfig(workload=wl, num_streams=40))
        assert len(run.harness.records) == 40
        assert run.makespan > 0

    def test_aliasing_no_faster_than_unaliased(self, runner):
        from repro.gpu.specs import tesla_k20

        wl = Workload.heterogeneous_pair("nn", "needle", 16, scale="small")
        wide = runner.run(
            RunConfig(workload=wl, num_streams=16, spec=tesla_k20())
        )
        narrow = runner.run(
            RunConfig(
                workload=wl,
                num_streams=16,
                spec=tesla_k20().with_hardware_queues(2),
            )
        )
        assert narrow.makespan >= wide.makespan * 0.999


class TestDeterminism:
    def test_identical_configs_identical_results(self, runner):
        wl = pair_workload(total=4)
        cfg = RunConfig(workload=wl, num_streams=4, seed=11)
        a, b = runner.run(cfg), runner.run(cfg)
        assert a.makespan == b.makespan
        assert a.energy == b.energy
        assert [r.complete_time for r in a.harness.records] == [
            r.complete_time for r in b.harness.records
        ]
