"""Unit tests for :mod:`repro.sim.process`."""

import pytest

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event


class TestLifecycle:
    def test_return_value_becomes_event_value(self, env):
        def proc():
            yield env.timeout(1)
            return "result"

        assert env.run(until=env.process(proc())) == "result"

    def test_process_is_alive_until_done(self, env):
        def proc():
            yield env.timeout(5)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_processes_wait_on_each_other(self, env):
        def worker():
            yield env.timeout(3)
            return 21

        def parent():
            value = yield env.process(worker())
            return value * 2

        assert env.run(until=env.process(parent())) == 42
        assert env.now == 3

    def test_exception_propagates_to_waiter(self, env):
        def worker():
            yield env.timeout(1)
            raise ValueError("inner")

        def parent():
            try:
                yield env.process(worker())
            except ValueError as exc:
                return f"caught {exc}"

        assert env.run(until=env.process(parent())) == "caught inner"

    def test_unhandled_process_exception_aborts_run(self, env):
        def worker():
            yield env.timeout(1)
            raise RuntimeError("unhandled")

        env.process(worker())
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_yielding_non_event_fails_process(self, env):
        def bad():
            yield 42

        with pytest.raises(SimulationError, match="non-event"):
            env.run(until=env.process(bad()))

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_already_processed_event_resumes_immediately(self, env):
        done = env.timeout(0, value="x")
        env.run()

        def proc():
            value = yield done
            return value

        assert env.run(until=env.process(proc())) == "x"
        assert env.now == 0

    def test_active_process_visible_inside_body(self, env):
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(0)

        p = env.process(proc())
        env.run()
        assert seen == [p]
        assert env.active_process is None

    def test_name_defaults_to_generator_name(self, env):
        def my_worker():
            yield env.timeout(0)

        assert env.process(my_worker()).name == "my_worker"
        assert env.process(my_worker(), name="custom").name == "custom"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                return ("interrupted", exc.cause)

        def attacker(p):
            yield env.timeout(1)
            p.interrupt(cause="because")

        p = env.process(victim())
        env.process(attacker(p))
        assert env.run(until=p) == ("interrupted", "because")
        assert env.now == 1

    def test_interrupted_process_leaves_target_queue(self, env):
        """After an interrupt, the old target must not resume the process."""

        def victim():
            try:
                yield env.timeout(10)
            except Interrupt:
                yield env.timeout(5)
                return "recovered"

        def attacker(p):
            yield env.timeout(1)
            p.interrupt()

        p = env.process(victim())
        env.process(attacker(p))
        assert env.run(until=p) == "recovered"
        assert env.now == 6  # 1 (interrupt) + 5, not 10

    def test_cannot_interrupt_terminated(self, env):
        def quick():
            yield env.timeout(0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_cannot_interrupt_self(self, env):
        def selfish():
            env.active_process.interrupt()
            yield env.timeout(0)

        with pytest.raises(SimulationError):
            env.run(until=env.process(selfish()))

    def test_unhandled_interrupt_fails_process(self, env):
        def victim():
            yield env.timeout(100)

        def attacker(p):
            yield env.timeout(1)
            p.interrupt()

        p = env.process(victim())
        env.process(attacker(p))
        with pytest.raises(Interrupt):
            env.run(until=p)
