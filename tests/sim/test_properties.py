"""Property-based tests of the engine's core invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.resources import Mutex, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
def test_clock_never_goes_backwards(delays):
    """Whatever the timeout mix, observed times are non-decreasing."""
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100,
                                 allow_nan=False, allow_infinity=False),
                       min_size=2, max_size=30))
def test_same_time_events_fire_in_schedule_order(delays):
    """Ties are broken deterministically by scheduling order."""
    env = Environment()
    order = []

    def proc(i, d):
        yield env.timeout(d)
        order.append(i)

    for i, d in enumerate(delays):
        env.process(proc(i, d))
    env.run()
    expected = [i for _, i in sorted(zip(delays, range(len(delays))),
                                     key=lambda p: (p[0], p[1]))]
    assert order == expected


@given(
    capacity=st.integers(min_value=1, max_value=5),
    hold_times=st.lists(
        st.floats(min_value=0.001, max_value=10,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=25,
    ),
)
def test_resource_never_exceeds_capacity(capacity, hold_times):
    """At no instant do more than `capacity` processes hold the resource,
    and grants are FIFO."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]
    grant_order = []

    def proc(i, hold):
        req = res.request()
        yield req
        grant_order.append(i)
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        assert active[0] <= capacity
        yield env.timeout(hold)
        active[0] -= 1
        res.release(req)

    for i, h in enumerate(hold_times):
        env.process(proc(i, h))
    env.run()
    assert peak[0] <= capacity
    # All processes requested at t=0 in creation order -> FIFO grants.
    assert grant_order == list(range(len(hold_times)))


@given(hold_times=st.lists(
    st.floats(min_value=0.001, max_value=5,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=20,
))
def test_mutex_critical_sections_are_disjoint(hold_times):
    """hold()/unlock() sections never overlap in simulated time."""
    env = Environment()
    mutex = Mutex(env)
    sections = []

    def proc(hold):
        req = yield from mutex.hold()
        start = env.now
        yield env.timeout(hold)
        sections.append((start, env.now))
        mutex.unlock(req)

    for h in hold_times:
        env.process(proc(h))
    env.run()
    sections.sort()
    for (s1, e1), (s2, _e2) in zip(sections, sections[1:]):
        assert e1 <= s2


@given(items=st.lists(st.integers(), min_size=0, max_size=40),
       consumers=st.integers(min_value=1, max_value=10))
def test_store_preserves_fifo_and_loses_nothing(items, consumers):
    """Every put item is consumed exactly once, in order per consumer wave."""
    env = Environment()
    store = Store(env)
    consumed = []

    def consumer():
        while True:
            item = yield store.get()
            if item is None:
                return
            consumed.append(item)

    procs = [env.process(consumer()) for _ in range(consumers)]

    def producer():
        for item in items:
            yield env.timeout(1)
            store.put(item)
        for _ in range(consumers):
            store.put(None)  # poison pills

    env.process(producer())
    env.run()
    assert consumed == items
