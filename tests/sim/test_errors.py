"""Unit tests for the :mod:`repro.sim.errors` hierarchy."""

import pytest

from repro.sim.errors import (
    DeadlineExceeded,
    EventError,
    FaultError,
    Interrupt,
    ScheduleError,
    SimulationError,
    StopSimulation,
)


class TestHierarchy:
    def test_engine_errors_derive_from_simulation_error(self):
        assert issubclass(EventError, SimulationError)
        assert issubclass(ScheduleError, SimulationError)
        assert issubclass(FaultError, SimulationError)
        assert issubclass(DeadlineExceeded, SimulationError)

    def test_control_flow_exceptions_do_not(self):
        # Interrupt and StopSimulation are control flow, not errors: a
        # blanket ``except SimulationError`` must never swallow them.
        assert not issubclass(Interrupt, SimulationError)
        assert not issubclass(StopSimulation, SimulationError)


class TestFaultError:
    def test_attributes(self):
        err = FaultError("boom", kind="launch_fail", target="gaussian#0")
        assert str(err) == "boom"
        assert err.kind == "launch_fail"
        assert err.target == "gaussian#0"

    def test_defaults(self):
        err = FaultError("detected late")
        assert err.kind is None
        assert err.target is None

    def test_catchable_as_simulation_error(self):
        with pytest.raises(SimulationError):
            raise FaultError("boom")


class TestDeadlineExceeded:
    def test_attributes_and_message(self):
        err = DeadlineExceeded("needle#1", deadline=0.25, elapsed=0.3)
        assert err.app_id == "needle#1"
        assert err.deadline == 0.25
        assert err.elapsed == 0.3
        assert "needle#1" in str(err)
        assert "0.25" in str(err)

    def test_usable_as_interrupt_cause(self):
        cause = DeadlineExceeded("a#0", 1.0, 1.5)
        interrupt = Interrupt(cause)
        assert interrupt.cause is cause
        assert isinstance(interrupt.cause, DeadlineExceeded)
