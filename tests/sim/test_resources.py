"""Unit tests for :mod:`repro.sim.resources`."""

import pytest

from repro.sim.errors import SimulationError
from repro.sim.resources import Mutex, Resource, Store


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity(self, env):
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.count == 2

    def test_excess_requests_queue(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert r1.triggered and not r2.triggered
        assert res.queue_length == 1
        res.release(r1)
        assert r2.triggered
        assert res.count == 1

    def test_fifo_grant_order(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        waiters = [res.request() for _ in range(5)]
        res.release(first)
        # Exactly the oldest waiter is granted, and so on.
        for i, req in enumerate(waiters):
            assert req.triggered
            for later in waiters[i + 1 :]:
                assert not later.triggered
            res.release(req)

    def test_release_of_nonholder_rejected(self, env):
        res = Resource(env, capacity=1)
        res.request()
        stranger = res.request()  # queued, not granted
        with pytest.raises(SimulationError):
            res.release(stranger)

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r2.cancel()
        assert res.queue_length == 0
        res.release(r1)
        assert not r2.triggered

    def test_cancel_granted_request_rejected(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        with pytest.raises(SimulationError):
            r1.cancel()

    def test_statistics(self, env):
        res = Resource(env, capacity=1)
        r = res.request()
        res.request()
        res.request()
        assert res.total_requests == 3
        assert res.peak_queue_length == 2


class TestMutex:
    def test_hold_unlock_protocol(self, env):
        mutex = Mutex(env)
        log = []

        def worker(name, work):
            req = yield from mutex.hold()
            log.append(("enter", name, env.now))
            yield env.timeout(work)
            log.append(("exit", name, env.now))
            mutex.unlock(req)

        env.process(worker("a", 2))
        env.process(worker("b", 3))
        env.run()
        # Critical sections are disjoint and FIFO-ordered.
        assert log == [
            ("enter", "a", 0),
            ("exit", "a", 2),
            ("enter", "b", 2),
            ("exit", "b", 5),
        ]

    def test_locked_property(self, env):
        mutex = Mutex(env)
        assert not mutex.locked
        req = mutex.request()
        assert mutex.locked
        mutex.release(req)
        assert not mutex.locked


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        g = store.get()
        assert g.triggered and g.value == "a"
        assert len(store) == 1
        assert store.peek() == "b"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        results = []

        def consumer():
            item = yield store.get()
            results.append((item, env.now))

        def producer():
            yield env.timeout(4)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert results == [("late", 4)]

    def test_fifo_getters(self, env):
        store = Store(env)
        g1, g2 = store.get(), store.get()
        store.put(1)
        store.put(2)
        assert g1.value == 1 and g2.value == 2

    def test_items_snapshot(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        assert store.items == (0, 1, 2)
        assert store.total_puts == 3

    def test_peek_empty(self, env):
        assert Store(env).peek() is None
