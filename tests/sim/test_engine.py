"""Unit tests for :mod:`repro.sim.engine`."""

import pytest

from repro.sim.engine import Environment, Infinity
from repro.sim.errors import EventError, ScheduleError, SimulationError
from repro.sim.events import NORMAL, URGENT, Event


class TestClock:
    def test_starts_at_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=10.0).now == 10.0

    def test_peek_empty(self, env):
        assert env.peek() == Infinity

    def test_peek_returns_next_event_time(self, env):
        env.timeout(3.0)
        env.timeout(1.0)
        assert env.peek() == 1.0

    def test_clock_is_monotone(self, env):
        times = []

        def proc():
            for delay in (1.0, 0.5, 2.0, 0.0):
                yield env.timeout(delay)
                times.append(env.now)

        env.process(proc())
        env.run()
        assert times == sorted(times)
        assert times == [1.0, 1.5, 3.5, 3.5]

    def test_run_until_number(self, env):
        fired = []

        def proc():
            while True:
                yield env.timeout(1.0)
                fired.append(env.now)

        env.process(proc())
        env.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_past_raises(self, env):
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0
        with pytest.raises(ScheduleError):
            env.run(until=1.0)

    def test_run_until_pending_event_never_fires(self, env):
        evt = Event(env)  # never triggered
        with pytest.raises(SimulationError):
            env.run(until=evt)

    def test_step_on_empty_queue(self, env):
        with pytest.raises(EventError):
            env.step()


class TestOrdering:
    def test_same_time_fifo(self, env):
        order = []
        for i in range(5):
            evt = Event(env)
            evt.callbacks.append(lambda e, i=i: order.append(i))
            evt.succeed()
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_urgent_before_normal(self, env):
        order = []
        normal = Event(env)
        normal.callbacks.append(lambda e: order.append("normal"))
        normal._ok = True
        normal._value = None
        env.schedule(normal, priority=NORMAL)
        urgent = Event(env)
        urgent.callbacks.append(lambda e: order.append("urgent"))
        urgent._ok = True
        urgent._value = None
        env.schedule(urgent, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_negative_delay_rejected(self, env):
        evt = Event(env)
        with pytest.raises(ScheduleError):
            env.schedule(evt, delay=-0.1)

    def test_double_schedule_detected(self, env):
        evt = Event(env)
        evt._ok = True
        evt._value = None
        env.schedule(evt)
        env.schedule(evt)
        env.step()
        with pytest.raises(EventError, match="scheduled twice"):
            env.step()


class TestRunReturn:
    def test_returns_until_event_value(self, env):
        assert env.run(until=env.timeout(1, value="v")) == "v"

    def test_returns_none_without_until(self, env):
        env.timeout(1)
        assert env.run() is None

    def test_until_already_processed_event(self, env):
        evt = env.timeout(0, value=7)
        env.run()
        assert env.run(until=evt) == 7

    def test_until_failed_event_raises(self, env):
        evt = Event(env)
        evt.fail(KeyError("k"))
        evt.defuse()
        with pytest.raises(KeyError):
            env.run(until=evt)


class TestProbe:
    """The strided probe slot used by the integrity invariant checker."""

    def test_fires_every_stride_events(self, env):
        ticks = []
        env.set_probe(lambda now: ticks.append(now), stride=3)
        for i in range(9):
            env.timeout(float(i))
        env.run()
        # 9 event pops, stride 3 -> fired on pops 3, 6 and 9.
        assert len(ticks) == 3
        assert ticks == sorted(ticks)

    def test_probe_sees_current_time(self, env):
        seen = []
        env.set_probe(lambda now: seen.append(now == env.now), stride=1)
        env.timeout(1.0)
        env.timeout(2.0)
        env.run()
        assert seen == [True, True]

    def test_single_slot_enforced(self, env):
        env.set_probe(lambda now: None, stride=2)
        with pytest.raises(RuntimeError):
            env.set_probe(lambda now: None, stride=2)
        env.clear_probe()
        env.set_probe(lambda now: None, stride=2)  # free again

    def test_clear_probe_stops_firing(self, env):
        ticks = []
        env.set_probe(lambda now: ticks.append(now), stride=1)
        env.timeout(1.0)
        env.run()
        env.clear_probe()
        env.timeout(1.0)
        env.run()
        assert len(ticks) == 1

    def test_rejects_bad_arguments(self, env):
        probe = lambda now: None
        with pytest.raises(TypeError):
            env.set_probe("not-callable", stride=1)
        with pytest.raises(ValueError):
            env.set_probe(probe, stride=0)

    def test_no_probe_costs_nothing_semantically(self, env):
        # Baseline sanity: runs without a probe are unaffected by the
        # slot's existence.
        env.timeout(1.0)
        env.run()
        assert env.probe is None
        assert env.now == 1.0
