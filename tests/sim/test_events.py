"""Unit tests for :mod:`repro.sim.events`."""

import pytest

from repro.sim.engine import Environment
from repro.sim.errors import EventError, ScheduleError
from repro.sim.events import AllOf, AnyOf, ConditionValue, Event, Timeout


class TestEvent:
    def test_starts_pending(self, env):
        evt = Event(env)
        assert not evt.triggered
        assert not evt.processed

    def test_value_unavailable_before_trigger(self, env):
        evt = Event(env)
        with pytest.raises(EventError):
            _ = evt.value
        with pytest.raises(EventError):
            _ = evt.ok

    def test_succeed_carries_value(self, env):
        evt = Event(env).succeed(42)
        assert evt.triggered
        assert evt.ok
        assert evt.value == 42

    def test_double_trigger_rejected(self, env):
        evt = Event(env).succeed()
        with pytest.raises(EventError):
            evt.succeed()
        with pytest.raises(EventError):
            evt.fail(RuntimeError("nope"))

    def test_fail_requires_exception(self, env):
        evt = Event(env)
        with pytest.raises(TypeError):
            evt.fail("not an exception")

    def test_callbacks_run_on_processing(self, env):
        evt = Event(env)
        seen = []
        evt.callbacks.append(lambda e: seen.append(e.value))
        evt.succeed("hello")
        env.run()
        assert seen == ["hello"]
        assert evt.processed

    def test_unhandled_failure_raises_from_run(self, env):
        evt = Event(env)
        evt.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        evt = Event(env)
        evt.fail(RuntimeError("boom"))
        evt.defuse()
        env.run()  # no raise
        assert not evt.ok


class TestTimeout:
    def test_fires_at_delay(self, env):
        evt = env.timeout(5.0, value="done")
        assert env.run(until=evt) == "done"
        assert env.now == 5.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ScheduleError):
            env.timeout(-1.0)

    def test_zero_delay_fires_now(self, env):
        evt = env.timeout(0.0)
        env.run(until=evt)
        assert env.now == 0.0

    def test_delay_property(self, env):
        assert Timeout(env, 2.5).delay == 2.5


class TestConditions:
    def test_all_of_waits_for_everything(self, env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        result = env.run(until=env.all_of([t1, t2]))
        assert env.now == 2
        assert list(result.values()) == ["a", "b"]

    def test_any_of_fires_on_first(self, env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        result = env.run(until=env.any_of([t1, t2]))
        assert env.now == 1
        assert result[t1] == "a"
        assert t2 not in result

    def test_empty_all_of_trivially_true(self, env):
        evt = env.all_of([])
        env.run(until=evt)
        assert env.now == 0.0

    def test_operators_compose(self, env):
        t1 = env.timeout(1)
        t2 = env.timeout(2)
        t3 = env.timeout(3)
        combined = (t1 & t2) | t3
        env.run(until=combined)
        assert env.now == 2  # t1 & t2 completes before t3

    def test_nested_condition_values_flatten(self, env):
        t1 = env.timeout(1, value=1)
        t2 = env.timeout(2, value=2)
        t3 = env.timeout(3, value=3)
        result = env.run(until=(t1 & t2) & t3)
        assert sorted(result.values()) == [1, 2, 3]

    def test_condition_propagates_failure(self, env):
        bad = Event(env)
        good = env.timeout(1)
        cond = env.all_of([bad, good])
        bad.fail(ValueError("broken"))
        with pytest.raises(ValueError, match="broken"):
            env.run(until=cond)

    def test_cross_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            env.all_of([env.timeout(1), other.timeout(1)])


class TestConditionValue:
    def test_dict_interface(self, env):
        e1 = Event(env)
        e1._value = "x"
        cv = ConditionValue([e1])
        assert cv[e1] == "x"
        assert e1 in cv
        assert len(cv) == 1
        assert cv == {e1: "x"}
        assert list(cv.keys()) == [e1]

    def test_missing_key(self, env):
        cv = ConditionValue([])
        with pytest.raises(KeyError):
            _ = cv[Event(env)]
