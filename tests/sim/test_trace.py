"""Unit tests for :mod:`repro.sim.trace`."""

from repro.sim.trace import Span, TraceRecorder


def span(track="t", cat="kernel", name="k", start=0.0, end=1.0, **meta):
    return Span(track, cat, name, start, end, meta)


class TestSpan:
    def test_duration(self):
        assert span(start=1.0, end=3.5).duration == 2.5

    def test_overlaps(self):
        a = span(start=0, end=2)
        assert a.overlaps(span(start=1, end=3))
        assert not a.overlaps(span(start=2, end=3))  # touching != overlap
        assert not a.overlaps(span(start=5, end=6))


class TestRecorder:
    def test_record_and_filter(self, trace):
        trace.record("stream-0", "kernel", "Fan1", 0.0, 1.0, app="g#0")
        trace.record("stream-1", "memcpy_htod", "a", 0.5, 1.5, app="g#0")
        assert len(trace) == 2
        assert len(trace.filter(category="kernel")) == 1
        assert len(trace.filter(track="stream-1")) == 1
        assert len(trace.filter(name="Fan1")) == 1
        assert len(trace.filter(predicate=lambda s: s.duration == 1.0)) == 2

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.record("t", "kernel", "k", 0, 1)
        trace.mark("t", "launch", "k", 0)
        assert len(trace) == 0
        assert trace.instants == []

    def test_begin_close_handle(self, trace):
        handle = trace.begin("stream-0", "kernel", "Fan2", 1.0, blocks=4)
        committed = handle.close(2.0, waves=2)
        assert committed.meta == {"blocks": 4, "waves": 2}
        assert trace.spans == [committed]

    def test_tracks_first_seen_order(self, trace):
        trace.record("b", "kernel", "k", 0, 1)
        trace.record("a", "kernel", "k", 1, 2)
        trace.record("b", "kernel", "k", 2, 3)
        assert trace.tracks() == ["b", "a"]

    def test_extent(self, trace):
        assert trace.extent() == (0.0, 0.0)
        trace.record("t", "kernel", "k", 2.0, 5.0)
        trace.record("t", "kernel", "k", 1.0, 3.0)
        assert trace.extent() == (1.0, 5.0)

    def test_iter_sorted(self, trace):
        trace.record("t", "kernel", "b", 2.0, 3.0)
        trace.record("t", "kernel", "a", 1.0, 2.0)
        assert [s.name for s in trace.iter_sorted()] == ["a", "b"]


class TestConcurrencyQueries:
    def test_max_concurrency_counts_overlap(self, trace):
        trace.record("s0", "kernel", "a", 0.0, 10.0)
        trace.record("s1", "kernel", "b", 1.0, 5.0)
        trace.record("s2", "kernel", "c", 2.0, 3.0)
        assert trace.max_concurrency("kernel") == 3

    def test_back_to_back_not_concurrent(self, trace):
        trace.record("s0", "kernel", "a", 0.0, 1.0)
        trace.record("s1", "kernel", "b", 1.0, 2.0)
        assert trace.max_concurrency("kernel") == 1

    def test_max_concurrency_respects_category(self, trace):
        trace.record("s0", "kernel", "a", 0.0, 1.0)
        trace.record("s0", "memcpy_htod", "x", 0.0, 1.0)
        assert trace.max_concurrency("kernel") == 1

    def test_total_busy_time_merges_intervals(self, trace):
        trace.record("s0", "kernel", "a", 0.0, 2.0)
        trace.record("s1", "kernel", "b", 1.0, 3.0)   # overlaps -> union
        trace.record("s2", "kernel", "c", 5.0, 6.0)   # disjoint
        assert trace.total_busy_time("kernel") == 4.0

    def test_total_busy_time_empty(self, trace):
        assert trace.total_busy_time("kernel") == 0.0
