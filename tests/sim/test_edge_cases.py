"""Edge-case coverage for the simulation engine's less-travelled paths."""

import pytest

from repro.sim.engine import Environment
from repro.sim.events import ConditionValue, Event
from repro.sim.resources import Mutex, Resource
from repro.sim.trace import TraceRecorder


class TestEnvironmentIntrospection:
    def test_queue_size_tracks_calendar(self, env):
        assert env.queue_size == 0
        env.timeout(1.0)
        env.timeout(2.0)
        assert env.queue_size == 2
        env.run()
        assert env.queue_size == 0

    def test_event_factory(self, env):
        evt = env.event()
        assert isinstance(evt, Event)
        assert not evt.triggered


class TestConditionValueComparisons:
    def test_eq_with_other_condition_value(self, env):
        e = Event(env)
        e._value = 1
        a, b = ConditionValue([e]), ConditionValue([e])
        assert a == b

    def test_eq_with_unrelated_type(self, env):
        assert ConditionValue([]).__eq__(42) is NotImplemented

    def test_repr(self, env):
        assert "ConditionValue" in repr(ConditionValue([]))

    def test_iteration(self, env):
        e = Event(env)
        e._value = "v"
        cv = ConditionValue([e])
        assert list(cv) == [e]
        assert list(cv.items()) == [(e, "v")]


class TestEventChaining:
    def test_trigger_copies_success(self, env):
        src = Event(env).succeed("payload")
        dst = Event(env)
        dst.trigger(src)
        assert dst.triggered and dst.value == "payload"

    def test_trigger_copies_failure_and_defuses_source(self, env):
        src = Event(env)
        src.fail(RuntimeError("x"))
        dst = Event(env)
        dst.trigger(src)
        assert src.defused
        assert not dst.ok
        dst.defuse()
        env.run()


class TestResourceRepr:
    def test_repr_shows_occupancy(self, env):
        res = Resource(env, capacity=2, name="dma")
        res.request()
        text = repr(res)
        assert "dma" in text and "1/2" in text

    def test_mutex_repr(self, env):
        assert "mutex" in repr(Mutex(env))


class TestTraceRecorderMisc:
    def test_record_returns_none_when_disabled(self):
        trace = TraceRecorder(enabled=False)
        assert trace.record("t", "kernel", "k", 0, 1) is None

    def test_len_counts_spans_only(self):
        trace = TraceRecorder()
        trace.record("t", "kernel", "k", 0, 1)
        trace.mark("t", "launch", "k", 0)
        assert len(trace) == 1
        assert len(trace.instants) == 1

    def test_zero_duration_span_not_concurrent(self):
        trace = TraceRecorder()
        trace.record("t", "kernel", "instant", 1.0, 1.0)
        assert trace.max_concurrency("kernel") == 0
