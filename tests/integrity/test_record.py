"""Unit tests for the checksummed record envelope and its scanner."""

from pathlib import Path

import pytest

from repro.integrity import (
    ENVELOPE_PREFIX,
    MARKER_KEY,
    RecordCorruption,
    UnknownJournalFormat,
    clock_regressions,
    decode_line,
    encode_line,
    recover_file,
    scan_file,
    sniff_format,
)

pytestmark = pytest.mark.integrity


def _journal_bytes(payloads):
    """Header + payload records, exactly as a journal writes them."""
    header = {"format": "repro-serving-journal", "version": 2,
              "fingerprint": "fp"}
    lines = [encode_line(header, 0)]
    lines += [encode_line(p, seq) for seq, p in enumerate(payloads, start=1)]
    return "".join(lines).encode("utf-8")


class TestEnvelope:
    def test_round_trip(self):
        payload = {"app": "señal#7", "t": 0.0012345678901234, "n": 3}
        line = encode_line(payload, 5)
        assert line.startswith(f"{ENVELOPE_PREFIX} 00000005 ")
        assert line.endswith("\n")
        # decode_line takes the line as splitlines() yields it: no newline.
        raw = line.encode("utf-8").rstrip(b"\n")
        assert decode_line(raw, expected_seq=5) == payload

    def test_deterministic_encoding(self):
        a = encode_line({"b": 1, "a": 2}, 1)
        b = encode_line({"a": 2, "b": 1}, 1)
        assert a == b  # sorted keys: same payload -> same bytes

    def test_utf8_lands_raw_on_disk(self):
        line = encode_line({"app": "ニューラル"}, 1)
        assert "ニューラル" in line  # not \u-escaped

    def test_seq_mismatch_detected(self):
        line = encode_line({"x": 1}, 3).encode("utf-8").rstrip(b"\n")
        with pytest.raises(RecordCorruption, match="sequence"):
            decode_line(line, expected_seq=4)

    def test_every_single_byte_flip_detected(self):
        line = encode_line({"x": 1, "app": "nn#0"}, 1).encode().rstrip(b"\n")
        for off in range(len(line)):
            mutated = bytearray(line)
            mutated[off] ^= 0x01
            with pytest.raises(RecordCorruption):
                decode_line(bytes(mutated), expected_seq=1)

    def test_invalid_utf8_is_corruption_not_unicode_error(self):
        line = bytearray(
            encode_line({"app": "模型"}, 1).encode().rstrip(b"\n")
        )
        # Stomp the first byte of the multi-byte codepoint.
        off = line.index("模".encode("utf-8")[0])
        line[off] = 0xFF
        with pytest.raises(RecordCorruption):
            decode_line(bytes(line), expected_seq=1)


class TestSniff:
    def test_envelope(self):
        assert sniff_format(b"I1 00000000 deadbeef {}") == "envelope"

    def test_legacy(self):
        assert sniff_format(b'{"format": "x"}') == "legacy"

    def test_unknown(self):
        assert sniff_format(b"\x00\x01binary") == "unknown"
        assert sniff_format(b"") == "unknown"


class TestScan:
    def test_clean_file(self, tmp_path):
        payloads = [{"i": 0, "t": 0.1}, {"i": 1, "t": 0.2}]
        path = tmp_path / "j.jsonl"
        path.write_bytes(_journal_bytes(payloads))
        header, entries, report, prefix = scan_file(path)
        assert header["fingerprint"] == "fp"
        assert entries == payloads
        assert report.clean
        assert prefix == len(path.read_bytes())

    def test_markers_counted_but_not_entries(self, tmp_path):
        data = _journal_bytes([{"i": 0}])
        data += encode_line({MARKER_KEY: "crash", "t": 0.5}, 2).encode()
        path = tmp_path / "j.jsonl"
        path.write_bytes(data)
        _, entries, report, _ = scan_file(path)
        assert entries == [{"i": 0}]
        assert report.markers == 1
        assert report.clean

    def test_torn_tail_classified(self, tmp_path):
        data = _journal_bytes([{"i": 0}, {"i": 1}])
        path = tmp_path / "j.jsonl"
        path.write_bytes(data[:-4])
        _, entries, report, prefix = scan_file(path)
        assert entries == [{"i": 0}]
        assert report.torn_tail and not report.mid_file_corruption
        assert data[:prefix].endswith(b"\n")

    def test_mid_file_flip_classified(self, tmp_path):
        data = bytearray(_journal_bytes([{"i": 0}, {"i": 1}, {"i": 2}]))
        # Flip inside record 1's JSON payload (a flip in the hex header
        # fields can be semantically invisible — int(x, 16) is
        # case-insensitive — but payload bytes are always CRC-covered).
        off = bytes(data).index(b'"i": 0')
        data[off + 1] ^= 0x20
        path = tmp_path / "j.jsonl"
        path.write_bytes(bytes(data))
        _, entries, report, _ = scan_file(path)
        assert entries == []  # nothing after the bad line is trusted
        assert report.mid_file_corruption and not report.torn_tail
        assert report.first_invalid_line == 2

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"\x00 certainly not a journal\n")
        with pytest.raises(UnknownJournalFormat):
            scan_file(path)


class TestRecover:
    def test_truncates_and_quarantines(self, tmp_path):
        data = _journal_bytes([{"i": 0}, {"i": 1}])
        cut = data[: len(data) - 6]
        path = tmp_path / "j.jsonl"
        path.write_bytes(cut)
        _, entries, report = recover_file(path)
        assert entries == [{"i": 0}]
        assert report.truncated
        assert report.sidecar is not None
        # Nothing silently destroyed: prefix + sidecar == original bytes.
        sidecar = Path(report.sidecar)
        assert path.read_bytes() + sidecar.read_bytes() == cut
        # Second pass is a no-op on an already-clean file.
        _, entries2, report2 = recover_file(path)
        assert entries2 == entries
        assert not report2.truncated

    def test_quarantine_opt_out(self, tmp_path):
        data = _journal_bytes([{"i": 0}, {"i": 1}])
        path = tmp_path / "j.jsonl"
        path.write_bytes(data[:-6])
        _, _, report = recover_file(path, quarantine=False)
        assert report.sidecar is None
        assert not (tmp_path / "j.jsonl.quarantine").exists()


class TestClockRegressions:
    def test_monotone_is_zero(self):
        assert clock_regressions([{"t": 0.1}, {"t": 0.2}, {"t": 0.2}]) == 0

    def test_regression_counted(self):
        entries = [{"t": 0.2}, {"t": 0.1}, {"complete": 0.3},
                   {"complete": 0.05}]
        assert clock_regressions(entries) == 2
