"""Invariant probes: clean runs stay silent, seeded drift is caught.

The unit tests drive the checker against a minimal fake device whose
state can be bent one law at a time — each catalog entry must fire on
exactly the drift it documents.  The end-to-end tests then run the real
harness with ``integrity=True`` and demand silence: the model as shipped
violates none of its own laws, with or without concurrent streams.
"""

import pytest

from repro.core.workload import Workload
from repro.framework.harness import HarnessConfig, TestHarness
from repro.integrity import (
    IntegrityViolation,
    InvariantChecker,
    attach_environment_invariants,
)
from repro.resilience.faults import FaultKind
from repro.sim.engine import Environment

pytestmark = pytest.mark.integrity


class _FakeSMX:
    def __init__(self, threads, blocks):
        self.resident_threads = threads
        self.resident_blocks = blocks


class _FakeSMXArray:
    """Aggregate view + per-SMX ground truth, both adjustable."""

    def __init__(self, per_smx=(512, 512), blocks=4):
        self._units = [_FakeSMX(t, blocks // 2) for t in per_smx]
        self.resident_threads = sum(t.resident_threads for t in self._units)
        self.resident_blocks = blocks
        self.thread_occupancy = 0.5
        self.busy_smx_count = len(self._units)

    def __iter__(self):
        return iter(self._units)

    def __len__(self):
        return len(self._units)


class _FakeDMA:
    def __init__(self):
        self.bytes_moved = 1024
        self.commands_served = 2
        self.busy_seconds = 0.25
        self.pending_count = 0


class _FakePower:
    def __init__(self, idle=17.0, tdp=225.0):
        self.current_power = idle
        self.peak_power = idle
        self._rate = idle

    def energy(self, until):
        return self._rate * until


class _FakeDevice:
    """The attribute surface the checker probes, in a healthy state."""

    def __init__(self):
        from types import SimpleNamespace

        self.smx = _FakeSMXArray()
        self.spec = SimpleNamespace(
            max_resident_threads=26624,
            max_resident_blocks=208,
            power=SimpleNamespace(idle=17.0, tdp=225.0),
        )
        self.commands_issued = 6
        self.fabric = SimpleNamespace(
            queues=[SimpleNamespace(depth_total=4),
                    SimpleNamespace(depth_total=2)]
        )
        self._inflight = 3
        self._stream_inflight = {0: 2, 1: 1, 2: 0}
        self._active_streams = 2
        self.grid_engine = SimpleNamespace(active_grids=1, grids_completed=5)
        self.dma = {"htod": _FakeDMA(), "dtoh": _FakeDMA()}
        self.power = _FakePower()


def _checked(device, now=1.0):
    checker = InvariantChecker(on_violation="record")
    checker.watch_device(device, label="gpu0")
    checker.check_now(now)
    return checker


class TestCatalog:
    def test_healthy_device_passes_every_law(self):
        checker = _checked(_FakeDevice())
        assert checker.violations_found == 0
        assert checker.checks_run == 1

    def test_smx_ceiling(self):
        device = _FakeDevice()
        device.smx.resident_threads = 30000  # above the K20's 26624
        device.smx._units[0].resident_threads = 29488
        checker = _checked(device)
        assert any(
            v.invariant == "smx-occupancy" for v in checker.violations
        )

    def test_smx_aggregate_vs_ground_truth(self):
        device = _FakeDevice()
        device.smx.resident_threads += 64  # cache leaked a release
        checker = _checked(device)
        assert any(
            "per-SMX sum" in str(v) for v in checker.violations
        )

    def test_queue_conservation(self):
        device = _FakeDevice()
        device.commands_issued += 1  # command lost before the queues
        checker = _checked(device)
        assert [v.invariant for v in checker.violations] == [
            "queue-conservation"
        ]

    def test_inflight_aggregate(self):
        device = _FakeDevice()
        device._inflight = 2  # != per-stream sum of 3
        checker = _checked(device)
        assert any(
            v.invariant == "queue-conservation" for v in checker.violations
        )

    def test_dma_monotonicity(self):
        device = _FakeDevice()
        checker = InvariantChecker(on_violation="record")
        checker.watch_device(device, label="gpu0")
        checker.check_now(1.0)
        device.dma["htod"].bytes_moved -= 512  # counter went backwards
        checker.check_now(2.0)
        assert any(
            v.invariant == "dma-conservation" for v in checker.violations
        )

    def test_dma_busy_exceeds_wallclock(self):
        device = _FakeDevice()
        device.dma["dtoh"].busy_seconds = 5.0  # run is only 1 s old
        checker = _checked(device)
        assert any(
            v.invariant == "dma-conservation" for v in checker.violations
        )

    def test_energy_band(self):
        device = _FakeDevice()
        device.power.current_power = 5.0  # below the 17 W idle floor
        checker = _checked(device)
        assert any(
            v.invariant == "energy-accounting" for v in checker.violations
        )

    def test_energy_integral_bounds(self):
        device = _FakeDevice()
        checker = InvariantChecker(on_violation="record")
        checker.watch_device(device, label="gpu0")
        checker.check_now(1.0)
        device.power._rate = 500.0  # grew faster than TDP allows
        checker.check_now(2.0)
        assert any(
            "energy grew" in str(v) for v in checker.violations
        )

    def test_clock_monotone_on_direct_calls(self):
        env = Environment()
        checker = attach_environment_invariants(
            env, on_violation="record", stride=1000
        )
        # Direct per-event stepping checks the clock on every call,
        # regardless of how large the catalog stride is.
        checker(1.0)
        checker(0.5)
        assert [v.invariant for v in checker.violations] == [
            "clock-monotone"
        ]
        checker.detach()

    def test_clock_monotone_at_probe_granularity(self):
        env = Environment()
        checker = attach_environment_invariants(
            env, on_violation="record", stride=1000
        )
        # probe_tick is what the engine's strided countdown dispatches;
        # a net regression between two ticks must fire.
        checker.probe_tick(1.0)
        checker.probe_tick(0.5)
        assert [v.invariant for v in checker.violations] == [
            "clock-monotone"
        ]
        checker.detach()

    def test_attach_installs_engine_probe(self):
        env = Environment()
        checker = attach_environment_invariants(env, stride=4)
        assert env.probe == checker.probe_tick
        checker.detach()
        assert env.probe is None

    def test_raise_mode_aborts(self):
        device = _FakeDevice()
        device.commands_issued += 1
        checker = InvariantChecker()  # default: raise
        checker.watch_device(device)
        with pytest.raises(IntegrityViolation) as exc:
            checker.check_now(1.0)
        assert exc.value.invariant == "queue-conservation"
        assert exc.value.time == 1.0


class TestFaultTaxonomy:
    def test_violation_kind_matches_fault_model(self):
        violation = IntegrityViolation("smx-occupancy", "drift", 0.5)
        # str-enum equality: the integrity layer never imports resilience.
        assert violation.kind == FaultKind.INTEGRITY_VIOLATION

    def test_fault_kind_exists(self):
        assert FaultKind.INTEGRITY_VIOLATION.value == "integrity_violation"


class TestEndToEnd:
    def _run(self, **kwargs):
        apps = Workload.heterogeneous_pair(
            "gaussian", "needle", 8
        ).instantiate()
        cfg = HarnessConfig(apps=apps, num_streams=8, **kwargs)
        return TestHarness(cfg).run()

    def test_default_run_is_violation_free(self):
        result = self._run(integrity=True)
        checker = result.integrity
        assert checker.checks_run > 0
        assert checker.violations_found == 0

    def test_memory_sync_run_is_violation_free(self):
        result = self._run(integrity=True, memory_sync=True)
        assert result.integrity.violations_found == 0

    def test_results_identical_with_probes_off(self):
        on = self._run(integrity=True)
        off = self._run()
        assert on.makespan == off.makespan
        assert on.energy == off.energy
        assert off.integrity is None

    def test_preconfigured_checker_is_honored(self):
        checker = InvariantChecker(stride=16, on_violation="record")
        result = self._run(integrity=checker)
        assert result.integrity is checker
        assert checker.checks_run > 0
        assert checker.violations == []
