"""The ``verify`` CLI subcommand: offline scan and repair of journals."""

import pytest

from repro.cli import main
from repro.integrity import encode_line

pytestmark = pytest.mark.integrity


@pytest.fixture
def journal(tmp_path):
    """A small clean envelope journal on disk."""
    header = {"format": "repro-serving-journal", "version": 2,
              "fingerprint": "cli"}
    payloads = [{"i": 0, "t": 0.1}, {"i": 1, "t": 0.2}, {"i": 2, "t": 0.3}]
    path = tmp_path / "run.jsonl"
    lines = [encode_line(header, 0)]
    lines += [encode_line(p, s) for s, p in enumerate(payloads, start=1)]
    path.write_text("".join(lines))
    return path


class TestScan:
    def test_clean_journal_exits_zero(self, journal, capsys):
        assert main(["verify", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "3 records" in out

    def test_torn_journal_exits_nonzero(self, journal, capsys):
        journal.write_bytes(journal.read_bytes()[:-5])
        assert main(["verify", str(journal)]) == 1
        assert "torn tail" in capsys.readouterr().out
        # Scan mode never mutates the file.
        assert not journal.with_suffix(".jsonl.quarantine").exists()

    def test_corrupt_journal_exits_nonzero(self, journal, capsys):
        data = bytearray(journal.read_bytes())
        data[data.index(b'"i": 1') + 1] ^= 0x20
        journal.write_bytes(bytes(data))
        assert main(["verify", str(journal)]) == 1
        assert "checksum mismatch" in capsys.readouterr().out

    def test_unknown_format_reported(self, tmp_path, capsys):
        noise = tmp_path / "noise.bin"
        noise.write_bytes(b"\x00\x01\x02\n")
        assert main(["verify", str(noise)]) == 1
        assert "refusing to guess" in capsys.readouterr().out

    def test_missing_file_reported(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "ghost.jsonl")]) == 1
        assert "no such file" in capsys.readouterr().out

    def test_mixed_batch_is_nonzero_but_scans_all(
        self, journal, tmp_path, capsys
    ):
        missing = tmp_path / "ghost.jsonl"
        assert main(["verify", str(journal), str(missing)]) == 1
        out = capsys.readouterr().out
        assert "clean" in out and "no such file" in out


class TestRepair:
    def test_repair_truncates_and_quarantines(self, journal, capsys):
        pristine = journal.read_bytes()
        journal.write_bytes(pristine[:-5])
        assert main(["verify", "--repair", str(journal)]) == 0
        assert "quarantined" in capsys.readouterr().out
        sidecar = journal.with_suffix(".jsonl.quarantine")
        assert sidecar.exists()
        # Repaired file + sidecar reconstruct the damaged input.
        assert journal.read_bytes() + sidecar.read_bytes() == pristine[:-5]
        # And the repaired file now scans clean.
        assert main(["verify", str(journal)]) == 0

    def test_repair_without_quarantine(self, journal, capsys):
        journal.write_bytes(journal.read_bytes()[:-5])
        assert main(
            ["verify", "--repair", "--no-quarantine", str(journal)]
        ) == 0
        assert not journal.with_suffix(".jsonl.quarantine").exists()
        assert main(["verify", str(journal)]) == 0

    def test_repair_of_clean_file_is_a_noop(self, journal):
        before = journal.read_bytes()
        assert main(["verify", "--repair", str(journal)]) == 0
        assert journal.read_bytes() == before
