"""Hypothesis property: fenced checkpoint replay never double-executes.

The danger fencing closes: after a failover, a *zombie* writer (the app's
old binding) can have a checkpoint write in flight that records **less**
progress than the migrated replica has already durably journaled.  If
that stale write lands, a later crash-resume picks the lower watermark
and re-executes kernels whose completion was already checkpointed —
silent double execution.

The property: for *any* interleaving of writer histories (bind, durable
progress, failover, zombie writes), and for *any* strict prefix of the
fenced journal (i.e. any crash point), resuming an app from the highest
checkpoint in the prefix re-executes no kernel at or below a progress
watermark that an *earlier* accepted record already established.  That
reduces to per-app monotonicity of the accepted checkpoint stream —
which the fence guarantees and this test also shows the *unfenced*
stream does not.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.fleet.checkpoint import AppCheckpoint
from repro.integrity import FencedJournal, GenerationFence

pytestmark = pytest.mark.integrity

APPS = ("app#0", "app#1")
DEVICE = 0


class _ListJournal:
    """In-memory ``record(entry)`` duck type (what FencedJournal wraps)."""

    def __init__(self):
        self.entries = []

    def record(self, entry):
        self.entries.append(dict(entry))

    def close(self):  # pragma: no cover - interface completeness
        pass


#: One simulated fleet history: a list of (action, app, kernels) steps.
#: ``checkpoint`` writes durable progress through the app's current
#: token; ``failover`` advances the device generation and re-binds every
#: app (fresh tokens); ``zombie`` replays the app's *previous* token with
#: stale progress — exactly the write fencing must reject.
_steps = st.lists(
    st.tuples(
        st.sampled_from(["checkpoint", "failover", "zombie"]),
        st.sampled_from(APPS),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=30,
)


def _run_history(steps, fenced):
    """Drive one history through a fence; returns the accepted entries."""
    fence = fenced.fence
    progress = {app: 0 for app in APPS}
    tokens = {app: fence.token(DEVICE) for app in APPS}
    stale = {}  # app -> (token, progress) captured at the last failover
    for action, app, kernels in steps:
        if action == "failover":
            for a in APPS:
                stale[a] = (tokens[a], progress[a])
            fence.advance(DEVICE)
            tokens = {a: fence.token(DEVICE) for a in APPS}
        elif action == "checkpoint":
            progress[app] += kernels
            snapshot = AppCheckpoint(
                app_id=app,
                device_index=DEVICE,
                completed_kernels=progress[app],
                generation=tokens[app].generation,
            )
            fenced.record(snapshot.as_entry(), token=tokens[app])
        elif action == "zombie" and app in stale:
            token, old_progress = stale[app]
            snapshot = AppCheckpoint(
                app_id=app,
                device_index=DEVICE,
                completed_kernels=old_progress,
                generation=token.generation,
            )
            fenced.record(snapshot.as_entry(), token=token)
    return fenced.journal.entries


def _double_executions(entries):
    """Kernels a strict-prefix resume would run twice, over all prefixes.

    Resuming from a prefix restarts each app at its *latest* checkpoint
    in that prefix.  Any earlier accepted record with higher progress
    proves those kernels already completed — re-running them is double
    execution.  Scanning every strict prefix is equivalent to counting
    per-app progress regressions in the accepted stream.
    """
    doubles = 0
    high = {}
    for entry in entries:
        app, kernels = entry["app"], entry["kernels"]
        if kernels < high.get(app, 0):
            doubles += high[app] - kernels
        high[app] = max(high.get(app, 0), kernels)
    return doubles


@settings(max_examples=200, deadline=None)
@given(steps=_steps)
def test_fenced_replay_never_double_executes(steps):
    fenced = FencedJournal(_ListJournal(), GenerationFence())
    accepted = _run_history(steps, fenced)
    assert _double_executions(accepted) == 0
    # Every zombie write was rejected, never silently reordered.
    zombies = [e for e in fenced.rejections]
    assert fenced.rejected == len(zombies)


@settings(max_examples=200, deadline=None)
@given(steps=_steps)
def test_unfenced_stream_admits_the_bug(steps):
    """The fence is load-bearing: without it the property is falsifiable.

    Not every history triggers the bug, but whenever the unfenced stream
    regresses, the fenced stream over the same history must not — and a
    regression must coincide with at least one write the fence would
    have rejected.
    """

    class _NoFence:
        generation = staticmethod(lambda d: 0)
        advances = 0

        def token(self, d):
            return None

        def advance(self, d):
            return 0

        def check(self, token):
            return None

    unfenced_journal = _ListJournal()
    unfenced = FencedJournal(unfenced_journal, GenerationFence())
    # Bypass the fence by recording tokenless — the unfenced baseline.
    fence = unfenced.fence
    progress = {app: 0 for app in APPS}
    tokens = {app: fence.token(DEVICE) for app in APPS}
    stale = {}
    for action, app, kernels in steps:
        if action == "failover":
            for a in APPS:
                stale[a] = (tokens[a], progress[a])
            fence.advance(DEVICE)
            tokens = {a: fence.token(DEVICE) for a in APPS}
        elif action == "checkpoint":
            progress[app] += kernels
            unfenced.record(
                AppCheckpoint(
                    app_id=app, completed_kernels=progress[app]
                ).as_entry()
            )
        elif action == "zombie" and app in stale:
            _, old_progress = stale[app]
            unfenced.record(
                AppCheckpoint(
                    app_id=app, completed_kernels=old_progress
                ).as_entry()
            )
    unfenced_doubles = _double_executions(unfenced_journal.entries)

    fenced = FencedJournal(_ListJournal(), GenerationFence())
    _run_history(steps, fenced)
    fenced_doubles = _double_executions(fenced.journal.entries)

    assert fenced_doubles == 0
    if unfenced_doubles > 0:
        assert fenced.rejected > 0
