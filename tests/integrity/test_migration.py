"""Pre-envelope journal migration: compat-read, upgrade, or reject.

Journals written before the integrity envelope shipped are plain JSONL
(version 1).  The contract: version sniffing recognizes them, resume
reads them through the compat path and rewrites them in envelope form,
legacy-specific corruption limits are enforced (no checksums -> only the
final line may be torn), and files that are neither format are rejected
with an actionable error — never misparsed into garbage entries.
"""

import json
from pathlib import Path

import pytest

from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.integrity import decode_line, sniff_format
from repro.serving import (
    JOURNAL_FORMAT,
    JournalError,
    LEGACY_JOURNAL_VERSION,
    ServingConfig,
    run_serving,
)

pytestmark = pytest.mark.integrity

SEED = 7


def _arrivals():
    return poisson_arrivals(
        rate=4000.0,
        duration=0.002,
        type_mix=[("nn", 2), ("needle", 1)],
        seed=SEED,
    )


def _run(path: Path, resume: bool = False):
    return run_serving(
        _arrivals(),
        ConcurrencyCapDispatcher(2),
        ServingConfig(seed=SEED),
        num_streams=8,
        journal_path=path,
        resume=resume,
    )


@pytest.fixture(scope="module")
def envelope_reference(tmp_path_factory):
    """An uninterrupted envelope-format run: (bytes, header, entries)."""
    path = tmp_path_factory.mktemp("ref") / "ref.jsonl"
    _run(path)
    data = path.read_bytes()
    lines = data.splitlines()
    header = decode_line(lines[0], expected_seq=0)
    entries = [
        decode_line(line, expected_seq=i)
        for i, line in enumerate(lines[1:], start=1)
    ]
    return data, header, entries


def _legacy_bytes(header, entries, version=LEGACY_JOURNAL_VERSION) -> bytes:
    """The same run as a pre-envelope (version 1) journal would be."""
    legacy_header = dict(header, version=version)
    lines = [json.dumps(legacy_header, sort_keys=True)]
    lines += [json.dumps(e, sort_keys=True) for e in entries]
    return ("\n".join(lines) + "\n").encode("utf-8")


class TestLegacyCompat:
    def test_legacy_is_sniffed_as_legacy(self, envelope_reference):
        _, header, entries = envelope_reference
        assert sniff_format(_legacy_bytes(header, entries)) == "legacy"

    def test_resume_upgrades_to_envelope(
        self, envelope_reference, tmp_path
    ):
        data, header, entries = envelope_reference
        path = tmp_path / "legacy.jsonl"
        path.write_bytes(_legacy_bytes(header, entries))
        result = _run(path, resume=True)
        assert result.resumed
        assert result.recovered_entries == len(entries)
        # The file is now envelope v2 — byte-identical to what an
        # uninterrupted post-upgrade run writes.
        assert path.read_bytes() == data

    def test_resume_replays_partial_legacy_journal(
        self, envelope_reference, tmp_path
    ):
        data, header, entries = envelope_reference
        assert len(entries) >= 3
        path = tmp_path / "legacy-partial.jsonl"
        path.write_bytes(_legacy_bytes(header, entries[:2]))
        result = _run(path, resume=True)
        assert result.recovered_entries == 2
        assert path.read_bytes() == data

    def test_legacy_torn_tail_recovers(self, envelope_reference, tmp_path):
        _, header, entries = envelope_reference
        legacy = _legacy_bytes(header, entries)
        path = tmp_path / "legacy-torn.jsonl"
        path.write_bytes(legacy[:-9])  # cut inside the final line
        result = _run(path, resume=True)
        assert result.recovered_entries == len(entries) - 1

    def test_legacy_mid_file_corruption_is_refused(
        self, envelope_reference, tmp_path
    ):
        # Legacy lines carry no checksums: a bad line mid-file cannot be
        # blamed on a crash, so the journal must refuse rather than guess
        # which suffix to trust.
        _, header, entries = envelope_reference
        lines = _legacy_bytes(header, entries).decode().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]
        path = tmp_path / "legacy-corrupt.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="final line may be torn"):
            _run(path, resume=True)


class TestRejection:
    def test_unknown_format_rejected_with_actionable_error(self, tmp_path):
        path = tmp_path / "noise.jsonl"
        path.write_bytes(b"\x89PNG not a journal at all\n")
        with pytest.raises(JournalError, match=JOURNAL_FORMAT):
            _run(path, resume=True)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalError):
            _run(path, resume=True)

    def test_unsupported_future_version_rejected(
        self, envelope_reference, tmp_path
    ):
        _, header, entries = envelope_reference
        path = tmp_path / "future.jsonl"
        path.write_bytes(_legacy_bytes(header, entries, version=99))
        with pytest.raises(JournalError, match="unsupported version"):
            _run(path, resume=True)

    def test_wrong_format_name_rejected(
        self, envelope_reference, tmp_path
    ):
        _, header, entries = envelope_reference
        alien = dict(header, format="someone-elses-journal")
        path = tmp_path / "alien.jsonl"
        path.write_bytes(_legacy_bytes(alien, entries))
        with pytest.raises(JournalError, match=JOURNAL_FORMAT):
            _run(path, resume=True)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            _run(tmp_path / "never-written.jsonl", resume=True)
