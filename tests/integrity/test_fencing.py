"""Generation fencing: stale post-failover writes must never land.

The unit tests replay the split-brain sequence the fence exists for —
bind, loss declaration, late write with the superseded token — against a
real on-disk journal, so "rejected" means *absent from the file*, not
just an exception.  The fleet tests then confirm the harness threads the
same machinery through a real device-loss run.
"""

import pytest

from repro.fleet import FleetConfig, FleetHarness
from repro.integrity import (
    FencedJournal,
    FenceToken,
    GenerationFence,
    StaleGenerationError,
    decode_line,
)
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.serving import RunJournal

from .conftest import FAST_HEALTH, _fleet_apps

pytestmark = pytest.mark.integrity


class TestGenerationFence:
    def test_generations_start_at_zero_and_advance(self):
        fence = GenerationFence()
        assert fence.generation(0) == 0
        assert fence.advance(0) == 1
        assert fence.advance(0) == 2
        assert fence.generation(0) == 2
        assert fence.generation(1) == 0  # independent per device
        assert fence.advances == 2

    def test_token_capture_and_staleness(self):
        fence = GenerationFence()
        token = fence.token(3)
        assert token == FenceToken(3, 0)
        assert fence.is_current(token)
        fence.advance(3)
        assert not fence.is_current(token)
        with pytest.raises(StaleGenerationError) as exc:
            fence.check(token)
        assert exc.value.token is token
        assert exc.value.current == 1
        assert fence.rejected == 1

    def test_tokens_are_immutable(self):
        token = GenerationFence().token(0)
        with pytest.raises(AttributeError):
            token.generation = 99


class TestFencedJournal:
    def _open(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.begin("fence-test")
        return journal

    def test_split_brain_write_never_reaches_disk(self, tmp_path):
        fence = GenerationFence()
        with FencedJournal(self._open(tmp_path), fence) as fenced:
            old = fence.token(0)               # app binds device 0
            fenced.record({"event": "checkpoint", "n": 1}, token=old)
            fence.advance(0)                   # device declared lost
            new = fence.token(0)               # replica re-binds
            # The zombie's in-flight write arrives *after* the advance.
            fenced.record({"event": "checkpoint", "n": 2}, token=old)
            fenced.record({"event": "checkpoint", "n": 3}, token=new)
            assert fenced.rejected == 1
            assert fenced.rejections == [{"event": "checkpoint", "n": 2}]
        lines = (tmp_path / "j.jsonl").read_bytes().splitlines()
        entries = [decode_line(line) for line in lines[1:]]
        assert [e["n"] for e in entries] == [1, 3]

    def test_tokenless_writes_pass_unfenced(self, tmp_path):
        # Coordinator records (device-lost, failover) and terminal app
        # outcomes are legitimate after a loss: no token, no fencing.
        fence = GenerationFence()
        fence.advance(0)
        with FencedJournal(self._open(tmp_path), fence) as fenced:
            fenced.record({"event": "device-lost", "device": 0})
            assert fenced.rejected == 0
        assert len((tmp_path / "j.jsonl").read_bytes().splitlines()) == 2

    def test_strict_mode_raises(self, tmp_path):
        fence = GenerationFence()
        stale = fence.token(0)
        fence.advance(0)
        with FencedJournal(self._open(tmp_path), fence, strict=True) as fj:
            with pytest.raises(StaleGenerationError):
                fj.record({"event": "checkpoint"}, token=stale)
            assert fj.rejected == 1

    def test_wrapped_surface_passes_through(self, tmp_path):
        fenced = FencedJournal(self._open(tmp_path), GenerationFence())
        assert fenced.appended == 0  # RunJournal attribute via __getattr__
        fenced.close()


class TestFleetFencing:
    def _run(self, tmp_path, lose=True):
        fleet = FleetConfig(num_devices=2, seed=0, **FAST_HEALTH)
        plan = None
        if lose:
            baseline = FleetHarness(
                _fleet_apps(), fleet, num_streams=2, seed=0
            ).run()
            on_dev0 = [r for r in baseline.records if r.device_index == 0]
            target = max(
                on_dev0, key=lambda r: r.complete_time - r.gpu_start
            )
            loss_at = (target.gpu_start + target.complete_time) / 2
            plan = FaultPlan(
                [FaultSpec(FaultKind.DEVICE_LOSS, loss_at, device=0)]
            )
        return FleetHarness(
            _fleet_apps(),
            fleet,
            num_streams=2,
            seed=0,
            plan=plan,
            journal_path=tmp_path / "fleet.jsonl",
        ).run()

    def test_loss_advances_the_generation(self, tmp_path):
        result = self._run(tmp_path)
        assert result.devices_lost == 1
        assert result.fence_advances == 1
        # The sequential simulator leaves no write in flight across the
        # loss instant, so nothing is there to fence off — the counter
        # exists precisely to prove that stays true.
        assert result.stale_writes_rejected == 0

    def test_clean_run_never_advances(self, tmp_path):
        result = self._run(tmp_path, lose=False)
        assert result.fence_advances == 0
        assert result.stale_writes_rejected == 0

    def test_checkpoints_carry_their_generation(self, tmp_path):
        result = self._run(tmp_path)
        assert result.completed == len(result.records)
        lines = (tmp_path / "fleet.jsonl").read_bytes().splitlines()
        entries = [decode_line(line) for line in lines[1:]]
        checkpoints = [e for e in entries if e["event"] == "checkpoint"]
        assert checkpoints
        assert all("gen" in c for c in checkpoints)
        # Post-failover checkpoints of migrated apps carry the surviving
        # device's generation; device 0's pre-loss ones carry gen 0.
        assert {c["gen"] for c in checkpoints} == {0}
        migrated = {
            r.app_id for r in result.records if r.migrations > 0
        }
        assert migrated
        # A migrated app's last durable snapshot was taken after the
        # failover, on the surviving device.
        last = {c["app"]: c for c in checkpoints}
        assert all(last[app]["device"] != 0 for app in migrated)
