"""Crash-point and corruption sweeps over every journaled store.

The per-PR lane thins the truncation sweep (record boundaries always
kept) and samples a seeded handful of byte flips; the ``REPRO_SOAK``
chaos lane runs the *full* single-byte-flip corpus — one site per byte of
each reference file.  Either way the contract per site is binary: the
mutated journal must resume to a byte-identical file, or be cleanly
rejected and leave a fresh run byte-identical.  See
:mod:`repro.integrity.crashfuzz` for why truncation enumeration equals
kill-at-every-write coverage.
"""

import os

import pytest

from repro.integrity import (
    enumerate_flips,
    enumerate_truncations,
    run_crash_sweep,
)

pytestmark = pytest.mark.integrity

#: Per-PR truncation thinning: every Nth byte boundary (newlines kept).
PR_TRUNCATION_STRIDE = 64
#: Per-PR corruption sampling: this many seeded single-byte flips.
PR_FLIP_COUNT = 12


def _sweep(store, sites, tmp_path):
    report = run_crash_sweep(
        store.reference,
        sites,
        tmp_path / "scratch",
        resume=store.resume,
        fresh=store.fresh,
        clean_errors=store.clean_errors,
    )
    assert report.ok, f"{store.name}: {report.describe()}"
    assert report.sites == len(sites)
    assert report.resumed_identical + report.rejected_then_fresh == len(sites)
    return report


def test_reference_runs_are_deterministic(store, tmp_path):
    # The whole methodology rests on this: same config -> same bytes.
    again = tmp_path / "again.jsonl"
    store.fresh(again)
    assert again.read_bytes() == store.reference


def test_truncation_sweep(store, tmp_path):
    sites = enumerate_truncations(
        store.reference, stride=PR_TRUNCATION_STRIDE
    )
    report = _sweep(store, sites, tmp_path)
    # A journal cut before its header is complete cannot resume; both
    # outcomes must occur across the sweep or the harness isn't reaching
    # one of its two legs.
    assert report.rejected_then_fresh >= 1
    assert report.resumed_identical >= 1


def test_flip_sweep(store, tmp_path):
    sites = enumerate_flips(store.reference, seed=3, count=PR_FLIP_COUNT)
    _sweep(store, sites, tmp_path)


@pytest.mark.soak
@pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="full byte-flip corpus is opt-in: set REPRO_SOAK=1",
)
def test_full_flip_corpus(store, tmp_path):
    """Soak lane: flip every byte of the reference file, one at a time."""
    sites = enumerate_flips(store.reference, seed=0, count=None)
    assert len(sites) == len(store.reference)
    _sweep(store, sites, tmp_path)


@pytest.mark.soak
@pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="exhaustive truncation sweep is opt-in: set REPRO_SOAK=1",
)
def test_every_truncation(store, tmp_path):
    """Soak lane: cut the reference at every single byte boundary."""
    sites = enumerate_truncations(store.reference, stride=1)
    _sweep(store, sites, tmp_path)
