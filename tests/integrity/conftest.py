"""Shared builders for the integrity suite.

Each ``*_store`` helper runs one tiny deterministic workload with its
journal at a caller-chosen path, exposing exactly the interface
:func:`repro.integrity.crashfuzz.run_crash_sweep` consumes: the
uninterrupted run's reference bytes plus ``resume``/``fresh`` callables
that re-run the *same* configuration against an arbitrary path.  The
stores cover every persisted-write site in the repo: the serving
outcome journal, the fleet checkpoint/failover journal (plain, hedged
and cascade variants), the batch scheduler's decision journal and the
burn-rate monitor's alert-record journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Tuple

import pytest

from repro.apps.registry import get_app
from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.fleet import FleetConfig, FleetHarness
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.integrity.record import JournalIntegrityError
from repro.serving import (
    JournalError,
    ServingConfig,
    run_batched_serving,
    run_serving,
)
from repro.telemetry import BurnRateConfig, Tracing

SEED = 7

#: Tight health timings so loss -> detection -> migration resolves inside
#: a tiny-scale fleet run (mirrors tests/fleet/conftest.py).
FAST_HEALTH = dict(
    heartbeat_interval=2e-5,
    detection_latency=5e-5,
    detection_jitter=1e-5,
)

_APP_SIZES = {
    "gaussian": {"n": 48},
    "needle": {"n": 64},
}


@dataclass
class Store:
    """One journaled store, packaged for the crash-point fuzzer."""

    name: str
    reference: bytes
    resume: Callable[[Path], None]
    fresh: Callable[[Path], None]
    clean_errors: Tuple[type, ...]


def _fleet_apps(count: int = 4):
    kinds = ("gaussian", "needle")
    return [
        get_app(kinds[i % 2], instance=i, **_APP_SIZES[kinds[i % 2]])
        for i in range(count)
    ]


def serving_store(base: Path) -> Store:
    """The serving layer's terminal-outcome journal."""
    arrivals = lambda: poisson_arrivals(
        rate=4000.0,
        duration=0.002,
        type_mix=[("nn", 2), ("needle", 1)],
        seed=SEED,
    )

    def run(path: Path, resume: bool = False) -> None:
        run_serving(
            arrivals(),
            ConcurrencyCapDispatcher(2),
            ServingConfig(seed=SEED),
            num_streams=8,
            journal_path=path,
            resume=resume,
        )

    ref = base / "serving-ref.jsonl"
    run(ref)
    return Store(
        "serving",
        ref.read_bytes(),
        lambda p: run(p, resume=True),
        run,
        (JournalError,),
    )


def scheduler_store(base: Path) -> Store:
    """The adaptive batch scheduler's decision journal."""
    batch = [("gaussian", 2), ("needle", 2)]

    def run(path: Path, resume: bool = False) -> None:
        run_batched_serving(
            [batch] * 3,
            policy="bandit",
            scale="tiny",
            seed=SEED,
            journal_path=path,
            resume=resume,
        )

    ref = base / "scheduler-ref.jsonl"
    run(ref)
    return Store(
        "scheduler",
        ref.read_bytes(),
        lambda p: run(p, resume=True),
        run,
        (JournalError,),
    )


def fleet_store(base: Path) -> Store:
    """The fleet checkpoint/failover journal, with a mid-run device loss.

    The loss makes the journal representative: it carries checkpoint,
    device-lost, failover *and* terminal app records, so the sweep
    exercises recovery across every fleet record type.
    """
    fleet = FleetConfig(num_devices=2, seed=SEED, **FAST_HEALTH)

    # Place the loss mid-GPU-section of device 0's longest app, measured
    # from a clean unjournaled baseline (fault times are absolute).
    baseline = FleetHarness(
        _fleet_apps(), fleet, num_streams=2, seed=SEED
    ).run()
    on_dev0 = [r for r in baseline.records if r.device_index == 0]
    target = max(on_dev0, key=lambda r: r.complete_time - r.gpu_start)
    loss_at = (target.gpu_start + target.complete_time) / 2
    plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, loss_at, device=0)])

    def run(path: Path, resume: bool = False) -> None:
        FleetHarness(
            _fleet_apps(),
            fleet,
            num_streams=2,
            seed=SEED,
            plan=plan,
            journal_path=path,
            resume=resume,
        ).run()

    ref = base / "fleet-ref.jsonl"
    run(ref)
    return Store(
        "fleet",
        ref.read_bytes(),
        lambda p: run(p, resume=True),
        run,
        (JournalError,),
    )


def hedge_store(base: Path) -> Store:
    """The fleet journal of a *hedged* run under a gray slowdown.

    A sustained 4x SMX slowdown on device 0 makes the straggler detector
    fire and the hedge manager journal ``hedge`` / ``hedge-done``
    decisions plus fenced replica checkpoints — record types the plain
    ``fleet`` store never writes, so crash points inside a speculative
    race get swept too.
    """
    from repro.fleet import HedgeConfig

    fleet = FleetConfig(
        num_devices=2,
        seed=SEED,
        hedging=HedgeConfig(check_interval=0.2e-3, budget_fraction=0.5),
        **FAST_HEALTH,
    )
    plan = FaultPlan.gray(
        0, kind=FaultKind.SMX_SLOWDOWN, start=0.0, duration=1.0, factor=4.0
    )

    def run(path: Path, resume: bool = False) -> None:
        FleetHarness(
            _fleet_apps(),
            fleet,
            plan=plan,
            journal_path=path,
            resume=resume,
        ).run()

    ref = base / "hedge-ref.jsonl"
    run(ref)
    return Store(
        "hedge",
        ref.read_bytes(),
        lambda p: run(p, resume=True),
        run,
        (JournalError,),
    )


def cascade_store(base: Path) -> Store:
    """The fleet journal of a contained correlated-failure run.

    A skewed rail loss under storm control and a tripped brownout ladder
    makes the journal carry ``migration-queued`` pacing records and
    ``brownout`` ladder transitions — the record types the containment
    work added — so crash points inside a paced failover or a level
    change get swept alongside the older stores.
    """
    from repro.fleet import StormControlConfig, TopologyConfig
    from repro.fleet.topology import FleetTopology
    from repro.resilience import BrownoutConfig

    fleet = FleetConfig(
        num_devices=4,
        seed=SEED,
        topology=TopologyConfig(rails=2),
        storm=StormControlConfig(max_inflight_per_device=1, pace_interval=2e-4),
        brownout=BrownoutConfig(
            window=2e-4, trip_windows=1, per_device_rate=1e9, max_level=1
        ),
        **FAST_HEALTH,
    )
    # Rail 0 (devices 0 and 1) collapses over ~0.1 ms mid-run: four apps
    # funnel through the migration queue onto the two survivors.
    plan = FaultPlan.correlated(
        FleetTopology(4, fleet.topology).members("rail", 0),
        kind=FaultKind.DEVICE_LOSS,
        time=1.5e-3,
        skew=1e-4,
        seed=SEED,
    )

    def run(path: Path, resume: bool = False) -> None:
        FleetHarness(
            _fleet_apps(8),
            fleet,
            num_streams=2,
            seed=SEED,
            plan=plan,
            journal_path=path,
            resume=resume,
        ).run()

    ref = base / "cascade-ref.jsonl"
    run(ref)
    return Store(
        "cascade",
        ref.read_bytes(),
        lambda p: run(p, resume=True),
        run,
        (JournalError,),
    )


def alerts_store(base: Path) -> Store:
    """The burn-rate monitor's fenced alert-record journal.

    An overloaded serving run (tight SLO, small cap) drives the monitor
    through alert / alert-resolved cycles on both lookback windows, so
    the journal carries the observability PR's record type.  The store
    journals *only* alerts — no outcome journal — exercising the
    serving path that resumes from the alert journal alone.
    """
    arrivals = lambda: poisson_arrivals(
        rate=4000.0,
        duration=0.006,
        type_mix=[("nn", 2), ("needle", 1)],
        seed=SEED,
    )

    def run(path: Path, resume: bool = False) -> None:
        tracing = Tracing(
            seed=SEED,
            burn=BurnRateConfig(
                budget=0.05,
                windows=((1e-3, 6e-3, 2.0), (3e-3, 18e-3, 1.0)),
                min_events=2,
            ),
            alert_journal=path,
        )
        run_serving(
            arrivals(),
            ConcurrencyCapDispatcher(3),
            ServingConfig(seed=SEED, slo_factor=2.5),
            num_streams=8,
            resume=resume,
            tracing=tracing,
        )

    ref = base / "alerts-ref.jsonl"
    run(ref)
    return Store(
        "alerts",
        ref.read_bytes(),
        lambda p: run(p, resume=True),
        run,
        (JournalError,),
    )


def traffic_cursor_store(base: Path) -> Store:
    """The workload recorder's trace-cursor checkpoint journal.

    Recording a small multi-tenant trace with tight checkpoints packs
    many cursor records (plus the terminal ``end`` record) into the
    store.  On resume the recorder either fast-forwards from the newest
    usable cursor or — when the sweep's scratch dir has destroyed the
    trace file — regenerates from scratch while replay-verifying every
    surviving cursor, so both recovery paths converge byte-identically.
    """
    from repro.workload import ArrivalSpec, TenantClass, TenantModel, record_trace

    model = TenantModel(
        classes=(
            TenantClass(
                name="interactive",
                arrival=ArrivalSpec("poisson", rate=2000.0),
                app_mix=(("nn", 0.7), ("gaussian", 0.3)),
                slo_factor=4.0,
                tenants=50,
                popularity="zipf",
            ),
            TenantClass(
                name="batch",
                arrival=ArrivalSpec("pareto", rate=1000.0, alpha=1.4),
                app_mix=(("needle", 1.0),),
                slo_factor=0.0,
            ),
        ),
        seed=SEED,
    )
    baselines = {"nn": 1e-3, "gaussian": 2e-3, "needle": 4e-3}
    fingerprint = "traffic-cursor-store-test"

    def run(path: Path, resume: bool = False) -> None:
        record_trace(
            model.stream(baselines, limit=200),
            path.parent / (path.name + ".trace"),
            fingerprint,
            cursor_path=path,
            cursor_every=16,
            resume=resume,
        )

    ref = base / "traffic-cursor-ref.jsonl"
    run(ref)
    return Store(
        "traffic-cursor",
        ref.read_bytes(),
        lambda p: run(p, resume=True),
        run,
        (JournalError, JournalIntegrityError),
    )


STORE_BUILDERS = {
    "serving": serving_store,
    "scheduler": scheduler_store,
    "fleet": fleet_store,
    "hedge": hedge_store,
    "cascade": cascade_store,
    "alerts": alerts_store,
    "traffic-cursor": traffic_cursor_store,
}


@pytest.fixture(scope="module", params=sorted(STORE_BUILDERS))
def store(request, tmp_path_factory) -> Store:
    """One journaled store per param, reference run already taken."""
    base = tmp_path_factory.mktemp(f"store-{request.param}")
    return STORE_BUILDERS[request.param](base)
