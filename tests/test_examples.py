"""Smoke tests: every example script runs end to end (tiny/small sizes)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "quickstart.py", ["--scale", "tiny", "--apps", "4"]
    )
    assert "serialized" in out
    assert "full-concurrent" in out
    assert "concurrency improvement" in out
    assert "legend" in out  # the timeline rendered


def test_sequence_alignment_service(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "sequence_alignment_service.py")
    assert "score" in out
    assert "Hyper-Q improves batch latency" in out


def test_image_denoising_pipeline(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "image_denoising_pipeline.py",
        ["--scale", "tiny", "--apps", "8"],
    )
    assert "roughness before" in out
    assert "best order" in out


def test_power_aware_scheduling(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "power_aware_scheduling.py",
        ["--scale", "tiny", "--apps", "8"],
    )
    assert "serial" in out
    assert "energy drops" in out


def test_adaptive_scheduling_service(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "adaptive_scheduling_service.py",
        ["--scale", "tiny", "--batches", "10"],
    )
    assert "best static order" in out
    assert "exploit" in out
    assert "converged within" in out


def test_custom_application(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "custom_application.py")
    assert "matmul registered" in out
    assert "improvement" in out
    # The example registers globally; undo so other tests see a clean
    # registry (the paper's four applications only).
    from repro.apps.registry import APP_CLASSES
    from repro.core.workload import SCALES

    APP_CLASSES.pop("matmul", None)
    for scale in SCALES.values():
        scale.pop("matmul", None)


def test_streaming_service(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "streaming_service.py",
        ["--rate", "8000", "--duration", "0.003", "--scale", "tiny"],
    )
    assert "greedy" in out
    assert "power-cap" in out


def test_fault_injected_service(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "fault_injected_service.py",
        ["--scale", "tiny", "--apps", "8"],
    )
    assert "clean" in out
    assert "faulted" in out
    assert "resilience summary" in out
    assert "applications completed despite" in out


def test_telemetry_dashboard(monkeypatch, capsys, tmp_path):
    out = run_example(
        monkeypatch, capsys, "telemetry_dashboard.py",
        ["--scale", "tiny", "--apps", "4", "--interval", "2e-5",
         "--out", str(tmp_path)],
    )
    assert "scraped" in out
    assert "wrote merged Chrome trace" in out
    assert (tmp_path / "metrics.prom").exists()
    assert (tmp_path / "metrics.jsonl").exists()
    assert (tmp_path / "trace_with_counters.json").exists()


def test_overload_shedding_service(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "overload_shedding_service.py",
        ["--scale", "tiny", "--overload", "12", "--duration", "0.01"],
    )
    assert "greedy" in out
    assert "shed-oldest" in out
    assert "shedding lifts goodput" in out
    assert "safely journaled" in out
    assert "resume matches the uninterrupted run exactly: yes" in out


def test_multi_tenant_service(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "multi_tenant_service.py",
        ["--scale", "tiny", "--requests", "120"],
    )
    assert "open-loop serving over 4 devices" in out
    assert "interactive" in out and "analytics" in out and "batch" in out
    assert "[scenario: three-tenants]" in out
    assert "bandit" in out
    assert "waterfall" in out
    assert "bandit vs worst static order" in out
