"""Validation of the device model against closed-form results.

Beyond unit tests, these check that the simulated engines reproduce
textbook queueing/throughput behaviour:

* the DMA engine under Poisson arrivals of fixed-size copies behaves like
  an M/D/1 queue (Pollaczek-Khinchine mean wait);
* a backlogged copy engine sustains exactly the configured bandwidth;
* a backlogged grid engine sustains exactly ``resident_blocks /
  block_duration`` block throughput;
* the power model's energy equals the analytic integral for a scripted
  activity pattern.
"""

import numpy as np
import pytest

from repro.gpu.commands import CopyDirection, MemcpyCommand
from repro.gpu.device import GPUDevice
from repro.gpu.dma import CopyEngine
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.gpu.specs import DMASpec
from repro.sim.engine import Environment


class TestMD1Queue:
    """Poisson arrivals + deterministic service -> M/D/1."""

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mean_wait_matches_pollaczek_khinchine(self, rho):
        service = 100e-6                  # fixed: latency-only transfers
        nbytes = 1024
        spec = DMASpec(bandwidth=nbytes / (service - 0e-6), latency=0.0)
        # transfer_time = nbytes / bandwidth = service (no latency term).
        env = Environment()
        engine = CopyEngine(env, CopyDirection.HTOD, spec, policy="fifo")
        rng = np.random.default_rng(42)
        n_jobs = 4000
        lam = rho / service
        arrivals = np.cumsum(rng.exponential(1.0 / lam, size=n_jobs))
        waits = []

        def source():
            now = 0.0
            for i, t in enumerate(arrivals):
                yield env.timeout(t - now)
                now = t
                cmd = MemcpyCommand(env, CopyDirection.HTOD, nbytes)
                cmd.stream_id = i  # independent streams: no FIFO coupling
                cmd.enqueue_time = env.now
                engine.submit(cmd)
                cmd.started.callbacks.append(
                    lambda e, c=cmd: waits.append(c.started.value - c.enqueue_time)
                )

        env.process(source())
        env.run()
        assert len(waits) == n_jobs
        measured = float(np.mean(waits))
        # M/D/1: Wq = rho * s / (2 (1 - rho)).
        analytic = rho * service / (2.0 * (1.0 - rho))
        assert measured == pytest.approx(analytic, rel=0.15)


class TestThroughputSaturation:
    def test_dma_sustains_configured_bandwidth(self):
        env = Environment()
        spec = DMASpec(bandwidth=2e9, latency=0.0)
        engine = CopyEngine(env, CopyDirection.HTOD, spec, policy="fifo")
        total_bytes = 0
        for i in range(200):
            cmd = MemcpyCommand(env, CopyDirection.HTOD, 1 << 20)
            cmd.stream_id = i
            engine.submit(cmd)
            total_bytes += 1 << 20
        env.run()
        assert total_bytes / env.now == pytest.approx(2e9, rel=1e-9)

    def test_grid_engine_sustains_block_throughput(self):
        """Backlogged identical kernels retire blocks at capacity rate."""
        env = Environment()
        device = GPUDevice(env)
        duration = 5e-6
        kd = KernelDescriptor(
            "k", Dim3(104), Dim3(256), registers_per_thread=0,
            block_duration=duration,
        )
        launches = 20
        for _ in range(launches):
            device.create_stream().enqueue_kernel(kd)
        env.run()
        # 104 resident blocks (256 tpb -> 8/SMX x 13); each wave = duration.
        total_blocks = launches * 104
        expected_rate = 104 / duration
        measured_rate = total_blocks / env.now
        # Retirement quantization (1us vs 5us blocks) costs <= 20%.
        assert measured_rate == pytest.approx(expected_rate, rel=0.25)
        assert measured_rate <= expected_rate * 1.0000001


class TestEnergyClosedForm:
    def test_scripted_activity_pattern(self):
        """Energy for a known duty cycle equals the hand integral."""
        from repro.gpu.power import PowerModel, PowerState
        from repro.gpu.specs import PowerSpec

        spec = PowerSpec()
        env = Environment()
        model = PowerModel(env, spec)
        busy = PowerState(occupancy=0.25, dma_busy=1, any_active=True,
                          active_streams=4)
        idle = PowerState(occupancy=0.0, dma_busy=0, any_active=False)

        def driver():
            for _ in range(10):
                model.update(busy)
                yield env.timeout(0.01)
                model.update(idle)
                yield env.timeout(0.03)

        env.process(driver())
        env.run()
        p_busy = (
            spec.idle + spec.context_active
            + spec.smx_dynamic_max * 0.25 ** spec.concurrency_exponent
            + spec.dma_active + 4 * spec.stream_active
        )
        expected = 10 * (p_busy * 0.01 + spec.idle * 0.03)
        assert model.energy() == pytest.approx(expected, rel=1e-12)
