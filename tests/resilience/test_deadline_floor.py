"""Deadline derivation with zero/missing serial baselines (floor clamp).

A zero or missing baseline must never derive a 0-second watchdog deadline
(one that fires before the attempt's first event); with a configured
``deadline_floor`` such types fall back to the floor, and every derived
deadline is clamped up to it.
"""

import pytest

from repro.core.runner import ExperimentRunner, RunConfig
from repro.core.workload import Workload
from repro.resilience import ResilienceConfig

pytestmark = pytest.mark.resilience


class TestDeadlineFor:
    def test_zero_baseline_never_derives_zero_deadline(self):
        config = ResilienceConfig(
            deadline_factor=4.0,
            baseline_runtimes={"nn": 0.0},
            deadline_floor=2e-3,
        )
        assert config.deadline_for("nn") == 2e-3

    def test_missing_baseline_falls_back_to_floor(self):
        config = ResilienceConfig(
            deadline_factor=4.0,
            baseline_runtimes={"nn": 1e-3},
            deadline_floor=2e-3,
        )
        assert config.deadline_for("needle") == 2e-3

    def test_derived_deadline_clamped_up_to_floor(self):
        config = ResilienceConfig(
            deadline_factor=2.0,
            baseline_runtimes={"nn": 1e-4},   # 2x = 0.2ms, below floor
            deadline_floor=1e-3,
        )
        assert config.deadline_for("nn") == 1e-3

    def test_deadline_above_floor_unclamped(self):
        config = ResilienceConfig(
            deadline_factor=4.0,
            baseline_runtimes={"nn": 1e-3},
            deadline_floor=1e-4,
        )
        assert config.deadline_for("nn") == pytest.approx(4e-3)

    def test_default_deadline_also_clamped(self):
        config = ResilienceConfig(
            default_deadline=1e-4, deadline_floor=5e-4
        )
        assert config.deadline_for("nn") == 5e-4

    def test_zero_floor_keeps_historical_behaviour(self):
        config = ResilienceConfig(
            deadline_factor=4.0, baseline_runtimes={"nn": 0.0}
        )
        # No floor, zero baseline, no default: no guard at all — never a
        # 0-second deadline.
        assert config.deadline_for("nn") is None

    def test_floor_alone_without_factor_is_inert(self):
        # A floor only applies when deadlines are wanted at all.
        config = ResilienceConfig(deadline_floor=1e-3)
        assert not config.wants_deadlines
        assert config.deadline_for("nn") is None

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(deadline_floor=-1.0)


class TestRunnerBaselineResolution:
    def test_zero_wall_time_records_skipped(self):
        runner = ExperimentRunner()
        workload = Workload.heterogeneous_pair("gaussian", "needle", 2)
        config = RunConfig(
            workload=workload,
            num_streams=2,
            resilience=ResilienceConfig(
                deadline_factor=4.0, deadline_floor=1e-3
            ),
        )
        resolved = runner.resolve_baselines(config)
        # Real runs produce positive baselines for both types; the
        # zero-skip is about never *storing* a 0 that poisons deadline_for.
        for _type, baseline in resolved.baseline_runtimes:
            assert baseline > 0
        assert resolved.deadline_for("gaussian") >= 1e-3
