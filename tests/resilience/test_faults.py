"""Unit tests for :mod:`repro.resilience.faults`."""

import pytest

from repro.resilience.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

pytestmark = pytest.mark.resilience


class TestFaultSpec:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.KERNEL_HANG, -1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DMA_STALL, 0.0, duration=-1e-3)

    def test_hang_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.KERNEL_HANG, 0.0, factor=1.0)

    def test_matches_any_when_untargeted(self):
        spec = FaultSpec(FaultKind.LAUNCH_FAIL, 0.0)
        assert spec.matches("gaussian#0")
        assert spec.matches(None)

    def test_matches_exact_app_id(self):
        spec = FaultSpec(FaultKind.LAUNCH_FAIL, 0.0, target="gaussian#2")
        assert spec.matches("gaussian#2")
        assert not spec.matches("gaussian#1")
        assert not spec.matches(None)

    def test_matches_type_prefix(self):
        spec = FaultSpec(FaultKind.KERNEL_HANG, 0.0, target="needle")
        assert spec.matches("needle#0")
        assert spec.matches("needle#7")
        assert not spec.matches("srad#0")


class TestFaultPlan:
    def test_empty(self):
        assert FaultPlan().empty
        assert len(FaultPlan()) == 0
        assert not FaultPlan([FaultSpec(FaultKind.LAUNCH_FAIL, 0.0)]).empty

    def test_sorted_by_time(self):
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.LAUNCH_FAIL, 2.0),
                FaultSpec(FaultKind.KERNEL_HANG, 1.0),
                FaultSpec(FaultKind.DMA_STALL, 0.5),
            ]
        )
        assert [f.time for f in plan] == [0.5, 1.0, 2.0]

    def test_counts(self):
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.LAUNCH_FAIL, 0.0),
                FaultSpec(FaultKind.LAUNCH_FAIL, 1.0),
                FaultSpec(FaultKind.POWER_DROPOUT, 0.5, duration=1e-3),
            ]
        )
        assert plan.counts() == {"launch_fail": 2, "power_dropout": 1}

    def test_equality_and_hash(self):
        a = FaultPlan([FaultSpec(FaultKind.LAUNCH_FAIL, 1.0)])
        b = FaultPlan([FaultSpec(FaultKind.LAUNCH_FAIL, 1.0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultPlan()

    def test_generate_is_deterministic(self):
        kwargs = dict(
            kernel_hang_rate=3.0,
            launch_fail_rate=2.0,
            dma_stall_rate=2.0,
            power_dropout_rate=1.0,
            targets=("gaussian", "needle"),
        )
        a = FaultPlan.generate(7, 10.0, **kwargs)
        b = FaultPlan.generate(7, 10.0, **kwargs)
        assert not a.empty  # rates high enough to guarantee draws
        assert a == b
        assert a.faults == b.faults

    def test_generate_seed_changes_schedule(self):
        kwargs = dict(kernel_hang_rate=5.0, launch_fail_rate=5.0)
        a = FaultPlan.generate(1, 10.0, **kwargs)
        b = FaultPlan.generate(2, 10.0, **kwargs)
        assert a != b

    def test_generate_times_within_horizon(self):
        plan = FaultPlan.generate(3, 2.0, kernel_hang_rate=10.0)
        assert all(0.0 <= f.time < 2.0 for f in plan)

    def test_generate_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(0, 0.0)


class TestFaultInjector:
    def test_kernel_fault_not_armed_before_time(self, env):
        plan = FaultPlan([FaultSpec(FaultKind.KERNEL_HANG, 5.0)])
        injector = FaultInjector(env, plan)
        assert injector.kernel_fault("gaussian#0", now=1.0) is None
        assert injector.applied_count == 0

    def test_kernel_fault_consumed_once(self, env):
        plan = FaultPlan([FaultSpec(FaultKind.KERNEL_HANG, 1.0, factor=4.0)])
        injector = FaultInjector(env, plan)
        spec = injector.kernel_fault("gaussian#0", now=2.0)
        assert spec is not None and spec.factor == 4.0
        assert injector.kernel_fault("gaussian#0", now=3.0) is None
        assert injector.applied_counts() == {"kernel_hang": 1}

    def test_kernel_fault_respects_target(self, env):
        plan = FaultPlan(
            [FaultSpec(FaultKind.LAUNCH_FAIL, 0.0, target="needle")]
        )
        injector = FaultInjector(env, plan)
        assert injector.kernel_fault("gaussian#0", now=1.0) is None
        assert injector.kernel_fault("needle#3", now=1.0) is not None

    def test_dma_stall_sums_and_respects_direction(self, env):
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.DMA_STALL, 0.0, duration=1e-3, direction="HtoD"),
                FaultSpec(FaultKind.DMA_STALL, 0.0, duration=2e-3, direction="HtoD"),
                FaultSpec(FaultKind.DMA_STALL, 0.0, duration=5e-3, direction="DtoH"),
            ]
        )
        injector = FaultInjector(env, plan)
        assert injector.dma_stall("HtoD", now=1.0) == pytest.approx(3e-3)
        # The DtoH stall survives the HtoD drain and applies later.
        assert injector.dma_stall("DtoH", now=2.0) == pytest.approx(5e-3)
        assert injector.dma_stall("HtoD", now=3.0) == 0.0
        assert injector.applied_counts() == {"dma_stall": 3}

    def test_power_dropout_window(self, env):
        plan = FaultPlan(
            [FaultSpec(FaultKind.POWER_DROPOUT, 1.0, duration=0.5)]
        )
        injector = FaultInjector(env, plan)
        assert not injector.drop_power_sample(0.5)   # before the window
        assert injector.drop_power_sample(1.0)       # window start
        assert injector.drop_power_sample(1.4)       # still inside
        assert not injector.drop_power_sample(1.5)   # window closed
        # The window is recorded exactly once despite two dropped samples.
        assert injector.applied_counts() == {"power_dropout": 1}

    def test_fault_marks_land_on_resilience_track(self, env, trace):
        plan = FaultPlan([FaultSpec(FaultKind.LAUNCH_FAIL, 0.0)])
        injector = FaultInjector(env, plan, trace=trace)
        injector.kernel_fault("gaussian#0", now=0.0)
        marks = [i for i in trace.instants if i.track == "resilience"]
        assert len(marks) == 1
        assert marks[0].category == "fault"
        assert marks[0].name == "launch_fail"

    def test_retry_and_deadline_marks(self, env, trace):
        injector = FaultInjector(env, trace=trace)
        injector.mark_retry("gaussian#0", attempt=1, delay=1e-3)
        injector.mark_deadline("needle#1", deadline=0.25)
        categories = [i.category for i in trace.instants]
        assert categories == ["retry", "deadline"]
