"""Retry budgets: the shared token bucket and deadline shedding helper.

Every duplicate-work source (supervisor retries, fleet fault retries,
deadline re-runs, hedge launches) spends from the same bucket shape, so
the unit behaviour here bounds retry amplification everywhere.
"""

import pytest

from repro.resilience import RetryBudget, RetryBudgetConfig, unfinishable

pytestmark = pytest.mark.resilience


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(clock=None, **overrides):
    cfg = dict(rate=10.0, burst=2.0)
    cfg.update(overrides)
    clock = clock if clock is not None else Clock()
    return RetryBudget(RetryBudgetConfig(**cfg), clock), clock


class TestTokenBucket:
    def test_burst_then_denied(self):
        budget, _ = make()
        assert budget.try_spend("gaussian")
        assert budget.try_spend("gaussian")
        assert not budget.try_spend("gaussian")
        assert budget.granted_total == 2
        assert budget.denied_total == 1

    def test_refills_with_simulated_time(self):
        budget, clock = make()
        assert budget.try_spend("needle")
        assert budget.try_spend("needle")
        assert not budget.try_spend("needle")
        clock.now = 0.1  # rate=10/s -> one token back
        assert budget.try_spend("needle")
        assert not budget.try_spend("needle")

    def test_refill_capped_at_burst(self):
        budget, clock = make()
        clock.now = 100.0
        assert budget.tokens("srad") == pytest.approx(2.0)
        assert budget.try_spend("srad")
        assert budget.try_spend("srad")
        assert not budget.try_spend("srad")

    def test_per_class_buckets_independent(self):
        budget, _ = make()
        assert budget.try_spend("a")
        assert budget.try_spend("a")
        assert not budget.try_spend("a")
        # Class "b" has its own untouched bucket.
        assert budget.try_spend("b")
        assert budget.granted["b"] == 1
        assert budget.denied["a"] == 1

    def test_shared_pool_couples_classes(self):
        budget, _ = make(shared=True)
        assert budget.try_spend("a")
        assert budget.try_spend("b")
        # Both classes drew from one pooled bucket of burst=2.
        assert not budget.try_spend("c")
        assert budget.granted_total == 2
        assert budget.denied_total == 1

    def test_explicit_now_and_cost(self):
        budget, _ = make(burst=4.0)
        assert budget.try_spend("a", now=0.0, cost=3.0)
        assert not budget.try_spend("a", now=0.0, cost=2.0)
        assert budget.try_spend("a", now=0.1, cost=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudgetConfig(rate=0.0)
        with pytest.raises(ValueError):
            RetryBudgetConfig(burst=0.0)


class TestUnfinishable:
    def test_no_deadline_is_always_finishable(self):
        assert not unfinishable(5.0, None)

    def test_past_deadline(self):
        assert unfinishable(2.0, 1.0)
        assert not unfinishable(0.5, 1.0)

    def test_estimated_remaining_projects_forward(self):
        # 0.4s of work left against a deadline 0.3s away: doomed now.
        assert unfinishable(0.7, 1.0, estimated_remaining=0.4)
        assert not unfinishable(0.5, 1.0, estimated_remaining=0.4)
