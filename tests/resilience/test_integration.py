"""End-to-end resilience: faults injected, detected, retried, degraded.

One seeded 8-app heterogeneous run exercises the whole subsystem — a
targeted launch failure (transient, retried successfully), a hung kernel
(caught by the watchdog's serial-baseline deadline), a DMA stall and a
power-sensor dropout — and the result is asserted to be deterministic
across two independent runs.
"""

import pytest

from repro.core.runner import ExperimentRunner, RunConfig
from repro.core.workload import Workload
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
)

pytestmark = pytest.mark.resilience

NUM_APPS = 8
NUM_STREAMS = 8


def _clean_run():
    runner = ExperimentRunner()
    workload = Workload.heterogeneous_pair("gaussian", "needle", NUM_APPS)
    return runner.run(RunConfig(workload=workload, num_streams=NUM_STREAMS))


def _faulted_run(clean):
    """One fresh faulted run (fresh runner: no shared caches).

    Fault times are absolute simulated timestamps, so the kernel/DMA
    faults arm early (armed faults persist until consumed) while the
    power-dropout *window* — which expires on its own — is anchored to
    the clean run's measured spawn window, when the monitor is sampling.
    """
    horizon = clean.makespan
    t0 = min(r.spawn_time for r in clean.harness.records)
    plan = FaultPlan(
        [
            FaultSpec(
                FaultKind.LAUNCH_FAIL, horizon * 0.05, target="gaussian#0"
            ),
            FaultSpec(
                FaultKind.KERNEL_HANG,
                horizon * 0.10,
                target="needle#1",
                factor=20.0,
            ),
            FaultSpec(
                FaultKind.DMA_STALL,
                horizon * 0.02,
                duration=horizon * 0.05,
                direction="HtoD",
            ),
            FaultSpec(
                FaultKind.POWER_DROPOUT,
                t0 + horizon * 0.3,
                duration=horizon * 0.3,
            ),
        ]
    )
    resilience = ResilienceConfig(
        plan=plan,
        retry=RetryPolicy(max_attempts=3, base_delay=clean.makespan * 0.01),
        deadline_factor=4.0,
        degradation_threshold=2,
        seed=42,
    )
    runner = ExperimentRunner()
    workload = Workload.heterogeneous_pair("gaussian", "needle", NUM_APPS)
    return runner.run(
        RunConfig(
            workload=workload,
            num_streams=NUM_STREAMS,
            resilience=resilience,
            record_trace=True,
            # Sample densely relative to the (scale-dependent) horizon so
            # the dropout window always covers at least one power sample.
            power_interval=clean.makespan * 0.01,
        )
    )


@pytest.fixture(scope="module")
def clean():
    return _clean_run()


@pytest.fixture(scope="module")
def faulted(clean):
    return _faulted_run(clean)


class TestFaultedRun:
    def test_all_planned_faults_applied(self, faulted):
        summary = faulted.harness.resilience
        assert summary is not None
        assert summary.planned_faults == 4
        assert summary.applied_total == 4
        assert set(summary.applied_faults) == {
            "launch_fail",
            "kernel_hang",
            "dma_stall",
            "power_dropout",
        }

    def test_launch_failure_detected_and_retried_successfully(self, faulted):
        summary = faulted.harness.resilience
        assert summary.faults_detected >= 1
        assert summary.retries >= 1
        # At least one application retried and then completed.
        recovered = [
            r
            for r in faulted.harness.records
            if r.retries > 0 and not r.failed
        ]
        assert recovered
        assert all(r.attempts == r.retries + 1 for r in faulted.harness.records)

    def test_hang_caught_by_watchdog(self, faulted):
        summary = faulted.harness.resilience
        assert summary.deadline_hits >= 1

    def test_degradation_stepped_down(self, faulted):
        summary = faulted.harness.resilience
        assert summary.degradation_steps >= 1
        assert summary.final_concurrency_limit < NUM_STREAMS

    def test_every_app_accounted_for(self, faulted):
        summary = faulted.harness.resilience
        assert summary.apps_failed + summary.apps_completed == NUM_APPS
        # The plan's transient faults are recoverable within 3 attempts.
        assert summary.apps_completed == NUM_APPS

    def test_trace_marks_every_resilience_event(self, faulted):
        trace = faulted.harness.trace
        marks = [i for i in trace.instants if i.track == "resilience"]
        categories = {i.category for i in marks}
        assert {"fault", "retry", "deadline", "degrade"} <= categories

    def test_summary_reaches_harness_digest(self, faulted):
        assert "resilience:" in faulted.harness.summary()

    def test_deterministic_across_runs(self, clean, faulted):
        again = _faulted_run(clean)
        assert again.makespan == faulted.makespan
        assert again.energy == faulted.energy
        a, b = again.harness.resilience, faulted.harness.resilience
        assert (a.applied_faults, a.retries, a.deadline_hits) == (
            b.applied_faults,
            b.retries,
            b.deadline_hits,
        )
        key = lambda r: (
            r.app_id,
            r.attempts,
            r.retries,
            r.faults_detected,
            r.deadline_hits,
            r.failed,
            r.spawn_time,
            r.complete_time,
        )
        assert sorted(map(key, again.harness.records)) == sorted(
            map(key, faulted.harness.records)
        )


class TestNoFaultEquivalence:
    def test_empty_plan_matches_clean_run(self):
        """Resilience with nothing armed must not move the timeline."""
        workload = Workload.heterogeneous_pair("gaussian", "needle", 4)
        clean = ExperimentRunner().run(
            RunConfig(workload=workload, num_streams=4)
        )
        hooked = ExperimentRunner().run(
            RunConfig(
                workload=workload,
                num_streams=4,
                resilience=ResilienceConfig(plan=FaultPlan()),
            )
        )
        assert hooked.makespan == clean.makespan
        assert hooked.energy == clean.energy
        assert hooked.harness.resilience.applied_total == 0
