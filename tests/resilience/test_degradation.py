"""Unit tests for :mod:`repro.resilience.degradation`."""

import pytest

from repro.resilience.degradation import (
    ConcurrencyLimiter,
    DegradationController,
    ladder_limit,
)
from repro.sim.errors import Interrupt

pytestmark = pytest.mark.resilience


class TestLadderLimit:
    def test_halves_every_threshold_faults(self):
        limits = [ladder_limit(8, faults, threshold=2) for faults in range(9)]
        assert limits == [8, 8, 4, 4, 2, 2, 1, 1, 1]

    def test_threshold_zero_disables(self):
        assert ladder_limit(8, 100, threshold=0) == 8

    def test_floor_is_one(self):
        assert ladder_limit(1, 50, threshold=1) == 1
        assert ladder_limit(32, 10_000, threshold=1) == 1


class TestConcurrencyLimiter:
    def _holder(self, env, limiter, held, release_after):
        yield from limiter.acquire()
        held.append(env.now)
        yield env.timeout(release_after)
        limiter.release()

    def test_admits_up_to_limit(self, env):
        limiter = ConcurrencyLimiter(env, 2)
        admitted = []
        for _ in range(4):
            env.process(self._holder(env, limiter, admitted, 1.0))
        env.run()
        # Two admitted immediately, two after the first wave releases.
        assert admitted == [0.0, 0.0, 1.0, 1.0]

    def test_fifo_order(self, env):
        limiter = ConcurrencyLimiter(env, 1)
        order = []

        def worker(tag):
            yield from limiter.acquire()
            order.append(tag)
            yield env.timeout(0.1)
            limiter.release()

        for tag in "abcd":
            env.process(worker(tag))
        env.run()
        assert order == list("abcd")

    def test_lowering_limit_never_evicts(self, env):
        limiter = ConcurrencyLimiter(env, 4)
        admitted = []
        for _ in range(6):
            env.process(self._holder(env, limiter, admitted, 1.0))

        def cut():
            yield env.timeout(0.5)
            limiter.set_limit(1)

        env.process(cut())
        env.run()
        # Four run immediately; after the cut the remaining two serialize:
        # active drops 4 -> 0 at t=1 (all four release), then one waiter
        # is admitted at a time.
        assert admitted == [0.0, 0.0, 0.0, 0.0, 1.0, 2.0]
        assert limiter.limit == 1
        assert limiter.active == 0

    def test_raising_limit_grants_waiters(self, env):
        limiter = ConcurrencyLimiter(env, 1)
        admitted = []
        for _ in range(3):
            env.process(self._holder(env, limiter, admitted, 10.0))

        def widen():
            yield env.timeout(1.0)
            limiter.set_limit(3)

        env.process(widen())
        env.run()
        assert admitted == [0.0, 1.0, 1.0]

    def test_interrupted_waiter_withdraws_cleanly(self, env):
        limiter = ConcurrencyLimiter(env, 1)
        outcomes = []

        def holder():
            yield from limiter.acquire()
            yield env.timeout(5.0)
            limiter.release()

        def waiter():
            try:
                yield from limiter.acquire()
                outcomes.append("acquired")
                limiter.release()
            except Interrupt:
                outcomes.append("interrupted")

        env.process(holder())
        victim = env.process(waiter())
        survivor = env.process(waiter())

        def interrupter():
            yield env.timeout(1.0)
            victim.interrupt("cancelled")

        env.process(interrupter())
        env.run()
        # The interrupted waiter left the queue without corrupting the
        # accounting: the survivor is admitted when the holder releases.
        assert outcomes == ["interrupted", "acquired"]
        assert limiter.active == 0
        assert limiter.queue_length == 0

    def test_release_without_acquire_raises(self, env):
        limiter = ConcurrencyLimiter(env, 1)
        with pytest.raises(RuntimeError):
            limiter.release()

    def test_bad_limit_rejected(self, env):
        with pytest.raises(ValueError):
            ConcurrencyLimiter(env, 0)
        with pytest.raises(ValueError):
            ConcurrencyLimiter(env, 2).set_limit(0)


class TestDegradationController:
    def test_steps_follow_ladder(self, env):
        limiter = ConcurrencyLimiter(env, 8)
        controller = DegradationController(limiter, threshold=2)
        for _ in range(5):
            controller.note_fault()
        assert controller.fault_count == 5
        assert controller.step_count == 2
        assert [limit for (_, _, limit) in controller.steps] == [4, 2]
        assert limiter.limit == 2

    def test_threshold_zero_never_degrades(self, env):
        limiter = ConcurrencyLimiter(env, 8)
        controller = DegradationController(limiter, threshold=0)
        for _ in range(10):
            controller.note_fault()
        assert controller.step_count == 0
        assert limiter.limit == 8
