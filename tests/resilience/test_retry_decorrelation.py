"""Retry decorrelation across apps failed by one shared event.

The lockstep bug: with equal-jitter backoff, every app a correlated
fault kills at instant ``t`` retries inside ``t + base * [1 - j, 1 + j)``
— a synchronized stampede onto the surviving devices.  Full jitter
(``mode="full"``) spreads the same retries uniformly over ``[0, base)``,
so concurrent retry timestamps are provably *not* synchronized.  These
property tests pin that contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.retry import RetryPolicy, app_rng

pytestmark = pytest.mark.resilience

#: One fault domain's worth of applications, killed at the same instant.
DOMAIN_APPS = tuple(f"gaussian#{i}" for i in range(8))

seeds = st.integers(min_value=0, max_value=2**31 - 1)
attempts = st.integers(min_value=1, max_value=4)

EQUAL = RetryPolicy(jitter=0.1, mode="equal")
FULL = RetryPolicy(jitter=0.1, mode="full")


def domain_delays(policy, seed, attempt):
    """Backoff delays the domain's apps draw for the same failed attempt."""
    return [
        policy.delay(attempt, app_rng(seed, app)) for app in DOMAIN_APPS
    ]


class TestLockstepBug:
    @settings(deadline=None, max_examples=50)
    @given(seed=seeds, attempt=attempts)
    def test_equal_jitter_is_a_synchronized_band(self, seed, attempt):
        # The bug being fixed: every delay lands within +/-10% of the
        # same exponential step, no matter the app or seed.
        base = EQUAL.base_delay * EQUAL.backoff ** (attempt - 1)
        for delay in domain_delays(EQUAL, seed, attempt):
            assert base * 0.9 <= delay < base * 1.1

    @settings(deadline=None, max_examples=50, derandomize=True)
    @given(seed=seeds, attempt=attempts)
    def test_full_jitter_escapes_the_band(self, seed, attempt):
        # Full jitter must spread one domain's retries wider than the
        # entire equal-jitter band (2j * base), i.e. the retry instants
        # cannot be synchronized the way the equal mode forces.
        base = FULL.base_delay * FULL.backoff ** (attempt - 1)
        delays = domain_delays(FULL, seed, attempt)
        assert all(0.0 <= d < base for d in delays)
        assert max(delays) - min(delays) > 2 * FULL.jitter * base

    @settings(deadline=None, max_examples=50, derandomize=True)
    @given(seed=seeds, attempt=attempts)
    def test_no_two_apps_retry_at_the_same_instant(self, seed, attempt):
        delays = domain_delays(FULL, seed, attempt)
        assert len(set(delays)) == len(delays)

    @settings(deadline=None, max_examples=50)
    @given(seed=seeds, attempt=attempts)
    def test_both_modes_consume_exactly_one_draw(self, seed, attempt):
        # A mode switch must not desynchronize later draws from the same
        # generator (checkpoint jitter, hedge draws ride the same rng).
        for policy in (EQUAL, FULL):
            rng = app_rng(seed, "gaussian#0")
            policy.delay(attempt, rng)
            witness = app_rng(seed, "gaussian#0")
            witness.random()
            assert rng.random() == witness.random()

    def test_full_jitter_deterministic_per_app(self):
        a = domain_delays(FULL, 7, 2)
        b = domain_delays(FULL, 7, 2)
        assert a == b

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(mode="decorrelated")
