"""Unit tests for :mod:`repro.resilience.watchdog`."""

import pytest

from repro.resilience.watchdog import Watchdog
from repro.sim.errors import DeadlineExceeded, Interrupt

pytestmark = pytest.mark.resilience


def sleeper(env, duration):
    yield env.timeout(duration)


class TestWatchdog:
    def test_deadline_cancels_overrunning_process(self, env):
        watchdog = Watchdog(env)
        caught = []

        def slow():
            try:
                yield env.timeout(10.0)
            except Interrupt as exc:
                caught.append(exc.cause)

        process = env.process(slow(), name="slow")
        guard = watchdog.guard(process, 1.0, "gaussian#0")
        env.run()

        assert guard.fired
        assert watchdog.expirations == 1
        assert watchdog.log == [("gaussian#0", 1.0, 1.0)]
        assert len(caught) == 1
        cause = caught[0]
        assert isinstance(cause, DeadlineExceeded)
        assert cause.app_id == "gaussian#0"
        assert cause.deadline == 1.0
        assert cause.elapsed == pytest.approx(1.0)

    def test_disarm_prevents_cancellation(self, env):
        watchdog = Watchdog(env)

        def parent():
            child = env.process(sleeper(env, 0.5), name="fast")
            guard = watchdog.guard(child, 2.0, "needle#0")
            yield child
            guard.disarm()

        env.process(parent())
        env.run()
        assert watchdog.expirations == 0
        assert watchdog.log == []

    def test_disarm_is_idempotent(self, env):
        watchdog = Watchdog(env)

        def parent():
            child = env.process(sleeper(env, 0.1))
            guard = watchdog.guard(child, 1.0, "a#0")
            yield child
            guard.disarm()
            guard.disarm()  # second call must be a no-op

        env.process(parent())
        env.run()
        assert watchdog.expirations == 0

    def test_nonpositive_deadline_rejected(self, env):
        watchdog = Watchdog(env)
        process = env.process(sleeper(env, 1.0))
        with pytest.raises(ValueError):
            watchdog.guard(process, 0.0, "a#0")

    def test_finished_process_is_not_cancelled(self, env):
        """A guard left armed past a completed process fires harmlessly."""
        watchdog = Watchdog(env)
        process = env.process(sleeper(env, 0.1), name="quick")
        watchdog.guard(process, 1.0, "a#0")  # never disarmed
        env.run()
        # The timer expired but found the process dead: no cancellation.
        assert watchdog.expirations == 0
        assert watchdog.log == []
