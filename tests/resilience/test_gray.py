"""Gray-failure faults and straggler detection.

Covers the three degradation fault kinds (sustained/intermittent SMX
slowdown, DMA latency stretch, clock jitter), their injector-side window
semantics, seed bit-compatibility of :meth:`FaultPlan.generate`, and the
percentile-based :class:`StragglerDetector` that scores device health
from observed latency stretch.
"""

import pytest

from repro.resilience.faults import (
    GRAY_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.gray import HealthScore, StragglerDetector
from repro.sim.engine import Environment

pytestmark = pytest.mark.resilience


class TestGraySpecs:
    def test_gray_kinds_tuple(self):
        assert GRAY_KINDS == (
            FaultKind.SMX_SLOWDOWN,
            FaultKind.DMA_STRETCH,
            FaultKind.CLOCK_JITTER,
        )

    @pytest.mark.parametrize("kind", GRAY_KINDS)
    def test_factor_must_exceed_one(self, kind):
        with pytest.raises(ValueError):
            FaultSpec(kind=kind, time=0.0, duration=1e-3, factor=1.0)

    @pytest.mark.parametrize("kind", GRAY_KINDS)
    def test_duration_must_be_positive(self, kind):
        with pytest.raises(ValueError):
            FaultSpec(kind=kind, time=0.0, duration=0.0, factor=2.0)

    def test_gray_sustained_is_one_window(self):
        plan = FaultPlan.gray(1, start=2e-3, duration=8e-3, factor=3.0)
        specs = plan.gray_specs()
        assert len(specs) == 1
        spec = specs[0]
        assert spec.kind is FaultKind.SMX_SLOWDOWN
        assert spec.effective_device == 1
        assert (spec.time, spec.duration, spec.factor) == (2e-3, 8e-3, 3.0)

    def test_gray_intermittent_duty_cycle(self):
        plan = FaultPlan.gray(
            0, start=0.0, duration=8e-3, factor=4.0, period=2e-3, duty=0.5
        )
        specs = plan.gray_specs()
        assert len(specs) == 4
        assert [s.time for s in specs] == [0.0, 2e-3, 4e-3, 6e-3]
        assert all(s.duration == pytest.approx(1e-3) for s in specs)

    def test_gray_direction_pin(self):
        plan = FaultPlan.gray(
            0,
            kind=FaultKind.DMA_STRETCH,
            duration=1e-3,
            direction="htod",
        )
        assert plan.gray_specs()[0].direction == "htod"


class TestSeedCompatibility:
    """New gray kinds must not perturb pre-existing seeded draws."""

    OLD_KWARGS = dict(
        num_devices=2,
        device_loss_rate=100.0,
        device_throttle_rate=200.0,
        kernel_hang_rate=150.0,
        launch_fail_rate=150.0,
        hang_factor=4.0,
        targets=("gaussian", "needle"),
    )

    def test_zero_gray_rates_change_nothing(self):
        for seed in range(5):
            old = FaultPlan.generate(seed, 10e-3, **self.OLD_KWARGS)
            new = FaultPlan.generate(
                seed,
                10e-3,
                smx_slowdown_rate=0.0,
                dma_stretch_rate=0.0,
                clock_jitter_rate=0.0,
                **self.OLD_KWARGS,
            )
            assert list(old) == list(new)

    def test_gray_rates_append_after_existing_kinds(self):
        old = FaultPlan.generate(3, 10e-3, **self.OLD_KWARGS)
        new = FaultPlan.generate(
            3,
            10e-3,
            smx_slowdown_rate=300.0,
            dma_stretch_rate=300.0,
            clock_jitter_rate=300.0,
            **self.OLD_KWARGS,
        )
        # The old plan's specs survive verbatim inside the new plan.
        new_specs = list(new)
        for spec in old:
            assert spec in new_specs
        assert any(s.kind in GRAY_KINDS for s in new_specs)

    def test_generated_gray_specs_are_valid(self):
        plan = FaultPlan.generate(
            11,
            10e-3,
            num_devices=3,
            smx_slowdown_rate=500.0,
            dma_stretch_rate=500.0,
            clock_jitter_rate=500.0,
        )
        for spec in plan.gray_specs():
            assert spec.factor > 1.0
            assert spec.duration > 0


class TestInjectorWindows:
    def _injector(self, specs):
        env = Environment()
        return env, FaultInjector(env, FaultPlan(list(specs)))

    def test_smx_slowdown_inside_and_outside(self):
        _, inj = self._injector(
            [
                FaultSpec(
                    kind=FaultKind.SMX_SLOWDOWN,
                    time=1e-3,
                    duration=2e-3,
                    factor=4.0,
                )
            ]
        )
        assert inj.smx_slowdown(0.5e-3) == 1.0
        assert inj.smx_slowdown(1.5e-3) == 4.0
        assert inj.smx_slowdown(4e-3) == 1.0

    def test_dma_stretch_direction_pinning(self):
        _, inj = self._injector(
            [
                FaultSpec(
                    kind=FaultKind.DMA_STRETCH,
                    time=0.0,
                    duration=1e-3,
                    factor=3.0,
                    direction="htod",
                )
            ]
        )
        assert inj.dma_stretch("dtoh", 0.5e-3) == 1.0
        assert inj.dma_stretch("htod", 0.5e-3) == 3.0

    def test_clock_jitter_is_deterministic_and_bounded(self):
        spec = FaultSpec(
            kind=FaultKind.CLOCK_JITTER, time=0.0, duration=1e-3, factor=1.5
        )
        _, a = self._injector([spec])
        _, b = self._injector([spec])
        fa = [a.clock_jitter("app#0", 1e-4 * i) for i in range(5)]
        fb = [b.clock_jitter("app#0", 1e-4 * i) for i in range(5)]
        assert fa == fb  # replay-identical
        assert all(1.0 <= f < 1.5 for f in fa)
        assert len(set(fa)) > 1  # actually jitters draw to draw

    def test_gray_active_probe(self):
        _, inj = self._injector(
            [
                FaultSpec(
                    kind=FaultKind.SMX_SLOWDOWN,
                    time=1e-3,
                    duration=1e-3,
                    factor=2.0,
                )
            ]
        )
        assert not inj.gray_active(0.0)
        assert inj.gray_active(1.5e-3)
        assert not inj.gray_active(3e-3)


class TestStragglerDetector:
    def test_no_samples_scores_perfect(self):
        det = StragglerDetector(2)
        score = det.score(0)
        assert isinstance(score, HealthScore)
        assert score.score == 1.0
        assert not det.is_straggler(0)

    def test_min_samples_gate(self):
        det = StragglerDetector(2, min_samples=4, straggler_score=0.5)
        for _ in range(3):
            det.observe_kernel(0, 8.0)
            det.observe_kernel(1, 1.0)
        assert not det.is_straggler(0)  # only 3 samples
        det.observe_kernel(0, 8.0)
        assert det.is_straggler(0)

    def test_straggler_scored_against_fleet_median(self):
        det = StragglerDetector(4, min_samples=2)
        for dev in range(4):
            stretch = 4.0 if dev == 0 else 1.0
            for _ in range(8):
                det.observe_kernel(dev, stretch)
        s0 = det.score(0)
        assert s0.score == pytest.approx(0.25)
        assert det.is_straggler(0)
        for dev in (1, 2, 3):
            assert det.score(dev).score == pytest.approx(1.0)
            assert not det.is_straggler(dev)

    def test_two_device_fleet_uses_healthy_baseline(self):
        # The lower-median convention: one straggler out of two must not
        # drag the fleet baseline halfway up to itself.
        det = StragglerDetector(2, min_samples=2)
        for _ in range(8):
            det.observe_kernel(0, 4.0)
            det.observe_kernel(1, 1.0)
        assert det.fleet_median() == pytest.approx(1.0)
        assert det.score(0).score == pytest.approx(0.25)
        assert det.is_straggler(0)
        assert not det.is_straggler(1)

    def test_worst_path_dominates(self):
        # Healthy kernels must not mask a dying DMA path.
        det = StragglerDetector(2, min_samples=1)
        det.observe_kernel(0, 1.0)
        det.observe_dma(0, 5.0)
        det.observe_kernel(1, 1.0)
        s = det.score(0)
        assert s.dma_stretch == pytest.approx(5.0)
        assert s.kernel_stretch == pytest.approx(1.0)
        assert det._stats[0].combined == pytest.approx(5.0)

    def test_ema_blend_matches_characterizer_idiom(self):
        det = StragglerDetector(1, ema_alpha=0.5, min_samples=1)
        det.observe_kernel(0, 1.0)
        det.observe_kernel(0, 3.0)
        assert det.score(0).kernel_stretch == pytest.approx(2.0)

    def test_recovery_clears_classification(self):
        det = StragglerDetector(2, min_samples=2, window=8, ema_alpha=0.5)
        for _ in range(8):
            det.observe_kernel(0, 6.0)
            det.observe_kernel(1, 1.0)
        assert det.is_straggler(0)
        # Device recovers: fresh at-spec observations wash the window out.
        for _ in range(16):
            det.observe_kernel(0, 1.0)
        assert not det.is_straggler(0)

    def test_zero_stretch_is_ignored(self):
        det = StragglerDetector(1)
        det.observe_kernel(0, 0.0)
        det.observe_dma(0, -1.0)
        assert det.observations == 0

    def test_scores_covers_all_devices(self):
        det = StragglerDetector(3)
        assert sorted(det.scores()) == [0, 1, 2]

    def test_describe_is_human_readable(self):
        det = StragglerDetector(1, min_samples=1)
        det.observe_kernel(0, 2.0)
        text = det.score(0).describe()
        assert "dev0" in text and "score=" in text
