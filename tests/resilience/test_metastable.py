"""Metastability detection and the brownout ladder.

The probe is fed synthetic goodput from a driver process so every window
evaluation is deterministic: capacity is ``healthy * per_device_rate``,
and a window whose goodput/capacity ratio sits below the floor counts
against the trip budget.  These tests pin the trip/recover hysteresis,
the metastable-window accounting (ladder fires *before* windows count as
metastable), shedding, and the observational defaults.
"""

import pytest

from repro.resilience import BrownoutConfig, MetastabilityProbe
from repro.sim.engine import Environment

pytestmark = pytest.mark.resilience

WINDOW = 1e-3


def make(env, healthy=4, on_level=None, **overrides):
    cfg = dict(
        window=WINDOW,
        floor=0.5,
        trip_windows=2,
        recover_windows=2,
        per_device_rate=1000.0,  # 1 kernel/window/device
        shed_types=("needle",),
    )
    cfg.update(overrides)
    return MetastabilityProbe(
        env, BrownoutConfig(**cfg), lambda: healthy, on_level=on_level
    )


def feed(env, probe, per_window, windows):
    """Drive ``windows`` window-loads of progress, one deposit each."""

    def driver():
        for kernels in per_window:
            probe.note_progress(kernels)
            yield env.timeout(WINDOW)

    # Probe first: at each shared window boundary it closes the window
    # *before* the driver deposits the next window's progress.
    probe.start()
    env.process(driver(), name="feeder")
    env.run(until=windows * WINDOW + WINDOW / 2)
    probe.stop()


class TestWindowAccounting:
    def test_healthy_windows_never_trip(self):
        env = Environment()
        probe = make(env)
        feed(env, probe, [4.0] * 6, 6)
        assert probe.level == 0
        assert probe.metastable_windows == 0
        assert len(probe.windows) == 6
        assert all(w["ratio"] == pytest.approx(1.0) for w in probe.windows)

    def test_trip_after_consecutive_bad_windows(self):
        env = Environment()
        seen = []
        probe = make(env, on_level=lambda new, old: seen.append((old, new)))
        # 2 bad windows trip level 1; 2 more trip level 2.
        feed(env, probe, [4.0, 0.5, 0.5, 0.5, 0.5], 5)
        assert probe.level == 2
        assert seen == [(0, 1), (1, 2)]
        assert [e["level"] for e in probe.events] == [1, 2]

    def test_ladder_fires_before_metastable_count(self):
        env = Environment()
        probe = make(env, max_level=1)
        # trip_windows=2: windows 1-2 trip the ladder and reset the
        # streak, so a collapse the ladder cures within its budget never
        # counts as metastable — only a streak *past* the budget does.
        feed(env, probe, [0.5, 0.5, 0.5, 0.5], 4)
        assert probe.level == 1
        assert probe.metastable_windows == 0

    def test_sustained_collapse_counts_metastable_windows(self):
        env = Environment()
        probe = make(env, max_level=1, trip_windows=1)
        # Ladder trips at window 1 and stays; the streak rebuilds and
        # every window past the budget is metastable.
        feed(env, probe, [0.0] * 6, 6)
        assert probe.level == 1
        assert probe.metastable_windows > 0

    def test_interrupted_streak_never_trips(self):
        env = Environment()
        probe = make(env)
        feed(env, probe, [0.5, 4.0, 0.5, 4.0, 0.5, 4.0], 6)
        assert probe.level == 0
        assert probe.metastable_windows == 0

    def test_recovery_steps_down_with_hysteresis(self):
        env = Environment()
        probe = make(env, max_level=1)
        feed(env, probe, [0.5, 0.5, 4.0, 4.0, 4.0, 4.0], 6)
        # Tripped at window 2, one healthy window is not enough, two are;
        # the second pair of healthy windows has nothing left to undo.
        assert probe.level == 0
        assert [e["level"] for e in probe.events] == [1, 0]

    def test_capacity_shrinks_with_fleet(self):
        env = Environment()
        healthy = [4]
        probe = MetastabilityProbe(
            env,
            BrownoutConfig(
                window=WINDOW, floor=0.5, per_device_rate=1000.0
            ),
            lambda: healthy[0],
        )

        def driver():
            # Full fleet producing half a fleet's work: unhealthy.
            probe.note_progress(2.0)
            yield env.timeout(WINDOW)
            # Half the fleet died; the same output is now full capacity,
            # so a domain loss alone must not read as collapse.
            healthy[0] = 2
            probe.note_progress(2.0)
            yield env.timeout(WINDOW)

        probe.start()
        env.process(driver(), name="feeder")
        env.run(until=2.5 * WINDOW)
        probe.stop()
        assert probe.windows[0]["ratio"] == pytest.approx(0.5)
        assert probe.windows[1]["ratio"] == pytest.approx(1.0)


class TestBrownoutActions:
    def test_shed_only_at_level_two_and_only_configured_types(self):
        env = Environment()
        probe = make(env)
        assert not probe.shed_class("needle")
        feed(env, probe, [0.0] * 4, 4)
        assert probe.level == 2
        assert probe.brownout_active
        assert probe.shed_class("needle")
        assert not probe.shed_class("gaussian")
        assert probe.sheds == 1

    def test_zero_rate_is_observational(self):
        env = Environment()
        probe = make(env, per_device_rate=0.0, shed_types=())
        feed(env, probe, [0.0] * 6, 6)
        assert probe.level == 0
        assert probe.metastable_windows == 0
        assert all(w["ratio"] == 1.0 for w in probe.windows)

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutConfig(window=0.0)
        with pytest.raises(ValueError):
            BrownoutConfig(floor=0.0)
        with pytest.raises(ValueError):
            BrownoutConfig(max_level=3)
        with pytest.raises(ValueError):
            BrownoutConfig(width_factor=0.0)
        with pytest.raises(ValueError):
            BrownoutConfig(trip_windows=0)
