"""Unit tests for :mod:`repro.resilience.retry`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.retry import RetryPolicy, app_rng, replica_rng

pytestmark = pytest.mark.resilience

app_ids = st.sampled_from(
    ["gaussian#0", "needle#1", "srad#2", "nn#3", "gaussian#7"]
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
replica_idxs = st.integers(min_value=1, max_value=8)


class TestAppRng:
    def test_stable_across_instances(self):
        a = app_rng(42, "gaussian#0")
        b = app_rng(42, "gaussian#0")
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]

    def test_distinct_per_app(self):
        a = app_rng(42, "gaussian#0")
        b = app_rng(42, "gaussian#1")
        assert a.random() != b.random()

    def test_distinct_per_seed(self):
        a = app_rng(1, "needle#0")
        b = app_rng(2, "needle#0")
        assert a.random() != b.random()


class TestReplicaRng:
    """Property tests: replica streams are deterministic and disjoint."""

    def test_counts_from_one(self):
        with pytest.raises(ValueError):
            replica_rng(0, "gaussian#0", 0)

    @settings(deadline=None, max_examples=50)
    @given(seed=seeds, app_id=app_ids, idx=replica_idxs)
    def test_deterministic_across_instances(self, seed, app_id, idx):
        a = replica_rng(seed, app_id, idx)
        b = replica_rng(seed, app_id, idx)
        assert [a.random() for _ in range(4)] == [
            b.random() for _ in range(4)
        ]

    @settings(deadline=None, max_examples=50)
    @given(seed=seeds, app_id=app_ids, idx=replica_idxs)
    def test_disjoint_from_primary_stream(self, seed, app_id, idx):
        # A hedge launching must not perturb the primary's jitter draws:
        # the replica's stream never reproduces the primary's prefix.
        primary = [app_rng(seed, app_id).random() for _ in range(8)]
        replica = [replica_rng(seed, app_id, idx).random() for _ in range(8)]
        assert primary != replica

    @settings(deadline=None, max_examples=50)
    @given(seed=seeds, app_id=app_ids, idx=replica_idxs)
    def test_distinct_per_replica_index(self, seed, app_id, idx):
        a = replica_rng(seed, app_id, idx)
        b = replica_rng(seed, app_id, idx + 1)
        assert [a.random() for _ in range(4)] != [
            b.random() for _ in range(4)
        ]

    @settings(deadline=None, max_examples=25)
    @given(seed=seeds, idx=replica_idxs)
    def test_distinct_per_app(self, seed, idx):
        a = replica_rng(seed, "gaussian#0", idx)
        b = replica_rng(seed, "needle#0", idx)
        assert a.random() != b.random()

    @settings(deadline=None, max_examples=25)
    @given(seed=seeds, app_id=app_ids, idx=replica_idxs)
    def test_policy_delays_stay_in_jitter_bounds(self, seed, app_id, idx):
        policy = RetryPolicy(base_delay=1e-3, backoff=2.0, jitter=0.25)
        rng = replica_rng(seed, app_id, idx)
        for attempt in range(1, 4):
            base = 1e-3 * 2.0 ** (attempt - 1)
            assert base * 0.75 <= policy.delay(attempt, rng) < base * 1.25


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_allows_retry(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)
        assert not RetryPolicy(max_attempts=1).allows_retry(1)

    def test_delay_exponential_without_jitter(self):
        policy = RetryPolicy(base_delay=1e-3, backoff=2.0, jitter=0.0)
        rng = app_rng(0, "x#0")
        assert policy.delay(1, rng) == pytest.approx(1e-3)
        assert policy.delay(2, rng) == pytest.approx(2e-3)
        assert policy.delay(3, rng) == pytest.approx(4e-3)

    def test_delay_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1e-3, backoff=2.0, jitter=0.25)
        rng = app_rng(0, "x#0")
        for attempt in range(1, 6):
            base = 1e-3 * 2.0 ** (attempt - 1)
            delay = policy.delay(attempt, rng)
            assert base * 0.75 <= delay < base * 1.25

    def test_delay_deterministic_per_generator_state(self):
        policy = RetryPolicy(jitter=0.1)
        a = [policy.delay(k, app_rng(7, "srad#2")) for k in (1, 2, 3)]
        b = [policy.delay(k, app_rng(7, "srad#2")) for k in (1, 2, 3)]
        assert a == b

    def test_delay_rejects_zero_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, app_rng(0, "x#0"))
