"""Unit tests for :mod:`repro.resilience.retry`."""

import pytest

from repro.resilience.retry import RetryPolicy, app_rng

pytestmark = pytest.mark.resilience


class TestAppRng:
    def test_stable_across_instances(self):
        a = app_rng(42, "gaussian#0")
        b = app_rng(42, "gaussian#0")
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]

    def test_distinct_per_app(self):
        a = app_rng(42, "gaussian#0")
        b = app_rng(42, "gaussian#1")
        assert a.random() != b.random()

    def test_distinct_per_seed(self):
        a = app_rng(1, "needle#0")
        b = app_rng(2, "needle#0")
        assert a.random() != b.random()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_allows_retry(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)
        assert not RetryPolicy(max_attempts=1).allows_retry(1)

    def test_delay_exponential_without_jitter(self):
        policy = RetryPolicy(base_delay=1e-3, backoff=2.0, jitter=0.0)
        rng = app_rng(0, "x#0")
        assert policy.delay(1, rng) == pytest.approx(1e-3)
        assert policy.delay(2, rng) == pytest.approx(2e-3)
        assert policy.delay(3, rng) == pytest.approx(4e-3)

    def test_delay_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1e-3, backoff=2.0, jitter=0.25)
        rng = app_rng(0, "x#0")
        for attempt in range(1, 6):
            base = 1e-3 * 2.0 ** (attempt - 1)
            delay = policy.delay(attempt, rng)
            assert base * 0.75 <= delay < base * 1.25

    def test_delay_deterministic_per_generator_state(self):
        policy = RetryPolicy(jitter=0.1)
        a = [policy.delay(k, app_rng(7, "srad#2")) for k in (1, 2, 3)]
        b = [policy.delay(k, app_rng(7, "srad#2")) for k in (1, 2, 3)]
        assert a == b

    def test_delay_rejects_zero_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, app_rng(0, "x#0"))
