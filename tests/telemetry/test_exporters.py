"""Tests for the exporters, including cross-exporter consistency."""

import json

import pytest

from repro.sim.engine import Environment
from repro.telemetry import (
    TELEMETRY_PID,
    MetricRegistry,
    Snapshot,
    Telemetry,
    generate_latest,
    snapshots_to_counter_events,
    snapshots_to_jsonl,
    write_jsonl,
)

pytestmark = pytest.mark.telemetry


def parse_prometheus(text):
    """series-key -> value from text exposition (comments skipped)."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        out[key] = float(value)
    return out


@pytest.fixture
def registry():
    reg = MetricRegistry()
    reg.counter(
        "repro_jobs_total", "Jobs by outcome", labelnames=("outcome",)
    ).inc(3, outcome="completed")
    reg.gauge("repro_depth", "Queue depth").set(2)
    hist = reg.histogram("repro_lat", "Latency", buckets=(1e-3, 1.0))
    hist.observe(5e-4)
    hist.observe(0.5)
    hist.observe(2.0)
    return reg


class TestPrometheusText:
    def test_help_and_type_headers(self, registry):
        text = generate_latest(registry)
        assert "# HELP repro_jobs_total Jobs by outcome" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat histogram" in text

    def test_series_lines(self, registry):
        parsed = parse_prometheus(generate_latest(registry))
        assert parsed['repro_jobs_total{outcome="completed"}'] == 3.0
        assert parsed["repro_depth"] == 2.0

    def test_histogram_cumulative_buckets(self, registry):
        parsed = parse_prometheus(generate_latest(registry))
        assert parsed['repro_lat_bucket{le="0.001"}'] == 1.0
        assert parsed['repro_lat_bucket{le="1"}'] == 2.0
        assert parsed['repro_lat_bucket{le="+Inf"}'] == 3.0
        assert parsed["repro_lat_sum"] == pytest.approx(2.5005)
        assert parsed["repro_lat_count"] == 3.0

    def test_integers_render_without_decimal_point(self, registry):
        text = generate_latest(registry)
        assert 'repro_jobs_total{outcome="completed"} 3\n' in text
        assert "repro_depth 2\n" in text

    def test_label_values_escaped(self):
        reg = MetricRegistry()
        reg.counter("repro_odd_total", labelnames=("why",)).inc(
            why='say "hi"\\now'
        )
        text = generate_latest(reg)
        assert r'why="say \"hi\"\\now"' in text

    def test_newline_in_label_value_stays_on_one_line(self):
        # A literal newline would split the sample line and corrupt the
        # exposition; it must escape to the two characters backslash-n.
        reg = MetricRegistry()
        reg.counter("repro_odd_total", labelnames=("why",)).inc(
            why="line1\nline2"
        )
        text = generate_latest(reg)
        assert r'why="line1\nline2"' in text
        (sample_line,) = [
            l for l in text.splitlines() if not l.startswith("#")
        ]
        assert sample_line.endswith(" 1")
        # And the escaped text still parses as one series.
        parsed = parse_prometheus(text)
        assert parsed[r'repro_odd_total{why="line1\nline2"}'] == 1.0

    def test_backslash_escaped_before_newline(self):
        # Escaping order matters: a literal backslash-then-n in the value
        # must not collide with the newline escape — backslash doubles
        # first, so the two stay distinguishable to a decoder.
        reg = MetricRegistry()
        reg.counter("repro_odd_total", labelnames=("why",)).inc(
            why="raw\\n vs \n"
        )
        text = generate_latest(reg)
        assert 'why="raw\\\\n vs \\n"' in text

    def test_empty_registry(self):
        assert generate_latest(MetricRegistry()) == ""


class TestJsonl:
    def test_one_object_per_snapshot(self):
        snaps = [
            Snapshot(0.0, {"repro_a": 1.0}),
            Snapshot(1e-3, {"repro_a": 2.0}),
        ]
        lines = snapshots_to_jsonl(snaps).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"t": 0.0, "values": {"repro_a": 1.0}}

    def test_byte_stable_key_order(self):
        a = snapshots_to_jsonl([Snapshot(0.0, {"repro_b": 1.0, "repro_a": 2.0})])
        b = snapshots_to_jsonl([Snapshot(0.0, {"repro_a": 2.0, "repro_b": 1.0})])
        assert a == b

    def test_empty(self):
        assert snapshots_to_jsonl([]) == ""

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_jsonl([Snapshot(0.0, {"repro_a": 1.0})], path)
        assert json.loads(path.read_text())["values"]["repro_a"] == 1.0


class TestCounterEvents:
    def test_event_shape(self):
        snaps = [Snapshot(2e-3, {'repro_w{device="0"}': 75.0})]
        (event,) = snapshots_to_counter_events(snaps)
        assert event["ph"] == "C"
        assert event["pid"] == TELEMETRY_PID
        assert event["ts"] == pytest.approx(2000.0)  # us
        assert event["name"] == "repro_w"
        assert event["args"] == {'device="0"': 75.0}

    def test_label_less_series_use_value_key(self):
        (event,) = snapshots_to_counter_events([Snapshot(0.0, {"repro_d": 3.0})])
        assert event["args"] == {"value": 3.0}

    def test_bucket_series_skipped(self):
        snaps = [
            Snapshot(
                0.0,
                {
                    'repro_lat_bucket{le="+Inf"}': 4.0,
                    "repro_lat_sum": 1.0,
                    "repro_lat_count": 4.0,
                },
            )
        ]
        names = {e["name"] for e in snapshots_to_counter_events(snaps)}
        assert names == {"repro_lat_sum", "repro_lat_count"}

    def test_include_filter_matches_family(self):
        snaps = [
            Snapshot(0.0, {"repro_a": 1.0, "repro_b": 2.0, "repro_a_sum": 3.0})
        ]
        names = {
            e["name"]
            for e in snapshots_to_counter_events(snaps, include=("repro_a",))
        }
        assert names == {"repro_a", "repro_a_sum"}

    def test_one_event_per_metric_per_snapshot(self):
        snaps = [
            Snapshot(
                0.0, {'repro_g{d="0"}': 1.0, 'repro_g{d="1"}': 2.0}
            )
        ]
        (event,) = snapshots_to_counter_events(snaps)
        assert event["args"] == {'d="0"': 1.0, 'd="1"': 2.0}


class TestCrossExporterConsistency:
    """All three exporters must agree on final values (ISSUE acceptance)."""

    @pytest.fixture
    def finished(self):
        telemetry = Telemetry(interval=1e-3)
        counter = telemetry.counter(
            "repro_jobs_total", labelnames=("outcome",)
        )
        gauge = telemetry.gauge("repro_depth")
        hist = telemetry.histogram("repro_lat", buckets=(1e-3, 1.0))
        env = Environment()
        telemetry.attach(env)
        telemetry.add_probe(lambda: gauge.set(env.queue_size))

        def workload():
            for i in range(5):
                yield env.timeout(7e-4)
                counter.inc(outcome="completed" if i % 2 == 0 else "shed")
                hist.observe(i * 1e-3)

        env.process(workload())
        telemetry.start()
        env.run(until=4e-3)
        telemetry.stop()
        env.run()
        telemetry.finalize()
        return telemetry

    def test_prometheus_agrees_with_final_snapshot(self, finished):
        prom = parse_prometheus(generate_latest(finished.registry))
        final = finished.snapshots[-1].values
        assert prom == final

    def test_jsonl_agrees_with_final_snapshot(self, finished):
        lines = snapshots_to_jsonl(finished.snapshots).splitlines()
        last = json.loads(lines[-1])
        assert last["values"] == finished.snapshots[-1].values

    def test_chrome_counters_agree_with_final_snapshot(self, finished):
        events = snapshots_to_counter_events(finished.snapshots)
        final_ts = max(e["ts"] for e in events)
        final_values = {}
        for event in events:
            if event["ts"] == final_ts:
                for labels, v in event["args"].items():
                    key = (
                        event["name"] if labels == "value"
                        else f'{event["name"]}{{{labels}}}'
                    )
                    final_values[key] = v
        expected = {
            k: v
            for k, v in finished.snapshots[-1].values.items()
            if "_bucket{" not in k
        }
        assert final_values == expected
