"""Instrumentation contract: free when off, truthful when on.

Two halves, mirroring the ISSUE acceptance criteria:

* **Zero cost disabled** — every layer entry point with a ``telemetry``
  parameter must produce *identical* results with ``telemetry=None`` and
  with a live :class:`~repro.telemetry.Telemetry` (probes read, never
  mutate).  The wall-clock half of that bargain (<2% overhead) lives in
  ``benchmarks/bench_telemetry_overhead.py``.
* **Metric correctness** — exported final counter values must equal the
  ground truth the result objects already report (transfers, outcomes,
  recoveries), not merely move in the right direction.
"""

import pytest

from repro.apps.registry import get_app
from repro.core.runner import quick_run
from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.fleet import FleetConfig, FleetHarness
from repro.gpu.commands import CopyDirection
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.serving import BreakerConfig, ServingConfig, run_serving
from repro.telemetry import Telemetry

pytestmark = pytest.mark.telemetry

#: Dense sampling relative to tiny-scale (sub-10ms) runs.
INTERVAL = 2e-5

MIX = [("gaussian", 1), ("nn", 1)]


def _sum_series(snapshot, name):
    """Sum a metric's labelled series out of a flat snapshot dict."""
    return sum(
        v
        for k, v in snapshot.items()
        if k == name or k.startswith(name + "{")
    )


def pair_run(telemetry=None):
    return quick_run(
        pair=("gaussian", "needle"),
        num_apps=4,
        num_streams=4,
        memory_sync=True,
        telemetry=telemetry,
    )


def serving_run(telemetry=None):
    config = ServingConfig(
        queue_depth=4,
        queue_policy="shed-oldest",
        slo_factor=4.0,
        breaker=BreakerConfig(threshold=2, cooldown=0.01),
        seed=3,
    )
    arrivals = poisson_arrivals(1500.0, 0.02, MIX, seed=3)
    return run_serving(
        arrivals,
        ConcurrencyCapDispatcher(2),
        config,
        num_streams=8,
        telemetry=telemetry,
    )


def _apps(count=6):
    kinds = ("gaussian", "needle")
    sizes = {"gaussian": {"n": 48}, "needle": {"n": 64}}
    return [
        get_app(kinds[i % 2], instance=i, **sizes[kinds[i % 2]])
        for i in range(count)
    ]


def fleet_run(telemetry=None, plan=None):
    fleet = FleetConfig(
        num_devices=2,
        heartbeat_interval=2e-5,
        detection_latency=5e-5,
        detection_jitter=1e-5,
    )
    return FleetHarness(
        _apps(), fleet, num_streams=2, seed=0, plan=plan, telemetry=telemetry
    ).run()


def _loss_plan():
    """A DEVICE_LOSS pinned mid-schedule from a clean calibration run."""
    clean = fleet_run()
    return FaultPlan(
        [FaultSpec(FaultKind.DEVICE_LOSS, clean.makespan / 2, device=0)]
    )


class TestZeroCostDisabled:
    """Same seed, telemetry on vs off => identical simulation results."""

    def test_runner_results_identical(self):
        clean = pair_run()
        hooked = pair_run(telemetry=Telemetry(interval=INTERVAL))
        assert hooked.makespan == clean.makespan
        assert hooked.energy == clean.energy
        assert [r.complete_time for r in hooked.harness.records] == [
            r.complete_time for r in clean.harness.records
        ]
        assert [
            (t.started, t.completed)
            for r in hooked.harness.records
            for t in r.transfers
        ] == [
            (t.started, t.completed)
            for r in clean.harness.records
            for t in r.transfers
        ]

    def test_serving_results_identical(self):
        clean = serving_run()
        hooked = serving_run(telemetry=Telemetry(interval=INTERVAL))
        assert hooked.completion_time == clean.completion_time
        assert hooked.energy == clean.energy
        assert hooked.outcomes == clean.outcomes
        assert hooked.sojourn_times == clean.sojourn_times
        assert hooked.queue_delays == clean.queue_delays
        assert hooked.deadline_met == clean.deadline_met

    def test_fleet_failover_results_identical(self):
        plan = _loss_plan()
        clean = fleet_run(plan=plan)
        hooked = fleet_run(telemetry=Telemetry(interval=INTERVAL), plan=plan)
        assert hooked.makespan == clean.makespan
        assert hooked.energy == clean.energy
        assert hooked.recoveries == clean.recoveries
        assert [r.complete_time for r in hooked.records] == [
            r.complete_time for r in clean.records
        ]


class TestRunnerMetricsTruthful:
    @pytest.fixture(scope="class")
    def run(self):
        telemetry = Telemetry(interval=INTERVAL)
        result = pair_run(telemetry=telemetry)
        return result, telemetry.snapshots[-1].values

    def test_dma_commands_match_recorded_transfers(self, run):
        result, final = run
        for direction in CopyDirection:
            expected = sum(
                1
                for r in result.harness.records
                for t in r.transfers
                if t.direction is direction
            )
            key = (
                'repro_gpu_dma_commands_total'
                f'{{device="0",direction="{direction.value}"}}'
            )
            assert final[key] == expected

    def test_dma_bytes_match_recorded_transfers(self, run):
        result, final = run
        expected = sum(
            t.nbytes for r in result.harness.records for t in r.transfers
        )
        assert _sum_series(final, "repro_gpu_dma_bytes_total") == expected

    def test_all_commands_flow_through_hyperq(self, run):
        _, final = run
        issued = _sum_series(final, "repro_gpu_commands_issued_total")
        assert issued > 0
        assert issued == _sum_series(final, "repro_gpu_hyperq_commands_total")

    def test_sim_engine_counters_alive(self, run):
        _, final = run
        assert final["repro_sim_events_total"] > 0
        assert final["repro_sim_calendar_depth"] >= 0

    def test_grids_completed_positive(self, run):
        _, final = run
        assert _sum_series(final, "repro_gpu_grids_completed_total") > 0


class TestServingMetricsTruthful:
    @pytest.fixture(scope="class")
    def run(self):
        telemetry = Telemetry(interval=INTERVAL)
        result = serving_run(telemetry=telemetry)
        return result, telemetry.snapshots[-1].values

    def test_outcome_counter_matches_result(self, run):
        result, final = run
        for outcome, count in result.outcomes.items():
            key = f'repro_serving_outcomes_total{{outcome="{outcome}"}}'
            assert final[key] == count
        assert _sum_series(final, "repro_serving_outcomes_total") == sum(
            result.outcomes.values()
        )

    def test_goodput_counter_counts_on_time_completions(self, run):
        result, final = run
        assert final["repro_serving_goodput_jobs_total"] == result.outcomes.get(
            "completed", 0
        )

    def test_sojourn_histogram_counts_ran_jobs(self, run):
        result, final = run
        ran = sum(1 for r in result.records if r.ran)
        assert final["repro_serving_sojourn_seconds_count"] == ran


class TestFleetMetricsTruthful:
    @pytest.fixture(scope="class")
    def run(self):
        telemetry = Telemetry(interval=INTERVAL)
        result = fleet_run(telemetry=telemetry, plan=_loss_plan())
        return result, telemetry.snapshots[-1].values

    def test_failover_counter_matches_recoveries(self, run):
        result, final = run
        assert result.recoveries, "loss plan must trigger a failover"
        assert final["repro_fleet_failovers_total"] == len(result.recoveries)

    def test_migrated_apps_counter_matches_recoveries(self, run):
        result, final = run
        expected = sum(len(rec["apps"]) for rec in result.recoveries)
        assert final["repro_fleet_migrated_apps_total"] == expected

    def test_lost_device_health_is_zero(self, run):
        result, final = run
        assert result.devices[0].state == "lost"
        assert final['repro_fleet_device_health{device="0"}'] == 0.0
        assert final['repro_fleet_device_health{device="1"}'] == 2.0

    def test_heartbeats_flow(self, run):
        _, final = run
        assert final["repro_fleet_heartbeats_total"] > 0
        assert (
            _sum_series(final, "repro_fleet_health_transitions_total") >= 1
        )

    def test_failover_duration_histogram_observed(self, run):
        result, final = run
        assert final["repro_fleet_failover_duration_seconds_count"] == len(
            [r for r in result.recoveries if r.get("resumed") is not None]
        )


class TestHedgingMetricsTruthful:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.fleet import HedgeConfig

        fleet = FleetConfig(
            num_devices=2,
            heartbeat_interval=2e-5,
            detection_latency=5e-5,
            detection_jitter=1e-5,
            seed=7,
            hedging=HedgeConfig(check_interval=0.2e-3, budget_fraction=0.5),
        )
        plan = FaultPlan.gray(
            0, kind=FaultKind.SMX_SLOWDOWN, start=0.0, duration=1.0, factor=4.0
        )
        telemetry = Telemetry(interval=INTERVAL)
        result = FleetHarness(
            _apps(4), fleet, plan=plan, telemetry=telemetry
        ).run()
        return result, telemetry.snapshots[-1].values

    def test_hedge_counters_match_result(self, run):
        result, final = run
        assert result.hedges_launched > 0
        assert final["repro_fleet_hedges_total"] == result.hedges_launched
        assert final["repro_fleet_hedge_wins_total"] == result.hedge_wins
        assert (
            final["repro_fleet_duplicate_kernels_total"]
            == result.duplicate_kernels
        )

    def test_straggler_health_score_gauge(self, run):
        _, final = run
        assert final['repro_fleet_health_score{device="0"}'] < 0.5
        assert final['repro_fleet_health_score{device="1"}'] > 0.9

    def test_results_identical_with_telemetry(self, run):
        result, _ = run
        from repro.fleet import HedgeConfig

        fleet = FleetConfig(
            num_devices=2,
            heartbeat_interval=2e-5,
            detection_latency=5e-5,
            detection_jitter=1e-5,
            seed=7,
            hedging=HedgeConfig(check_interval=0.2e-3, budget_fraction=0.5),
        )
        plan = FaultPlan.gray(
            0, kind=FaultKind.SMX_SLOWDOWN, start=0.0, duration=1.0, factor=4.0
        )
        clean = FleetHarness(_apps(4), fleet, plan=plan).run()
        assert clean.makespan == result.makespan
        assert clean.hedge_events == result.hedge_events
        assert [r.complete_time for r in clean.records] == [
            r.complete_time for r in result.records
        ]
