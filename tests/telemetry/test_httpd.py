"""Tests for the stdlib /metrics scrape endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.telemetry import (
    CONTENT_TYPE_LATEST,
    MetricRegistry,
    MetricsServer,
    generate_latest,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture
def registry():
    reg = MetricRegistry()
    reg.counter("repro_scrapes_total", "How many").inc(4)
    return reg


class TestMetricsServer:
    def test_scrape_matches_generate_latest(self, registry):
        with MetricsServer(registry) as server:
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE_LATEST
                body = resp.read().decode("utf-8")
        assert body == generate_latest(registry)

    def test_scrapes_are_live(self, registry):
        counter = registry.counter("repro_scrapes_total")
        with MetricsServer(registry) as server:
            counter.inc(6)  # after start, before scrape
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                body = resp.read().decode("utf-8")
        assert "repro_scrapes_total 10\n" in body

    def test_root_path_serves_metrics_too(self, registry):
        with MetricsServer(registry) as server:
            url = f"http://127.0.0.1:{server.port}/"
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert "repro_scrapes_total" in resp.read().decode("utf-8")

    def test_unknown_path_is_404(self, registry):
        with MetricsServer(registry) as server:
            url = f"http://127.0.0.1:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404

    def test_server_stops_after_context_exit(self, registry):
        with MetricsServer(registry) as server:
            url = server.url
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=1)
