"""Tests for the terminal sparkline / metrics-table rendering."""

import pytest

from repro.telemetry import Snapshot, metrics_table, sparkline
from repro.telemetry.console import SPARK_BLOCKS, _resample

pytestmark = pytest.mark.telemetry


class TestSparkline:
    def test_empty_series_renders_flat_midline(self):
        mid = SPARK_BLOCKS[len(SPARK_BLOCKS) // 2]
        assert sparkline([]) == mid * 40
        assert sparkline([], width=8) == mid * 8

    def test_flat_series_is_mid_block(self):
        mid = SPARK_BLOCKS[len(SPARK_BLOCKS) // 2]
        assert sparkline([5.0, 5.0, 5.0]) == mid * 3
        # Zero constants too: no zero-range division either way.
        assert sparkline([0.0, 0.0]) == mid * 2

    def test_ramp_spans_full_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        assert line == SPARK_BLOCKS

    def test_long_series_resampled_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_resample_preserves_short_series(self):
        assert _resample([1.0, 2.0], 40) == [1.0, 2.0]

    def test_resample_bucket_means(self):
        assert _resample([0.0, 2.0, 4.0, 6.0], 2) == [1.0, 5.0]


class TestMetricsTable:
    SNAPS = [
        Snapshot(0.0, {"repro_a": 1.0, 'repro_h_bucket{le="1"}': 0.0,
                       "repro_h_sum": 0.0}),
        Snapshot(1e-3, {"repro_a": 3.0, 'repro_h_bucket{le="1"}': 2.0,
                        "repro_h_sum": 0.5}),
    ]

    def test_rows_carry_last_min_max_trend(self):
        rows = metrics_table(self.SNAPS)
        row = next(r for r in rows if r["metric"] == "repro_a")
        assert row["last"] == 3.0
        assert row["min"] == 1.0
        assert row["max"] == 3.0
        assert row["trend"]  # non-empty sparkline

    def test_bucket_series_hidden_by_default(self):
        metrics = [r["metric"] for r in metrics_table(self.SNAPS)]
        assert 'repro_h_bucket{le="1"}' not in metrics
        assert "repro_h_sum" in metrics

    def test_bucket_series_opt_in(self):
        metrics = [
            r["metric"]
            for r in metrics_table(self.SNAPS, include_buckets=True)
        ]
        assert 'repro_h_bucket{le="1"}' in metrics

    def test_substring_filter(self):
        rows = metrics_table(self.SNAPS, pattern="repro_a")
        assert [r["metric"] for r in rows] == ["repro_a"]

    def test_empty_snapshots(self):
        assert metrics_table([]) == []

    def test_row_order_is_final_snapshot_key_order(self):
        rows = metrics_table(self.SNAPS)
        assert [r["metric"] for r in rows] == ["repro_a", "repro_h_sum"]
