"""Multi-window SLO burn-rate monitor: transitions, guards, journaling."""

import pytest

from repro.telemetry import BurnRateConfig, BurnRateMonitor

pytestmark = pytest.mark.tracing

#: One fast window: 1ms short / 6ms long lookback, fire at burn rate 2
#: (i.e. bad fraction >= 2 * budget) once 3 events are in the short
#: window.
CONFIG = BurnRateConfig(
    budget=0.1, windows=((1e-3, 6e-3, 2.0),), min_events=3
)


def feed(monitor, outcomes, dt=1e-4, t0=0.0):
    for i, good in enumerate(outcomes):
        monitor.observe(t0 + i * dt, good)


class TestConfig:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            BurnRateMonitor(BurnRateConfig(budget=0.0))

    def test_defaults_are_multi_window(self):
        assert len(BurnRateConfig().windows) == 2


class TestTransitions:
    def test_all_good_never_fires(self):
        monitor = BurnRateMonitor(CONFIG)
        feed(monitor, [True] * 50)
        assert monitor.alerts == []
        assert not monitor.firing

    def test_sustained_bad_fires_once(self):
        monitor = BurnRateMonitor(CONFIG)
        feed(monitor, [False] * 20)
        fired = [a for a in monitor.alerts if a["event"] == "alert"]
        assert len(fired) == 1
        assert monitor.firing
        assert fired[0]["window"] == 0
        assert fired[0]["burn_short"] >= 2.0

    def test_recovery_resolves(self):
        monitor = BurnRateMonitor(CONFIG)
        feed(monitor, [False] * 10 + [True] * 80)
        events = [a["event"] for a in monitor.alerts]
        assert events == ["alert", "alert-resolved"]
        assert not monitor.firing

    def test_min_events_guards_cold_start(self):
        monitor = BurnRateMonitor(CONFIG)
        feed(monitor, [False, False])  # 100% burn, but too few samples
        assert monitor.alerts == []

    def test_long_window_guards_transient_blip(self):
        # A short burst of misses inside an otherwise healthy long
        # lookback must not page: short exceeds, long stays under.
        monitor = BurnRateMonitor(
            BurnRateConfig(budget=0.1, windows=((1e-3, 6e-3, 5.0),), min_events=3)
        )
        feed(monitor, [True] * 50, dt=1e-4)        # healthy 5ms of history
        feed(monitor, [False] * 4, dt=1e-5, t0=5.1e-3)  # 40us blip
        assert monitor.alerts == []

    def test_alert_records_use_t_key(self):
        # The integrity scanner's clock-regression probe keys on "t".
        monitor = BurnRateMonitor(CONFIG)
        feed(monitor, [False] * 10)
        assert all("t" in a for a in monitor.alerts)
        times = [a["t"] for a in monitor.alerts]
        assert times == sorted(times)


class TestDeterminism:
    def test_same_sequence_same_alerts(self):
        a, b = BurnRateMonitor(CONFIG), BurnRateMonitor(CONFIG)
        seq = [i % 3 != 0 for i in range(100)]
        feed(a, seq)
        feed(b, seq)
        assert a.alerts == b.alerts
        assert a.summary() == b.summary()


class _StubJournal:
    def __init__(self):
        self.entries = []
        self.tokens = []

    def record(self, entry, token=None):
        self.entries.append(entry)
        self.tokens.append(token)


class TestJournaling:
    def test_alerts_written_through(self):
        journal = _StubJournal()
        monitor = BurnRateMonitor(CONFIG, journal=journal)
        feed(monitor, [False] * 10)
        assert journal.entries == monitor.alerts

    def test_fence_token_presented(self):
        journal = _StubJournal()
        monitor = BurnRateMonitor(CONFIG, journal=journal, token="fence-1")
        feed(monitor, [False] * 10)
        assert journal.tokens == ["fence-1"] * len(monitor.alerts)


class TestSummary:
    def test_counts(self):
        monitor = BurnRateMonitor(CONFIG)
        feed(monitor, [False] * 10 + [True] * 80)
        summary = monitor.summary()
        assert summary["observed"] == 90
        assert summary["bad"] == 10
        assert summary["alerts"] == 1
        assert summary["firing"] is False
