"""Deterministic causal tracing: IDs, span trees, exporters, engines."""

import json

import pytest

from repro.core.streaming import (
    ConcurrencyCapDispatcher,
    poisson_arrivals,
    run_streaming,
)
from repro.telemetry import (
    ENGINE_CATEGORIES,
    TRACING_PID,
    WAIT_CATEGORIES,
    Tracer,
    Tracing,
    spans_to_chrome_events,
    spans_to_otlp_jsonl,
    write_otlp_jsonl,
)

pytestmark = pytest.mark.tracing


def make_trace(tracer, app="app-0", leaves=2):
    ctx = tracer.start_trace(app, 0.0)
    for i in range(leaves):
        tracer.record_leaf(ctx, f"wait-{i}", "sync-wait", i * 1e-3, (i + 1) * 1e-3)
    tracer.end_trace(ctx, leaves * 1e-3, outcome="completed")
    return ctx


class TestIds:
    def test_same_seed_same_ids(self):
        a, b = Tracer(seed=7), Tracer(seed=7)
        make_trace(a)
        make_trace(b)
        assert [s.as_dict() for s in a.spans] == [s.as_dict() for s in b.spans]

    def test_different_seed_different_trace_id(self):
        a, b = Tracer(seed=7), Tracer(seed=8)
        ca, cb = make_trace(a), make_trace(b)
        assert ca.trace_id != cb.trace_id

    def test_span_ids_unique_within_trace(self):
        tracer = Tracer(seed=0)
        make_trace(tracer, leaves=64)
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids)) == 65  # root + leaves

    def test_duplicate_app_name_rejected(self):
        tracer = Tracer(seed=0)
        tracer.start_trace("app-0", 0.0)
        with pytest.raises(ValueError, match="already started"):
            tracer.start_trace("app-0", 1e-3)

    def test_scope_prefixes_and_unblocks_reuse(self):
        tracer = Tracer(seed=0)
        tracer.set_scope("batch-0")
        c0 = tracer.start_trace("app-0", 0.0)
        tracer.set_scope("batch-1")
        c1 = tracer.start_trace("app-0", 1e-3)  # same name, new scope: ok
        assert c0.trace_id != c1.trace_id
        assert tracer.root(c0.trace_id).app == "batch-0/app-0"
        assert tracer.root(c1.trace_id).app == "batch-1/app-0"


class TestRecording:
    def test_leaf_and_eager_interleave_keeps_record_order(self):
        """Span ids and view order must not depend on which API recorded
        a span — leaves buffered before an eager record still claim
        their seqs first."""
        def build(leaf_first):
            tracer = Tracer(seed=3)
            ctx = tracer.start_trace("app-0", 0.0)
            if leaf_first:
                tracer.record_leaf(ctx, "w0", "sync-wait", 0.0, 1e-3)
                tracer.record(ctx, "w1", "retry-backoff", 1e-3, 2e-3)
            else:
                # Same spans, but flushed through .spans between records.
                tracer.record_leaf(ctx, "w0", "sync-wait", 0.0, 1e-3)
                _ = tracer.spans
                tracer.record(ctx, "w1", "retry-backoff", 1e-3, 2e-3)
            tracer.end_trace(ctx, 2e-3)
            return [s.as_dict() for s in tracer.spans]

        assert build(True) == build(False)

    def test_record_returns_nestable_context(self):
        tracer = Tracer(seed=0)
        root = tracer.start_trace("app-0", 0.0)
        child = tracer.record(root, "phase", "sync-wait", 0.0, 1e-3)
        tracer.record_leaf(child, "inner", "smx-exec", 0.0, 5e-4)
        tree = tracer.span_tree(root.trace_id)
        assert tree["children"][0]["name"] == "phase"
        assert tree["children"][0]["children"][0]["name"] == "inner"

    def test_instant_is_zero_length(self):
        tracer = Tracer(seed=0)
        ctx = tracer.start_trace("app-0", 0.0)
        tracer.instant(ctx, "mark", "watchdog", 1e-3, attempt=2)
        span = tracer.spans[-1]
        assert span.duration == 0.0
        assert span.meta == {"attempt": 2}

    def test_end_trace_merges_meta(self):
        tracer = Tracer(seed=0)
        ctx = make_trace(tracer)
        root = tracer.root(ctx.trace_id)
        assert root.meta["outcome"] == "completed"
        assert root.end == pytest.approx(2e-3)

    def test_trace_ids_in_start_order(self):
        tracer = Tracer(seed=0)
        ctxs = [make_trace(tracer, f"app-{i}") for i in range(3)]
        assert tracer.trace_ids() == [c.trace_id for c in ctxs]


class TestChromeExport:
    def test_async_pairs(self):
        tracer = Tracer(seed=0)
        make_trace(tracer, leaves=1)
        events = spans_to_chrome_events(tracer.spans)
        assert [e["ph"] for e in events] == ["b", "e", "b", "e"]
        begin = events[0]
        assert begin["pid"] == TRACING_PID
        assert begin["id"] == tracer.trace_ids()[0]
        assert begin["ts"] == pytest.approx(0.0)

    def test_meta_lands_in_args_sorted(self):
        tracer = Tracer(seed=0)
        ctx = tracer.start_trace("app-0", 0.0)
        tracer.record(ctx, "w", "hedge", 0.0, 1e-3, z=1, a=2)
        begin = spans_to_chrome_events(tracer.spans)[2]
        assert list(begin["args"]) == ["a", "z"]


class TestOtlpExport:
    def test_round_trip_parse_back(self):
        tracer = Tracer(seed=9)
        make_trace(tracer, leaves=2)
        payloads = [
            json.loads(line)
            for line in spans_to_otlp_jsonl(tracer.spans).splitlines()
        ]
        assert len(payloads) == len(tracer.spans)
        for payload, span in zip(payloads, tracer.spans):
            assert payload["traceId"] == span.trace_id
            assert payload["spanId"] == span.span_id
            assert payload["parentSpanId"] == span.parent_id
            assert payload["startTimeUnixNano"] == int(round(span.start * 1e9))
            attrs = {
                a["key"]: a["value"]["stringValue"]
                for a in payload["attributes"]
            }
            assert attrs["category"] == span.category
            assert attrs["app"] == span.app

    def test_byte_stable(self):
        a, b = Tracer(seed=1), Tracer(seed=1)
        make_trace(a)
        make_trace(b)
        assert spans_to_otlp_jsonl(a.spans) == spans_to_otlp_jsonl(b.spans)

    def test_write_otlp_jsonl(self, tmp_path):
        tracer = Tracer(seed=0)
        make_trace(tracer)
        path = tmp_path / "spans.jsonl"
        write_otlp_jsonl(path, tracer.spans)
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.spans)
        assert json.loads(lines[0])["name"] == "app-0"

    def test_empty(self):
        assert spans_to_otlp_jsonl([]) == ""


def small_run(tracing):
    arrivals = poisson_arrivals(
        rate=10000.0, duration=0.002, type_mix=[("nn", 1), ("needle", 1)],
        seed=7,
    )
    return run_streaming(
        arrivals, ConcurrencyCapDispatcher(3), num_streams=8, tracing=tracing
    )


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def traced(self):
        tracing = Tracing(seed=7)
        result = small_run(tracing)
        return result, tracing

    def test_tracing_off_is_byte_identical(self, traced):
        result, _ = traced
        clean = small_run(None)
        assert clean.sojourn_times == result.sojourn_times
        assert clean.completion_time == result.completion_time
        assert clean.energy == result.energy

    def test_replay_yields_identical_span_trees(self, traced):
        _, tracing = traced
        again = Tracing(seed=7)
        small_run(again)
        assert [s.as_dict() for s in again.spans] == [
            s.as_dict() for s in tracing.spans
        ]

    def test_one_trace_per_arrival(self, traced):
        result, tracing = traced
        assert len(tracing.tracer.trace_ids()) == len(result.records)

    def test_categories_are_known(self, traced):
        _, tracing = traced
        known = WAIT_CATEGORIES | ENGINE_CATEGORIES | {"app"}
        assert {s.category for s in tracing.spans} <= known

    def test_spans_stay_inside_run(self, traced):
        result, tracing = traced
        for span in tracing.spans:
            assert span.end >= span.start
            assert 0.0 <= span.start <= result.completion_time + 1e-9


class TestCrashResume:
    """Span trees and journaled alerts replay byte-identically through a
    harness crash + journal resume (the ISSUE acceptance bar)."""

    ARRIVALS = dict(
        rate=9000.0, duration=0.004,
        type_mix=[("nn", 2), ("needle", 1)], seed=11,
    )

    def _burn(self):
        from repro.telemetry import BurnRateConfig

        return BurnRateConfig(
            budget=0.05,
            windows=((1e-3, 6e-3, 2.0), (3e-3, 18e-3, 1.0)),
            min_events=3,
        )

    def _run(self, tracing, plan=None, journal_path=None, resume=False):
        from repro.serving import ServingConfig, run_serving

        arrivals = poisson_arrivals(**self.ARRIVALS)
        config = ServingConfig(seed=11, slo_factor=1.2, plan=plan)
        return run_serving(
            arrivals, ConcurrencyCapDispatcher(3), config, num_streams=8,
            journal_path=journal_path, resume=resume, tracing=tracing,
        )

    def test_resumed_spans_and_alerts_match_uncrashed_run(self, tmp_path):
        from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
        from repro.sim.errors import HarnessCrash

        reference = Tracing(
            seed=11, burn=self._burn(),
            alert_journal=tmp_path / "alerts-ref.jsonl",
        )
        ref_result = self._run(reference)

        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.HARNESS_CRASH, time=0.0015)]
        )
        crashed = Tracing(
            seed=11, burn=self._burn(),
            alert_journal=tmp_path / "alerts.jsonl",
        )
        with pytest.raises(HarnessCrash):
            self._run(crashed, plan=plan, journal_path=tmp_path / "j.jsonl")

        resumed = Tracing(
            seed=11, burn=self._burn(),
            alert_journal=tmp_path / "alerts.jsonl",
        )
        result = self._run(
            resumed, plan=plan, journal_path=tmp_path / "j.jsonl",
            resume=True,
        )

        assert result.sojourn_times == ref_result.sojourn_times
        assert [s.as_dict() for s in resumed.spans] == [
            s.as_dict() for s in reference.spans
        ]
        assert resumed.alerts == reference.alerts
