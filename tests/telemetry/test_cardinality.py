"""Pinned behavior of the label-cardinality guard (``max_series``)."""

import pytest

from repro.telemetry import (
    Counter,
    MetricRegistry,
    OVERFLOW_LABEL,
    OVERFLOW_METRIC,
    Telemetry,
)

pytestmark = pytest.mark.telemetry


class TestRouting:
    def test_first_come_first_kept(self):
        c = Counter("repro_card_total", "", labelnames=("tenant",), max_series=2)
        c.inc(tenant="a")
        c.inc(tenant="b")
        c.inc(tenant="c")
        c.inc(tenant="d")
        assert c.value(tenant="a") == 1.0
        assert c.value(tenant="b") == 1.0
        # c and d were aggregated, not tracked.
        assert c.value(tenant="c") == 0.0
        assert c.value(tenant="d") == 0.0
        assert c.value(tenant=OVERFLOW_LABEL) == 2.0
        assert c.overflowed == 2

    def test_admitted_series_never_overflow_later(self):
        c = Counter("repro_card_total", "", labelnames=("tenant",), max_series=1)
        c.inc(tenant="a")
        c.inc(tenant="b")  # overflows
        c.inc(5.0, tenant="a")  # still exact
        assert c.value(tenant="a") == 6.0
        assert c.overflowed == 1

    def test_reads_do_not_admit(self):
        c = Counter("repro_card_total", "", labelnames=("t",), max_series=1)
        assert c.value(t="x") == 0.0  # read before any update
        c.inc(t="y")  # first update takes the only slot
        assert c.value(t="y") == 1.0
        c.inc(t="x")
        assert c.value(t="x") == 0.0
        assert c.value(t=OVERFLOW_LABEL) == 1.0

    def test_unlabelled_metric_ignores_cap(self):
        c = Counter("repro_card_total", "", max_series=1)
        c.inc()
        c.inc()
        assert c.value() == 2.0
        assert c.overflowed == 0

    def test_overflow_key_spans_all_labels(self):
        c = Counter(
            "repro_card_total", "", labelnames=("a", "b"), max_series=1
        )
        c.inc(a="1", b="2")
        c.inc(a="3", b="4")
        assert c.value(a=OVERFLOW_LABEL, b=OVERFLOW_LABEL) == 1.0

    def test_gauge_and_histogram_are_guarded(self):
        from repro.telemetry import Gauge, Histogram

        g = Gauge("repro_card_depth", "", labelnames=("t",), max_series=1)
        g.set(3.0, t="a")
        g.set(9.0, t="b")
        g.inc(1.0, t="b")
        assert g.value(t="a") == 3.0
        assert g.value(t=OVERFLOW_LABEL) == 10.0

        h = Histogram(
            "repro_card_lat", "", buckets=(1.0,), labelnames=("t",),
            max_series=1,
        )
        h.observe(0.5, t="a")
        h.observe(0.5, t="b")
        keys = {key for key, _ in h.series()}
        assert keys == {("a",), (OVERFLOW_LABEL,)}

    def test_max_series_validated(self):
        with pytest.raises(ValueError, match="max_series"):
            Counter("repro_card_total", "", labelnames=("t",), max_series=0)


class TestRegistryAccounting:
    def test_overflow_counter_tracks_dropped_updates(self):
        reg = MetricRegistry()
        c = reg.counter("repro_card_total", "", labelnames=("t",), max_series=1)
        c.inc(t="a")
        assert reg.get(OVERFLOW_METRIC) is None  # lazily registered
        c.inc(t="b")
        c.inc(t="c")
        overflow = reg.get(OVERFLOW_METRIC)
        assert overflow.value(metric="repro_card_total") == 2.0

    def test_reregistration_cap_conflict(self):
        reg = MetricRegistry()
        reg.counter("repro_card_total", "", labelnames=("t",), max_series=3)
        # No opinion is fine; a different explicit cap is a bug.
        reg.counter("repro_card_total", "", labelnames=("t",))
        with pytest.raises(ValueError, match="max_series"):
            reg.counter("repro_card_total", "", labelnames=("t",), max_series=4)

    def test_snapshot_exposes_overflow_series(self):
        reg = MetricRegistry()
        c = reg.counter("repro_card_total", "", labelnames=("t",), max_series=1)
        c.inc(t="a")
        c.inc(t="b")
        snap = reg.snapshot()
        assert snap['repro_card_total{t="a"}'] == 1.0
        assert snap[f'repro_card_total{{t="{OVERFLOW_LABEL}"}}'] == 1.0
        assert (
            snap[f'{OVERFLOW_METRIC}{{metric="repro_card_total"}}'] == 1.0
        )

    def test_deterministic_admission(self):
        def run():
            reg = MetricRegistry()
            c = reg.counter(
                "repro_card_total", "", labelnames=("t",), max_series=8
            )
            for i in range(50):
                c.inc(t=str(i * 7 % 20))
            return reg.snapshot()

        assert run() == run()

    def test_telemetry_facade_passes_cap_through(self):
        t = Telemetry()
        c = t.counter("repro_card_total", "", labelnames=("x",), max_series=1)
        c.inc(x="a")
        c.inc(x="b")
        assert c.value(x=OVERFLOW_LABEL) == 1.0
        h = t.histogram(
            "repro_card_lat", "", labelnames=("x",), max_series=1
        )
        g = t.gauge("repro_card_depth", "", labelnames=("x",), max_series=1)
        assert h.max_series == 1
        assert g.max_series == 1

    def test_uncapped_default_unchanged(self):
        reg = MetricRegistry()
        c = reg.counter("repro_card_total", "", labelnames=("t",))
        for i in range(200):
            c.inc(t=str(i))
        assert c.overflowed == 0
        assert len(list(c.series())) == 200
        assert reg.get(OVERFLOW_METRIC) is None
