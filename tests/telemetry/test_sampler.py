"""Tests for the sim-clock sampler and the Telemetry facade."""

import pytest

from repro.sim.engine import Environment
from repro.telemetry import MetricRegistry, Sampler, Telemetry

pytestmark = pytest.mark.telemetry


class TestSampler:
    def test_snapshots_on_the_simulated_grid(self):
        env = Environment()
        reg = MetricRegistry()
        sampler = Sampler(env, reg, interval=1e-3)
        sampler.start()
        env.run(until=3.5e-3)
        assert [s.time for s in sampler.snapshots] == pytest.approx(
            [0.0, 1e-3, 2e-3, 3e-3]
        )

    def test_probes_run_before_each_snapshot(self):
        env = Environment()
        reg = MetricRegistry()
        gauge = reg.gauge("repro_now")
        sampler = Sampler(env, reg, interval=1e-3)
        sampler.add_probe(lambda: gauge.set(env.now))
        sampler.start()
        env.run(until=2.5e-3)
        values = [s.values["repro_now"] for s in sampler.snapshots]
        assert values == pytest.approx([0.0, 1e-3, 2e-3])

    def test_stop_lets_the_run_settle(self):
        env = Environment()
        sampler = Sampler(env, MetricRegistry(), interval=1e-3)
        sampler.start()
        env.run(until=1.5e-3)
        sampler.stop()
        # With the sampler stopped the calendar drains instead of ticking
        # forever; run() terminates without an `until` bound.
        env.run()
        assert env.now < 10e-3
        assert sampler.sample_count <= 3

    def test_start_is_idempotent(self):
        env = Environment()
        sampler = Sampler(env, MetricRegistry(), interval=1e-3)
        sampler.start()
        sampler.start()
        env.run(until=0.5e-3)
        assert sampler.sample_count == 1  # one loop, one t=0 sample

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            Sampler(Environment(), MetricRegistry(), interval=0.0)


class TestTelemetryFacade:
    def test_metrics_usable_before_attach(self):
        telemetry = Telemetry()
        counter = telemetry.counter("repro_early_total")
        counter.inc(5)
        assert telemetry.registry.snapshot()["repro_early_total"] == 5.0

    def test_pending_probes_install_on_attach(self):
        telemetry = Telemetry(interval=1e-3)
        gauge = telemetry.gauge("repro_g")
        telemetry.add_probe(lambda: gauge.set(42))
        env = Environment()
        telemetry.attach(env)
        telemetry.start()
        env.run(until=0.5e-3)
        assert telemetry.last_value("repro_g") == 42.0

    def test_attach_same_env_is_idempotent(self):
        telemetry = Telemetry()
        env = Environment()
        sampler = telemetry.attach(env)
        assert telemetry.attach(env) is sampler

    def test_reattach_keeps_registry_resets_snapshots(self):
        telemetry = Telemetry(interval=1e-3)
        counter = telemetry.counter("repro_runs_total")
        env1 = Environment()
        telemetry.attach(env1)
        telemetry.start()
        counter.inc()
        env1.run(until=2.5e-3)
        first_count = len(telemetry.snapshots)
        assert first_count >= 2

        env2 = Environment()
        telemetry.attach(env2)
        assert telemetry.snapshots == []          # fresh clock, fresh series
        assert counter.value() == 1.0             # counters accumulate
        assert telemetry.counter("repro_runs_total") is counter

    def test_start_before_attach_raises(self):
        with pytest.raises(RuntimeError, match="not attached"):
            Telemetry().start()

    def test_finalize_snapshot_is_registry_state(self):
        telemetry = Telemetry(interval=1e-3)
        counter = telemetry.counter("repro_n_total")
        env = Environment()
        telemetry.attach(env)
        telemetry.start()
        env.run(until=1.5e-3)
        counter.inc(9)  # lands after the last periodic tick
        last = telemetry.finalize()
        assert last.values == telemetry.registry.snapshot()
        assert last is telemetry.snapshots[-1]

    def test_series_view(self):
        telemetry = Telemetry(interval=1e-3)
        gauge = telemetry.gauge("repro_g")
        env = Environment()
        telemetry.attach(env)
        telemetry.add_probe(lambda: gauge.set(env.now * 1000))
        telemetry.start()
        env.run(until=2.5e-3)
        series = telemetry.series("repro_g")
        assert [p["t"] for p in series] == pytest.approx([0.0, 1e-3, 2e-3])
        assert [p["value"] for p in series] == pytest.approx([0.0, 1.0, 2.0])

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            Telemetry(interval=-1.0)
