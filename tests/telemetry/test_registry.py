"""Tests for the label-aware metric registry."""

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)

pytestmark = pytest.mark.telemetry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("repro_test_total", "help")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("repro_test_total", "")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)

    def test_labelled_series_are_independent(self):
        c = Counter("repro_test_total", "", labelnames=("kind",))
        c.inc(kind="a")
        c.inc(3, kind="b")
        assert c.value(kind="a") == 1.0
        assert c.value(kind="b") == 3.0

    def test_wrong_label_set_rejected(self):
        c = Counter("repro_test_total", "", labelnames=("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(device="0")
        with pytest.raises(ValueError, match="expected labels"):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("repro_depth", "")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value() == 3.0

    def test_gauge_may_go_negative(self):
        g = Gauge("repro_delta", "")
        g.dec(5.0)
        assert g.value() == -5.0


class TestHistogram:
    def test_bucket_edges_are_le_bounds(self):
        h = Histogram("repro_lat", "", buckets=(1.0, 10.0))
        h.observe(1.0)    # == edge -> that bucket (le semantics)
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)  # overflow -> +Inf only
        ((_, cumulative, total, count),) = h.snapshot_series()
        assert cumulative == [2, 3, 4]  # le=1, le=10, +Inf
        assert count == 4
        assert total == pytest.approx(106.5)

    def test_default_buckets_are_fixed_constants(self):
        h = Histogram("repro_lat", "")
        assert h.edges == DEFAULT_LATENCY_BUCKETS

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_lat", "", buckets=(1.0, 1.0, 2.0))

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("repro_lat", "", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricRegistry()
        a = reg.counter("repro_x_total", "first")
        b = reg.counter("repro_x_total", "second")
        assert a is b
        assert len(reg) == 1

    def test_kind_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("repro_x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("repro_x")

    def test_label_schema_conflict_rejected(self):
        reg = MetricRegistry()
        reg.gauge("repro_x", labelnames=("a",))
        with pytest.raises(ValueError, match="re-registered with labels"):
            reg.gauge("repro_x", labelnames=("b",))

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad name!", "")
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("", "")

    def test_iteration_is_registration_order(self):
        reg = MetricRegistry()
        reg.counter("repro_b")
        reg.gauge("repro_a")
        reg.counter("repro_c")
        assert [m.name for m in reg] == ["repro_b", "repro_a", "repro_c"]

    def test_snapshot_flattens_all_kinds(self):
        reg = MetricRegistry()
        reg.counter("repro_jobs_total", labelnames=("outcome",)).inc(
            outcome="completed"
        )
        reg.gauge("repro_depth").set(7)
        reg.histogram("repro_lat", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap['repro_jobs_total{outcome="completed"}'] == 1.0
        assert snap["repro_depth"] == 7.0
        assert snap['repro_lat_bucket{le="1"}'] == 1.0
        assert snap['repro_lat_bucket{le="+Inf"}'] == 1.0
        assert snap["repro_lat_sum"] == 0.5
        assert snap["repro_lat_count"] == 1.0

    def test_snapshot_series_sorted_by_label_values(self):
        reg = MetricRegistry()
        g = reg.gauge("repro_g", labelnames=("device",))
        g.set(2, device="10")
        g.set(1, device="2")
        keys = [k for k in reg.snapshot()]
        # Lexicographic by label value: "10" < "2" — stable, not numeric.
        assert keys == ['repro_g{device="10"}', 'repro_g{device="2"}']

    def test_snapshots_equal_for_equal_updates(self):
        def build():
            reg = MetricRegistry()
            reg.counter("repro_n_total", labelnames=("k",)).inc(2, k="x")
            reg.histogram("repro_h", buckets=(1e-3, 1.0)).observe(0.01)
            return reg.snapshot()

        assert build() == build()
