"""Tests for the perf-trajectory recorder."""

import json

import pytest

from repro.telemetry import load_trajectory, record_trajectory_point

pytestmark = pytest.mark.telemetry


class TestRecord:
    def test_first_point_creates_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        data = record_trajectory_point(path, "bench_x", {"wall_s": 1.5})
        assert path.exists()
        assert data["benchmark"] == "bench_x"
        (point,) = data["points"]
        assert point["metrics"] == {"wall_s": 1.5}
        assert "date" in point and "commit" in point

    def test_points_append(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record_trajectory_point(path, "bench_x", {"wall_s": 1.0})
        data = record_trajectory_point(path, "bench_x", {"wall_s": 2.0})
        assert [p["metrics"]["wall_s"] for p in data["points"]] == [1.0, 2.0]

    def test_file_is_valid_sorted_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record_trajectory_point(path, "bench_x", {"b": 2, "a": 1})
        on_disk = json.loads(path.read_text())
        assert list(on_disk["points"][0]["metrics"]) == ["a", "b"]

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record_trajectory_point(path, "bench_x", {"wall_s": 1.0})
        assert list(tmp_path.iterdir()) == [path]


class TestLoad:
    def test_missing_file_is_empty_trajectory(self, tmp_path):
        data = load_trajectory(tmp_path / "BENCH_none.json")
        assert data == {"benchmark": "BENCH_none", "points": []}

    def test_torn_file_tolerated(self, tmp_path):
        path = tmp_path / "BENCH_torn.json"
        path.write_text('{"benchmark": "x", "points": [{"comm')
        assert load_trajectory(path)["points"] == []

    def test_wrong_shape_tolerated(self, tmp_path):
        path = tmp_path / "BENCH_shape.json"
        path.write_text('["not", "an", "object"]')
        assert load_trajectory(path)["points"] == []

    def test_recording_over_torn_file_recovers(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{{{")
        data = record_trajectory_point(path, "bench_x", {"wall_s": 3.0})
        assert len(data["points"]) == 1
        assert json.loads(path.read_text())["benchmark"] == "bench_x"
