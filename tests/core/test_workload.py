"""Tests for workload construction."""

import numpy as np
import pytest

from repro.core.workload import SCALES, Workload, resolve_scale
from repro.framework.scheduler import SchedulingOrder


class TestScales:
    def test_three_profiles(self):
        assert set(SCALES) == {"paper", "small", "tiny"}

    def test_paper_scale_matches_table3(self):
        assert SCALES["paper"]["gaussian"] == {"n": 512}
        assert SCALES["paper"]["nn"] == {"records": 42764}
        assert SCALES["paper"]["needle"] == {"n": 512}
        assert SCALES["paper"]["srad"] == {"n": 512, "iterations": 10}

    def test_resolve_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert resolve_scale("paper") == "paper"
        assert resolve_scale() == "small"

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            resolve_scale("huge")


class TestConstruction:
    def test_homogeneous(self):
        wl = Workload.homogeneous("nn", 4, scale="tiny")
        assert wl.size == 4
        assert wl.types == ["nn"] * 4
        assert wl.type_counts == {"nn": 4}

    def test_heterogeneous_pair_even_split(self):
        wl = Workload.heterogeneous_pair("gaussian", "needle", 8, scale="tiny")
        assert wl.type_counts == {"gaussian": 4, "needle": 4}
        # Naive FIFO order: all X then all Y.
        assert wl.types == ["gaussian"] * 4 + ["needle"] * 4

    def test_pair_validation(self):
        with pytest.raises(ValueError):
            Workload.heterogeneous_pair("nn", "nn", 4)
        with pytest.raises(ValueError):
            Workload.heterogeneous_pair("nn", "srad", 5)  # odd
        with pytest.raises(ValueError):
            Workload.heterogeneous_pair("nn", "srad", 0)

    def test_mixed(self):
        wl = Workload.mixed([("nn", 2), ("srad", 1), ("needle", 3)], scale="tiny")
        assert wl.size == 6
        assert wl.type_counts == {"nn": 2, "srad": 1, "needle": 3}

    def test_mixed_validation(self):
        with pytest.raises(ValueError):
            Workload.mixed([])
        with pytest.raises(ValueError):
            Workload.mixed([("nn", 0)])

    def test_homogeneous_overrides(self):
        wl = Workload.homogeneous("nn", 1, scale="tiny", records=999)
        apps = wl.instantiate()
        assert apps[0].profile.data_dim == "999"

    def test_describe(self):
        wl = Workload.heterogeneous_pair("gaussian", "needle", 4, scale="tiny")
        assert wl.describe() == "2x gaussian + 2x needle"


class TestInstantiation:
    def test_identity_schedule(self):
        wl = Workload.heterogeneous_pair("nn", "srad", 4, scale="tiny")
        apps = wl.instantiate()
        assert [a.app_id for a in apps] == ["nn#0", "nn#1", "srad#0", "srad#1"]

    def test_permuted_schedule_preserves_identity(self):
        """Instance numbers follow FIFO identity, not launch position."""
        wl = Workload.heterogeneous_pair("nn", "srad", 4, scale="tiny")
        schedule = wl.schedule(SchedulingOrder.REVERSE_ROUND_ROBIN)
        apps = wl.instantiate(schedule)
        assert [a.app_id for a in apps] == ["srad#0", "nn#0", "srad#1", "nn#1"]

    def test_bad_schedule_rejected(self):
        wl = Workload.homogeneous("nn", 3, scale="tiny")
        with pytest.raises(ValueError):
            wl.instantiate([0, 0, 1])
        with pytest.raises(ValueError):
            wl.instantiate([0, 1])

    def test_random_schedule_reproducible(self):
        wl = Workload.heterogeneous_pair("nn", "srad", 8, scale="tiny")
        s1 = wl.schedule(SchedulingOrder.RANDOM_SHUFFLE, rng=np.random.default_rng(5))
        s2 = wl.schedule(SchedulingOrder.RANDOM_SHUFFLE, rng=np.random.default_rng(5))
        assert s1 == s2
