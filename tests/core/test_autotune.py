"""Tests for the launch-order search and the policy bandit."""

import pytest

from repro.core.autotune import (
    OBJECTIVES,
    OrderSearch,
    PolicyBandit,
    evaluate_schedule,
)
from repro.core.workload import Workload
from repro.framework.scheduler import SchedulingOrder, all_orders


@pytest.fixture
def workload():
    return Workload.heterogeneous_pair("nn", "srad", 6, scale="tiny")


class TestObjectives:
    def test_three_objectives(self):
        assert set(OBJECTIVES) == {"makespan", "energy", "edp"}

    def test_evaluate_schedule(self, workload):
        value, run = evaluate_schedule(
            workload, list(range(6)), num_streams=6, objective="makespan"
        )
        assert value == pytest.approx(run.makespan)
        assert len(run.harness.records) == 6

    def test_edp_consistent(self, workload):
        v, run = evaluate_schedule(
            workload, list(range(6)), num_streams=6, objective="edp"
        )
        assert v == pytest.approx(run.energy * run.makespan)

    def test_unknown_objective(self, workload):
        with pytest.raises(KeyError):
            evaluate_schedule(workload, list(range(6)), 6, objective="latency")


class TestOrderSearch:
    def test_search_beats_or_matches_named_policies(self, workload):
        search = OrderSearch(workload, num_streams=6, seed=3)
        result = search.search(restarts=1, swaps_per_climb=6)
        # The search result is at least as good as the best seeded policy.
        assert result.best_value <= min(result.seed_values.values()) + 1e-12
        assert result.improvement_over_worst_seed_pct >= 0.0
        assert result.improvement_over_best_seed_pct >= -1e-9
        assert sorted(result.best_schedule) == list(range(6))

    def test_all_policies_seeded(self, workload):
        search = OrderSearch(workload, num_streams=6, seed=0)
        result = search.search(restarts=0, swaps_per_climb=2)
        for order in all_orders():
            assert str(order) in result.seed_values

    def test_cache_bounds_evaluations(self, workload):
        search = OrderSearch(workload, num_streams=6, seed=1)
        result = search.search(restarts=1, swaps_per_climb=5)
        # evaluations <= seeds (6) + climbs (3 x 5); cache may dedupe more.
        assert result.evaluations <= 6 + 3 * 5
        assert result.evaluations >= 6
        assert len(result.history) >= result.evaluations

    def test_deterministic_per_seed(self, workload):
        r1 = OrderSearch(workload, 6, seed=9).search(restarts=1, swaps_per_climb=4)
        r2 = OrderSearch(workload, 6, seed=9).search(restarts=1, swaps_per_climb=4)
        assert r1.best_schedule == r2.best_schedule
        assert r1.best_value == r2.best_value

    def test_objective_validation(self, workload):
        with pytest.raises(KeyError):
            OrderSearch(workload, 6, objective="fps")


class TestExhaustive:
    def test_enumerates_all_type_sequences(self):
        wl = Workload.heterogeneous_pair("nn", "srad", 4, scale="tiny")
        search = OrderSearch(wl, num_streams=4, seed=0)
        result = search.exhaustive()
        # C(4, 2) = 6 distinct type sequences for 2+2.
        assert len(result.history) == 6
        assert result.best_value == min(v for _, v in result.history)
        assert sorted(result.best_schedule) == list(range(4))

    def test_exhaustive_beats_every_named_policy(self):
        wl = Workload.heterogeneous_pair("nn", "srad", 4, scale="tiny")
        exhaustive = OrderSearch(wl, num_streams=4, seed=0).exhaustive()
        seeded = OrderSearch(wl, num_streams=4, seed=0).search(
            restarts=0, swaps_per_climb=0
        )
        assert exhaustive.best_value <= seeded.best_value + 1e-12

    def test_rejects_oversized_space(self):
        wl = Workload.heterogeneous_pair("nn", "srad", 16, scale="tiny")
        with pytest.raises(ValueError, match="exceed"):
            OrderSearch(wl, num_streams=16).exhaustive(max_sequences=100)


class TestPolicyBandit:
    def test_tries_every_arm_first(self, workload):
        bandit = PolicyBandit(workload, num_streams=6, seed=0, epsilon=0.0)
        rounds = bandit.run(5)
        assert sorted((r.policy for r in rounds), key=str) == sorted(
            all_orders(), key=str
        )
        assert all(r.explored for r in rounds)

    def test_exploits_after_warmup(self, workload):
        bandit = PolicyBandit(workload, num_streams=6, seed=0, epsilon=0.0)
        bandit.run(8)
        exploit_rounds = bandit.rounds[5:]
        best = bandit.best_policy()
        assert all(r.policy == best for r in exploit_rounds)
        assert not any(r.explored for r in exploit_rounds)

    def test_best_policy_minimizes_mean(self, workload):
        bandit = PolicyBandit(workload, num_streams=6, seed=0, epsilon=0.0)
        bandit.run(6)
        best = bandit.best_policy()
        assert bandit.means[best] == min(
            bandit.means[p] for p in all_orders() if bandit.counts[p] > 0
        )

    def test_epsilon_validation(self, workload):
        with pytest.raises(ValueError):
            PolicyBandit(workload, 6, epsilon=1.5)

    def test_exploitation_fraction(self, workload):
        bandit = PolicyBandit(workload, num_streams=6, seed=0, epsilon=0.0)
        assert bandit.exploitation_fraction() == 0.0
        bandit.run(7)
        assert 0.0 < bandit.exploitation_fraction() < 1.0
