"""Tests for the per-figure experiment drivers (tiny/small scale).

These check the *structure* of every driver plus the cheap shape
assertions; the full paper-scale shape reproduction lives in the benchmark
suite (``benchmarks/``) and EXPERIMENTS.md.
"""

import pytest

from repro.core import experiments as ex
from repro.core.baselines import symbiosis_admission
from repro.core.runner import ExperimentRunner
from repro.gpu.specs import tesla_k20


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestFig1Fig2:
    def test_sync_reduces_interleaving(self, runner):
        study = ex.fig1_fig2_timelines(
            pair=("nn", "needle"), num_apps=6, scale="small", runner=runner
        )
        default_switches = study.interleaving_switches(study.default_trace)
        sync_switches = study.interleaving_switches(study.sync_trace)
        assert sync_switches < default_switches
        # With the mutex, handovers = one per app boundary at most.
        assert sync_switches <= 6

    def test_rows_structure(self, runner):
        study = ex.fig1_fig2_timelines(
            pair=("nn", "needle"), num_apps=4, scale="tiny", runner=runner
        )
        rows = study.rows()
        assert [r["scenario"] for r in rows] == ["default", "sync"]
        assert all(r["makespan_ms"] > 0 for r in rows)


class TestFig3:
    def test_all_five_orders_present(self):
        orders = ex.fig3_orders(m=4, n=4)
        assert len(orders) == 5
        assert orders["naive-fifo"][0] == "AX(1)"
        assert orders["reverse-fifo"][0] == "AY(1)"
        assert all(len(sig) == 8 for sig in orders.values())


class TestFig4:
    def test_structure_and_positive_improvement(self, runner):
        result = ex.fig4_concurrency(
            pairs=[("nn", "needle")], na_values=(4, 8), scale="tiny",
            runner=runner,
        )
        assert len(result.rows) == 4  # 2 NA x {half, full}
        for row in result.rows:
            assert row.improvement_pct > 0  # concurrency helps
            assert row.serial_makespan > row.makespan
        by_pair = result.by_pair()
        assert list(by_pair) == [("nn", "needle")]

    def test_full_beats_or_matches_half(self, runner):
        result = ex.fig4_concurrency(
            pairs=[("nn", "srad")], na_values=(8,), scale="tiny", runner=runner
        )
        half = next(r for r in result.rows if r.scenario == "half")
        full = next(r for r in result.rows if r.scenario == "full")
        assert full.improvement_pct >= half.improvement_pct - 3.0

    def test_stats(self, runner):
        result = ex.fig4_concurrency(
            pairs=[("nn", "needle")], na_values=(4,), scale="tiny", runner=runner
        )
        mx, avg = result.stats("full")
        assert mx >= avg > 0
        assert result.stats("bogus") == (0.0, 0.0)


class TestFig5:
    def test_leftover_overlaps_oversubscribed(self):
        result = ex.fig5_oversubscription()
        assert result.total_requested_blocks == 1203
        assert result.device_block_ceiling == 208
        assert result.oversubscribed
        assert result.max_kernel_concurrency == 5
        assert result.makespan < result.serialized_makespan
        assert len(result.rows()) == 5

    def test_symbiosis_admission_serializes(self):
        leftover = ex.fig5_oversubscription()
        symbiosis = ex.fig5_oversubscription(
            admission=symbiosis_admission(tesla_k20())
        )
        assert symbiosis.max_kernel_concurrency < leftover.max_kernel_concurrency
        assert symbiosis.makespan > leftover.makespan


class TestFig6:
    def test_stretch_and_recovery(self, runner):
        result = ex.fig6_effective_latency(
            pair=("nn", "needle"), na_values=(8, 16), scale="small",
            runner=runner,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            # Default concurrency stretches Le well past expectation...
            assert row.default_ratio > 1.5
            # ...the mutex brings it back near the uncontended expectation.
            assert row.sync_ratio < 1.3
        # Stretch grows with concurrency.
        assert result.rows[1].default_ratio > result.rows[0].default_ratio
        assert result.worst_default_ratio == result.rows[1].default_ratio


class TestFig7Fig8:
    def test_ordering_study_structure(self, runner):
        result = ex.fig7_ordering_default(
            pairs=[("nn", "needle")], num_apps=8, scale="tiny", runner=runner
        )
        assert not result.memory_sync
        rows = result.by_pair()[("nn", "needle")]
        assert len(rows) == 5
        # Exactly one worst order with normalized performance 1.0.
        normalized = sorted(r.normalized_performance for r in rows)
        assert normalized[0] == pytest.approx(1.0)
        assert all(n >= 1.0 for n in normalized)

    def test_spread_stats(self, runner):
        result = ex.fig8_ordering_sync(
            pairs=[("nn", "needle")], num_apps=8, scale="tiny", runner=runner
        )
        assert result.memory_sync
        mx, avg = result.stats()
        assert mx >= avg >= 0


class TestFig9Fig10:
    def test_power_concurrency_scenarios(self, runner):
        result = ex.fig9_power_concurrency(
            pair=("nn", "needle"),
            num_apps=8,
            pairs_for_stats=[("nn", "needle")],
            scale="tiny",
            runner=runner,
            power_interval=50e-6,
        )
        labels = [s.label for s in result.scenarios]
        assert labels == ["serial", "half-concurrent", "full-concurrent"]
        serial, half, full = result.scenarios
        # Makespan shrinks with concurrency; peak power does not decrease.
        assert full.makespan < serial.makespan
        assert full.peak_power >= serial.peak_power - 1.0
        # Energy improves (the headline energy claim).
        assert full.energy < serial.energy
        assert result.average_energy_improvement > 0
        pair, best = result.best_energy_improvement
        assert best >= result.average_energy_improvement

    def test_power_sync_scenarios(self, runner):
        result = ex.fig10_power_sync(
            pair=("nn", "needle"),
            num_apps=8,
            pairs_for_stats=[("nn", "needle")],
            scale="tiny",
            runner=runner,
            power_interval=50e-6,
        )
        labels = [(s.label, s.memory_sync) for s in result.scenarios]
        assert labels == [("default", False), ("memory-sync", True)]
        # The paper: sync "does not impose any significant power consumption".
        assert abs(result.power_delta_pct) < 30.0
        assert ("nn", "needle") in result.energy_improvement_by_pair


class TestTable3:
    def test_paper_scale_rows(self):
        rows = ex.table3_geometry(scale="paper")
        by_kernel = {r["kernel"]: r for r in rows}
        assert by_kernel["Fan1"]["calls"] == 511
        assert by_kernel["Fan2"]["grid_dim"] == "(32, 32, 1)"
        assert by_kernel["euclid"]["max_blocks"] == 168
        assert by_kernel["needle_cuda_shared_1"]["calls"] == 16
        assert by_kernel["needle_cuda_shared_2"]["calls"] == 15
        assert by_kernel["srad_cuda_1"]["calls"] == 10
        assert by_kernel["needle_cuda_shared_1"]["grid_dim"].startswith("(1, 1, 1)")

    def test_tiny_scale_rows_exist(self):
        assert len(ex.table3_geometry(scale="tiny")) == 7  # 7 kernels total


class TestHomogeneous:
    def test_structure(self, runner):
        from repro.core.experiments import homogeneous_scaling

        result = homogeneous_scaling(
            apps=["nn", "needle"], na_values=(4, 8), scale="tiny", runner=runner
        )
        assert len(result.rows) == 4
        assert set(result.by_app()) == {"nn", "needle"}
        for row in result.rows:
            assert row.serial_makespan > 0
            assert row.concurrent_makespan > 0
        app, best = result.best_improvement()
        assert best == max(r.improvement_pct for r in result.rows)

    def test_self_concurrency_helps_underutilizers(self, runner):
        from repro.core.experiments import homogeneous_scaling

        result = homogeneous_scaling(
            apps=["needle"], na_values=(8,), scale="small", runner=runner
        )
        assert result.rows[0].improvement_pct > 20.0


class TestHeadline:
    def test_headline_rows_cover_all_claims(self, runner):
        result = ex.headline_numbers(num_apps=4, scale="tiny", runner=runner)
        rows = result.rows()
        assert len(rows) == 10
        claims = {r["claim"] for r in rows}
        assert "max full-concurrent improvement" in claims
        assert all("paper_pct" in r and "measured_pct" in r for r in rows)
