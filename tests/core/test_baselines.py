"""Tests for the related-work comparators."""

import pytest

from repro.core.baselines import chunk_profile, symbiosis_admission, wende_schedule
from repro.framework.kernel import TransferPhase
from repro.framework.scheduler import SchedulingOrder, make_schedule
from repro.gpu.block_scheduler import GridState
from repro.gpu.commands import KernelLaunchCommand
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.gpu.specs import tesla_k20
from repro.sim.engine import Environment


def grid_state(env, blocks, tpb=64):
    kd = KernelDescriptor("k", Dim3(blocks), Dim3(tpb), block_duration=1e-6,
                          registers_per_thread=0)
    cmd = KernelLaunchCommand(env, kd)
    return GridState(cmd=cmd, to_place=blocks, outstanding=1)


class TestSymbiosisAdmission:
    def test_admits_when_sum_fits(self):
        env = Environment()
        admit = symbiosis_admission(tesla_k20())
        candidate = grid_state(env, 100)
        active = [grid_state(env, 100)]
        assert admit(candidate, active)

    def test_rejects_block_oversubscription(self):
        env = Environment()
        admit = symbiosis_admission(tesla_k20())
        # 150 + 100 = 250 > 208 device blocks.
        assert not admit(grid_state(env, 150), [grid_state(env, 100)])

    def test_rejects_thread_oversubscription(self):
        env = Environment()
        admit = symbiosis_admission(tesla_k20())
        # 2 x 100 blocks x 256 threads = 51200 > 26624 device threads.
        a = grid_state(env, 100, tpb=256)
        b = grid_state(env, 100, tpb=256)
        assert not admit(a, [b])

    def test_admits_alone(self):
        env = Environment()
        admit = symbiosis_admission(tesla_k20())
        # Even an oversubscribing kernel runs alone (it just takes waves).
        assert admit(grid_state(env, 150), [])


class TestChunkProfile:
    def test_buffers_split_to_chunk_size(self):
        from repro.apps.nn import NNApp

        profile = NNApp.build_profile(records=42764)
        chunked = chunk_profile(profile, chunk_bytes=64 * 1024)
        phase = next(p for p in chunked.phases if isinstance(p, TransferPhase))
        assert all(b.nbytes <= 64 * 1024 for b in phase.buffers)
        assert phase.total_bytes == profile.phases[0].total_bytes
        assert len(phase.buffers) > len(profile.phases[0].buffers)

    def test_chunk_names_indexed(self):
        from repro.apps.nn import NNApp

        profile = NNApp.build_profile(records=42764)
        chunked = chunk_profile(profile, chunk_bytes=128 * 1024)
        phase = next(p for p in chunked.phases if isinstance(p, TransferPhase))
        assert phase.buffers[0].name.endswith("[0]")
        assert phase.buffers[1].name.endswith("[1]")

    def test_non_transfer_phases_untouched(self):
        from repro.apps.srad import SradApp

        profile = SradApp.build_profile(n=64, iterations=2)
        chunked = chunk_profile(profile, chunk_bytes=1024)
        assert profile.kernel_launches == chunked.kernel_launches
        assert len(profile.phases) == len(chunked.phases)

    def test_validation(self):
        from repro.apps.nn import NNApp

        with pytest.raises(ValueError):
            chunk_profile(NNApp.build_profile(records=64), chunk_bytes=0)


class TestWendeSchedule:
    def test_equals_round_robin_order(self):
        types = ["X"] * 3 + ["Y"] * 3
        assert wende_schedule(types) == make_schedule(
            types, SchedulingOrder.ROUND_ROBIN
        )
