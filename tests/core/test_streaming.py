"""Tests for the streaming workload manager and dispatch policies."""

import warnings

import numpy as np
import pytest

from repro.core.streaming import (
    AdmissionStallWarning,
    Arrival,
    ConcurrencyCapDispatcher,
    GreedyDispatcher,
    PowerCapDispatcher,
    poisson_arrivals,
    run_streaming,
)

MIX = [("nn", 2), ("needle", 1)]


def small_trace(rate=8000, duration=0.004, seed=1):
    return poisson_arrivals(rate, duration, MIX, seed=seed)


class TestArrivals:
    def test_poisson_trace_properties(self):
        arrivals = poisson_arrivals(1000, 0.1, MIX, seed=0)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 0.1 for t in times)
        # ~100 expected; allow generous slack.
        assert 50 < len(arrivals) < 160
        assert {a.type_name for a in arrivals} <= {"nn", "needle"}
        assert [a.index for a in arrivals] == list(range(len(arrivals)))

    def test_mix_weights_respected(self):
        arrivals = poisson_arrivals(5000, 0.1, [("nn", 9), ("needle", 1)], seed=2)
        nn_share = sum(1 for a in arrivals if a.type_name == "nn") / len(arrivals)
        assert nn_share > 0.75

    def test_deterministic_per_seed(self):
        a = poisson_arrivals(1000, 0.01, MIX, seed=5)
        b = poisson_arrivals(1000, 0.01, MIX, seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0, MIX)
        with pytest.raises(ValueError):
            poisson_arrivals(10, -1.0, MIX)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 1.0, [("nn", 0.0)])


class TestDispatchers:
    def test_greedy_admits_always(self):
        assert GreedyDispatcher().may_admit(100, 500.0)

    def test_concurrency_cap(self):
        d = ConcurrencyCapDispatcher(4)
        assert d.may_admit(3, 0.0)
        assert not d.may_admit(4, 0.0)
        with pytest.raises(ValueError):
            ConcurrencyCapDispatcher(0)

    def test_power_cap(self):
        d = PowerCapDispatcher(100.0)
        assert d.may_admit(1, 60.0)
        assert not d.may_admit(1, 120.0)
        assert d.may_admit(0, 500.0)  # never starve an idle device
        with pytest.raises(ValueError):
            PowerCapDispatcher(-1.0)


class TestRunStreaming:
    def test_all_jobs_complete(self):
        arrivals = small_trace()
        result = run_streaming(
            arrivals, GreedyDispatcher(), num_streams=16, scale="tiny"
        )
        assert result.jobs == len(arrivals)
        assert len(result.sojourn_times) == len(arrivals)
        assert len(result.records) == len(arrivals)
        assert all(s > 0 for s in result.sojourn_times)
        assert result.throughput > 0
        assert result.energy > 0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            run_streaming([], GreedyDispatcher())

    def test_serialized_cap_one(self):
        arrivals = small_trace(rate=12000)
        result = run_streaming(
            arrivals, ConcurrencyCapDispatcher(1), num_streams=16, scale="tiny"
        )
        assert result.peak_in_flight == 1
        # Completions never overlap: each record starts after the previous
        # admitted one finished.
        recs = sorted(
            (r for r in result.records if r.spawn_time > 0),
            key=lambda r: r.spawn_time,
        )
        for a, b in zip(recs, recs[1:]):
            assert b.spawn_time >= a.complete_time - 1e-12

    def test_cap_enforced(self):
        arrivals = small_trace(rate=16000)
        result = run_streaming(
            arrivals, ConcurrencyCapDispatcher(3), num_streams=16, scale="tiny"
        )
        assert result.peak_in_flight <= 3

    def test_greedy_faster_than_serialized(self):
        arrivals = small_trace(rate=16000)
        greedy = run_streaming(
            arrivals, GreedyDispatcher(), num_streams=16, scale="tiny"
        )
        serial = run_streaming(
            arrivals, ConcurrencyCapDispatcher(1), num_streams=16, scale="tiny"
        )
        assert greedy.mean_sojourn < serial.mean_sojourn
        assert greedy.completion_time <= serial.completion_time

    def test_power_cap_limits_admission_under_load(self):
        arrivals = small_trace(rate=20000)
        greedy = run_streaming(
            arrivals, GreedyDispatcher(), num_streams=16, scale="tiny"
        )
        capped = run_streaming(
            arrivals,
            PowerCapDispatcher(max(greedy.average_power * 0.9, 48.0)),
            num_streams=16,
            scale="tiny",
        )
        # Throttling shows up as admission queueing (jobs wait for headroom)
        # and can only slow jobs down, never speed them up.
        assert sum(capped.queue_delays) > sum(greedy.queue_delays)
        assert capped.mean_sojourn >= greedy.mean_sojourn - 1e-12

    def test_deterministic(self):
        arrivals = small_trace()
        a = run_streaming(arrivals, GreedyDispatcher(), num_streams=8, scale="tiny")
        b = run_streaming(arrivals, GreedyDispatcher(), num_streams=8, scale="tiny")
        assert a.completion_time == b.completion_time
        assert a.sojourn_times == b.sojourn_times

    def test_summary_text(self):
        arrivals = small_trace()
        result = run_streaming(arrivals, GreedyDispatcher(), num_streams=8, scale="tiny")
        assert "jobs/s" in result.summary()

    def test_p99_between_p95_and_max(self):
        arrivals = small_trace(rate=16000)
        result = run_streaming(
            arrivals, ConcurrencyCapDispatcher(2), num_streams=8, scale="tiny"
        )
        assert result.p95_sojourn <= result.p99_sojourn <= max(result.sojourn_times)


class TestQueueFairness:
    """Queued jobs are released strictly FIFO by (arrival time, index)."""

    def test_fifo_release_with_tied_arrival_times(self):
        # One opener occupies the serialized device long enough for all
        # the tied arrivals to finish host-side preparation and queue up.
        # gaussian prepares much slower than nn, so a prepare-completion-
        # ordered queue (the old Store behaviour) would release the nn
        # jobs first; strict arrival-FIFO must release by index instead.
        arrivals = [
            Arrival(index=0, time=0.0, type_name="gaussian"),
            Arrival(index=1, time=1e-6, type_name="gaussian"),
            Arrival(index=2, time=1e-6, type_name="nn"),
            Arrival(index=3, time=1e-6, type_name="gaussian"),
            Arrival(index=4, time=1e-6, type_name="nn"),
        ]
        result = run_streaming(
            arrivals, ConcurrencyCapDispatcher(1), num_streams=4, scale="tiny"
        )
        order = [
            r.launch_index
            for r in sorted(result.records, key=lambda r: r.spawn_time)
        ]
        assert order == [0, 1, 2, 3, 4]

    def test_tie_break_is_deterministic(self):
        arrivals = [
            Arrival(index=0, time=0.0, type_name="needle"),
            Arrival(index=1, time=1e-6, type_name="nn"),
            Arrival(index=2, time=1e-6, type_name="needle"),
            Arrival(index=3, time=1e-6, type_name="nn"),
        ]
        runs = [
            run_streaming(
                arrivals,
                ConcurrencyCapDispatcher(1),
                num_streams=4,
                scale="tiny",
            )
            for _ in range(2)
        ]
        orders = [
            [
                r.launch_index
                for r in sorted(run.records, key=lambda r: r.spawn_time)
            ]
            for run in runs
        ]
        assert orders[0] == orders[1] == [0, 1, 2, 3]


class TestStallGuard:
    """PowerCapDispatcher starvation guard (stall_timeout)."""

    def test_undersized_budget_stalls_head_without_guard(self):
        arrivals = small_trace(rate=16000, duration=0.002)
        with warnings.catch_warnings():
            warnings.simplefilter("error", AdmissionStallWarning)
            result = run_streaming(
                arrivals,
                PowerCapDispatcher(watts=1.0),
                num_streams=4,
                scale="tiny",
            )
        # Budget below the idle floor: every admission waits for a full
        # drain, i.e. the run is serialized.
        assert result.peak_in_flight == 1

    def test_guard_warns_and_releases_head(self):
        # gaussian jobs run ~1 ms each, far longer than the 0.2 ms stall
        # timeout, so the head-of-line wait for a full drain must trip
        # the guard.
        arrivals = poisson_arrivals(2000, 0.004, [("gaussian", 1)], seed=1)
        unguarded = run_streaming(
            arrivals, PowerCapDispatcher(watts=1.0), num_streams=4, scale="tiny"
        )
        with pytest.warns(AdmissionStallWarning):
            guarded = run_streaming(
                arrivals,
                PowerCapDispatcher(watts=1.0, stall_timeout=2e-4),
                num_streams=4,
                scale="tiny",
            )
        # The guard forces progress: concurrency exceeds 1 and the run
        # finishes sooner than the fully serialized version.
        assert guarded.peak_in_flight > 1
        assert guarded.completion_time < unguarded.completion_time

    def test_generous_budget_never_warns(self):
        arrivals = small_trace(rate=8000, duration=0.002)
        with warnings.catch_warnings():
            warnings.simplefilter("error", AdmissionStallWarning)
            result = run_streaming(
                arrivals,
                PowerCapDispatcher(watts=500.0, stall_timeout=1e-3),
                num_streams=8,
                scale="tiny",
            )
        assert result.jobs == len(arrivals)

    def test_stall_timeout_validation(self):
        with pytest.raises(ValueError):
            PowerCapDispatcher(50.0, stall_timeout=0.0)
        with pytest.raises(ValueError):
            PowerCapDispatcher(50.0, stall_timeout=-1.0)
