"""Tests for the experiment runner."""

import pytest

from repro.core.runner import ExperimentRunner, RunConfig, RunResult, quick_run
from repro.core.workload import Workload
from repro.framework.scheduler import SchedulingOrder


@pytest.fixture
def runner():
    return ExperimentRunner()


@pytest.fixture
def workload():
    return Workload.heterogeneous_pair("nn", "needle", 4, scale="tiny")


class TestRunConfig:
    def test_label_contents(self, workload):
        cfg = RunConfig(workload=workload, num_streams=4, memory_sync=True)
        label = cfg.label()
        assert "NS=4" in label
        assert "sync" in label
        assert cfg.num_apps == 4


class TestRun:
    def test_run_executes_all_apps(self, runner, workload):
        result = runner.run(RunConfig(workload=workload, num_streams=2))
        assert len(result.harness.records) == 4
        assert result.makespan > 0
        assert result.energy > 0
        assert runner.runs_executed == 1

    def test_runs_are_deterministic(self, runner, workload):
        cfg = RunConfig(workload=workload, num_streams=4, seed=3)
        a = runner.run(cfg)
        b = runner.run(cfg)
        assert a.makespan == b.makespan
        assert a.energy == b.energy

    def test_order_changes_launch_sequence(self, runner, workload):
        fifo = runner.run(RunConfig(workload=workload, num_streams=2))
        rev = runner.run(
            RunConfig(
                workload=workload,
                num_streams=2,
                order=SchedulingOrder.REVERSE_FIFO,
            )
        )
        first_fifo = min(fifo.harness.records, key=lambda r: r.launch_index)
        first_rev = min(rev.harness.records, key=lambda r: r.launch_index)
        assert first_fifo.type_name == "nn"
        assert first_rev.type_name == "needle"


class TestSerialBaseline:
    def test_serial_uses_one_stream(self, runner, workload):
        serial = runner.run_serial(workload)
        assert serial.config.num_streams == 1
        assert all(r.stream_index == 0 for r in serial.harness.records)

    def test_serial_cached(self, runner, workload):
        a = runner.run_serial(workload)
        b = runner.run_serial(workload)
        assert a is b
        assert runner.runs_executed == 1

    def test_improvement_vs_serial(self, runner, workload):
        pct, run, serial = runner.improvement_vs_serial(
            RunConfig(workload=workload, num_streams=4)
        )
        assert pct == pytest.approx(run.improvement_over(serial))
        assert serial.makespan >= run.makespan  # concurrency never hurts here


class TestComparisons:
    def test_improvement_over(self, runner, workload):
        serial = runner.run_serial(workload)
        conc = runner.run(RunConfig(workload=workload, num_streams=4))
        pct = conc.improvement_over(serial)
        assert 0 < pct < 100
        assert conc.energy_improvement_over(serial) < 100

    def test_ordering_matrix_runs_all_orders(self, runner, workload):
        results = runner.ordering_matrix(workload, num_streams=4, memory_sync=False)
        assert len(results) == 5
        assert {str(o) for o in results} == {
            "naive-fifo", "round-robin", "random-shuffle",
            "reverse-fifo", "reverse-round-robin",
        }


class TestQuickRun:
    def test_quick_run_smoke(self):
        result = quick_run(
            pair=("nn", "needle"), num_apps=4, num_streams=4, scale="tiny"
        )
        assert isinstance(result, RunResult)
        assert "nn" in result.summary()
