"""Integration tests for the test harness (paper Section IV)."""

import pytest

from repro.apps.registry import get_app
from repro.framework.harness import HarnessConfig, HarnessResult, TestHarness
from repro.gpu.commands import CopyDirection


def small_apps(kind="nn", count=2, **kwargs):
    defaults = {"nn": {"records": 2048}, "needle": {"n": 64},
                "gaussian": {"n": 48}, "srad": {"n": 64, "iterations": 2}}
    params = {**defaults[kind], **kwargs}
    return [get_app(kind, instance=i, **params) for i in range(count)]


class TestConfigValidation:
    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            HarnessConfig(apps=[], num_streams=1)

    def test_bad_stream_count(self):
        with pytest.raises(ValueError):
            HarnessConfig(apps=small_apps(), num_streams=0)

    def test_default_spec_is_k20(self):
        cfg = HarnessConfig(apps=small_apps(), num_streams=1)
        assert cfg.spec.name == "Tesla K20"


class TestExecution:
    def test_all_apps_complete(self):
        result = TestHarness(
            HarnessConfig(apps=small_apps(count=4), num_streams=2)
        ).run()
        assert len(result.records) == 4
        assert all(r.complete_time > r.gpu_start for r in result.records)
        assert result.makespan > 0

    def test_every_app_records_transfers_and_kernels(self):
        result = TestHarness(
            HarnessConfig(apps=small_apps("needle", 2), num_streams=2)
        ).run()
        for rec in result.records:
            assert rec.transfer_events(CopyDirection.HTOD)
            assert rec.transfer_events(CopyDirection.DTOH)
            assert rec.kernels
            # needle: 2*(n/32) - 1 launches.
            assert len(rec.kernels) == 3  # n=64 -> tiles=2 -> 2+1

    def test_stream_assignment_round_robin(self):
        result = TestHarness(
            HarnessConfig(apps=small_apps(count=4), num_streams=2)
        ).run()
        assert [r.stream_index for r in result.records] == [0, 1, 0, 1]
        assert result.stream_assignments == {0: 2, 1: 2}

    def test_serial_vs_concurrent_makespan(self):
        """More streams cannot make this workload slower."""
        apps = lambda: small_apps("needle", 4)
        serial = TestHarness(HarnessConfig(apps=apps(), num_streams=1)).run()
        parallel = TestHarness(HarnessConfig(apps=apps(), num_streams=4)).run()
        assert parallel.makespan < serial.makespan

    def test_single_stream_serializes_apps(self):
        result = TestHarness(
            HarnessConfig(apps=small_apps(count=3), num_streams=1)
        ).run()
        recs = sorted(result.records, key=lambda r: r.gpu_start)
        for a, b in zip(recs, recs[1:]):
            assert b.gpu_start >= a.complete_time

    def test_memory_sync_produces_disjoint_bursts(self):
        result = TestHarness(
            HarnessConfig(apps=small_apps("needle", 4), num_streams=4,
                          memory_sync=True)
        ).run()
        # Under the mutex, each app's HtoD copies are consecutive: effective
        # latency equals the sum of its own service times (plus enqueue gaps).
        for rec in result.records:
            le = rec.effective_latency(CopyDirection.HTOD)
            pure = rec.pure_transfer_time(CopyDirection.HTOD)
            assert le < pure * 1.5 + 100e-6

    def test_trace_recording_optional(self):
        cfg = HarnessConfig(apps=small_apps(), num_streams=2, record_trace=True)
        result = TestHarness(cfg).run()
        assert result.trace is not None
        assert len(result.trace.spans) > 0
        cfg2 = HarnessConfig(apps=small_apps(), num_streams=2)
        assert TestHarness(cfg2).run().trace is None

    def test_power_accounting(self):
        result = TestHarness(
            HarnessConfig(apps=small_apps("srad", 2), num_streams=2,
                          power_interval=50e-6)
        ).run()
        assert result.energy > 0
        assert result.peak_power >= result.average_power > 0
        assert result.sampled_average_power > 0
        assert len(result.power_samples) > 2

    def test_spawn_stagger_orders_launches(self):
        result = TestHarness(
            HarnessConfig(apps=small_apps(count=3), num_streams=3)
        ).run()
        spawns = [r.spawn_time for r in result.records]
        assert spawns == sorted(spawns)
        assert spawns[0] > 0  # thread creation cost before first app

    def test_spawn_jitter_deterministic_per_seed(self):
        def run(seed):
            return TestHarness(
                HarnessConfig(apps=small_apps("needle", 3), num_streams=3,
                              spawn_jitter=20e-6, seed=seed)
            ).run().makespan

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_device_memory_released(self):
        cfg = HarnessConfig(apps=small_apps(count=3), num_streams=3)
        harness = TestHarness(cfg)
        result = harness.run()
        # All cudaFrees executed: in_use returns to zero (fresh device per
        # run, so check via a re-run with trace on the device's allocator).
        assert all(r.complete_time > 0 for r in result.records)

    def test_summary_text(self):
        result = TestHarness(
            HarnessConfig(apps=small_apps(count=2), num_streams=2)
        ).run()
        text = result.summary()
        assert "2 apps" in text
        assert "makespan" in text
