"""Focused tests for the AppThread lifecycle and transfer-mutex semantics."""

import pytest

from repro.apps.registry import get_app
from repro.framework.app_thread import AppContext, AppThread
from repro.framework.metrics import AppRecord
from repro.framework.stream import Stream
from repro.framework.sync import NullSynchronizer, TransferSynchronizer
from repro.gpu.commands import CopyDirection
from repro.gpu.device import GPUDevice
from repro.sim.engine import Environment


def make_thread(env, device, kind="nn", sync=None, instance=0, **kwargs):
    defaults = {"nn": {"records": 2048}, "srad": {"n": 64, "iterations": 2}}
    params = {**defaults.get(kind, {}), **kwargs}
    app = get_app(kind, instance=instance, **params)
    record = AppRecord(
        app_id=app.app_id,
        type_name=kind,
        instance=instance,
        stream_index=0,
        launch_index=0,
    )
    sync = sync or NullSynchronizer(env)
    return AppThread(env, device, app, sync, record), record


class TestLifecycle:
    def test_prepare_allocates_device_memory(self, env, device):
        thread, _ = make_thread(env, device)
        assert device.memory.in_use == 0
        env.run(until=env.process(thread.prepare()))
        assert device.memory.in_use > 0
        assert len(thread.ctx.device_allocations) == 2  # nn: locations + distances

    def test_cleanup_frees_device_memory(self, env, device):
        thread, _ = make_thread(env, device)
        env.run(until=env.process(thread.prepare()))
        env.run(until=env.process(thread.cleanup()))
        assert device.memory.in_use == 0
        assert thread.ctx.device_allocations == {}

    def test_run_without_stream_fails(self, env, device):
        thread, _ = make_thread(env, device)
        env.run(until=env.process(thread.prepare()))
        with pytest.raises(RuntimeError, match="no stream"):
            env.run(until=env.process(thread.run()))

    def test_full_lifecycle_records_everything(self, env, device):
        thread, record = make_thread(env, device)
        stream = Stream(env, device.create_stream(), 0)
        env.run(until=env.process(thread.prepare()))
        thread.assign_stream(stream)
        env.run(until=env.process(thread.run()))
        assert record.complete_time > record.gpu_start >= 0
        assert record.transfers and record.kernels
        assert stream.completed_apps == [thread.app.app_id]

    def test_srad_in_loop_transfers_recorded(self, env, device):
        thread, record = make_thread(env, device, kind="srad")
        stream = Stream(env, device.create_stream(), 0)
        env.run(until=env.process(thread.prepare()))
        thread.assign_stream(stream)
        env.run(until=env.process(thread.run()))
        dtoh = record.transfer_events(CopyDirection.DTOH)
        # 2 per-iteration sum readbacks + the final image.
        assert len(dtoh) == 3
        # Kernel launches: 2 per iteration.
        assert len(record.kernels) == 4


class TestMutexSemantics:
    def run_two(self, env, device, sync):
        streams = [Stream(env, device.create_stream(), i) for i in range(2)]
        threads = []
        for i in range(2):
            thread, record = make_thread(env, device, sync=sync, instance=i)
            env.run(until=env.process(thread.prepare()))
            thread.assign_stream(streams[i])
            threads.append((thread, record))
        procs = [env.process(t.run()) for t, _ in threads]
        env.run(until=env.all_of(procs))
        return [r for _, r in threads]

    def test_mutex_holds_span_transfer_completion(self, env, device):
        sync = TransferSynchronizer(env)
        records = self.run_two(env, device, sync)
        assert sync.total_holds == 2
        intervals = sorted(sync.hold_intervals())
        # Disjoint critical sections...
        assert intervals[0][1] <= intervals[1][0]
        # ...and each hold covers its app's full HtoD span.
        for record, (acq, rel) in zip(records, intervals):
            for event in record.transfer_events(CopyDirection.HTOD):
                assert acq <= event.started
                assert event.completed <= rel + 1e-12

    def test_null_sync_does_not_block(self, env, device):
        sync = NullSynchronizer(env)
        records = self.run_two(env, device, sync)
        starts = [r.gpu_start for r in records]
        # Both GPU sections begin immediately (no mutual exclusion).
        assert starts[0] == starts[1]


class TestContext:
    def test_drain_new_transfers_resets(self, env, device):
        ctx = AppContext(
            env=env,
            device=device,
            stream=device.create_stream(),
            host_spec=device.spec.host,
            app_id="x#0",
        )
        cmd = ctx.stream.enqueue_memcpy(CopyDirection.HTOD, 1024, app_id="x#0")
        ctx.note_transfer(cmd)
        assert ctx.drain_new_transfers() == [cmd]
        assert ctx.drain_new_transfers() == []
        # The permanent log keeps everything.
        assert ctx.memcpy_commands == [cmd]
