"""Tests for Stream and StreamManager."""

import pytest

from repro.framework.stream import Stream
from repro.framework.stream_manager import StreamManager
from repro.gpu.device import GPUDevice


@pytest.fixture
def manager(env, device):
    return StreamManager(env, device, num_streams=4)


class TestStreamManager:
    def test_creates_requested_pool(self, env, device):
        manager = StreamManager(env, device, num_streams=8)
        assert manager.num_streams == 8
        assert len({s.sid for s in manager.streams}) == 8

    def test_validation(self, env, device):
        with pytest.raises(ValueError):
            StreamManager(env, device, num_streams=0)
        with pytest.raises(ValueError):
            StreamManager(env, device, 2, policy="random")

    def test_round_robin_assignment(self, manager):
        """App k gets stream k mod NS — launch order maps onto the pool."""
        assigned = [manager.acquire(f"app#{i}").index for i in range(10)]
        assert assigned == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
        counts = manager.assignment_counts()
        assert counts == {0: 3, 1: 3, 2: 2, 3: 2}

    def test_least_loaded_assignment(self, env, device):
        manager = StreamManager(env, device, 3, policy="least-loaded")
        assert [manager.acquire(f"a{i}").index for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_destroy_all(self, manager):
        device = manager.device
        before = len(device.streams)
        manager.destroy_all()
        assert manager.streams == []
        assert len(device.streams) == before - 4


class TestStreamOccupancy:
    def test_apps_sharing_stream_serialize(self, env, manager):
        """Two apps on the same stream run back-to-back (host lock)."""
        stream = manager.streams[0]
        log = []

        def app(name, work):
            token = yield from stream.occupy(name)
            log.append(("start", name, env.now))
            yield env.timeout(work)
            log.append(("end", name, env.now))
            stream.vacate(name, token)

        env.process(app("first", 5))
        env.process(app("second", 3))
        env.run()
        assert log == [
            ("start", "first", 0),
            ("end", "first", 5),
            ("start", "second", 5),
            ("end", "second", 8),
        ]
        assert stream.completed_apps == ["first", "second"]

    def test_current_app_tracking(self, env, manager):
        stream = manager.streams[1]

        def app():
            token = yield from stream.occupy("x")
            assert stream.current_app == "x"
            yield env.timeout(1)
            stream.vacate("x", token)
            assert stream.current_app is None

        env.process(app())
        env.run()
        assert stream.apps_executed == 1

    def test_distinct_streams_do_not_serialize(self, env, manager):
        starts = []

        def app(stream, name):
            token = yield from stream.occupy(name)
            starts.append((name, env.now))
            yield env.timeout(5)
            stream.vacate(name, token)

        env.process(app(manager.streams[0], "a"))
        env.process(app(manager.streams[1], "b"))
        env.run()
        assert [t for _, t in starts] == [0, 0]
