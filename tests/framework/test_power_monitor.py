"""Tests for the PowerMonitor (NVML-style sampling)."""

import pytest

from repro.framework.power_monitor import DEFAULT_INTERVAL, PowerMonitor
from repro.gpu.commands import CopyDirection
from repro.gpu.kernels import Dim3, KernelDescriptor


class TestSampling:
    def test_paper_default_interval(self):
        """The methodology samples at 15 ms."""
        assert DEFAULT_INTERVAL == pytest.approx(15e-3)

    def test_sample_cadence(self, env, device):
        monitor = PowerMonitor(env, device, interval=1e-3)
        monitor.start()
        env.timeout(10.5e-3)
        env.run(until=10.5e-3)
        monitor.stop()
        times, watts = monitor.as_arrays()
        assert monitor.sample_count == 11  # t = 0, 1, ..., 10 ms
        assert times[1] - times[0] == pytest.approx(1e-3)

    def test_idle_readings(self, env, device):
        monitor = PowerMonitor(env, device, interval=1e-3)
        monitor.start()
        env.run(until=5e-3)
        assert monitor.average_power() == pytest.approx(device.spec.power.idle)
        assert monitor.peak_power() == pytest.approx(device.spec.power.idle)

    def test_start_idempotent(self, env, device):
        monitor = PowerMonitor(env, device, interval=1e-3)
        monitor.start()
        monitor.start()
        env.run(until=3.5e-3)
        assert monitor.sample_count == 4

    def test_interval_validation(self, env, device):
        with pytest.raises(ValueError):
            PowerMonitor(env, device, interval=0)

    def test_empty_monitor_stats(self, env, device):
        monitor = PowerMonitor(env, device)
        assert monitor.average_power() == 0.0
        assert monitor.peak_power() == 0.0
        assert monitor.energy_estimate() == 0.0


class TestEnergyEstimate:
    def test_sampled_energy_close_to_exact(self, env, device):
        """The paper's Riemann-sum estimate must track the true integral."""
        kd = KernelDescriptor("k", Dim3(104), Dim3(256),
                              registers_per_thread=0, block_duration=2e-3)
        monitor = PowerMonitor(env, device, interval=0.1e-3)
        monitor.start()
        s = device.create_stream()
        s.enqueue_memcpy(CopyDirection.HTOD, 10**7)
        s.enqueue_kernel(kd)

        def stopper():
            yield s.synchronize_event()
            monitor.stop()

        env.process(stopper())
        env.run()
        exact = device.power.energy()
        sampled = monitor.energy_estimate()
        assert sampled == pytest.approx(exact, rel=0.15)
