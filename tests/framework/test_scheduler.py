"""Tests for the launch-order policies — verified against Figure 3 verbatim."""

import numpy as np
import pytest

from repro.framework.scheduler import (
    SchedulingOrder,
    all_orders,
    make_schedule,
    schedule_signature,
)

#: The paper's Figure 3 example: m = 4 copies of AX, n = 4 copies of AY.
TYPES = ["AX"] * 4 + ["AY"] * 4


def signature(order, rng=None):
    return schedule_signature(TYPES, make_schedule(TYPES, order, rng=rng))


class TestFigure3:
    def test_naive_fifo_matches_figure_3a(self):
        assert signature(SchedulingOrder.NAIVE_FIFO) == [
            "AX(1)", "AX(2)", "AX(3)", "AX(4)",
            "AY(1)", "AY(2)", "AY(3)", "AY(4)",
        ]

    def test_round_robin_matches_figure_3b(self):
        assert signature(SchedulingOrder.ROUND_ROBIN) == [
            "AX(1)", "AY(1)", "AX(2)", "AY(2)",
            "AX(3)", "AY(3)", "AX(4)", "AY(4)",
        ]

    def test_reverse_fifo_matches_figure_3d(self):
        assert signature(SchedulingOrder.REVERSE_FIFO) == [
            "AY(1)", "AY(2)", "AY(3)", "AY(4)",
            "AX(1)", "AX(2)", "AX(3)", "AX(4)",
        ]

    def test_reverse_round_robin_matches_figure_3e(self):
        assert signature(SchedulingOrder.REVERSE_ROUND_ROBIN) == [
            "AY(1)", "AX(1)", "AY(2)", "AX(2)",
            "AY(3)", "AX(3)", "AY(4)", "AX(4)",
        ]

    def test_random_shuffle_is_permutation_with_counts_preserved(self):
        """Figure 3c: same multiset of applications, order randomized."""
        rng = np.random.default_rng(7)
        sig = signature(SchedulingOrder.RANDOM_SHUFFLE, rng=rng)
        assert sorted(sig) == sorted(signature(SchedulingOrder.NAIVE_FIFO))

    def test_random_shuffle_deterministic_per_seed(self):
        s1 = make_schedule(TYPES, SchedulingOrder.RANDOM_SHUFFLE,
                           rng=np.random.default_rng(42))
        s2 = make_schedule(TYPES, SchedulingOrder.RANDOM_SHUFFLE,
                           rng=np.random.default_rng(42))
        s3 = make_schedule(TYPES, SchedulingOrder.RANDOM_SHUFFLE,
                           rng=np.random.default_rng(43))
        assert s1 == s2
        assert s1 != s3  # overwhelmingly likely for 8! permutations

    def test_random_shuffle_requires_rng(self):
        with pytest.raises(ValueError):
            make_schedule(TYPES, SchedulingOrder.RANDOM_SHUFFLE)


class TestGeneralization:
    def test_all_orders_listed_in_paper_sequence(self):
        assert [str(o) for o in all_orders()] == [
            "naive-fifo",
            "round-robin",
            "random-shuffle",
            "reverse-fifo",
            "reverse-round-robin",
        ]

    def test_uneven_split(self):
        types = ["X"] * 3 + ["Y"] * 1
        rr = schedule_signature(types, make_schedule(types, SchedulingOrder.ROUND_ROBIN))
        assert rr == ["X(1)", "Y(1)", "X(2)", "X(3)"]

    def test_three_types_round_robin(self):
        types = ["A", "A", "B", "B", "C", "C"]
        rr = schedule_signature(types, make_schedule(types, SchedulingOrder.ROUND_ROBIN))
        assert rr == ["A(1)", "B(1)", "C(1)", "A(2)", "B(2)", "C(2)"]

    def test_every_order_is_a_permutation(self):
        types = ["X"] * 5 + ["Y"] * 3
        rng = np.random.default_rng(0)
        for order in all_orders():
            perm = make_schedule(types, order, rng=rng)
            assert sorted(perm) == list(range(8))

    def test_relative_order_within_type_preserved(self):
        """All policies except shuffle keep instances of a type in order."""
        types = ["X"] * 4 + ["Y"] * 4
        for order in all_orders():
            if order is SchedulingOrder.RANDOM_SHUFFLE:
                continue
            perm = make_schedule(types, order)
            x_positions = [perm.index(i) for i in range(4)]
            y_positions = [perm.index(i) for i in range(4, 8)]
            assert x_positions == sorted(x_positions)
            assert y_positions == sorted(y_positions)

    def test_empty_workload(self):
        assert make_schedule([], SchedulingOrder.NAIVE_FIFO) == []
