"""Tests for the metrics module (effective latency, Eq. 1-2)."""

import pytest

from repro.framework.metrics import (
    AppRecord,
    TransferEvent,
    average_effective_latency,
    effective_latency,
    improvement_pct,
    makespan,
)
from repro.gpu.commands import CopyDirection


def transfer(direction, enq, start, end, nbytes=1000, buffer=""):
    return TransferEvent(
        direction=direction,
        nbytes=nbytes,
        buffer=buffer,
        enqueued=enq,
        started=start,
        completed=end,
    )


def record(app_id="a#0", stream=0, transfers=(), spawn=0.0, start=0.0, end=1.0):
    rec = AppRecord(
        app_id=app_id,
        type_name=app_id.split("#")[0],
        instance=0,
        stream_index=stream,
        launch_index=0,
        spawn_time=spawn,
        gpu_start=start,
        complete_time=end,
    )
    rec.transfers.extend(transfers)
    return rec


class TestEffectiveLatency:
    def test_eq2_span_of_transfers(self):
        """Le = Tend(last) - Tstart(first), including foreign interleaving."""
        rec = record(transfers=[
            transfer(CopyDirection.HTOD, 0.0, 0.0, 1.0),
            transfer(CopyDirection.HTOD, 0.0, 5.0, 6.0),  # gap = contention
        ])
        assert rec.effective_latency(CopyDirection.HTOD) == pytest.approx(6.0)
        assert effective_latency(rec) == pytest.approx(6.0)

    def test_per_direction(self):
        rec = record(transfers=[
            transfer(CopyDirection.HTOD, 0, 0.0, 1.0),
            transfer(CopyDirection.DTOH, 0, 10.0, 12.5),
        ])
        assert rec.effective_latency(CopyDirection.HTOD) == pytest.approx(1.0)
        assert rec.effective_latency(CopyDirection.DTOH) == pytest.approx(2.5)

    def test_none_when_no_transfers(self):
        assert record().effective_latency(CopyDirection.HTOD) is None

    def test_pure_transfer_time_is_service_sum(self):
        rec = record(transfers=[
            transfer(CopyDirection.HTOD, 0, 0.0, 1.0),
            transfer(CopyDirection.HTOD, 0, 5.0, 6.0),
        ])
        assert rec.pure_transfer_time(CopyDirection.HTOD) == pytest.approx(2.0)

    def test_queueing_delay(self):
        t = transfer(CopyDirection.HTOD, 1.0, 3.0, 4.0)
        assert t.queueing_delay == pytest.approx(2.0)
        assert t.service_time == pytest.approx(1.0)


class TestTwoLevelAverage:
    def test_paper_aggregation(self):
        """Average per stream first, then across streams."""
        records = [
            # Stream 0: two apps with Le 2 and 4 -> mean 3.
            record("a#0", 0, [transfer(CopyDirection.HTOD, 0, 0, 2)]),
            record("a#1", 0, [transfer(CopyDirection.HTOD, 0, 0, 4)]),
            # Stream 1: one app with Le 9.
            record("b#0", 1, [transfer(CopyDirection.HTOD, 0, 0, 9)]),
        ]
        # (3 + 9) / 2 = 6; a flat average would give 5.
        assert average_effective_latency(records) == pytest.approx(6.0)

    def test_apps_without_transfers_skipped(self):
        records = [
            record("a#0", 0, [transfer(CopyDirection.HTOD, 0, 0, 2)]),
            record("a#1", 0, []),
        ]
        assert average_effective_latency(records) == pytest.approx(2.0)

    def test_empty(self):
        assert average_effective_latency([]) == 0.0


class TestImprovement:
    def test_positive_when_faster(self):
        assert improvement_pct(100.0, 75.0) == pytest.approx(25.0)

    def test_negative_when_slower(self):
        assert improvement_pct(100.0, 110.0) == pytest.approx(-10.0)

    def test_baseline_validation(self):
        with pytest.raises(ValueError):
            improvement_pct(0.0, 1.0)


class TestMakespan:
    def test_span_of_schedule(self):
        records = [
            record("a#0", spawn=0.0, end=5.0),
            record("a#1", spawn=1.0, end=9.0),
        ]
        assert makespan(records) == pytest.approx(9.0)

    def test_empty(self):
        assert makespan([]) == 0.0

    def test_wall_time(self):
        rec = record(start=2.0, end=7.5)
        assert rec.wall_time == pytest.approx(5.5)
