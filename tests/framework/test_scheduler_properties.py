"""Property-based tests for the launch-order policies (hypothesis)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.framework.scheduler import (
    SchedulingOrder,
    all_orders,
    make_schedule,
    schedule_signature,
)

type_lists = st.lists(
    st.sampled_from(["A", "B", "C", "D"]), min_size=0, max_size=40
)


@given(types=type_lists, order=st.sampled_from(list(SchedulingOrder)),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_every_policy_yields_a_permutation(types, order, seed):
    rng = np.random.default_rng(seed)
    schedule = make_schedule(types, order, rng=rng)
    assert sorted(schedule) == list(range(len(types)))


@given(types=type_lists, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_type_multiset_preserved(types, seed):
    rng = np.random.default_rng(seed)
    for order in all_orders():
        schedule = make_schedule(types, order, rng=rng)
        assert sorted(types[i] for i in schedule) == sorted(types)


@given(types=type_lists)
def test_deterministic_policies_stable(types):
    for order in all_orders():
        if order is SchedulingOrder.RANDOM_SHUFFLE:
            continue
        assert make_schedule(types, order) == make_schedule(types, order)


@given(types=type_lists)
def test_within_type_order_preserved(types):
    """Non-shuffle policies keep each type's instances in FIFO order."""
    for order in all_orders():
        if order is SchedulingOrder.RANDOM_SHUFFLE:
            continue
        schedule = make_schedule(types, order)
        position = {idx: pos for pos, idx in enumerate(schedule)}
        by_type = {}
        for idx, name in enumerate(types):
            by_type.setdefault(name, []).append(idx)
        for indices in by_type.values():
            positions = [position[i] for i in indices]
            assert positions == sorted(positions)


@given(m=st.integers(min_value=0, max_value=20),
       n=st.integers(min_value=0, max_value=20))
def test_reverse_fifo_is_involution_on_grouped_input(m, n):
    """On FIFO-grouped input (the paper's setup), reversing the type blocks
    twice recovers Naive FIFO."""
    types = ["X"] * m + ["Y"] * n
    once = make_schedule(types, SchedulingOrder.REVERSE_FIFO)
    reversed_types = [types[i] for i in once]
    twice_rel = make_schedule(reversed_types, SchedulingOrder.REVERSE_FIFO)
    twice = [once[i] for i in twice_rel]
    assert twice == make_schedule(types, SchedulingOrder.NAIVE_FIFO)


@given(types=type_lists, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_signature_lists_every_instance_once(types, seed):
    rng = np.random.default_rng(seed)
    for order in all_orders():
        schedule = make_schedule(types, order, rng=rng)
        signature = schedule_signature(types, schedule)
        assert len(signature) == len(types)
        assert len(set(signature)) == len(types)  # labels are unique
