"""Tests for the transfer synchronizer (paper Section III-B)."""

import pytest

from repro.framework.sync import (
    NullSynchronizer,
    TransferSynchronizer,
    make_synchronizer,
)


class TestTransferSynchronizer:
    def test_exclusive_holds(self, env):
        sync = TransferSynchronizer(env)
        order = []

        def app(name, hold):
            token = yield from sync.acquire(name)
            order.append(("in", name, env.now))
            yield env.timeout(hold)
            order.append(("out", name, env.now))
            sync.release(name, token)

        env.process(app("a", 3))
        env.process(app("b", 2))
        env.process(app("c", 1))
        env.run()
        assert order == [
            ("in", "a", 0), ("out", "a", 3),
            ("in", "b", 3), ("out", "b", 5),
            ("in", "c", 5), ("out", "c", 6),
        ]
        assert sync.total_holds == 3
        assert sync.max_wait_queue == 2

    def test_hold_intervals_disjoint(self, env):
        sync = TransferSynchronizer(env)

        def app(name, hold):
            token = yield from sync.acquire(name)
            yield env.timeout(hold)
            sync.release(name, token)

        for i in range(5):
            env.process(app(f"app{i}", 1.5))
        env.run()
        intervals = sorted(sync.hold_intervals())
        assert len(intervals) == 5
        for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_enabled_flag(self, env):
        assert TransferSynchronizer(env).enabled is True
        assert NullSynchronizer(env).enabled is False


class TestNullSynchronizer:
    def test_never_blocks(self, env):
        sync = NullSynchronizer(env)
        times = []

        def app(name):
            token = yield from sync.acquire(name)
            times.append(env.now)
            yield env.timeout(10)
            sync.release(name, token)

        env.process(app("a"))
        env.process(app("b"))
        env.run()
        assert times == [0, 0]  # both entered immediately


class TestFactory:
    def test_make_synchronizer(self, env):
        assert isinstance(make_synchronizer(env, True), TransferSynchronizer)
        assert isinstance(make_synchronizer(env, False), NullSynchronizer)
