"""Tests for the Table II Kernel interface and AppProfile machinery."""

import pytest

from repro.framework.kernel import (
    TABLE_II,
    AppProfile,
    Buffer,
    KernelApp,
    KernelPhase,
    SyncPhase,
    TransferPhase,
)
from repro.gpu.commands import CopyDirection
from repro.gpu.kernels import Dim3, KernelDescriptor


def simple_profile(**overrides):
    kd = KernelDescriptor("k", Dim3(4), Dim3(64), block_duration=5e-6)
    defaults = dict(
        name="demo",
        data_dim="64",
        host_allocs=(Buffer("h", 1024),),
        device_allocs=(Buffer("d", 1024),),
        phases=(
            TransferPhase(CopyDirection.HTOD, (Buffer("in", 4096),)),
            KernelPhase((kd,)),
            TransferPhase(CopyDirection.DTOH, (Buffer("out", 2048),)),
        ),
    )
    defaults.update(overrides)
    return AppProfile(**defaults)


class TestTableII:
    """The paper's virtual-method interface must be fully present."""

    def test_all_seven_methods_exist(self):
        assert set(TABLE_II) == {
            "allocate_host_memory",
            "allocate_device_memory",
            "initialize_host_memory",
            "transfer_memory",
            "execute_kernel",
            "free_host_memory",
            "free_device_memory",
        }
        for method in TABLE_II:
            assert callable(getattr(KernelApp, method)), method

    def test_mapping_names_cuda_calls(self):
        assert "cudaMallocHost" in TABLE_II["allocate_host_memory"]
        assert "cudaMemcpyAsync" in TABLE_II["transfer_memory"]
        assert "cudaFree" in TABLE_II["free_device_memory"]

    def test_harness_uses_only_base_interface(self):
        """AppThread never references a concrete subclass (polymorphism,
        as in the paper: access Kernel methods 'without binding to the
        derived class')."""
        import inspect

        import repro.framework.app_thread as mod

        source = inspect.getsource(mod)
        for concrete in ("GaussianApp", "NNApp", "NeedleApp", "SradApp"):
            assert concrete not in source


class TestPhases:
    def test_transfer_phase_totals(self):
        phase = TransferPhase(
            CopyDirection.HTOD, (Buffer("a", 100), Buffer("b", 200))
        )
        assert phase.total_bytes == 300

    def test_transfer_phase_needs_buffers(self):
        with pytest.raises(ValueError):
            TransferPhase(CopyDirection.HTOD, ())

    def test_kernel_phase_totals(self):
        kd = KernelDescriptor("k", Dim3(10), Dim3(32), block_duration=1e-6)
        assert KernelPhase((kd, kd)).total_blocks == 20

    def test_kernel_phase_needs_launches(self):
        with pytest.raises(ValueError):
            KernelPhase(())

    def test_buffer_validation(self):
        with pytest.raises(ValueError):
            Buffer("x", 0)


class TestAppProfile:
    def test_derived_statistics(self):
        profile = simple_profile()
        assert profile.htod_bytes == 4096
        assert profile.dtoh_bytes == 2048
        assert profile.kernel_launches == 1
        assert profile.total_blocks == 4
        assert profile.compute_time_lower_bound == pytest.approx(5e-6)

    def test_profile_needs_phases(self):
        with pytest.raises(ValueError):
            simple_profile(phases=())

    def test_app_identity(self):
        app = KernelApp(simple_profile(), instance=7)
        assert app.app_id == "demo#7"
        assert "demo#7" in repr(app)

    def test_build_profile_abstract(self):
        with pytest.raises(NotImplementedError):
            KernelApp.build_profile()
