"""Tests for HarnessResult summary helpers and edge behaviour."""

import pytest

from repro.apps.registry import get_app
from repro.framework.harness import HarnessConfig, TestHarness
from repro.gpu.commands import CopyDirection
from repro.gpu.specs import fermi_c2050


def run(num_streams=2, memory_sync=False, **cfg):
    apps = [
        get_app("nn", instance=0, records=2048),
        get_app("needle", instance=0, n=64),
    ]
    return TestHarness(
        HarnessConfig(apps=apps, num_streams=num_streams,
                      memory_sync=memory_sync, **cfg)
    ).run()


class TestSummaries:
    def test_per_type_wall_times(self):
        result = run()
        per_type = result.per_type_wall_times()
        assert set(per_type) == {"nn", "needle"}
        assert all(t > 0 for times in per_type.values() for t in times)

    def test_effective_latency_directions(self):
        result = run()
        htod = result.effective_latency(CopyDirection.HTOD)
        dtoh = result.effective_latency(CopyDirection.DTOH)
        assert htod > 0
        assert dtoh > 0

    def test_total_time_covers_teardown(self):
        result = run()
        assert result.total_time >= result.makespan

    def test_power_disabled(self):
        result = run(monitor_power=False)
        assert result.power_samples == []
        assert result.sampled_average_power == 0.0
        # The exact model still integrates energy.
        assert result.energy > 0


class TestDeviceVariants:
    def test_runs_on_fermi_spec(self):
        result = run(spec=fermi_c2050())
        assert result.makespan > 0
        assert len(result.records) == 2

    def test_fifo_copy_policy(self):
        result = run(copy_policy="fifo")
        assert result.makespan > 0

    def test_least_loaded_stream_policy(self):
        result = run(stream_policy="least-loaded")
        assert {r.stream_index for r in result.records} == {0, 1}


class TestSyncInteraction:
    def test_sync_single_app_no_deadlock(self):
        apps = [get_app("srad", instance=0, n=64, iterations=2)]
        result = TestHarness(
            HarnessConfig(apps=apps, num_streams=1, memory_sync=True)
        ).run()
        assert result.makespan > 0

    def test_sync_more_apps_than_streams(self):
        apps = [get_app("nn", instance=i, records=2048) for i in range(5)]
        result = TestHarness(
            HarnessConfig(apps=apps, num_streams=2, memory_sync=True)
        ).run()
        assert len(result.records) == 5
        assert result.stream_assignments == {0: 3, 1: 2}
