"""Edge cases for the Eq. 1/2 metrics: empty directions, single apps, zeros."""

import pytest

from repro.framework.metrics import (
    AppRecord,
    TransferEvent,
    average_effective_latency,
    goodput,
    improvement_pct,
    makespan,
)
from repro.gpu.commands import CopyDirection


def _record(stream=0, transfers=()):
    rec = AppRecord(
        app_id="a0",
        type_name="gaussian",
        instance=0,
        stream_index=stream,
        launch_index=0,
    )
    rec.transfers.extend(transfers)
    return rec


def _xfer(direction, start, end, nbytes=1024):
    return TransferEvent(
        direction=direction,
        nbytes=nbytes,
        buffer="buf",
        enqueued=start,
        started=start,
        completed=end,
    )


class TestZeroTransfersOneDirection:
    def test_effective_latency_none_for_missing_direction(self):
        rec = _record(transfers=[_xfer(CopyDirection.HTOD, 0.0, 1e-3)])
        assert rec.effective_latency(CopyDirection.HTOD) == pytest.approx(1e-3)
        assert rec.effective_latency(CopyDirection.DTOH) is None

    def test_pure_transfer_time_zero_for_missing_direction(self):
        rec = _record(transfers=[_xfer(CopyDirection.HTOD, 0.0, 1e-3)])
        assert rec.pure_transfer_time(CopyDirection.DTOH) == 0.0

    def test_average_skips_apps_without_the_direction(self):
        # One app has DtoH copies, one doesn't; the Le average must only
        # see the app that transferred — None entries contribute nothing.
        with_dtoh = _record(
            stream=0, transfers=[_xfer(CopyDirection.DTOH, 0.0, 2e-3)]
        )
        without = _record(stream=1, transfers=[])
        avg = average_effective_latency(
            [with_dtoh, without], CopyDirection.DTOH
        )
        assert avg == pytest.approx(2e-3)

    def test_average_zero_when_no_app_transferred(self):
        records = [_record(stream=i) for i in range(3)]
        assert average_effective_latency(records, CopyDirection.HTOD) == 0.0


class TestSingleAppStream:
    def test_single_app_average_equals_its_latency(self):
        # The paper's two-level average (per stream, then across streams)
        # must degenerate cleanly to the lone application's Le.
        rec = _record(
            stream=0,
            transfers=[
                _xfer(CopyDirection.HTOD, 0.0, 1e-3),
                _xfer(CopyDirection.HTOD, 3e-3, 4e-3),
            ],
        )
        avg = average_effective_latency([rec], CopyDirection.HTOD)
        assert avg == pytest.approx(4e-3)  # first start -> last completion

    def test_uneven_streams_weight_per_stream_not_per_app(self):
        # Stream 0 has two apps (Le 1 ms and 3 ms), stream 1 has one
        # (Le 10 ms): stream means are 2 ms and 10 ms, overall 6 ms —
        # not the per-app mean of ~4.67 ms.
        s0a = _record(stream=0, transfers=[_xfer(CopyDirection.HTOD, 0.0, 1e-3)])
        s0b = _record(stream=0, transfers=[_xfer(CopyDirection.HTOD, 0.0, 3e-3)])
        s1 = _record(stream=1, transfers=[_xfer(CopyDirection.HTOD, 0.0, 10e-3)])
        avg = average_effective_latency([s0a, s0b, s1], CopyDirection.HTOD)
        assert avg == pytest.approx(6e-3)


class TestImprovementPct:
    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError, match="non-positive baseline"):
            improvement_pct(0.0, 1.0)

    def test_negative_baseline_raises(self):
        with pytest.raises(ValueError, match="non-positive baseline"):
            improvement_pct(-2.0, 1.0)

    def test_equal_values_are_zero_improvement(self):
        assert improvement_pct(5.0, 5.0) == 0.0

    def test_regression_is_negative(self):
        assert improvement_pct(1.0, 2.0) == pytest.approx(-100.0)


class TestAggregateZeros:
    def test_makespan_empty_records(self):
        assert makespan([]) == 0.0

    def test_goodput_zero_horizon(self):
        rec = _record()
        rec.complete_time = 1e-3
        assert goodput([rec], 0.0) == 0.0
