"""Tests for the Chrome Trace Event exporter."""

import json

import pytest

from repro.analysis.chrome_trace import (
    GPU_PID,
    _track_sort_key,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.sim.trace import TraceRecorder


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.record("stream-1", "kernel", "Fan2", 1e-3, 2e-3, blocks=1024)
    t.record("stream-0", "memcpy_htod", "a", 0.0, 1e-3, bytes=4096)
    t.mark("stream-0", "launch", "submit", 5e-4)
    return t


class TestConversion:
    def test_span_events(self, trace):
        doc = to_chrome_trace(trace)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        fan2 = next(e for e in spans if e["name"] == "Fan2")
        assert fan2["ts"] == pytest.approx(1000.0)   # us
        assert fan2["dur"] == pytest.approx(1000.0)
        assert fan2["cat"] == "kernel"
        assert fan2["args"]["blocks"] == 1024
        assert fan2["pid"] == GPU_PID

    def test_instant_events(self, trace):
        doc = to_chrome_trace(trace)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["ts"] == pytest.approx(500.0)

    def test_thread_metadata_natural_order(self, trace):
        doc = to_chrome_trace(trace, process_name="Test GPU")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = [
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        ]
        assert names == ["stream-0", "stream-1"]
        proc = next(e for e in meta if e["name"] == "process_name")
        assert proc["args"]["name"] == "Test GPU"

    def test_numeric_tracks_sort_numerically(self):
        t = TraceRecorder()
        for i in (10, 2, 1):
            t.record(f"stream-{i}", "kernel", "k", 0.0, 1e-3)
        doc = to_chrome_trace(t)
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert names == ["stream-1", "stream-2", "stream-10"]

    def test_mixed_tracks_never_compare_int_to_str(self):
        # The typed key must stay totally ordered for any track mix —
        # bare prefixes, numbered siblings, and digit-leading names
        # (where the split's piece parity differs) all in one sort.
        tracks = ["stream-", "stream-2", "dma-htod", "stream-extra", "2nd"]
        ordered = sorted(tracks, key=_track_sort_key)
        assert ordered[0] == "2nd"  # digit pieces sort before text pieces
        assert ordered.index("stream-2") < ordered.index("stream-extra")

    def test_every_track_has_sort_index(self, trace):
        doc = to_chrome_trace(trace)
        sort_meta = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_sort_index"
        ]
        named = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(sort_meta) == len(named) == 2
        assert [e["args"]["sort_index"] for e in sort_meta] == [1, 2]

    def test_spans_reference_valid_tids(self, trace):
        doc = to_chrome_trace(trace)
        tids = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for event in doc["traceEvents"]:
            if event["ph"] in ("X", "i"):
                assert event["tid"] in tids


class TestCounterMerge:
    @pytest.fixture
    def counters(self):
        return [
            {
                "name": "repro_gpu_power_watts",
                "ph": "C",
                "pid": 2,
                "ts": 1500.0,
                "args": {'device="0"': 75.0},
            },
            {
                "name": "repro_gpu_power_watts",
                "ph": "C",
                "pid": 2,
                "ts": 2500.0,
                "args": {'device="0"': 98.0},
            },
        ]

    def test_counter_events_and_process_metadata(self, trace, counters):
        doc = to_chrome_trace(trace, counter_events=counters)
        events = doc["traceEvents"]
        merged = [e for e in events if e["ph"] == "C"]
        assert len(merged) == 2
        assert all(e["pid"] == 2 for e in merged)
        meta = {
            e["name"]: e["args"]
            for e in events
            if e["ph"] == "M" and e["pid"] == 2
        }
        assert meta["process_name"] == {"name": "Telemetry"}
        assert meta["process_sort_index"] == {"sort_index": 2}

    def test_counter_pid_distinct_from_gpu(self, trace, counters):
        doc = to_chrome_trace(trace, counter_events=counters)
        gpu_events = [
            e for e in doc["traceEvents"] if e["ph"] in ("X", "i")
        ]
        assert all(e["pid"] == GPU_PID for e in gpu_events)
        assert all(e["pid"] != GPU_PID for e in counters)

    def test_no_counters_no_telemetry_process(self, trace):
        doc = to_chrome_trace(trace)
        assert all(e["pid"] == GPU_PID for e in doc["traceEvents"])

    def test_write_with_counters_roundtrips(self, trace, counters, tmp_path):
        path = write_chrome_trace(
            trace, tmp_path / "merged.json", counter_events=counters
        )
        loaded = json.loads(path.read_text())
        assert [e for e in loaded["traceEvents"] if e["ph"] == "C"]


class TestSpanMerge:
    @pytest.fixture
    def span_events(self):
        from repro.telemetry import Tracer, spans_to_chrome_events

        tracer = Tracer(seed=7)
        ctx = tracer.start_trace("app-0", 0.0)
        tracer.record_leaf(ctx, "queue", "admission-queue", 0.0, 1e-3)
        tracer.end_trace(ctx, 2e-3, outcome="completed")
        return spans_to_chrome_events(tracer.spans)

    def test_async_pairs_and_process_metadata(self, trace, span_events):
        from repro.telemetry import TRACING_PID

        doc = to_chrome_trace(trace, span_events=span_events)
        events = doc["traceEvents"]
        merged = [e for e in events if e["ph"] in ("b", "e")]
        assert len(merged) == 4  # root + leaf, begin/end each
        assert all(e["pid"] == TRACING_PID for e in merged)
        meta = {
            e["name"]: e["args"]
            for e in events
            if e["ph"] == "M" and e["pid"] == TRACING_PID
        }
        assert meta["process_name"] == {"name": "Tracing"}
        assert meta["process_sort_index"] == {"sort_index": TRACING_PID}

    def test_default_pid_when_events_carry_none(self, trace):
        events = [{"ph": "b", "ts": 0.0, "name": "x", "id": "t0"}]
        doc = to_chrome_trace(trace, span_events=events)
        meta = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
            and e["args"]["name"] == "Tracing"
        ]
        assert meta[0]["pid"] == GPU_PID + 2

    def test_counter_and_span_processes_coexist(self, trace, span_events):
        counters = [
            {"name": "repro_w", "ph": "C", "pid": 2, "ts": 0.0,
             "args": {"value": 1.0}},
        ]
        doc = to_chrome_trace(
            trace, counter_events=counters, span_events=span_events
        )
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert {GPU_PID, 2, 3} <= pids
        # The merge leaves the GPU thread ordering pinned by
        # _track_sort_key untouched.
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert names == ["stream-0", "stream-1"]

    def test_no_span_events_no_tracing_process(self, trace):
        doc = to_chrome_trace(trace)
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert "Tracing" not in names


class TestWrite:
    def test_roundtrip_json(self, trace, tmp_path):
        path = write_chrome_trace(trace, tmp_path / "sub" / "trace.json")
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in loaded["traceEvents"])

    def test_empty_trace(self, tmp_path):
        path = write_chrome_trace(TraceRecorder(), tmp_path / "empty.json")
        loaded = json.loads(path.read_text())
        assert [e for e in loaded["traceEvents"] if e["ph"] == "X"] == []


class TestEndToEnd:
    def test_harness_trace_exports(self, tmp_path):
        from repro.core.runner import quick_run

        run = quick_run(
            pair=("nn", "needle"), num_apps=4, num_streams=4,
            scale="tiny", record_trace=True,
        )
        path = write_chrome_trace(run.harness.trace, tmp_path / "run.json")
        loaded = json.loads(path.read_text())
        kernels = [
            e for e in loaded["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "kernel"
        ]
        assert kernels
