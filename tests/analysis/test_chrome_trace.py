"""Tests for the Chrome Trace Event exporter."""

import json

import pytest

from repro.analysis.chrome_trace import GPU_PID, to_chrome_trace, write_chrome_trace
from repro.sim.trace import TraceRecorder


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.record("stream-1", "kernel", "Fan2", 1e-3, 2e-3, blocks=1024)
    t.record("stream-0", "memcpy_htod", "a", 0.0, 1e-3, bytes=4096)
    t.mark("stream-0", "launch", "submit", 5e-4)
    return t


class TestConversion:
    def test_span_events(self, trace):
        doc = to_chrome_trace(trace)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        fan2 = next(e for e in spans if e["name"] == "Fan2")
        assert fan2["ts"] == pytest.approx(1000.0)   # us
        assert fan2["dur"] == pytest.approx(1000.0)
        assert fan2["cat"] == "kernel"
        assert fan2["args"]["blocks"] == 1024
        assert fan2["pid"] == GPU_PID

    def test_instant_events(self, trace):
        doc = to_chrome_trace(trace)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["ts"] == pytest.approx(500.0)

    def test_thread_metadata_natural_order(self, trace):
        doc = to_chrome_trace(trace, process_name="Test GPU")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = [
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        ]
        assert names == ["stream-0", "stream-1"]
        proc = next(e for e in meta if e["name"] == "process_name")
        assert proc["args"]["name"] == "Test GPU"

    def test_spans_reference_valid_tids(self, trace):
        doc = to_chrome_trace(trace)
        tids = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for event in doc["traceEvents"]:
            if event["ph"] in ("X", "i"):
                assert event["tid"] in tids


class TestWrite:
    def test_roundtrip_json(self, trace, tmp_path):
        path = write_chrome_trace(trace, tmp_path / "sub" / "trace.json")
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in loaded["traceEvents"])

    def test_empty_trace(self, tmp_path):
        path = write_chrome_trace(TraceRecorder(), tmp_path / "empty.json")
        loaded = json.loads(path.read_text())
        assert [e for e in loaded["traceEvents"] if e["ph"] == "X"] == []


class TestEndToEnd:
    def test_harness_trace_exports(self, tmp_path):
        from repro.core.runner import quick_run

        run = quick_run(
            pair=("nn", "needle"), num_apps=4, num_streams=4,
            scale="tiny", record_trace=True,
        )
        path = write_chrome_trace(run.harness.trace, tmp_path / "run.json")
        loaded = json.loads(path.read_text())
        kernels = [
            e for e in loaded["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "kernel"
        ]
        assert kernels
