"""Tests for the statistics helpers."""

import pytest

from repro.analysis.stats import (
    concurrency_profile,
    dma_utilization,
    gpu_utilization,
    mean_confidence_interval,
    summarize,
)
from repro.sim.trace import TraceRecorder


class TestSummary:
    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.std == pytest.approx(1.29099, rel=1e-4)

    def test_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0

    def test_empty(self):
        assert summarize([]).count == 0

    def test_str(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestConfidenceInterval:
    def test_interval_brackets_mean(self):
        mean, lo, hi = mean_confidence_interval([10.0, 12.0, 11.0, 13.0])
        assert lo < mean < hi

    def test_degenerate_for_small_samples(self):
        mean, lo, hi = mean_confidence_interval([7.0])
        assert mean == lo == hi == 7.0


class TestUtilization:
    def make_trace(self):
        trace = TraceRecorder()
        trace.record("s0", "kernel", "k", 0.0, 4.0)
        trace.record("s1", "kernel", "k", 2.0, 6.0)
        trace.record("dma-htod", "dma_htod", "", 0.0, 2.0)
        return trace

    def test_gpu_utilization(self):
        trace = self.make_trace()
        # Kernels cover [0, 6] of the [0, 6] extent.
        assert gpu_utilization(trace) == pytest.approx(1.0)
        assert gpu_utilization(trace, window=(0.0, 12.0)) == pytest.approx(0.5)

    def test_dma_utilization(self):
        trace = self.make_trace()
        assert dma_utilization(trace, "htod") == pytest.approx(2.0 / 6.0)
        assert dma_utilization(trace, "dtoh") == 0.0

    def test_empty_trace(self):
        assert gpu_utilization(TraceRecorder()) == 0.0

    def test_concurrency_profile(self):
        trace = self.make_trace()
        profile = concurrency_profile(trace, points=13)
        assert len(profile) == 13
        # At t=3 both kernels are active.
        mid = [count for t, count in profile if 2.0 < t < 4.0]
        assert max(mid) == 2
        assert profile[0][1] >= 1

    def test_concurrency_profile_empty(self):
        assert concurrency_profile(TraceRecorder()) == []
