"""Tests for the nvprof-style profile summaries."""

import pytest

from repro.analysis.profile_summary import (
    _span_stats,
    kernel_summary,
    stream_summary,
    transfer_summary,
)
from repro.sim.trace import TraceRecorder


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.record("stream-0", "memcpy_htod", "a", 0.0, 1e-3, bytes=3_000_000)
    t.record("stream-0", "kernel", "Fan2", 1e-3, 5e-3)
    t.record("stream-0", "kernel", "Fan2", 5e-3, 8e-3)
    t.record("stream-1", "kernel", "euclid", 2e-3, 3e-3)
    t.record("stream-1", "memcpy_dtoh", "out", 3e-3, 3.5e-3, bytes=1_000_000)
    return t


class TestKernelSummary:
    def test_grouped_by_symbol(self, trace):
        rows = kernel_summary(trace)
        assert [r["kernel"] for r in rows] == ["Fan2", "euclid"]  # by total
        fan2 = rows[0]
        assert fan2["calls"] == 2
        assert fan2["total_ms"] == pytest.approx(7.0)
        assert fan2["avg_us"] == pytest.approx(3500.0)
        assert fan2["min_us"] == pytest.approx(3000.0)
        assert fan2["max_us"] == pytest.approx(4000.0)

    def test_time_percentages_sum_to_100(self, trace):
        rows = kernel_summary(trace)
        assert sum(r["time_pct"] for r in rows) == pytest.approx(100.0)

    def test_empty_trace(self):
        assert kernel_summary(TraceRecorder()) == []


class TestSpanStats:
    def test_empty_durations_return_zero_row(self):
        # Regression: an empty list used to reach arr.min()/arr.max(),
        # which raise ValueError on zero-size arrays.
        stats = _span_stats([])
        assert stats == {
            "total_ms": 0.0, "avg_us": 0.0, "min_us": 0.0, "max_us": 0.0
        }

    def test_single_duration(self):
        stats = _span_stats([2e-3])
        assert stats["total_ms"] == pytest.approx(2.0)
        assert stats["min_us"] == stats["max_us"] == pytest.approx(2000.0)


class TestEmptySummaries:
    def test_all_summaries_survive_empty_trace(self):
        empty = TraceRecorder()
        assert kernel_summary(empty) == []
        assert transfer_summary(empty) == []
        assert stream_summary(empty) == []


class TestTransferSummary:
    def test_per_direction(self, trace):
        rows = transfer_summary(trace)
        by_dir = {r["direction"]: r for r in rows}
        assert by_dir["HtoD"]["count"] == 1
        assert by_dir["HtoD"]["bytes"] == 3_000_000
        assert by_dir["HtoD"]["effective_GBps"] == pytest.approx(3.0, rel=1e-6)
        assert by_dir["DtoH"]["effective_GBps"] == pytest.approx(2.0, rel=1e-6)

    def test_missing_direction_omitted(self):
        t = TraceRecorder()
        t.record("stream-0", "memcpy_htod", "a", 0.0, 1e-3, bytes=10)
        rows = transfer_summary(t)
        assert [r["direction"] for r in rows] == ["HtoD"]


class TestStreamSummary:
    def test_per_stream_rows(self, trace):
        rows = stream_summary(trace)
        assert [r["stream"] for r in rows] == ["stream-0", "stream-1"]
        s0 = rows[0]
        assert s0["kernels"] == 2
        assert s0["memcpys"] == 1
        assert s0["kernel_ms"] == pytest.approx(7.0)
        assert s0["active_window_ms"] == pytest.approx(8.0)


class TestEndToEnd:
    def test_from_harness_trace(self):
        from repro.core.runner import quick_run

        run = quick_run(
            pair=("nn", "needle"), num_apps=4, num_streams=4,
            scale="tiny", record_trace=True,
        )
        kernels = kernel_summary(run.harness.trace)
        names = {r["kernel"] for r in kernels}
        assert "euclid" in names
        assert any(n.startswith("needle_cuda") for n in names)
        transfers = transfer_summary(run.harness.trace)
        assert {r["direction"] for r in transfers} == {"HtoD", "DtoH"}
        streams = stream_summary(run.harness.trace)
        assert len(streams) == 4
