"""Leaderboard and win/regression waterfall construction + rendering."""

import pytest

from repro.analysis import (
    build_leaderboard,
    build_waterfall,
    render_leaderboard,
    render_waterfall,
    write_leaderboard_json,
)

pytestmark = pytest.mark.workload


def cell(scenario, policy, goodput, slo=0.5, **extra):
    out = {
        "scenario": scenario,
        "policy": policy,
        "goodput": goodput,
        "slo_attainment": slo,
    }
    out.update(extra)
    return out


CELLS = [
    cell("steady", "bandit", 100.0, slo=0.9),
    cell("steady", "naive-fifo", 80.0, slo=0.7),
    cell("overload", "bandit", 30.0, slo=0.3),
    cell("overload", "naive-fifo", 45.0, slo=0.4),
    cell("burst", "bandit", 60.0, slo=0.6),
    cell("burst", "naive-fifo", 60.0, slo=0.5),
]


class TestLeaderboard:
    def test_ranking_by_goodput(self):
        board = build_leaderboard(CELLS)
        assert list(board) == ["burst", "overload", "steady"]  # sorted
        assert board["steady"]["ranking"] == ["bandit", "naive-fifo"]
        assert board["overload"]["ranking"] == ["naive-fifo", "bandit"]

    def test_goodput_tie_broken_by_slo_then_name(self):
        board = build_leaderboard(CELLS)
        assert board["burst"]["ranking"] == ["bandit", "naive-fifo"]
        tied = [
            cell("x", "a", 10.0, slo=0.5),
            cell("x", "b", 10.0, slo=0.5),
        ]
        assert build_leaderboard(tied)["x"]["ranking"] == ["a", "b"]

    def test_duplicate_cell_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            build_leaderboard([CELLS[0], CELLS[0]])

    def test_cells_preserved(self):
        board = build_leaderboard(CELLS)
        assert board["steady"]["policies"]["bandit"]["slo_attainment"] == 0.9


class TestWaterfall:
    def test_wins_and_regressions_both_kept_sorted(self):
        board = build_leaderboard(CELLS)
        rows = build_waterfall(board, "bandit", "naive-fifo")
        assert [r["scenario"] for r in rows] == ["steady", "burst", "overload"]
        assert [r["verdict"] for r in rows] == ["win", "tie", "regression"]
        assert rows[0]["delta_pct"] == pytest.approx(25.0)
        assert rows[-1]["delta"] == pytest.approx(-15.0)

    def test_missing_policy_scenarios_skipped(self):
        board = build_leaderboard(CELLS + [cell("extra", "bandit", 1.0)])
        rows = build_waterfall(board, "bandit", "naive-fifo")
        assert "extra" not in {r["scenario"] for r in rows}

    def test_empty_renders(self):
        assert "no waterfall" in render_waterfall([])


class TestRendering:
    def test_leaderboard_text(self):
        text = render_leaderboard(build_leaderboard(CELLS))
        assert "[scenario: steady]" in text
        assert "bandit" in text and "naive-fifo" in text

    def test_waterfall_text_has_signed_bars(self):
        rows = build_waterfall(
            build_leaderboard(CELLS), "bandit", "naive-fifo"
        )
        text = render_waterfall(rows)
        assert "win" in text and "regression" in text
        assert "+" in text and "-" in text


class TestSerialization:
    def test_byte_identical_writes(self, tmp_path):
        board = build_leaderboard(CELLS)
        rows = build_waterfall(board, "bandit", "naive-fifo")
        a = write_leaderboard_json(
            board, tmp_path / "a.json", waterfall=rows, meta={"scale": "tiny"}
        )
        b = write_leaderboard_json(
            board, tmp_path / "b.json", waterfall=rows, meta={"scale": "tiny"}
        )
        assert a.read_bytes() == b.read_bytes()
        assert a.read_text().endswith("\n")

    def test_payload_shape(self, tmp_path):
        import json

        path = write_leaderboard_json(
            build_leaderboard(CELLS), tmp_path / "lb.json"
        )
        payload = json.loads(path.read_text())
        assert set(payload) == {"leaderboard"}
        assert payload["leaderboard"]["steady"]["ranking"][0] == "bandit"
