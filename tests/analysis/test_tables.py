"""Tests for table formatting and CSV export."""

import csv

import pytest

from repro.analysis.tables import format_markdown, format_table, format_value, write_csv

ROWS = [
    {"pair": "gaussian+nn", "improvement": 23.456789, "ok": True},
    {"pair": "needle+srad", "improvement": 7.1, "ok": False},
]


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_passthrough(self):
        assert format_value("x") == "x"
        assert format_value(42) == "42"


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(ROWS, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "pair" in lines[1] and "improvement" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "23.457" in text
        # Columns align: every line has equal length or longer header.
        assert "gaussian+nn" in lines[3]

    def test_column_selection(self):
        text = format_table(ROWS, columns=["pair"])
        assert "improvement" not in text

    def test_missing_keys_blank(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])


class TestMarkdown:
    def test_github_table_shape(self):
        text = format_markdown(ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| pair")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + len(ROWS)

    def test_empty(self):
        assert format_markdown([]) == "(no rows)"


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "sub" / "out.csv")
        assert path.exists()
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["pair"] == "gaussian+nn"
        assert float(rows[0]["improvement"]) == pytest.approx(23.456789)
        assert len(rows) == 2
