"""Tests for the ASCII timeline renderer."""

import pytest

from repro.analysis.timeline import GLYPHS, render_timeline, timeline_rows
from repro.sim.trace import TraceRecorder


@pytest.fixture
def sample_trace():
    trace = TraceRecorder()
    trace.record("stream-0", "memcpy_htod", "a", 0.0, 1.0)
    trace.record("stream-0", "kernel", "k", 1.0, 3.0)
    trace.record("stream-1", "memcpy_htod", "b", 1.0, 2.0)
    trace.record("stream-1", "kernel", "k", 2.0, 4.0)
    trace.record("stream-1", "memcpy_dtoh", "out", 4.0, 4.5)
    return trace


class TestRows:
    def test_rows_per_stream_track(self, sample_trace):
        rows = timeline_rows(sample_trace, width=45)
        assert [track for track, _ in rows] == ["stream-0", "stream-1"]
        assert all(len(row) == 45 for _, row in rows)

    def test_glyph_placement(self, sample_trace):
        rows = dict(timeline_rows(sample_trace, width=45))
        s0 = rows["stream-0"]
        # First 10 columns (0..1 s of 4.5 s over 45 chars) are copies.
        assert s0[0] == GLYPHS["memcpy_htod"]
        assert GLYPHS["kernel"] in s0
        s1 = rows["stream-1"]
        assert GLYPHS["memcpy_dtoh"] in s1

    def test_idle_fill(self, sample_trace):
        rows = dict(timeline_rows(sample_trace, width=45))
        assert "." in rows["stream-0"]  # idle after its kernel ends at 3.0

    def test_natural_track_order(self):
        trace = TraceRecorder()
        for sid in (10, 2, 1):
            trace.record(f"stream-{sid}", "kernel", "k", 0, 1)
        rows = timeline_rows(trace, width=10)
        assert [t for t, _ in rows] == ["stream-1", "stream-2", "stream-10"]

    def test_window_clipping(self, sample_trace):
        rows = dict(timeline_rows(sample_trace, width=10, window=(0.0, 1.0)))
        # Only the first copy is inside the window on stream-0.
        assert set(rows["stream-0"]) == {GLYPHS["memcpy_htod"]}

    def test_empty_trace(self):
        assert timeline_rows(TraceRecorder(), width=10) == []

    def test_minimum_one_cell_per_span(self):
        trace = TraceRecorder()
        trace.record("stream-0", "kernel", "long", 0.0, 100.0)
        trace.record("stream-0", "memcpy_htod", "tiny", 100.0, 100.001)
        rows = dict(timeline_rows(trace, width=50))
        assert GLYPHS["memcpy_htod"] in rows["stream-0"]


class TestRender:
    def test_full_render(self, sample_trace):
        text = render_timeline(sample_trace, width=40, title="Figure 1")
        assert "Figure 1" in text
        assert "stream-0" in text
        assert "legend" in text
        assert "[ms]" in text

    def test_empty(self):
        assert render_timeline(TraceRecorder()) == "(empty trace)"
