"""Critical-path extraction: exact partition, sub-attribution, rollups."""

import pytest

from repro.analysis import (
    aggregate_critical_paths,
    extract_critical_paths,
    top_slowest,
)
from repro.core.streaming import (
    ConcurrencyCapDispatcher,
    poisson_arrivals,
    run_streaming,
)
from repro.telemetry import Tracer, Tracing

pytestmark = pytest.mark.tracing

MS = 1e-3


def build_trace(tracer, app, waits, end, outcome="completed", engine=()):
    """One trace from (category, start, end) wait triples + engine leaves."""
    ctx = tracer.start_trace(app, 0.0)
    for category, lo, hi in waits:
        tracer.record_leaf(ctx, category, category, lo, hi)
    for category, lo, hi in engine:
        tracer.record_leaf(ctx, category, category, lo, hi)
    tracer.end_trace(ctx, end, outcome=outcome)
    return ctx


class TestExactPartition:
    def test_measured_waits_plus_remainder_sum_to_sojourn(self):
        tracer = Tracer(seed=0)
        build_trace(
            tracer, "app-0",
            [("admission-queue", 0.0, 1 * MS), ("sync-wait", 2 * MS, 5 * MS)],
            end=6 * MS,
        )
        (path,) = extract_critical_paths(tracer)
        assert sum(path.categories.values()) == pytest.approx(
            path.sojourn, abs=1e-6
        )
        assert path.categories["admission-queue"] == pytest.approx(1 * MS)
        assert path.categories["sync-wait"] == pytest.approx(3 * MS)
        assert path.categories["service-other"] == pytest.approx(2 * MS)

    def test_waits_clipped_to_root_window(self):
        tracer = Tracer(seed=0)
        build_trace(
            tracer, "app-0",
            [("retry-backoff", -1 * MS, 1 * MS)],  # starts before arrival
            end=2 * MS,
        )
        (path,) = extract_critical_paths(tracer)
        assert path.categories["retry-backoff"] == pytest.approx(1 * MS)
        assert sum(path.categories.values()) == pytest.approx(path.sojourn)

    def test_outcome_carried_from_root_meta(self):
        tracer = Tracer(seed=0)
        build_trace(tracer, "app-0", [], end=MS, outcome="shed-deadline")
        (path,) = extract_critical_paths(tracer)
        assert path.outcome == "shed-deadline"

    def test_accepts_tracing_handle(self):
        tracing = Tracing(seed=0)
        build_trace(tracing.tracer, "app-0", [], end=MS)
        assert len(extract_critical_paths(tracing)) == 1


class TestSubAttribution:
    def test_sync_wait_splits_across_engine_leaves(self):
        tracer = Tracer(seed=0)
        build_trace(
            tracer, "app-0",
            [("sync-wait", 0.0, 4 * MS)],
            end=4 * MS,
            engine=[
                ("smx-exec", 0.0, 1 * MS),
                ("dma-service", 1 * MS, 2 * MS),
                ("hyperq-slot", 2 * MS, 3 * MS),
            ],
        )
        (path,) = extract_critical_paths(tracer)
        assert path.categories["smx-exec"] == pytest.approx(1 * MS)
        assert path.categories["dma-service"] == pytest.approx(1 * MS)
        assert path.categories["hyperq-slot"] == pytest.approx(1 * MS)
        assert path.categories["sync-wait"] == pytest.approx(1 * MS)  # residue
        assert sum(path.categories.values()) == pytest.approx(path.sojourn)

    def test_overlap_resolves_by_priority(self):
        # smx-exec and dma-service cover the same instant: exec wins.
        tracer = Tracer(seed=0)
        build_trace(
            tracer, "app-0",
            [("sync-wait", 0.0, 2 * MS)],
            end=2 * MS,
            engine=[
                ("dma-service", 0.0, 2 * MS),
                ("smx-exec", 0.0, 1 * MS),
            ],
        )
        (path,) = extract_critical_paths(tracer)
        assert path.categories["smx-exec"] == pytest.approx(1 * MS)
        assert path.categories["dma-service"] == pytest.approx(1 * MS)
        assert "sync-wait" not in path.categories

    def test_dominant_category(self):
        tracer = Tracer(seed=0)
        build_trace(
            tracer, "app-0", [("transfer-mutex", 0.0, 3 * MS)], end=4 * MS
        )
        (path,) = extract_critical_paths(tracer)
        assert path.dominant == "transfer-mutex"
        assert path.share("transfer-mutex") == pytest.approx(0.75)


class TestAggregation:
    @pytest.fixture
    def paths(self):
        tracer = Tracer(seed=0)
        build_trace(
            tracer, "app-0", [("admission-queue", 0.0, 2 * MS)], end=2 * MS,
            outcome="shed-deadline",
        )
        build_trace(
            tracer, "app-1", [("sync-wait", 0.0, 1 * MS)], end=2 * MS,
        )
        return extract_critical_paths(tracer)

    def test_rows_sorted_by_seconds_and_share_of_total(self, paths):
        rows = aggregate_critical_paths(paths)
        assert [r["seconds"] for r in rows] == sorted(
            (r["seconds"] for r in rows), reverse=True
        )
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)

    def test_predicate_slices(self, paths):
        rows = aggregate_critical_paths(
            paths, predicate=lambda p: p.outcome != "completed"
        )
        assert [r["category"] for r in rows] == ["admission-queue"]
        assert rows[0]["share"] == pytest.approx(1.0)

    def test_top_slowest_orders_and_breaks_ties_by_app(self, paths):
        ranked = top_slowest(paths, 2)
        assert [p.app for p in ranked] == ["app-0", "app-1"]  # tie: name order
        assert top_slowest(paths, 1)[0].app == "app-0"


class TestEndToEnd:
    def test_engine_run_partitions_exactly(self):
        tracing = Tracing(seed=7)
        arrivals = poisson_arrivals(
            rate=10000.0, duration=0.002,
            type_mix=[("nn", 1), ("needle", 1)], seed=7,
        )
        run_streaming(
            arrivals, ConcurrencyCapDispatcher(3), num_streams=8,
            tracing=tracing,
        )
        paths = extract_critical_paths(tracing)
        assert paths
        for path in paths:
            assert sum(path.categories.values()) == pytest.approx(
                path.sojourn, abs=1e-6
            )
