"""Tests for the EXPERIMENTS.md report assembler."""

from pathlib import Path

import pytest

from repro.analysis.report import SECTIONS, build_report, read_results_csv
from repro.analysis.tables import write_csv


class TestSections:
    def test_every_figure_and_table_covered(self):
        csvs = {s.csv_name for s in SECTIONS}
        # Paper artifacts 1-10 plus Table III plus headline.
        for fig in range(1, 11):
            assert any(f"fig{fig:02d}" in c for c in csvs), fig
        assert "table3_geometry.csv" in csvs
        assert "headline_numbers.csv" in csvs

    def test_ablations_covered(self):
        csvs = {s.csv_name for s in SECTIONS}
        assert "ablation_hyperq_width.csv" in csvs
        assert "ablation_admission.csv" in csvs
        assert "ablation_transfers.csv" in csvs


class TestBuildReport:
    def test_empty_results_dir(self, tmp_path):
        report = build_report(tmp_path)
        assert report.startswith("# EXPERIMENTS")
        assert report.count("Not yet generated") == len(SECTIONS)

    def test_csv_rendered_as_markdown(self, tmp_path):
        write_csv(
            [{"pair": "nn+srad", "improvement_pct": 42.123}],
            tmp_path / "fig04_concurrency_speedup.csv",
        )
        report = build_report(tmp_path)
        assert "| pair | improvement_pct |" in report
        assert "42.123" in report
        # Other sections still placeholder.
        assert "Not yet generated" in report

    def test_preamble_included(self, tmp_path):
        report = build_report(tmp_path, preamble="Custom context.")
        assert "Custom context." in report

    def test_numeric_coercion(self, tmp_path):
        write_csv(
            [{"NA": "8", "ratio": "2.50000"}],
            tmp_path / "fig06_effective_latency.csv",
        )
        report = build_report(tmp_path)
        # Integers render without decimals, floats with fixed precision.
        assert "| 8 | 2.500 |" in report


class TestReadCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv([{"a": 1, "b": "x"}], tmp_path / "t.csv")
        rows = read_results_csv(path)
        assert rows == [{"a": "1", "b": "x"}]
