"""Hedged execution: straggler-triggered speculative replicas.

End-to-end coverage of the gray-failure mitigation path: detection of a
gray-slowed device from observed latency stretch, the hedge decision
(budget, target choice, journaling), the primary/replica race in both
directions, target-device loss mid-hedge, and byte-identical crash/resume
of a hedged journaled run.
"""

import pytest

from repro.fleet import FleetHarness, HedgeConfig
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.sim.errors import HarnessCrash

from .conftest import fast_fleet, make_apps

pytestmark = pytest.mark.fleet

NUM_APPS = 4
DEVICES = 2
SEED = 7

#: Scan fast enough for tiny-scale runs; budget generous so the gating
#: tests control their own limits explicitly.
FAST_HEDGE = HedgeConfig(check_interval=0.2e-3, budget_fraction=0.5)

#: Sustained 4x compute slowdown on device 0 for the whole run.
GRAY_PLAN = FaultPlan.gray(
    0, kind=FaultKind.SMX_SLOWDOWN, start=0.0, duration=1.0, factor=4.0
)


def run(plan=None, hedging=FAST_HEDGE, apps=NUM_APPS, **overrides):
    fleet = fast_fleet(
        num_devices=DEVICES, seed=SEED, hedging=hedging, **overrides
    )
    return FleetHarness(make_apps(apps), fleet, plan=plan).run()


@pytest.fixture(scope="module")
def hedged():
    return run(plan=GRAY_PLAN)


@pytest.fixture(scope="module")
def unhedged():
    return run(plan=GRAY_PLAN, hedging=None)


class TestReplicaWin:
    def test_hedge_launched_and_won(self, hedged):
        assert hedged.hedges_launched == 1
        assert hedged.hedge_wins == 1
        assert hedged.completed == NUM_APPS

    def test_hedged_app_finishes_earlier(self, hedged, unhedged):
        by_id = lambda result: {
            r.app_id: r for r in result.records
        }
        winner = next(r for r in hedged.records if r.hedge_wins)
        assert winner.complete_time < by_id(unhedged)[winner.app_id].complete_time
        # Everyone else is untouched by the race.
        for r in hedged.records:
            if r.hedge_wins:
                continue
            assert r.complete_time == by_id(unhedged)[r.app_id].complete_time

    def test_winner_record_accounting(self, hedged):
        winner = next(r for r in hedged.records if r.hedge_wins)
        assert winner.hedges == 1
        assert winner.outcome == "completed"
        # The replica won, so the app's terminal device is the target.
        hedge = hedged.hedge_events[0]
        assert winner.device_index == hedge["to"]
        assert winner.duplicate_kernels == hedged.duplicate_kernels > 0

    def test_decision_log_shape(self, hedged):
        launch, done = hedged.hedge_events
        assert launch["event"] == "hedge"
        assert (launch["from"], launch["to"]) == (0, 1)
        assert launch["remaining"] >= FAST_HEDGE.min_remaining_kernels
        assert done["event"] == "hedge-done"
        assert done["winner"] == "replica"
        assert done["dup"] == hedged.duplicate_kernels
        assert done["t"] > launch["t"]

    def test_duplicates_bounded_by_budget(self, hedged):
        batch = sum(a.profile.kernel_launches for a in make_apps(NUM_APPS))
        assert hedged.duplicate_kernels <= FAST_HEDGE.budget_fraction * batch

    def test_straggler_flagged_degraded_by_monitor(self, hedged):
        degraded = [
            e for e in hedged.health_events if e.new_state == "degraded"
        ]
        assert degraded and degraded[0].device == 0
        assert "score=" in degraded[0].detail


class TestPrimaryWin:
    def test_recovered_primary_beats_replica(self):
        # The slowdown ends early; the detector's window is still hot so a
        # hedge launches, but the recovered primary finishes first.
        plan = FaultPlan.gray(
            0,
            kind=FaultKind.SMX_SLOWDOWN,
            start=0.0,
            duration=3e-3,
            factor=6.0,
        )
        result = run(plan=plan)
        assert result.hedges_launched == 1
        assert result.hedge_wins == 0
        assert result.completed == NUM_APPS
        done = result.hedge_events[-1]
        assert done["winner"] == "primary"
        # The loser's wasted work is attributed to the app's record.
        hedged_app = next(r for r in result.records if r.hedges)
        assert hedged_app.hedge_wins == 0
        assert hedged_app.duplicate_kernels == done["dup"]


class TestTargetLoss:
    def test_replica_device_death_abandons_hedge(self):
        plan = FaultPlan(
            list(GRAY_PLAN)
            + [FaultSpec(FaultKind.DEVICE_LOSS, 3.2e-3, device=1)]
        )
        result = run(plan=plan)
        assert result.hedges_launched == 1
        assert result.hedge_wins == 0
        done = result.hedge_events[-1]
        assert done["winner"] == "abandoned"
        assert done["t"] == pytest.approx(3.2e-3)
        # The primary still completes every app (it was on device 0).
        assert result.completed == NUM_APPS


class TestGating:
    def test_healthy_fleet_never_hedges(self):
        result = run(plan=None)
        assert result.hedges_launched == 0
        assert result.hedge_events == []
        assert result.duplicate_kernels == 0

    def test_enabled_but_idle_hedging_is_invisible(self):
        # With no gray fault the detector observes but never classifies,
        # so enabling hedging must not move a single timestamp.
        on = run(plan=None)
        off = run(plan=None, hedging=None)
        key = lambda r: (r.app_id, r.complete_time, r.gpu_start, r.outcome)
        assert [key(r) for r in on.records] == [key(r) for r in off.records]
        assert on.makespan == off.makespan
        assert on.energy == off.energy

    def test_budget_denial(self):
        tight = HedgeConfig(check_interval=0.2e-3, budget_fraction=0.01)
        result = run(plan=GRAY_PLAN, hedging=tight)
        assert result.hedges_launched == 0

    def test_min_remaining_gate(self):
        lazy = HedgeConfig(
            check_interval=0.2e-3,
            budget_fraction=0.5,
            min_remaining_kernels=10_000,
        )
        result = run(plan=GRAY_PLAN, hedging=lazy)
        assert result.hedges_launched == 0

    def test_max_hedges_per_app_caps_relaunch(self, hedged):
        # One hedge per app by default; the winner app never re-hedges
        # even though its device stays gray for the whole run.
        assert all(r.hedges <= 1 for r in hedged.records)


class TestDeterminism:
    def test_hedged_run_is_reproducible(self, hedged):
        again = run(plan=GRAY_PLAN)
        key = lambda r: (
            r.app_id,
            r.complete_time,
            r.device_index,
            r.hedges,
            r.hedge_wins,
            r.duplicate_kernels,
        )
        assert [key(r) for r in again.records] == [
            key(r) for r in hedged.records
        ]
        assert again.hedge_events == hedged.hedge_events
        assert again.makespan == hedged.makespan


class TestJournaledHedging:
    def _journal_run(self, plan, path, resume=False):
        return FleetHarness(
            make_apps(NUM_APPS),
            fast_fleet(num_devices=DEVICES, seed=SEED, hedging=FAST_HEDGE),
            plan=plan,
            journal_path=path,
            resume=resume,
        ).run()

    def test_hedge_decisions_are_journaled(self, tmp_path):
        from repro.integrity import decode_line

        path = tmp_path / "hedged.jsonl"
        result = self._journal_run(GRAY_PLAN, path)
        assert result.hedges_launched == 1
        events = [
            decode_line(line)["event"]
            for line in path.read_bytes().splitlines()[1:]
        ]
        assert "hedge" in events
        assert "hedge-done" in events
        assert events.index("hedge") < events.index("hedge-done")

    def test_crash_resume_replays_hedges_byte_identically(self, tmp_path):
        ref_path = tmp_path / "reference.jsonl"
        reference = self._journal_run(GRAY_PLAN, ref_path)
        launch_t = reference.hedge_events[0]["t"]
        done_t = reference.hedge_events[-1]["t"]

        # Crash mid-race: the hedge is journaled, its outcome is not.
        crash_at = (launch_t + done_t) / 2
        crash_plan = FaultPlan(
            list(GRAY_PLAN)
            + [FaultSpec(FaultKind.HARNESS_CRASH, crash_at)]
        )
        crash_path = tmp_path / "crashed.jsonl"
        with pytest.raises(HarnessCrash):
            self._journal_run(crash_plan, crash_path)

        resumed = self._journal_run(crash_plan, crash_path, resume=True)
        assert resumed.resumed
        assert resumed.recovered_entries > 0
        assert crash_path.read_bytes() == ref_path.read_bytes()
        assert resumed.hedge_events == reference.hedge_events
        key = lambda r: (r.app_id, r.outcome, r.complete_time, r.hedge_wins)
        assert [key(r) for r in resumed.records] == [
            key(r) for r in reference.records
        ]

    def test_hedging_config_fences_the_fingerprint(self, tmp_path):
        # A journal written by a hedged run must not resume a run with
        # different (or absent) hedge parameters.
        from repro.serving import JournalMismatchError

        path = tmp_path / "hedged.jsonl"
        self._journal_run(GRAY_PLAN, path)
        with pytest.raises(JournalMismatchError):
            FleetHarness(
                make_apps(NUM_APPS),
                fast_fleet(num_devices=DEVICES, seed=SEED, hedging=None),
                plan=GRAY_PLAN,
                journal_path=path,
                resume=True,
            ).run()
