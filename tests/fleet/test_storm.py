"""Failover-storm control: the paced migration queue.

A correlated domain loss must not dump every dead device's apps onto the
survivors in one simulated instant.  These tests pin the queue's slot
accounting and priority order at the unit level, then the end-to-end
behaviour: completion under pacing, bounded concurrent recovery, the
all-devices-dead drain, and byte-identity when storm control is off.
"""

import pytest

from repro.fleet import (
    FleetHarness,
    MigrationQueue,
    StormControlConfig,
    TopologyConfig,
)
from repro.resilience.faults import FaultPlan
from repro.sim.engine import Environment

from .conftest import fast_fleet, make_apps

pytestmark = pytest.mark.fleet

DEVICES = 4
NUM_APPS = 8


class TestMigrationQueueUnit:
    def make(self, candidates, **overrides):
        env = Environment()
        released = []
        cfg = StormControlConfig(**overrides)
        queue = MigrationQueue(
            env,
            cfg,
            candidates=lambda: candidates,
            release=lambda app, target: released.append((app, target)),
        )
        return env, queue, released

    def test_first_wave_capped_by_slots(self):
        env, queue, released = self.make(
            [(2, 0), (3, 0)], max_inflight_per_device=1
        )
        for i in range(4):
            queue.enqueue(
                f"app#{i}", from_device=0, deadline=None, checkpoint_kernels=i
            )
        queue.drain()
        # Two survivors x one slot: only two released, the rest queued.
        assert len(released) == 2
        assert queue.depth == 2
        assert queue.peak_depth == 4

    def test_priority_deadline_then_staleness_then_id(self):
        env, queue, released = self.make(
            [(1, 0)], max_inflight_per_device=4
        )
        queue.enqueue("late", from_device=0, deadline=9.0, checkpoint_kernels=5)
        queue.enqueue("none", from_device=0, deadline=None, checkpoint_kernels=0)
        queue.enqueue("soon", from_device=0, deadline=1.0, checkpoint_kernels=9)
        queue.enqueue("stale", from_device=0, deadline=9.0, checkpoint_kernels=1)
        queue.drain()
        assert [app for app, _ in released] == ["soon", "stale", "late", "none"]

    def test_slot_freed_then_refilled_on_tick(self):
        env, queue, released = self.make([(1, 0)], max_inflight_per_device=1)
        queue.enqueue("a", from_device=0, deadline=None, checkpoint_kernels=0)
        queue.enqueue("b", from_device=0, deadline=None, checkpoint_kernels=0)
        queue.drain()
        assert [app for app, _ in released] == ["a"]
        # Freeing the slot does not release immediately — only a drain
        # (the pacer tick) does.
        queue.free_slot("a")
        assert queue.depth == 1
        queue.drain()
        assert [app for app, _ in released] == ["a", "b"]

    def test_least_loaded_free_slot_wins(self):
        env, queue, released = self.make(
            [(1, 5), (2, 0)], max_inflight_per_device=2
        )
        queue.enqueue("a", from_device=0, deadline=None, checkpoint_kernels=0)
        queue.drain()
        assert released == [("a", 2)]

    def test_no_survivors_fails_queue(self):
        env, queue, released = self.make([])
        queue.enqueue("a", from_device=0, deadline=None, checkpoint_kernels=0)
        queue.enqueue("b", from_device=1, deadline=None, checkpoint_kernels=0)
        queue.drain()
        assert released == [("a", None), ("b", None)]
        assert queue.failed_total == 2
        assert queue.depth == 0

    def test_reenqueue_frees_stale_slot(self):
        env, queue, released = self.make([(1, 0)], max_inflight_per_device=1)
        queue.enqueue("a", from_device=0, deadline=None, checkpoint_kernels=0)
        queue.drain()
        assert released == [("a", 1)]
        # "a"'s new home dies before it warms up; re-enqueueing must not
        # leak the slot it still held on device 1.
        queue.note_device_lost(1)
        queue.enqueue("a", from_device=1, deadline=None, checkpoint_kernels=0)
        queue.candidates = lambda: [(2, 0)]
        queue.drain()
        assert released[-1] == ("a", 2)


def run(fleet, plan=None):
    return FleetHarness(
        make_apps(NUM_APPS), fleet, num_streams=2, seed=0, plan=plan
    ).run()


@pytest.fixture(scope="module")
def domain_plan():
    """Correlated loss of rail 0 (devices 0 and 1) mid-run."""
    return FaultPlan.correlated((0, 1), time=1.5e-3)


def storm_fleet(**overrides):
    return fast_fleet(
        num_devices=DEVICES,
        topology=TopologyConfig(rails=2),
        storm=StormControlConfig(
            max_inflight_per_device=1, pace_interval=2e-4
        ),
        **overrides,
    )


class TestStormControlledFailover:
    def test_domain_loss_completes_with_pacing(self, domain_plan):
        result = run(storm_fleet(), plan=domain_plan)
        assert result.devices_lost == 2
        assert result.completed == NUM_APPS
        assert result.failed == 0
        assert result.storm_queued >= 2
        assert result.storm_released == result.storm_queued
        assert result.storm_failed == 0
        for record in result.records:
            assert record.device_index not in (0, 1)

    def test_pacing_actually_queues(self, domain_plan):
        result = run(storm_fleet(), plan=domain_plan)
        # More migrants than first-wave slots (2 survivors x 1 slot), so
        # at least one app waited for a pacer tick.
        assert result.storm_queued > 2
        assert result.storm_peak_depth >= result.storm_queued - 2

    def test_migrations_staggered_not_instant(self, domain_plan):
        paced = run(storm_fleet(), plan=domain_plan)
        immediate = run(
            fast_fleet(num_devices=DEVICES, topology=TopologyConfig(rails=2)),
            plan=domain_plan,
        )
        # The immediate path resumes everything at detection; pacing
        # spreads re-admission over pacer ticks.
        assert immediate.completed == NUM_APPS
        paced_resumes = [r["resumed"] for r in paced.recoveries]
        assert max(paced_resumes) > min(
            r["resumed"] for r in immediate.recoveries
        )

    def test_deterministic(self, domain_plan):
        a = run(storm_fleet(), plan=domain_plan)
        b = run(storm_fleet(), plan=domain_plan)
        key = lambda r: (r.app_id, r.outcome, r.device_index, r.complete_time)
        assert [key(r) for r in a.records] == [key(r) for r in b.records]
        assert a.makespan == b.makespan

    def test_storm_config_without_losses_changes_nothing(self):
        plain = run(fast_fleet(num_devices=DEVICES))
        armed = run(storm_fleet())
        assert armed.makespan == plain.makespan
        assert [r.complete_time for r in armed.records] == [
            r.complete_time for r in plain.records
        ]
        assert armed.storm_queued == 0

    def test_all_devices_lost_fails_cleanly(self):
        plan = FaultPlan.correlated((0, 1, 2, 3), time=1.5e-3)
        result = run(storm_fleet(), plan=plan)
        assert result.devices_lost == DEVICES
        assert result.completed + result.failed == NUM_APPS
        assert result.failed >= 1
        for record in result.records:
            if record.failed:
                assert record.outcome == "device-lost"
