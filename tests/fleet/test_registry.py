"""Unit tests for the device registry: ground-truth liveness."""

import pytest

from repro.fleet import DeviceRegistry, DeviceState
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.sim.engine import Environment

from .conftest import fast_fleet

pytestmark = pytest.mark.fleet


def make_registry(env, plan=None, devices=3, streams=2):
    return DeviceRegistry(
        env,
        fast_fleet(num_devices=devices),
        num_streams=streams,
        plan=plan,
    )


class TestConstruction:
    def test_builds_one_slot_per_device(self, env):
        registry = make_registry(env, devices=4)
        assert len(registry) == 4
        assert [d.index for d in registry] == [0, 1, 2, 3]
        assert all(d.state is DeviceState.HEALTHY for d in registry)
        assert all(not d.lost for d in registry)

    def test_per_device_plan_split(self, env):
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.KERNEL_HANG, 1e-3, device=1),
                FaultSpec(FaultKind.DEVICE_LOSS, 2e-3, device=0),
                FaultSpec(FaultKind.HARNESS_CRASH, 3e-3),
            ]
        )
        registry = make_registry(env, plan=plan, devices=2)
        # Engine-level faults reach only their device's injector; losses
        # and crashes never leak into any injector plan.
        assert registry.devices[0].injector is None
        assert registry.devices[1].injector is not None
        kinds = [f.kind for f in registry.devices[1].injector.plan]
        assert kinds == [FaultKind.KERNEL_HANG]


class TestLoss:
    def test_mark_lost_sets_ground_truth(self, env):
        registry = make_registry(env)
        down = []
        registry.on_down = lambda index, now: down.append((index, now))
        registry.mark_lost(1)
        device = registry.devices[1]
        assert device.lost
        assert device.state is DeviceState.LOST
        assert device.loss_time == env.now
        assert down == [(1, env.now)]
        assert [d.index for d in registry.healthy()] == [0, 2]
        assert registry.lost_devices == [device]

    def test_mark_lost_idempotent(self, env):
        registry = make_registry(env)
        down = []
        registry.on_down = lambda index, now: down.append(index)
        registry.mark_lost(0)
        registry.mark_lost(0)
        assert down == [0]

    def test_planned_loss_fires_at_absolute_time(self, env):
        plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, 1.5e-3, device=2)])
        registry = make_registry(env, plan=plan)
        registry.start()

        def body():
            yield env.timeout(2e-3)

        # Power monitors tick forever; run to a deadline, then stop them
        # so the environment can settle.
        env.run(until=env.process(body()))
        registry.stop()
        device = registry.devices[2]
        assert device.lost
        assert device.loss_time == pytest.approx(1.5e-3)

    def test_loss_planned_in_the_past_fires_immediately(self, env):
        plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, 1e-3, device=0)])
        registry = make_registry(env, plan=plan)

        def body():
            yield env.timeout(5e-3)  # start() reached after the arm time
            registry.start()
            yield env.timeout(1e-6)  # let the loss process run

        env.run(until=env.process(body()))
        registry.stop()
        assert registry.devices[0].lost
        assert registry.devices[0].loss_time == pytest.approx(5e-3)

    def test_heartbeat_reflects_liveness(self, env):
        registry = make_registry(env)
        device = registry.devices[0]
        beat = device.heartbeat(0.0)
        assert beat["alive"] is True
        assert beat["device"] == 0
        registry.mark_lost(0)
        beat = device.heartbeat(0.0)
        assert beat["alive"] is False
        assert beat["power"] == 0.0


class TestEnergyCutoff:
    def test_energy_cut_at_loss_instant(self):
        env = Environment()
        registry = make_registry(env)
        registry.start()

        def body():
            yield env.timeout(2e-3)
            registry.mark_lost(0)
            yield env.timeout(2e-3)

        env.run(until=env.process(body()))
        registry.stop()
        lost = registry.devices[0]
        alive = registry.devices[1]
        # The lost device's integral stops at t=2ms; the survivor's does
        # not.  Both idle, so energy is idle power x window.
        idle = registry.spec.power.idle
        assert lost.energy_between(0.0, 4e-3) == pytest.approx(idle * 2e-3)
        assert alive.energy_between(0.0, 4e-3) == pytest.approx(idle * 4e-3)
        assert lost.energy_between(3e-3, 4e-3) == 0.0
