"""Unit tests for the health monitor: classification and detection latency."""

import pytest

from repro.fleet import DeviceRegistry, DeviceState, HealthMonitor
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.sim.engine import Environment

from .conftest import fast_fleet

pytestmark = pytest.mark.fleet

INTERVAL = 2e-5
LATENCY = 5e-5
JITTER = 1e-5


def build(env, plan=None, devices=3, seed=0, on_lost=None):
    registry = DeviceRegistry(
        env, fast_fleet(num_devices=devices), num_streams=2, plan=plan
    )
    monitor = HealthMonitor(
        env,
        registry,
        interval=INTERVAL,
        detection_latency=LATENCY,
        detection_jitter=JITTER,
        seed=seed,
        on_lost=on_lost,
    )
    return registry, monitor


def run_for(env, registry, monitor, duration):
    registry.start()
    monitor.start()

    def body():
        yield env.timeout(duration)

    env.run(until=env.process(body()))
    monitor.stop()
    registry.stop()


class TestDetection:
    def test_loss_declared_within_budget(self):
        env = Environment()
        loss_at = 3e-4
        plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, loss_at, device=1)])
        declared = []
        registry, monitor = build(
            env, plan=plan, on_lost=lambda i, t: declared.append((i, t))
        )
        run_for(env, registry, monitor, 1e-3)

        assert declared and declared[0][0] == 1
        detected = declared[0][1]
        # Never before the seeded budget, never later than one full poll
        # tick past it.
        assert detected >= loss_at + LATENCY
        assert detected <= loss_at + LATENCY + JITTER + INTERVAL + 1e-12
        assert monitor.observed_state(1) is DeviceState.LOST
        assert registry.devices[1].detected_time == detected
        assert monitor.missed_heartbeats[1] >= 1

    def test_loss_declared_once(self):
        env = Environment()
        plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, 1e-4, device=0)])
        declared = []
        registry, monitor = build(
            env, plan=plan, on_lost=lambda i, t: declared.append(i)
        )
        run_for(env, registry, monitor, 1e-3)
        assert declared == [0]
        lost_events = [
            e for e in monitor.events if e.new_state == "lost"
        ]
        assert len(lost_events) == 1

    def test_detection_delay_is_seeded_and_per_device(self):
        env = Environment()
        _, a = build(env, seed=7)
        _, b = build(Environment(), seed=7)
        _, c = build(Environment(), seed=8)
        # Same seed -> identical budgets; jitter differs across devices.
        assert a.detect_delay == b.detect_delay
        assert a.detect_delay != c.detect_delay
        assert len(set(a.detect_delay.values())) == len(a.detect_delay)
        for delay in a.detect_delay.values():
            assert LATENCY <= delay <= LATENCY + JITTER

    def test_healthy_fleet_reports_nothing(self):
        env = Environment()
        registry, monitor = build(env)
        run_for(env, registry, monitor, 5e-4)
        assert monitor.events == []
        assert monitor.heartbeats_read > 0
        assert all(
            monitor.observed_state(d.index) is DeviceState.HEALTHY
            for d in registry
        )


class TestDegradedClassification:
    def test_throttle_window_classified_degraded_then_clears(self):
        env = Environment()
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultKind.DEVICE_THROTTLE,
                    1e-4,
                    duration=2e-4,
                    factor=4.0,
                    device=2,
                )
            ]
        )
        registry, monitor = build(env, plan=plan)
        run_for(env, registry, monitor, 6e-4)

        transitions = [
            (e.old_state, e.new_state)
            for e in monitor.events
            if e.device == 2
        ]
        assert ("healthy", "degraded") in transitions
        assert ("degraded", "healthy") in transitions
        # Window long closed by the end of the run.
        assert monitor.observed_state(2) is DeviceState.HEALTHY
