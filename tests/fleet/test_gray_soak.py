"""Gray-failure scenario matrix: slowdown magnitude x detection window.

The full matrix is chaos-soak material (``REPRO_SOAK=1``, the fleet
lane's soak step): every combination of sustained-slowdown factor and
detector p95 window runs hedged vs. unhedged and must satisfy the gray
subsystem's invariants, whatever the cell:

* every app terminates, nothing is lost to the speculative race;
* hedge accounting is internally consistent and duplicate work stays
  within the configured budget;
* a slowdown too mild to classify (factor 2 sits exactly at the default
  ``straggler_score`` threshold, which is *strict*) launches no hedges
  and leaves results byte-identical to the unhedged run;
* a clear straggler (factor >= 4) is detected at every window size and
  hedging never makes the batch later;
* the same seed replays the same bytes — hedged runs stay deterministic.

The per-PR fleet lane runs the strided diagonal of the same matrix so
regressions surface before the soak lane ever spins.
"""

import os

import pytest

from repro.fleet import FleetHarness, HedgeConfig
from repro.resilience.faults import FaultKind, FaultPlan

from .conftest import fast_fleet, make_apps

pytestmark = pytest.mark.fleet

NUM_APPS = 6
DEVICES = 3
STREAMS = 2
SEED = 1

#: Sustained-slowdown magnitude: at-threshold, clear, severe.
FACTORS = (2.0, 4.0, 8.0)
#: Detector p95 window (observations) — the detection-latency knob.
WINDOWS = (8, 16, 32)
FULL_MATRIX = [(f, w) for f in FACTORS for w in WINDOWS]
#: Strided diagonal for the per-PR lane: one cell per factor, each with
#: a different window, so both axes stay covered at 1/3 the cost.
FAST_CELLS = [(2.0, 8), (4.0, 16), (8.0, 32)]

#: Generous duplicate-work budget so the budget gate is not the thing
#: under test in most cells (its own tests live in test_hedging.py).
BUDGET_FRACTION = 0.5


def _hedge_config(window):
    return HedgeConfig(
        check_interval=0.2e-3,
        budget_fraction=BUDGET_FRACTION,
        window=window,
    )


def _run_cell(factor, window):
    """(unhedged result, hedged result) for one matrix cell."""
    plan = FaultPlan.gray(
        0,
        kind=FaultKind.SMX_SLOWDOWN,
        start=0.0,
        duration=1.0,
        factor=factor,
    )
    unhedged = FleetHarness(
        make_apps(NUM_APPS),
        fast_fleet(num_devices=DEVICES, seed=SEED),
        num_streams=STREAMS,
        plan=plan,
    ).run()
    hedged = FleetHarness(
        make_apps(NUM_APPS),
        fast_fleet(num_devices=DEVICES, seed=SEED, hedging=_hedge_config(window)),
        num_streams=STREAMS,
        plan=plan,
    ).run()
    return unhedged, hedged


def _record_key(result):
    return [
        (r.app_id, r.outcome, r.complete_time) for r in result.records
    ]


def _check_cell(factor, window, unhedged, hedged):
    # Termination: the race never loses an app.
    assert unhedged.completed == NUM_APPS
    assert hedged.completed == NUM_APPS

    # Accounting is internally consistent.
    assert 0 <= hedged.hedge_wins <= hedged.hedges_launched
    assert hedged.hedges_launched <= NUM_APPS
    assert hedged.duplicate_kernels >= 0
    batch_kernels = sum(a.profile.kernel_launches for a in make_apps(NUM_APPS))
    assert hedged.duplicate_kernels <= int(BUDGET_FRACTION * batch_kernels)

    if factor >= 4.0:
        # A clear straggler is detected at every window size, and the
        # hedge never makes the batch later.
        assert hedged.hedges_launched >= 1
        assert hedged.makespan <= unhedged.makespan
    if not hedged.hedges_launched:
        # Enabled-but-idle hedging is invisible: identical results.
        assert hedged.makespan == unhedged.makespan
        assert _record_key(hedged) == _record_key(unhedged)


@pytest.mark.soak
@pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="full gray matrix is opt-in: set REPRO_SOAK=1",
)
@pytest.mark.parametrize(("factor", "window"), FULL_MATRIX)
def test_gray_matrix_full(factor, window):
    unhedged, hedged = _run_cell(factor, window)
    _check_cell(factor, window, unhedged, hedged)

    # Determinism under a live gray fault: same seed, same bytes.
    _, again = _run_cell(factor, window)
    assert _record_key(again) == _record_key(hedged)
    assert again.hedge_events == hedged.hedge_events


@pytest.mark.parametrize(("factor", "window"), FAST_CELLS)
def test_gray_matrix_fast_subset(factor, window):
    unhedged, hedged = _run_cell(factor, window)
    _check_cell(factor, window, unhedged, hedged)
