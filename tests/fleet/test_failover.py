"""End-to-end failover acceptance tests (issue criterion c).

A fleet of 4 devices runs an 8-app schedule; one device is lost mid-run.
Everything admitted must still complete, re-executed work must stay
bounded by one in-flight kernel per migrated app, and a harness crash
during the failover must resume from the journal to the exact results of
the uninterrupted run.
"""

import json

import pytest

from repro.fleet import FleetHarness
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.sim.errors import HarnessCrash

from .conftest import FAST_HEALTH, fast_fleet, make_apps

pytestmark = pytest.mark.fleet

NUM_APPS = 8
DEVICES = 4
STREAMS = 2
SEED = 0


def run(fleet=None, plan=None, **kwargs):
    return FleetHarness(
        make_apps(NUM_APPS),
        fleet if fleet is not None else fast_fleet(num_devices=DEVICES),
        num_streams=STREAMS,
        seed=SEED,
        plan=plan,
        **kwargs,
    ).run()


@pytest.fixture(scope="module")
def baseline():
    """A clean fleet run — also the timing source for placing the loss."""
    return run()


@pytest.fixture(scope="module")
def loss_at(baseline):
    """Mid-GPU-section instant of device 0's longest-running app."""
    on_dev0 = [r for r in baseline.records if r.device_index == 0]
    assert on_dev0, "round-robin placement must land apps on device 0"
    target = max(on_dev0, key=lambda r: r.complete_time - r.gpu_start)
    return (target.gpu_start + target.complete_time) / 2


@pytest.fixture(scope="module")
def loss_plan(loss_at):
    return FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, loss_at, device=0)])


@pytest.fixture(scope="module")
def lossy(loss_plan):
    """The headline run: 1-of-4 device loss with failover on."""
    return run(plan=loss_plan)


class TestCleanFleet:
    def test_all_apps_complete(self, baseline):
        assert baseline.completed == NUM_APPS
        assert baseline.failed == 0
        assert baseline.migrations == 0
        assert baseline.reexecuted_kernels == 0
        assert baseline.devices_lost == 0
        assert baseline.recoveries == []

    def test_round_robin_spreads_devices(self, baseline):
        used = {r.device_index for r in baseline.records}
        assert used == set(range(DEVICES))

    def test_checkpoints_taken_at_phase_boundaries(self, baseline):
        assert baseline.checkpoints > 0


class TestDeviceLossWithFailover:
    def test_all_admitted_apps_complete(self, lossy):
        assert lossy.completed == NUM_APPS
        assert lossy.failed == 0
        assert lossy.devices_lost == 1
        assert lossy.devices[0].state == "lost"

    def test_apps_migrated_off_the_dead_device(self, lossy):
        assert lossy.migrations >= 1
        migrated = [r for r in lossy.records if r.migrations > 0]
        assert migrated
        for record in migrated:
            # Landed on a surviving device.
            assert record.device_index != 0

    def test_reexecuted_work_bounded(self, lossy):
        # Stream FIFO + phase-boundary checkpoints: at most the one
        # in-flight kernel re-runs per migration.
        for record in lossy.records:
            assert record.reexecuted_kernels <= record.migrations
        assert lossy.reexecuted_kernels <= lossy.migrations

    def test_recovery_timeline_ordered(self, lossy, loss_at):
        assert len(lossy.recoveries) == 1
        recovery = lossy.recoveries[0]
        assert recovery["device"] == 0
        assert recovery["lost"] == pytest.approx(loss_at)
        assert recovery["lost"] <= recovery["detected"] <= recovery["resumed"]
        budget = (
            FAST_HEALTH["detection_latency"]
            + FAST_HEALTH["detection_jitter"]
            + FAST_HEALTH["heartbeat_interval"]
        )
        assert recovery["detected"] - recovery["lost"] >= FAST_HEALTH[
            "detection_latency"
        ]
        assert recovery["detected"] - recovery["lost"] <= budget + 1e-12
        assert set(recovery["apps"]) == {
            r.app_id for r in lossy.records if r.migrations > 0
        }
        assert recovery["failed_apps"] == []
        assert recovery["reexecuted_kernels"] == lossy.reexecuted_kernels
        assert lossy.recovery_time >= recovery["detected"] - recovery["lost"]

    def test_health_monitor_observed_the_loss(self, lossy):
        lost_events = [e for e in lossy.health_events if e.new_state == "lost"]
        assert [e.device for e in lost_events] == [0]

    def test_per_device_goodput_attributable(self, lossy):
        goodput = lossy.per_device_goodput()
        assert set(goodput) == set(range(DEVICES))
        completed = sum(d.apps_completed for d in lossy.devices)
        assert completed == NUM_APPS

    def test_deterministic_rerun(self, lossy, loss_plan):
        again = run(plan=loss_plan)
        key = lambda r: (
            r.app_id, r.outcome, r.device_index, r.migrations,
            r.reexecuted_kernels, r.complete_time,
        )
        assert [key(r) for r in again.records] == [
            key(r) for r in lossy.records
        ]
        assert again.makespan == lossy.makespan


class TestNoFailoverBaseline:
    def test_apps_on_dead_device_fail(self, loss_plan):
        result = run(fleet=fast_fleet(num_devices=DEVICES, failover=False),
                     plan=loss_plan)
        assert result.failed >= 1
        assert result.completed + result.failed == NUM_APPS
        assert result.migrations == 0
        for record in result.records:
            if record.failed:
                assert record.outcome == "device-lost"
                assert record.device_index == 0


class TestNoCheckpointMigration:
    def test_migrating_without_checkpoints_reexecutes_more(
        self, lossy, loss_plan
    ):
        scratch = run(
            fleet=fast_fleet(num_devices=DEVICES, checkpoint=False),
            plan=loss_plan,
        )
        assert scratch.completed == NUM_APPS
        assert scratch.migrations == lossy.migrations
        # From-scratch restarts wipe all checkpointed progress, so they
        # can only re-run at least as much work.
        assert scratch.reexecuted_kernels >= lossy.reexecuted_kernels


class TestCrashDuringFailoverResume:
    def _journal_run(self, plan, path, resume=False):
        return FleetHarness(
            make_apps(NUM_APPS),
            fast_fleet(num_devices=DEVICES),
            num_streams=STREAMS,
            seed=SEED,
            plan=plan,
            journal_path=path,
            resume=resume,
        ).run()

    def test_resume_reproduces_uninterrupted_run(
        self, tmp_path, lossy, loss_plan, loss_at
    ):
        # Reference: the same lossy run, journaled, never crashed.
        ref_path = tmp_path / "uninterrupted.jsonl"
        reference = self._journal_run(loss_plan, ref_path)

        # Crash the harness mid-failover: after the loss, inside the
        # detection/migration window.
        recovery = lossy.recoveries[0]
        crash_at = (recovery["detected"] + recovery["resumed"]) / 2
        if crash_at <= recovery["lost"]:
            crash_at = recovery["detected"]
        crash_plan = FaultPlan(
            list(loss_plan.faults)
            + [FaultSpec(FaultKind.HARNESS_CRASH, crash_at)]
        )
        crash_path = tmp_path / "crashed.jsonl"
        with pytest.raises(HarnessCrash):
            self._journal_run(crash_plan, crash_path)
        assert crash_path.exists()

        resumed = self._journal_run(crash_plan, crash_path, resume=True)
        assert resumed.resumed
        assert resumed.recovered_entries > 0

        # Byte-identical journal and identical results vs uninterrupted.
        assert crash_path.read_bytes() == ref_path.read_bytes()
        key = lambda r: (
            r.app_id, r.outcome, r.device_index, r.migrations,
            r.reexecuted_kernels, r.complete_time,
        )
        assert [key(r) for r in resumed.records] == [
            key(r) for r in reference.records
        ]
        assert resumed.makespan == reference.makespan

        # The journal carries the full failure narrative.
        from repro.integrity import decode_line

        events = [
            decode_line(line)["event"]
            for line in ref_path.read_bytes().splitlines()[1:]
        ]
        assert "checkpoint" in events
        assert "device-lost" in events
        assert "failover" in events
        assert events.count("app") == NUM_APPS

    def test_resume_against_wrong_plan_rejected(self, tmp_path, loss_plan):
        from repro.serving import JournalMismatchError

        path = tmp_path / "run.jsonl"
        self._journal_run(loss_plan, path)
        other_plan = FaultPlan(
            [FaultSpec(FaultKind.DEVICE_LOSS, 1e-3, device=1)]
        )
        with pytest.raises(JournalMismatchError):
            self._journal_run(other_plan, path, resume=True)
