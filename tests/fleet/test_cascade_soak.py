"""Domain-loss scenario matrix: blast radius x skew x failure kind.

The full matrix is chaos-soak material (``REPRO_SOAK=1``, the fleet
lane's soak step): every fault domain of a topology-aware fleet is taken
out — fail-stop or gray, instantaneously or skewed over a real rail's
collapse time — under full containment (paced migration queue, retry
budget), and every cell must satisfy the containment invariants:

* every app terminates; a whole-domain loss with survivors left never
  loses work;
* the storm queue's accounting balances — everything queued is released
  exactly once, nothing is stranded, and the queue actually paced (the
  migrants outnumber the survivors' instant capacity);
* a gray domain browns out instead of dying: no migrations, no queue
  traffic, everything completes on its home device;
* a generous retry budget is never the binding constraint on a clean
  failover (denials would mean containment ate real recovery work);
* the same seed replays the same bytes — contained runs, skewed or not,
  stay deterministic.

The per-PR fleet lane runs a strided subset covering both kinds and
both skews so regressions surface before the soak lane ever spins.
"""

import os

import pytest

from repro.fleet import FleetHarness, StormControlConfig, TopologyConfig
from repro.fleet.topology import FleetTopology
from repro.resilience import RetryBudgetConfig
from repro.resilience.faults import FaultKind, FaultPlan

from .conftest import fast_fleet, make_apps

pytestmark = pytest.mark.fleet

NUM_APPS = 8
DEVICES = 4
STREAMS = 2
SEED = 1

TOPOLOGY = TopologyConfig(rails=2)
#: One migrant admitted per survivor at a time: with a whole rail's apps
#: displaced at once, the queue must actually hold a backlog.
STORM = StormControlConfig(max_inflight_per_device=1, pace_interval=2e-4)
BUDGET = RetryBudgetConfig(rate=1e4, burst=8.0)

#: Mid-run, while every app still has work in flight.
BLAST_AT = 1.5e-3

#: (rail index, arm skew, fault kind) — fail-stop and gray blasts.
DOMAINS = (0, 1)
SKEWS = (0.0, 1e-4)
KINDS = (FaultKind.DEVICE_LOSS, FaultKind.SMX_SLOWDOWN)
FULL_MATRIX = [(d, s, k) for d in DOMAINS for s in SKEWS for k in KINDS]
#: Strided subset for the per-PR lane: both kinds, both skews, both
#: domains stay covered at 1/2 the cost.
FAST_CELLS = [
    (0, 0.0, FaultKind.DEVICE_LOSS),
    (1, 1e-4, FaultKind.DEVICE_LOSS),
    (1, 0.0, FaultKind.SMX_SLOWDOWN),
    (0, 1e-4, FaultKind.SMX_SLOWDOWN),
]


def _blast(domain, skew, kind):
    members = FleetTopology(DEVICES, TOPOLOGY).members("rail", domain)
    gray = dict(duration=1.0, factor=4.0) if kind is not FaultKind.DEVICE_LOSS else {}
    return FaultPlan.correlated(
        members, kind=kind, time=BLAST_AT, skew=skew, seed=SEED, **gray
    )


def _run_cell(domain, skew, kind):
    return FleetHarness(
        make_apps(NUM_APPS),
        fast_fleet(
            num_devices=DEVICES,
            seed=SEED,
            topology=TOPOLOGY,
            storm=STORM,
            retry_budget=BUDGET,
        ),
        num_streams=STREAMS,
        seed=SEED,
        plan=_blast(domain, skew, kind),
    ).run()


def _record_key(result):
    return [
        (r.app_id, r.outcome, r.device_index, r.complete_time)
        for r in result.records
    ]


def _check_cell(domain, skew, kind, result):
    # Termination: a domain loss with survivors left never loses work.
    assert result.completed == NUM_APPS

    if kind is FaultKind.DEVICE_LOSS:
        # Both rail members died; every survivor-bound app funneled
        # through the paced queue and drained exactly once.
        lost = set(FleetTopology(DEVICES, TOPOLOGY).members("rail", domain))
        assert all(r.device_index not in lost for r in result.records)
        # Round-robin placement homes half the batch on the dead rail.
        assert result.storm_queued == NUM_APPS // 2
        assert result.storm_released == result.storm_queued
        assert result.storm_failed == 0
        # More migrants than instant slots: the queue actually held.
        assert result.storm_peak_depth >= 1
    else:
        # A gray blast browns the domain out without killing it: no
        # fail-stop path, no queue traffic, everyone stays home.
        assert result.storm_queued == 0
        assert {r.device_index for r in result.records} == set(range(DEVICES))

    # A generous budget must never deny on a clean failover.
    assert result.retry_budget_denied == 0


@pytest.mark.soak
@pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="full domain-loss matrix is opt-in: set REPRO_SOAK=1",
)
@pytest.mark.parametrize(("domain", "skew", "kind"), FULL_MATRIX)
def test_domain_loss_matrix_full(domain, skew, kind):
    result = _run_cell(domain, skew, kind)
    _check_cell(domain, skew, kind, result)

    # Determinism under a correlated blast: same seed, same bytes.
    again = _run_cell(domain, skew, kind)
    assert _record_key(again) == _record_key(result)


@pytest.mark.parametrize(("domain", "skew", "kind"), FAST_CELLS)
def test_domain_loss_matrix_fast_subset(domain, skew, kind):
    _check_cell(domain, skew, kind, _run_cell(domain, skew, kind))
