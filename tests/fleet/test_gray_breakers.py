"""Device-scoped breakers driven by an oscillating gray device.

The serving layer scopes breaker keys per device (``dev<i>:<type>``);
the fleet layer grades device health with the straggler detector.  This
test wires the two together: a device that flaps between slow and
healthy phases drives its *own* breaker through the full
OPEN → HALF_OPEN → CLOSED → OPEN oscillation, while the same app type on
the healthy peer never trips.
"""

import pytest

from repro.resilience.gray import StragglerDetector
from repro.serving import BreakerConfig, BreakerState, CircuitBreakerPanel

pytestmark = pytest.mark.fleet

SLOW, AT_SPEC = 6.0, 1.0


def feed(det, device, stretch, count=8):
    for _ in range(count):
        det.observe_kernel(device, stretch)


class TestOscillatingGrayDevice:
    def _parts(self):
        det = StragglerDetector(
            2, min_samples=2, window=8, ema_alpha=0.5, straggler_score=0.5
        )
        breakers = CircuitBreakerPanel(
            BreakerConfig(threshold=1, cooldown=1.0, jitter=0.0), seed=0
        )
        return det, breakers

    def test_breaker_follows_detector_classification(self):
        det, breakers = self._parts()
        sick, healthy = "dev0:nn", "dev1:nn"
        transitions = []
        for cycle in range(3):
            t = 3.0 * cycle
            # Slow phase: device 0 crawls, its peers stay at spec.
            feed(det, 0, SLOW)
            feed(det, 1, AT_SPEC)
            assert det.is_straggler(0)
            assert not det.is_straggler(1)
            # A classified straggler's timeout is a breaker failure on
            # *its* key only.
            breakers.on_failure(sick, t)
            breakers.on_success(healthy, t)
            assert breakers.state(sick) == BreakerState.OPEN
            transitions.append(("open", cycle))
            # Probe before the cooldown: fast-failed, still slow → re-trip.
            assert not breakers.allow(sick, t + 0.5)
            assert breakers.allow(sick, t + 1.5)
            assert breakers.state(sick) == BreakerState.HALF_OPEN
            if det.is_straggler(0):
                breakers.on_failure(sick, t + 1.6)
                assert breakers.state(sick) == BreakerState.OPEN
            # Healthy phase: fresh at-spec observations wash the window
            # out and the detector clears the classification.
            feed(det, 0, AT_SPEC, count=16)
            assert not det.is_straggler(0)
            assert breakers.allow(sick, t + 2.7)
            breakers.on_success(sick, t + 2.8)
            assert breakers.state(sick) == BreakerState.CLOSED
            transitions.append(("closed", cycle))
        # The healthy device never tripped; the sick one tripped twice
        # per cycle (slow-phase failure + failed half-open probe).
        assert breakers.state(healthy) == BreakerState.CLOSED
        assert breakers.trips == 6
        assert transitions == [
            (s, c) for c in range(3) for s in ("open", "closed")
        ]

    def test_detector_score_recovers_between_phases(self):
        det, _ = self._parts()
        feed(det, 0, SLOW)
        feed(det, 1, AT_SPEC)
        slow_score = det.score(0).score
        assert slow_score < 0.5
        feed(det, 0, AT_SPEC, count=16)
        assert det.score(0).score > slow_score
        assert not det.is_straggler(0)
