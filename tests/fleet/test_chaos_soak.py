"""Seeded chaos soak: random fleet-level fault storms, invariant checks.

Opt-in (``REPRO_SOAK=1``): each seed draws a random fault plan — device
losses, throttle windows, kernel hangs, launch failures — over a measured
clean horizon and runs a 3-device fleet through it.  Whatever the storm,
the run must terminate with every app in a terminal state, bounded
re-execution, and internally consistent recovery accounting.
"""

import os

import pytest

from repro.fleet import FleetHarness
from repro.resilience.faults import FaultPlan

from .conftest import fast_fleet, make_apps

pytestmark = [
    pytest.mark.fleet,
    pytest.mark.soak,
    pytest.mark.skipif(
        os.environ.get("REPRO_SOAK") != "1",
        reason="chaos soak is opt-in: set REPRO_SOAK=1",
    ),
]

NUM_APPS = 6
DEVICES = 3
STREAMS = 2


def clean_horizon():
    result = FleetHarness(
        make_apps(NUM_APPS),
        fast_fleet(num_devices=DEVICES),
        num_streams=STREAMS,
    ).run()
    return max(r.complete_time for r in result.records)


@pytest.mark.parametrize("seed", range(8))
def test_chaos_storm_terminates_with_invariants(seed):
    horizon = clean_horizon()
    plan = FaultPlan.generate(
        seed,
        horizon,
        num_devices=DEVICES,
        device_loss_rate=1.0 / horizon,
        device_throttle_rate=2.0 / horizon,
        throttle_factor=3.0,
        throttle_duration=horizon / 4,
        kernel_hang_rate=1.0 / horizon,
        launch_fail_rate=1.0 / horizon,
        hang_factor=4.0,
        targets=("gaussian", "needle"),
    )
    result = FleetHarness(
        make_apps(NUM_APPS),
        fast_fleet(num_devices=DEVICES, seed=seed),
        num_streams=STREAMS,
        plan=plan,
        seed=seed,
    ).run()

    # Termination: every app reached a terminal state.
    assert result.completed + result.failed == NUM_APPS
    for record in result.records:
        assert record.outcome in ("completed", "failed", "device-lost")

    # Bounded re-execution: at most one in-flight kernel per migration.
    for record in result.records:
        assert record.reexecuted_kernels <= record.migrations

    # Recovery accounting is internally consistent.
    for recovery in result.recoveries:
        assert recovery["lost"] <= recovery["detected"] <= recovery["resumed"]
        assert len(recovery["apps"]) + len(recovery["failed_apps"]) >= 0
    lost_summaries = [d for d in result.devices if d.state == "lost"]
    assert len(lost_summaries) == result.devices_lost
    assert result.devices_lost == len(
        {f.effective_device % DEVICES for f in plan.loss_specs()}
    )

    # Apps failed only if a loss or repeated faults can explain it.
    if result.failed:
        assert not plan.empty

    # Determinism under chaos: the same seed replays identically.
    again = FleetHarness(
        make_apps(NUM_APPS),
        fast_fleet(num_devices=DEVICES, seed=seed),
        num_streams=STREAMS,
        plan=plan,
        seed=seed,
    ).run()
    assert [
        (r.app_id, r.outcome, r.complete_time) for r in again.records
    ] == [(r.app_id, r.outcome, r.complete_time) for r in result.records]
