"""Shared helpers for the fleet / failover test suite.

Fleet tests use a *fast* health configuration (tight heartbeat, short
detection budget) so loss -> detection -> migration all resolve inside the
tiny-scale schedules the suite runs, and a fresh app list per run (apps
accumulate state while executing and cannot be reused).
"""

from __future__ import annotations

from repro.apps.registry import get_app
from repro.fleet import FleetConfig

#: Health timings small enough for tiny-scale (sub-10ms) runs.
FAST_HEALTH = dict(
    heartbeat_interval=2e-5,
    detection_latency=5e-5,
    detection_jitter=1e-5,
)

_DEFAULTS = {
    "nn": {"records": 2048},
    "needle": {"n": 64},
    "gaussian": {"n": 48},
    "srad": {"n": 64, "iterations": 2},
}


def make_apps(count=8, kinds=("gaussian", "needle")):
    """A fresh alternating-type app list (apps are single-use)."""
    return [
        get_app(kinds[i % len(kinds)], instance=i, **_DEFAULTS[kinds[i % len(kinds)]])
        for i in range(count)
    ]


def fast_fleet(**overrides) -> FleetConfig:
    """A FleetConfig with the fast health timings baked in."""
    base = dict(num_devices=4, **FAST_HEALTH)
    base.update(overrides)
    return FleetConfig(**base)
