"""Fault-domain topology and correlated blast-radius plans.

The topology is pure bookkeeping — attaching one must change nothing —
but its domain memberships feed ``FaultPlan.correlated``, which arms a
whole domain's worth of faults at once.  These tests pin the balanced
partitioning, the seeded shuffle, the blast-plan construction and the
end-to-end domain-loss recovery path.
"""

import pytest

from repro.fleet import DOMAIN_LEVELS, FleetHarness, FleetTopology, TopologyConfig
from repro.resilience.faults import (
    CORRELATED_KINDS,
    FaultKind,
    FaultPlan,
)

from .conftest import fast_fleet, make_apps

pytestmark = pytest.mark.fleet

DEVICES = 8


def topo(**overrides):
    base = dict(rails=4, switches=2, racks=2)
    base.update(overrides)
    return FleetTopology(DEVICES, TopologyConfig(**base))


class TestTopologyPartitioning:
    def test_contiguous_balanced_blocks(self):
        t = topo()
        assert t.members("rail", 0) == (0, 1)
        assert t.members("rail", 3) == (6, 7)
        assert t.members("switch", 0) == (0, 1, 2, 3)
        assert t.members("rack", 1) == (4, 5, 6, 7)

    def test_every_device_in_exactly_one_domain_per_level(self):
        t = topo()
        for level in DOMAIN_LEVELS:
            seen = []
            for domain in t.domains(level):
                seen.extend(t.members(level, domain))
            assert sorted(seen) == list(range(DEVICES))
            for device in range(DEVICES):
                assert device in t.members(level, t.domain_of(level, device))

    def test_domain_sizes_differ_by_at_most_one(self):
        t = FleetTopology(7, TopologyConfig(rails=3))
        sizes = [len(t.members("rail", d)) for d in t.domains("rail")]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 7

    def test_shuffle_is_reproducible_and_different(self):
        plain = topo()
        a = topo(shuffle_seed=11)
        b = topo(shuffle_seed=11)
        for level in DOMAIN_LEVELS:
            assert a._domain[level] == b._domain[level]
        # The permutation actually scrambles at least one level.
        assert any(
            a._domain[level] != plain._domain[level]
            for level in DOMAIN_LEVELS
        )

    def test_labels(self):
        t = topo()
        assert t.labels(0) == {"rail": 0, "switch": 0, "rack": 0}
        assert t.label(7) == "rail3/sw1/rack1"

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologyConfig(rails=0)
        with pytest.raises(ValueError):
            FleetTopology(2, TopologyConfig(rails=4))
        with pytest.raises(ValueError):
            topo().members("rail", 99)
        with pytest.raises(ValueError):
            topo().domain_of("pod", 0)


class TestCorrelatedPlan:
    def test_loss_blast_arms_every_member(self):
        members = topo().members("switch", 1)
        plan = FaultPlan.correlated(members, time=2e-3)
        assert len(plan.faults) == len(members)
        assert {f.device for f in plan.faults} == set(members)
        assert all(f.kind is FaultKind.DEVICE_LOSS for f in plan.faults)
        assert all(f.time == 2e-3 for f in plan.faults)

    def test_skew_staggers_within_window_reproducibly(self):
        members = (0, 1, 2, 3)
        a = FaultPlan.correlated(members, time=1e-3, skew=0.5e-3, seed=3)
        b = FaultPlan.correlated(members, time=1e-3, skew=0.5e-3, seed=3)
        times = [f.time for f in a.faults]
        assert times == [f.time for f in b.faults]
        assert all(1e-3 <= t < 1.5e-3 for t in times)
        assert len(set(times)) == len(members)

    def test_gray_blast_needs_duration(self):
        with pytest.raises(ValueError):
            FaultPlan.correlated((0, 1), kind=FaultKind.SMX_SLOWDOWN)
        plan = FaultPlan.correlated(
            (0, 1), kind="smx_slowdown", duration=1e-3, factor=3.0
        )
        assert all(f.duration == 1e-3 for f in plan.faults)

    def test_invalid_blasts_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.correlated((0, 1), kind=FaultKind.HARNESS_CRASH)
        with pytest.raises(ValueError):
            FaultPlan.correlated(())
        with pytest.raises(ValueError):
            FaultPlan.correlated((0, 0))
        with pytest.raises(ValueError):
            FaultPlan.correlated((0,), skew=-1.0)
        assert FaultKind.DEVICE_LOSS in CORRELATED_KINDS


class TestTopologyInFleet:
    def run(self, fleet, plan=None):
        return FleetHarness(
            make_apps(8), fleet, num_streams=2, seed=0, plan=plan
        ).run()

    def test_attaching_topology_changes_nothing(self):
        plain = self.run(fast_fleet(num_devices=4))
        tagged = self.run(
            fast_fleet(
                num_devices=4, topology=TopologyConfig(rails=2, racks=2)
            )
        )
        assert tagged.makespan == plain.makespan
        assert [r.complete_time for r in tagged.records] == [
            r.complete_time for r in plain.records
        ]

    def test_device_summaries_carry_domain_labels(self):
        fleet = fast_fleet(
            num_devices=4, topology=TopologyConfig(rails=2, racks=2)
        )
        result = self.run(fleet)
        assert [d.domain for d in result.devices] == [
            "rail0/sw0/rack0",
            "rail0/sw0/rack0",
            "rail1/sw0/rack1",
            "rail1/sw0/rack1",
        ]
        plain = self.run(fast_fleet(num_devices=4))
        assert all(d.domain is None for d in plain.devices)

    def test_domain_loss_recovers_with_failover(self):
        fleet = fast_fleet(
            num_devices=4, topology=TopologyConfig(rails=2, racks=2)
        )
        members = FleetTopology(4, fleet.topology).members("rail", 0)
        plan = FaultPlan.correlated(members, time=1.5e-3)
        result = self.run(fleet, plan=plan)
        assert result.devices_lost == len(members)
        assert result.completed == 8
        assert result.failed == 0
        for record in result.records:
            assert record.device_index not in members
