"""Unit tests for checkpoints and the in-memory checkpoint store."""

import pytest

from repro.fleet import AppCheckpoint, CheckpointStore

pytestmark = pytest.mark.fleet


class TestAppCheckpoint:
    def test_fresh_checkpoint_is_zeroed(self):
        ckpt = AppCheckpoint(app_id="nn#0")
        assert ckpt.phase_index == 0
        assert ckpt.completed_kernels == 0
        assert ckpt.restore_bytes == 0
        assert ckpt.stream_index == -1

    def test_as_entry_is_flat_and_journalable(self):
        import json

        ckpt = AppCheckpoint(
            app_id="gaussian#1",
            device_index=2,
            phase_index=3,
            completed_copies=4,
            completed_kernels=7,
            restore_bytes=1024,
            time=1.5e-3,
        )
        entry = ckpt.as_entry()
        assert entry["event"] == "checkpoint"
        assert entry["app"] == "gaussian#1"
        assert entry["device"] == 2
        assert entry["kernels"] == 7
        assert entry["restore_bytes"] == 1024
        # Must survive the journal's JSON round-trip unchanged.
        assert json.loads(json.dumps(entry, sort_keys=True)) == entry


class TestCheckpointStore:
    def test_save_and_get_latest(self):
        store = CheckpointStore()
        assert store.get("nn#0") is None
        first = AppCheckpoint(app_id="nn#0", completed_kernels=1)
        store.save(first)
        second = AppCheckpoint(app_id="nn#0", completed_kernels=3)
        store.save(second)
        assert store.get("nn#0") is second
        assert len(store) == 1
        assert store.snapshots == 2

    def test_store_isolates_apps(self):
        store = CheckpointStore()
        store.save(AppCheckpoint(app_id="a#0", completed_kernels=1))
        store.save(AppCheckpoint(app_id="b#0", completed_kernels=9))
        assert store.get("a#0").completed_kernels == 1
        assert store.get("b#0").completed_kernels == 9
        assert len(store) == 2
