"""Cascade containment end-to-end: budgets, deadlines, brownout.

The containment knobs must (a) cap retry amplification under repeated
faults, (b) shed work that can no longer meet its deadline instead of
re-running it, (c) make hedge launches spend the same budget as retries,
(d) trip the brownout ladder from sustained goodput collapse — and (e)
cost nothing when enabled but idle.
"""

import pytest

from repro.fleet import FleetHarness, HedgeConfig, StormControlConfig, TopologyConfig
from repro.resilience import BrownoutConfig, RetryBudgetConfig
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy

from .conftest import fast_fleet, make_apps

pytestmark = pytest.mark.fleet

NUM_APPS = 4
DEVICES = 2
SEED = 7

#: A bucket that never meaningfully refills: one retry, then denial.
EXHAUSTED = RetryBudgetConfig(rate=1e-6, burst=1.0, shared=True)

#: Two transient launch failures on device 0, spaced so distinct
#: attempts consume them (an attempt fans kernels across both streams,
#: so two specs armed at once would fail a single attempt only once).
FLAKY_PLAN = FaultPlan(
    [
        FaultSpec(FaultKind.LAUNCH_FAIL, 1e-4, device=0),
        FaultSpec(FaultKind.LAUNCH_FAIL, 3e-3, device=0),
    ]
)


def run(plan=None, apps=NUM_APPS, deadlines=None, **overrides):
    fleet = fast_fleet(num_devices=DEVICES, seed=SEED, **overrides)
    return FleetHarness(
        make_apps(apps), fleet, num_streams=2, seed=SEED, plan=plan,
        deadlines=deadlines,
    ).run()


class TestRetryBudgetInHarness:
    def test_unbudgeted_faults_all_retry(self):
        result = run(plan=FLAKY_PLAN)
        assert result.completed == NUM_APPS
        assert sum(r.retries for r in result.records) == 2
        assert result.retries_denied == 0
        assert result.retry_budget_granted == 0  # budget not even built

    def test_exhausted_budget_sheds_instead_of_retrying(self):
        result = run(plan=FLAKY_PLAN, retry_budget=EXHAUSTED)
        # One retry fits the burst; the second fault is denied.
        assert result.retry_budget_granted == 1
        assert result.retry_budget_denied >= 1
        assert result.retries_denied >= 1
        denied = [r for r in result.records if r.outcome == "retry-budget"]
        assert len(denied) == 1
        assert denied[0].failed
        assert sum(r.retries for r in result.records) == 1

    def test_generous_budget_changes_nothing(self):
        plain = run(plan=FLAKY_PLAN)
        budgeted = run(
            plan=FLAKY_PLAN,
            retry_budget=RetryBudgetConfig(rate=1e4, burst=16.0),
        )
        assert budgeted.completed == plain.completed
        assert [r.complete_time for r in budgeted.records] == [
            r.complete_time for r in plain.records
        ]
        assert budgeted.retry_budget_granted == 2
        assert budgeted.retry_budget_denied == 0

    def test_retry_backoff_delays_the_rerun(self):
        instant = run(plan=FLAKY_PLAN)
        delayed = run(
            plan=FLAKY_PLAN,
            retry_backoff=RetryPolicy(base_delay=2e-4, mode="full"),
        )
        assert delayed.completed == NUM_APPS
        retried_instant = {
            r.app_id: r.complete_time
            for r in instant.records
            if r.retries
        }
        for record in delayed.records:
            if record.app_id in retried_instant:
                assert record.complete_time > retried_instant[record.app_id]


class TestDeadlinePropagation:
    @pytest.fixture(scope="class")
    def clean(self):
        return run()

    def doomed_deadline(self, clean):
        """A deadline halfway through the longest app's run."""
        target = max(clean.records, key=lambda r: r.complete_time)
        return target.app_id, (target.gpu_start + target.complete_time) / 2

    def test_contained_sheds_at_checkpoint(self, clean):
        app_id, deadline = self.doomed_deadline(clean)
        result = run(deadlines={app_id: deadline}, shed_unfinishable=True)
        record = next(r for r in result.records if r.app_id == app_id)
        assert record.outcome == "shed-deadline"
        assert record.failed
        assert record.retries == 0
        assert result.shed_apps == 1
        # Shedding happens at the phase boundary, not at completion: the
        # doomed attempt stopped early.
        assert record.complete_time < max(
            r.complete_time for r in clean.records
        )

    def test_uncontained_reruns_until_attempts_exhausted(self, clean):
        app_id, deadline = self.doomed_deadline(clean)
        result = run(deadlines={app_id: deadline})
        record = next(r for r in result.records if r.app_id == app_id)
        assert record.outcome == "deadline-missed"
        # The deadline-driven retry storm: full re-submissions from
        # scratch until the attempt cap, re-executing finished work.
        assert record.retries == result.fleet.max_attempts - 1
        assert record.reexecuted_kernels > 0

    def test_budget_caps_deadline_reruns(self, clean):
        app_id, deadline = self.doomed_deadline(clean)
        capped = run(deadlines={app_id: deadline}, retry_budget=EXHAUSTED)
        uncapped = run(deadlines={app_id: deadline})
        record = next(r for r in capped.records if r.app_id == app_id)
        assert record.outcome == "deadline-missed"
        assert record.retries_denied == 1
        assert record.reexecuted_kernels < next(
            r for r in uncapped.records if r.app_id == app_id
        ).reexecuted_kernels

    def test_unknown_deadline_app_rejected(self):
        with pytest.raises(ValueError):
            FleetHarness(
                make_apps(2),
                fast_fleet(num_devices=DEVICES),
                deadlines={"nope#9": 1.0},
            )

    def test_deadline_stamped_on_record(self, clean):
        app_id, deadline = self.doomed_deadline(clean)
        result = run(deadlines={app_id: deadline}, shed_unfinishable=True)
        record = next(r for r in result.records if r.app_id == app_id)
        assert record.slo_deadline == pytest.approx(deadline)


class TestHedgesSpendTheBudget:
    # budget_fraction=1.0 so the kernel budget never gates: both
    # stragglers on the slowed device are hedge-eligible, and only the
    # retry token bucket decides who launches.
    HEDGE = HedgeConfig(check_interval=0.2e-3, budget_fraction=1.0)
    GRAY = FaultPlan.gray(
        0, kind=FaultKind.SMX_SLOWDOWN, start=0.0, duration=1.0, factor=4.0
    )

    def test_generous_budget_still_hedges_and_accounts(self):
        result = run(
            plan=self.GRAY,
            hedging=self.HEDGE,
            retry_budget=RetryBudgetConfig(rate=1e4, burst=16.0),
        )
        unbudgeted = run(plan=self.GRAY, hedging=self.HEDGE)
        assert result.hedges_launched == unbudgeted.hedges_launched == 2
        # Each launch spent a token from the shared bucket.
        assert result.retry_budget_granted == 2
        assert result.retry_budget_denied == 0

    def test_exhausted_budget_suppresses_hedges_truthfully(self):
        # One burst token, two stragglers: the first hedge spends it and
        # the second is denied by the same bucket — and keeps getting
        # denied on every later scan tick, never silently launched.
        result = run(plan=self.GRAY, hedging=self.HEDGE, retry_budget=EXHAUSTED)
        assert result.hedges_launched == 1
        assert result.retry_budget_granted == 1
        assert result.retry_budget_denied >= 1
        # Telemetry stays truthful: only the launched hedge duplicated
        # work, and every record still finishes.
        launched = {e["app"] for e in result.hedge_events}
        assert len(launched) == 1
        assert result.completed == NUM_APPS


class TestBrownoutInHarness:
    def test_miscalibrated_capacity_trips_the_ladder(self):
        # per_device_rate far above anything the fleet can produce: every
        # window reads as collapse, so the ladder must climb to its cap
        # and the windows past the trip budget count as metastable.
        result = run(
            brownout=BrownoutConfig(
                window=2e-4,
                trip_windows=1,
                per_device_rate=1e9,
                max_level=1,
            )
        )
        assert result.brownout_level == 1
        assert [e["level"] for e in result.brownout_events][:1] == [1]
        assert result.metastable_windows > 0
        assert len(result.goodput_windows) > 0
        assert result.completed == NUM_APPS

    def test_level_two_sheds_configured_classes_at_readmission(self):
        # Ladder reaches level 2 once kernels start completing; device 0
        # dies after that, and its (gaussian) apps are shed at the
        # failover re-admission point instead of migrating.
        plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, 3e-3, device=0)])
        result = run(
            plan=plan,
            brownout=BrownoutConfig(
                window=1e-4,
                trip_windows=1,
                per_device_rate=1e9,
                max_level=2,
                shed_types=("gaussian",),
            ),
        )
        assert result.brownout_level == 2
        shed = [r for r in result.records if r.outcome == "shed-brownout"]
        assert len(shed) == 2
        assert all(r.type_name == "gaussian" for r in shed)
        assert all(r.failed for r in shed)
        assert result.completed + result.failed == NUM_APPS

    def test_observational_probe_records_but_never_trips(self):
        result = run(
            brownout=BrownoutConfig(window=2e-4, per_device_rate=0.0)
        )
        assert result.brownout_level == 0
        assert result.brownout_events == []
        assert result.metastable_windows == 0
        assert result.completed == NUM_APPS
        assert all(w["ratio"] == 1.0 for w in result.goodput_windows)


class TestContainmentIdleIsInvisible:
    def test_full_stack_idle_byte_identical(self):
        plain = run()
        armed = run(
            topology=TopologyConfig(rails=2),
            storm=StormControlConfig(),
            retry_budget=RetryBudgetConfig(),
            retry_backoff=RetryPolicy(mode="full"),
            shed_unfinishable=True,
        )
        key = lambda r: (r.app_id, r.outcome, r.device_index, r.complete_time)
        assert [key(r) for r in armed.records] == [
            key(r) for r in plain.records
        ]
        assert armed.makespan == plain.makespan
        assert armed.energy == plain.energy
        assert armed.storm_queued == 0
        assert armed.retry_budget_granted == 0
        assert armed.shed_apps == 0
