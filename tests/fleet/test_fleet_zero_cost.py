"""The fleet layer must cost nothing when it is off (issue criterion d).

With ``fleet=None`` the runner, the serving layer and the journal format
must behave exactly as before the fleet layer existed: same pipeline, same
fingerprints for old configs, no new keys in journal entries.
"""

import json

import pytest

from repro.core.runner import ExperimentRunner, RunConfig
from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.core.workload import Workload
from repro.fleet import FleetHarness, FleetResult
from repro.framework.harness import HarnessResult
from repro.integrity import decode_line
from repro.serving import FleetServingConfig, ServingConfig, run_serving

from .conftest import fast_fleet, make_apps

pytestmark = pytest.mark.fleet


def small_workload():
    return Workload.heterogeneous_pair("gaussian", "needle", 4)


class TestRunnerPathUntouched:
    def test_fleet_none_uses_single_device_harness(self):
        result = ExperimentRunner().run(
            RunConfig(workload=small_workload(), num_streams=4)
        )
        assert isinstance(result.harness, HarnessResult)
        assert not isinstance(result.harness, FleetResult)

    def test_fleet_none_results_identical_to_direct_harness(self):
        runner = ExperimentRunner()
        config = RunConfig(workload=small_workload(), num_streams=4)
        via_runner = runner.run(config)
        again = runner.run(config)
        # Same config -> bit-identical simulation, fleet code never runs.
        assert via_runner.makespan == again.makespan
        assert via_runner.energy == again.energy
        assert [r.complete_time for r in via_runner.harness.records] == [
            r.complete_time for r in again.harness.records
        ]

    def test_fleet_config_dispatches_to_fleet_harness(self):
        result = ExperimentRunner().run(
            RunConfig(
                workload=small_workload(),
                num_streams=2,
                fleet=fast_fleet(num_devices=2),
            )
        )
        assert isinstance(result.harness, FleetResult)
        assert result.harness.completed == 4


class TestSingleDeviceFleet:
    def test_single_device_no_failover_completes(self):
        result = FleetHarness(
            make_apps(4),
            fast_fleet(num_devices=1, failover=False),
            num_streams=2,
        ).run()
        assert result.completed == 4
        assert result.failed == 0
        assert result.migrations == 0
        assert result.devices_lost == 0
        assert len(result.devices) == 1

    def test_single_device_fleet_deterministic(self):
        def once():
            return FleetHarness(
                make_apps(4),
                fast_fleet(num_devices=1, failover=False),
                num_streams=2,
            ).run()

        a, b = once(), once()
        assert a.makespan == b.makespan
        assert [r.complete_time for r in a.records] == [
            r.complete_time for r in b.records
        ]


class TestServingJournalFormatUnchanged:
    def _arrivals(self):
        return poisson_arrivals(
            rate=6000.0,
            duration=0.003,
            type_mix=[("nn", 2), ("needle", 1)],
            seed=7,
        )

    def test_entries_gain_device_key_only_with_fleet(self, tmp_path):
        path_plain = tmp_path / "plain.jsonl"
        run_serving(
            self._arrivals(),
            ConcurrencyCapDispatcher(2),
            ServingConfig(seed=7),
            num_streams=8,
            journal_path=path_plain,
        )
        plain_entries = [
            decode_line(line)
            for line in path_plain.read_bytes().splitlines()[1:]
        ]
        assert plain_entries
        assert all("device" not in e for e in plain_entries)

        path_fleet = tmp_path / "fleet.jsonl"
        run_serving(
            self._arrivals(),
            ConcurrencyCapDispatcher(2),
            ServingConfig(seed=7, fleet=FleetServingConfig(num_devices=2)),
            num_streams=8,
            journal_path=path_fleet,
        )
        fleet_entries = [
            decode_line(line)
            for line in path_fleet.read_bytes().splitlines()[1:]
        ]
        assert fleet_entries
        assert all("device" in e for e in fleet_entries)

    def test_fingerprint_unchanged_for_fleetless_config(self, tmp_path):
        # A journal written without the fleet layer must resume cleanly
        # after the fleet wiring shipped — the fingerprint payload gains
        # keys only when config.fleet is set.
        path = tmp_path / "old.jsonl"
        arrivals = self._arrivals()
        first = run_serving(
            arrivals,
            ConcurrencyCapDispatcher(2),
            ServingConfig(seed=7),
            num_streams=8,
            journal_path=path,
        )
        resumed = run_serving(
            arrivals,
            ConcurrencyCapDispatcher(2),
            ServingConfig(seed=7),
            num_streams=8,
            journal_path=path,
            resume=True,
        )
        assert resumed.resumed
        assert resumed.recovered_entries == first.jobs
        assert resumed.fleet_devices == 0
        assert resumed.devices_lost == 0

    def test_serving_config_inactive_accounts_for_fleet(self):
        assert ServingConfig().inactive
        assert not ServingConfig(fleet=FleetServingConfig()).inactive
