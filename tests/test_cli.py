"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert set(sub.choices) == {
            "list", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "timeline", "table3", "headline",
            "autotune", "streaming", "report", "homog", "resilience",
            "serve", "schedule", "fleet", "telemetry", "trace", "traffic",
            "verify",
        }

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gaussian" in out
        assert "fig4" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--m", "2", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert "naive-fifo" in out
        assert "AX(1)" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "1203" in out
        assert "208" in out

    def test_table3(self, capsys):
        assert main(["--scale", "tiny", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Fan1" in out
        assert "euclid" in out

    def test_fig4_tiny_with_csv(self, tmp_path, capsys):
        code = main([
            "--scale", "tiny", "--out", str(tmp_path),
            "fig4", "--na", "4", "--pair", "nn", "needle",
        ])
        assert code == 0
        assert (tmp_path / "fig4.csv").exists()
        out = capsys.readouterr().out
        assert "improvement_pct" in out
        assert "full:" in out

    def test_fig6_tiny(self, capsys):
        assert main([
            "--scale", "tiny", "fig6", "--pair", "nn", "needle", "--na", "4",
        ]) == 0
        assert "default_x" in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main([
            "--scale", "tiny", "timeline", "--pair", "nn", "needle",
            "--apps", "4", "--width", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "stream-" in out
        assert "legend" in out

    def test_timeline_sync_flag(self, capsys):
        assert main([
            "--scale", "tiny", "timeline", "--apps", "4", "--sync",
        ]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_autotune_tiny(self, capsys):
        code = main([
            "--scale", "tiny", "autotune", "--pair", "nn", "needle",
            "--apps", "4", "--restarts", "0", "--swaps", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best after search" in out
        assert "best schedule:" in out

    def test_streaming_tiny(self, capsys):
        code = main([
            "--scale", "tiny", "streaming", "--rate", "6000",
            "--duration", "0.003", "--streams", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "greedy" in out
        assert "mean_sojourn_ms" in out

    def test_homog_tiny(self, capsys):
        code = main(["--scale", "tiny", "homog", "--apps", "nn", "--na", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement_pct" in out
        assert "best:" in out

    def test_resilience_tiny_with_csv(self, tmp_path, capsys):
        code = main([
            "--scale", "tiny", "--out", str(tmp_path),
            "resilience", "--apps", "4", "--streams", "4", "--seed", "42",
        ])
        assert code == 0
        assert (tmp_path / "resilience.csv").exists()
        assert (tmp_path / "resilience_summary.csv").exists()
        out = capsys.readouterr().out
        assert "clean" in out
        assert "faulted" in out
        assert "planned faults" in out

    def test_serve_tiny_with_csv(self, tmp_path, capsys):
        code = main([
            "--scale", "tiny", "--out", str(tmp_path),
            "serve", "--rate", "8000", "--duration", "0.004",
            "--streams", "8", "--cap", "2", "--qdepth", "4",
        ])
        assert code == 0
        assert (tmp_path / "serving.csv").exists()
        assert (tmp_path / "serving_outcomes.csv").exists()
        out = capsys.readouterr().out
        assert "goodput" in out

    def test_serve_crash_and_resume(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        argv = [
            "--scale", "tiny", "--out", str(tmp_path),
            "serve", "--rate", "8000", "--duration", "0.004",
            "--streams", "8", "--cap", "2", "--qdepth", "4",
            "--journal", str(journal),
        ]
        assert main(argv + ["--crash-at", "0.002"]) == 3
        assert "harness crashed mid-run" in capsys.readouterr().out
        assert journal.exists()
        assert main(argv + ["--crash-at", "0.002", "--resume"]) == 0
        assert "goodput" in capsys.readouterr().out

    def test_schedule_tiny_with_csv(self, tmp_path, capsys):
        code = main([
            "--scale", "tiny", "--out", str(tmp_path),
            "schedule", "--batches", "3", "--apps", "4",
            "--policy", "greedy-interleave",
        ])
        assert code == 0
        assert (tmp_path / "schedule.csv").exists()
        out = capsys.readouterr().out
        assert "observed_ms" in out
        assert "greedy-interleave: 3 batches" in out

    def test_schedule_crash_and_resume(self, tmp_path, capsys):
        journal = tmp_path / "sched.jsonl"
        argv = [
            "--scale", "tiny",
            "schedule", "--batches", "4", "--apps", "4",
            "--journal", str(journal),
        ]
        assert main(argv + ["--crash-after", "2"]) == 3
        assert "harness crashed mid-run" in capsys.readouterr().out
        assert journal.exists()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from journal" in out
        assert "bandit: 4 batches" in out

    def test_fleet_tiny_with_csv(self, tmp_path, capsys):
        code = main([
            "--scale", "tiny", "--out", str(tmp_path),
            "fleet", "--apps", "4", "--devices", "2", "--lose", "0",
            "--heartbeat", "2e-5", "--detect-latency", "5e-5",
        ])
        assert code == 0
        assert (tmp_path / "fleet.csv").exists()
        out = capsys.readouterr().out
        assert "lost" in out
        assert "migrations" in out

    def test_fleet_crash_and_resume(self, tmp_path, capsys):
        journal = tmp_path / "fleet.jsonl"
        argv = [
            "--scale", "tiny",
            "fleet", "--apps", "4", "--devices", "2", "--lose", "0",
            "--heartbeat", "2e-5", "--detect-latency", "5e-5",
            "--journal", str(journal),
        ]
        assert main(argv + ["--crash-at", "6e-3"]) == 3
        assert "harness crashed mid-run" in capsys.readouterr().out
        assert journal.exists()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from journal" in out

    def test_telemetry_tiny_with_csv(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "metrics.jsonl"
        code = main([
            "--scale", "tiny", "--out", str(tmp_path),
            "telemetry", "--apps", "4", "--interval", "2e-5",
            "--prom", str(prom), "--jsonl", str(jsonl),
        ])
        assert code == 0
        assert (tmp_path / "telemetry.csv").exists()
        out = capsys.readouterr().out
        assert "repro_gpu_power_watts" in out
        assert "trend" in out
        text = prom.read_text()
        assert text.startswith("# HELP") or text.startswith("# TYPE")
        assert "repro_sim_events_total" in text
        assert jsonl.read_text().count("\n") >= 1

    def test_telemetry_filter(self, capsys):
        code = main([
            "--scale", "tiny",
            "telemetry", "--apps", "4", "--interval", "2e-5",
            "--filter", "repro_gpu_power",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_gpu_power_watts" in out
        assert "repro_sim_events_total" not in out

    def test_trace_tiny_with_exports(self, tmp_path, capsys):
        import json

        chrome = tmp_path / "trace.json"
        otlp = tmp_path / "spans.jsonl"
        alerts = tmp_path / "alerts.jsonl"
        code = main([
            "--scale", "tiny", "--out", str(tmp_path),
            "trace", "--rate", "9000", "--duration", "0.003",
            "--streams", "8", "--cap", "3",
            "--chrome", str(chrome), "--otlp", str(otlp),
            "--alerts", str(alerts),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet critical path" in out
        assert "slowest traces" in out
        assert (tmp_path / "trace_aggregate.csv").exists()
        assert (tmp_path / "trace_slowest.csv").exists()
        doc = json.loads(chrome.read_text())
        assert any(e["ph"] in ("b", "e") for e in doc["traceEvents"])
        assert json.loads(otlp.read_text().splitlines()[0])["traceId"]
        assert alerts.exists()

    def test_report_missing_sections(self, tmp_path, capsys):
        code = main(["report", "--results", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Not yet generated" in out

    def test_report_write_with_csv(self, tmp_path, capsys):
        (tmp_path / "fig03_orders.csv").write_text(
            "order,schedule\nnaive-fifo,AX(1) AY(1)\n"
        )
        target = tmp_path / "report.md"
        code = main(["report", "--results", str(tmp_path), "--write", str(target)])
        assert code == 0
        text = target.read_text()
        assert "naive-fifo" in text
        assert "| order | schedule |" in text

    def test_fig9_tiny(self, capsys):
        assert main([
            "--scale", "tiny", "fig9", "--apps", "4",
            "--pair", "nn", "needle",
        ]) == 0
        out = capsys.readouterr().out
        assert "serial" in out
        assert "energy reduction" in out
