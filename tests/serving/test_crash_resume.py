"""Harness-crash fault and deterministic journal resume."""

import pytest

from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultKind, FaultSpec
from repro.serving import JournalMismatchError, RunJournal, ServingConfig, run_serving
from repro.sim.errors import HarnessCrash

pytestmark = pytest.mark.serving

MIX = [("gaussian", 1), ("nn", 1)]
CRASH_AT = 0.01


def trace():
    return poisson_arrivals(1500.0, 0.02, MIX, seed=5)


def config(crash=True, seed=9):
    faults = [
        FaultSpec(kind=FaultKind.LAUNCH_FAIL, time=0.004, target="nn"),
    ]
    if crash:
        faults.append(FaultSpec(kind=FaultKind.HARNESS_CRASH, time=CRASH_AT))
    return ServingConfig(
        queue_depth=4,
        queue_policy="shed-oldest",
        slo_factor=5.0,
        plan=FaultPlan(faults),
        seed=seed,
    )


def crash_run(path):
    with pytest.raises(HarnessCrash):
        run_serving(
            trace(), ConcurrencyCapDispatcher(2), config(), num_streams=8,
            journal_path=path,
        )


class TestCrash:
    def test_crash_raises_at_planned_time(self):
        with pytest.raises(HarnessCrash) as excinfo:
            run_serving(
                trace(), ConcurrencyCapDispatcher(2), config(), num_streams=8
            )
        assert excinfo.value.time == pytest.approx(CRASH_AT)

    def test_crash_leaves_a_valid_journal_prefix(self, tmp_path):
        path = tmp_path / "run.jsonl"
        crash_run(path)
        entries = RunJournal(path).entries()
        # Some outcomes were committed, but not the whole trace.
        assert 0 < len(entries) < len(trace())
        # Everything journaled happened before the crash.
        for entry in entries:
            if entry["complete"] is not None:
                assert entry["complete"] <= CRASH_AT

    def test_crash_times_sorted(self):
        plan = config().plan
        assert plan.crash_times() == [CRASH_AT]


class TestResume:
    def test_resume_reproduces_uninterrupted_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        crash_run(path)
        resumed = run_serving(
            trace(), ConcurrencyCapDispatcher(2), config(), num_streams=8,
            journal_path=path, resume=True,
        )
        # Reference: same device faults, no crash, no journal.
        reference = run_serving(
            trace(), ConcurrencyCapDispatcher(2),
            ServingConfig(
                queue_depth=4,
                queue_policy="shed-oldest",
                slo_factor=5.0,
                plan=FaultPlan(
                    [FaultSpec(kind=FaultKind.LAUNCH_FAIL, time=0.004, target="nn")]
                ),
                seed=9,
            ),
            num_streams=8,
        )
        assert resumed.resumed and resumed.recovered_entries > 0
        assert resumed.completion_time == reference.completion_time
        assert resumed.energy == reference.energy
        assert resumed.sojourn_times == reference.sojourn_times
        assert resumed.outcomes == reference.outcomes
        assert [r.outcome for r in resumed.records] == [
            r.outcome for r in reference.records
        ]
        assert [r.complete_time for r in resumed.records] == [
            r.complete_time for r in reference.records
        ]

    def test_resumed_journal_is_complete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        crash_run(path)
        run_serving(
            trace(), ConcurrencyCapDispatcher(2), config(), num_streams=8,
            journal_path=path, resume=True,
        )
        assert len(RunJournal(path).entries()) == len(trace())

    def test_resume_under_wrong_config_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        crash_run(path)
        other = ServingConfig(
            queue_depth=8,       # differs from the journaled run
            queue_policy="shed-oldest",
            slo_factor=5.0,
            plan=config().plan,
            seed=9,
        )
        with pytest.raises(JournalMismatchError):
            run_serving(
                trace(), ConcurrencyCapDispatcher(2), other, num_streams=8,
                journal_path=path, resume=True,
            )

    def test_tampered_journal_detected(self, tmp_path):
        # A *checksum-consistent* edit (re-enveloped, so the CRC is valid)
        # gets past the integrity scan — replay verification still
        # catches the divergence.
        from repro.integrity import decode_line, encode_line

        path = tmp_path / "run.jsonl"
        crash_run(path)
        lines = path.read_bytes().splitlines()
        entry = decode_line(lines[1])
        assert entry["outcome"] == "completed"
        entry["outcome"] = "tampered"
        lines[1] = encode_line(entry, 1).rstrip("\n").encode("utf-8")
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(JournalMismatchError):
            run_serving(
                trace(), ConcurrencyCapDispatcher(2), config(), num_streams=8,
                journal_path=path, resume=True,
            )

    def test_casually_tampered_journal_quarantined_and_outrun(self, tmp_path):
        # An edit that does NOT fix up the checksum is caught earlier: the
        # scan quarantines from the bad record on and replay regenerates
        # the suffix, converging to the uninterrupted run.
        path = tmp_path / "run.jsonl"
        crash_run(path)
        data = bytearray(path.read_bytes())
        offset = data.index(b'"completed"')
        data[offset + 1:offset + 10] = b"tampered!"
        path.write_bytes(bytes(data))
        resumed = run_serving(
            trace(), ConcurrencyCapDispatcher(2), config(), num_streams=8,
            journal_path=path, resume=True,
        )
        assert sum(resumed.outcomes.values()) == len(trace())
        assert (tmp_path / "run.jsonl.quarantine").exists()

    def test_double_crash_then_resume(self, tmp_path):
        # Crash, resume-with-crash-plan (resume skips the crash), and the
        # journal ends complete: restart-until-done converges.
        path = tmp_path / "run.jsonl"
        crash_run(path)
        first = RunJournal(path).entries()
        resumed = run_serving(
            trace(), ConcurrencyCapDispatcher(2), config(), num_streams=8,
            journal_path=path, resume=True,
        )
        assert resumed.recovered_entries == len(first)
        assert sum(resumed.outcomes.values()) == len(trace())
