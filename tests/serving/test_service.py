"""Determinism properties of :func:`repro.serving.run_serving`.

The serving layer inherits the simulator's reproducibility contract:
same seed + same fault plan + same dispatcher => identical results, with
or without journaling.
"""

import pytest

from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultKind, FaultSpec
from repro.serving import (
    BreakerConfig,
    ServingConfig,
    measure_service_baselines,
    run_serving,
)

pytestmark = pytest.mark.serving

MIX = [("gaussian", 1), ("nn", 1)]


def trace(seed=5):
    return poisson_arrivals(1500.0, 0.02, MIX, seed=seed)


def full_config(seed=9):
    faults = [
        FaultSpec(kind=FaultKind.LAUNCH_FAIL, time=t, target="nn")
        for t in (0.002, 0.005, 0.008)
    ]
    return ServingConfig(
        queue_depth=4,
        queue_policy="shed-oldest",
        slo_factor=4.0,
        slo_jitter=0.2,
        breaker=BreakerConfig(threshold=2, cooldown=0.01, jitter=0.2),
        plan=FaultPlan(faults),
        seed=seed,
    )


def identical(a, b):
    assert a.completion_time == b.completion_time
    assert a.energy == b.energy
    assert a.sojourn_times == b.sojourn_times
    assert a.queue_delays == b.queue_delays
    assert a.outcomes == b.outcomes
    assert a.deadline_met == b.deadline_met
    assert [r.outcome for r in a.records] == [r.outcome for r in b.records]
    assert [r.complete_time for r in a.records] == [
        r.complete_time for r in b.records
    ]
    assert [r.slo_deadline for r in a.records] == [
        r.slo_deadline for r in b.records
    ]


class TestDeterminism:
    def test_identical_across_runs(self):
        arrivals = trace()
        runs = [
            run_serving(
                arrivals, ConcurrencyCapDispatcher(2), full_config(),
                num_streams=8,
            )
            for _ in range(2)
        ]
        identical(runs[0], runs[1])

    def test_identical_with_and_without_journal(self, tmp_path):
        arrivals = trace()
        bare = run_serving(
            arrivals, ConcurrencyCapDispatcher(2), full_config(), num_streams=8
        )
        journaled = run_serving(
            arrivals,
            ConcurrencyCapDispatcher(2),
            full_config(),
            num_streams=8,
            journal_path=tmp_path / "run.jsonl",
        )
        identical(bare, journaled)

    def test_journal_entry_per_arrival(self, tmp_path):
        from repro.serving import RunJournal

        arrivals = trace()
        path = tmp_path / "run.jsonl"
        result = run_serving(
            arrivals,
            ConcurrencyCapDispatcher(2),
            full_config(),
            num_streams=8,
            journal_path=path,
        )
        entries = RunJournal(path).entries()
        assert len(entries) == len(arrivals)
        by_index = {e["index"]: e for e in entries}
        for record in result.records:
            assert by_index[record.launch_index]["outcome"] == record.outcome

    def test_seed_changes_results(self):
        arrivals = trace()
        a = run_serving(
            arrivals,
            ConcurrencyCapDispatcher(2),
            full_config(seed=9),
            num_streams=8,
        )
        b = run_serving(
            arrivals,
            ConcurrencyCapDispatcher(2),
            full_config(seed=10),
            num_streams=8,
        )
        # Different seed => different SLO jitter => different deadlines.
        assert [r.slo_deadline for r in a.records] != [
            r.slo_deadline for r in b.records
        ]


class TestBaselines:
    def test_measured_baselines_positive_and_cached(self):
        first = measure_service_baselines(["nn", "needle"], scale="tiny")
        second = measure_service_baselines(["nn", "needle"], scale="tiny")
        assert first == second
        assert all(v > 0 for v in first.values())

    def test_explicit_baselines_bypass_measurement(self):
        arrivals = trace()
        cfg = ServingConfig(
            slo_factor=4.0,
            baseline_runtimes=(("gaussian", 2e-3), ("nn", 1e-3)),
            seed=3,
        )
        result = run_serving(
            arrivals, ConcurrencyCapDispatcher(2), cfg, num_streams=8
        )
        for record, arrival in zip(result.records, arrivals):
            expected = arrival.time + 4.0 * (
                2e-3 if arrival.type_name == "gaussian" else 1e-3
            )
            assert record.slo_deadline == pytest.approx(expected)

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError):
            run_serving(
                trace(), ConcurrencyCapDispatcher(2), ServingConfig(),
                resume=True,
            )
