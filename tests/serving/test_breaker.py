"""Circuit breaker state machine and its integration with the engine."""

import pytest

from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultKind, FaultSpec
from repro.serving import (
    BreakerConfig,
    BreakerState,
    CircuitBreakerPanel,
    ServingConfig,
    run_serving,
)

pytestmark = pytest.mark.serving


def panel(threshold=2, cooldown=1.0, jitter=0.0, seed=0):
    return CircuitBreakerPanel(
        BreakerConfig(threshold=threshold, cooldown=cooldown, jitter=jitter),
        seed=seed,
    )


class TestStateMachine:
    def test_closed_by_default(self):
        p = panel()
        assert p.state("nn") == BreakerState.CLOSED
        assert p.allow("nn", 0.0)

    def test_opens_after_consecutive_failures(self):
        p = panel(threshold=3)
        for t in (0.1, 0.2):
            p.on_failure("nn", t)
            assert p.state("nn") == BreakerState.CLOSED
        p.on_failure("nn", 0.3)
        assert p.state("nn") == BreakerState.OPEN
        assert p.trips == 1
        assert not p.allow("nn", 0.4)
        assert p.fast_fails == 1

    def test_success_resets_the_streak(self):
        p = panel(threshold=2)
        p.on_failure("nn", 0.1)
        p.on_success("nn", 0.2)
        p.on_failure("nn", 0.3)
        assert p.state("nn") == BreakerState.CLOSED

    def test_half_open_single_probe_then_close(self):
        p = panel(threshold=1, cooldown=1.0)
        p.on_failure("nn", 0.0)
        assert p.state("nn") == BreakerState.OPEN
        # Cooldown not elapsed yet.
        assert not p.allow("nn", 0.5)
        # Past the cooldown: exactly one probe goes through.
        assert p.allow("nn", 1.5)
        assert p.state("nn") == BreakerState.HALF_OPEN
        assert not p.allow("nn", 1.6)
        p.on_success("nn", 1.7)
        assert p.state("nn") == BreakerState.CLOSED
        assert p.allow("nn", 1.8)

    def test_failed_probe_reopens(self):
        p = panel(threshold=1, cooldown=1.0)
        p.on_failure("nn", 0.0)
        assert p.allow("nn", 1.5)
        p.on_failure("nn", 1.6)
        assert p.state("nn") == BreakerState.OPEN
        assert p.trips == 2
        assert not p.allow("nn", 1.7)

    def test_types_are_independent(self):
        p = panel(threshold=1)
        p.on_failure("nn", 0.0)
        assert not p.allow("nn", 0.1)
        assert p.allow("needle", 0.1)
        assert p.states() == {
            "needle": BreakerState.CLOSED,
            "nn": BreakerState.OPEN,
        }

    def test_cooldown_jitter_is_seeded_and_bounded(self):
        windows = []
        for _ in range(2):
            p = CircuitBreakerPanel(
                BreakerConfig(threshold=1, cooldown=1.0, jitter=0.5), seed=7
            )
            p.on_failure("nn", 0.0)
            windows.append(p._breakers["nn"].open_until)
        assert windows[0] == windows[1]
        assert 0.5 <= windows[0] <= 1.5


class TestBreakerIntegration:
    def test_breaker_sheds_doomed_type_under_faults(self):
        arrivals = poisson_arrivals(
            800.0, 0.05, [("gaussian", 1), ("nn", 1)], seed=5
        )
        faults = [
            FaultSpec(kind=FaultKind.LAUNCH_FAIL, time=t, target="nn")
            for t in (0.001, 0.004, 0.007, 0.010, 0.013, 0.016, 0.019, 0.022)
        ]
        cfg = ServingConfig(
            breaker=BreakerConfig(threshold=2, cooldown=0.01, jitter=0.2),
            plan=FaultPlan(faults),
            seed=9,
        )
        result = run_serving(
            arrivals, ConcurrencyCapDispatcher(4), cfg, num_streams=8
        )
        assert result.outcomes.get("breaker-open", 0) > 0
        assert result.breaker_trips >= 1
        assert result.breaker_fast_fails == result.outcomes["breaker-open"]
        # Only the hammered type is fast-failed.
        open_types = {
            r.type_name for r in result.records if r.outcome == "breaker-open"
        }
        assert open_types == {"nn"}
        # The healthy type keeps completing.
        assert any(
            r.outcome == "completed" and r.type_name == "gaussian"
            for r in result.records
        )

    def test_no_breaker_means_no_fast_fails(self):
        arrivals = poisson_arrivals(
            800.0, 0.02, [("gaussian", 1), ("nn", 1)], seed=5
        )
        faults = [
            FaultSpec(kind=FaultKind.LAUNCH_FAIL, time=t, target="nn")
            for t in (0.001, 0.004)
        ]
        cfg = ServingConfig(plan=FaultPlan(faults), seed=9)
        result = run_serving(
            arrivals, ConcurrencyCapDispatcher(4), cfg, num_streams=8
        )
        assert result.outcomes.get("breaker-open", 0) == 0
        assert result.failed > 0
