"""Circuit breaker state machine and its integration with the engine."""

import pytest

from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultKind, FaultSpec
from repro.serving import (
    BreakerConfig,
    BreakerState,
    CircuitBreakerPanel,
    ServingConfig,
    run_serving,
)

pytestmark = pytest.mark.serving


def panel(threshold=2, cooldown=1.0, jitter=0.0, seed=0):
    return CircuitBreakerPanel(
        BreakerConfig(threshold=threshold, cooldown=cooldown, jitter=jitter),
        seed=seed,
    )


class TestStateMachine:
    def test_closed_by_default(self):
        p = panel()
        assert p.state("nn") == BreakerState.CLOSED
        assert p.allow("nn", 0.0)

    def test_opens_after_consecutive_failures(self):
        p = panel(threshold=3)
        for t in (0.1, 0.2):
            p.on_failure("nn", t)
            assert p.state("nn") == BreakerState.CLOSED
        p.on_failure("nn", 0.3)
        assert p.state("nn") == BreakerState.OPEN
        assert p.trips == 1
        assert not p.allow("nn", 0.4)
        assert p.fast_fails == 1

    def test_success_resets_the_streak(self):
        p = panel(threshold=2)
        p.on_failure("nn", 0.1)
        p.on_success("nn", 0.2)
        p.on_failure("nn", 0.3)
        assert p.state("nn") == BreakerState.CLOSED

    def test_half_open_single_probe_then_close(self):
        p = panel(threshold=1, cooldown=1.0)
        p.on_failure("nn", 0.0)
        assert p.state("nn") == BreakerState.OPEN
        # Cooldown not elapsed yet.
        assert not p.allow("nn", 0.5)
        # Past the cooldown: exactly one probe goes through.
        assert p.allow("nn", 1.5)
        assert p.state("nn") == BreakerState.HALF_OPEN
        assert not p.allow("nn", 1.6)
        p.on_success("nn", 1.7)
        assert p.state("nn") == BreakerState.CLOSED
        assert p.allow("nn", 1.8)

    def test_failed_probe_reopens(self):
        p = panel(threshold=1, cooldown=1.0)
        p.on_failure("nn", 0.0)
        assert p.allow("nn", 1.5)
        p.on_failure("nn", 1.6)
        assert p.state("nn") == BreakerState.OPEN
        assert p.trips == 2
        assert not p.allow("nn", 1.7)

    def test_types_are_independent(self):
        p = panel(threshold=1)
        p.on_failure("nn", 0.0)
        assert not p.allow("nn", 0.1)
        assert p.allow("needle", 0.1)
        assert p.states() == {
            "needle": BreakerState.CLOSED,
            "nn": BreakerState.OPEN,
        }

    def test_cooldown_jitter_is_seeded_and_bounded(self):
        windows = []
        for _ in range(2):
            p = CircuitBreakerPanel(
                BreakerConfig(threshold=1, cooldown=1.0, jitter=0.5), seed=7
            )
            p.on_failure("nn", 0.0)
            windows.append(p._breakers["nn"].open_until)
        assert windows[0] == windows[1]
        assert 0.5 <= windows[0] <= 1.5


class TestDeviceScopedOscillation:
    """Half-open transitions when one device flaps slow/healthy.

    Keys follow the fleet gate's ``dev<i>:<type>`` scoping, so the sick
    device oscillates through OPEN/HALF_OPEN alone while the same app
    type on its healthy peer never leaves CLOSED.
    """

    def test_oscillating_device_retrips_through_half_open(self):
        p = panel(threshold=1, cooldown=1.0)
        sick, healthy = "dev0:nn", "dev1:nn"
        reopen_times = []
        for cycle in range(3):
            t = 3.0 * cycle
            # Slow phase: the device times out, its breaker trips.
            p.on_failure(sick, t)
            assert p.state(sick) == BreakerState.OPEN
            assert not p.allow(sick, t + 0.5)
            # Cooldown elapses mid-slow-phase: the probe fails, re-trip.
            assert p.allow(sick, t + 1.5)
            assert p.state(sick) == BreakerState.HALF_OPEN
            p.on_failure(sick, t + 1.6)
            assert p.state(sick) == BreakerState.OPEN
            reopen_times.append(t + 1.6)
            # Healthy phase: the next probe succeeds and closes it.
            assert p.allow(sick, t + 2.7)
            p.on_success(sick, t + 2.8)
            assert p.state(sick) == BreakerState.CLOSED
            # The healthy device serves the type throughout.
            assert p.allow(healthy, t + 0.5)
            p.on_success(healthy, t + 0.5)
        assert p.state(healthy) == BreakerState.CLOSED
        # One trip per failure that found the breaker CLOSED or HALF_OPEN:
        # 3 slow-phase trips + 3 failed probes.
        assert p.trips == 6
        assert len(reopen_times) == 3

    def test_fast_fails_count_only_on_the_sick_device(self):
        p = panel(threshold=1, cooldown=10.0)
        p.on_failure("dev0:nn", 0.0)
        for t in (0.1, 0.2, 0.3):
            assert not p.allow("dev0:nn", t)
            assert p.allow("dev1:nn", t)
        assert p.fast_fails == 3

    def test_states_snapshot_separates_devices(self):
        p = panel(threshold=1)
        p.on_failure("dev0:nn", 0.0)
        p.on_success("dev1:nn", 0.0)
        assert p.states() == {
            "dev0:nn": BreakerState.OPEN,
            "dev1:nn": BreakerState.CLOSED,
        }


class TestBreakerIntegration:
    def test_breaker_sheds_doomed_type_under_faults(self):
        arrivals = poisson_arrivals(
            800.0, 0.05, [("gaussian", 1), ("nn", 1)], seed=5
        )
        faults = [
            FaultSpec(kind=FaultKind.LAUNCH_FAIL, time=t, target="nn")
            for t in (0.001, 0.004, 0.007, 0.010, 0.013, 0.016, 0.019, 0.022)
        ]
        cfg = ServingConfig(
            breaker=BreakerConfig(threshold=2, cooldown=0.01, jitter=0.2),
            plan=FaultPlan(faults),
            seed=9,
        )
        result = run_serving(
            arrivals, ConcurrencyCapDispatcher(4), cfg, num_streams=8
        )
        assert result.outcomes.get("breaker-open", 0) > 0
        assert result.breaker_trips >= 1
        assert result.breaker_fast_fails == result.outcomes["breaker-open"]
        # Only the hammered type is fast-failed.
        open_types = {
            r.type_name for r in result.records if r.outcome == "breaker-open"
        }
        assert open_types == {"nn"}
        # The healthy type keeps completing.
        assert any(
            r.outcome == "completed" and r.type_name == "gaussian"
            for r in result.records
        )

    def test_no_breaker_means_no_fast_fails(self):
        arrivals = poisson_arrivals(
            800.0, 0.02, [("gaussian", 1), ("nn", 1)], seed=5
        )
        faults = [
            FaultSpec(kind=FaultKind.LAUNCH_FAIL, time=t, target="nn")
            for t in (0.001, 0.004)
        ]
        cfg = ServingConfig(plan=FaultPlan(faults), seed=9)
        result = run_serving(
            arrivals, ConcurrencyCapDispatcher(4), cfg, num_streams=8
        )
        assert result.outcomes.get("breaker-open", 0) == 0
        assert result.failed > 0
