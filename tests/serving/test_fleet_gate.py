"""Fleet-aware serving: capacity shrink, routing and breaker scoping."""

import math

import pytest

from repro.core.streaming import ConcurrencyCapDispatcher, poisson_arrivals
from repro.framework.metrics import AppRecord
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.serving import (
    FleetCapacityGate,
    FleetServingConfig,
    ServingConfig,
    run_serving,
)

pytestmark = pytest.mark.serving


def record(device_index=0, type_name="nn"):
    return AppRecord(
        app_id=f"{type_name}#0",
        type_name=type_name,
        instance=0,
        stream_index=0,
        launch_index=0,
        device_index=device_index,
    )


class TestCapacity:
    def test_full_fleet_uses_all_streams(self):
        gate = FleetCapacityGate(4, 16)
        assert gate.capacity(0.0) == 16
        assert gate.may_admit(15, 0.0)
        assert not gate.may_admit(16, 0.0)

    def test_capacity_shrinks_at_detection_not_loss(self):
        gate = FleetCapacityGate(
            4, 16, detection_latency=2e-3, loss_times={1: 10e-3}
        )
        assert gate.capacity(10e-3) == 16          # lost, not yet detected
        assert gate.capacity(12e-3 - 1e-9) == 16   # still inside budget
        assert gate.capacity(12e-3) == 12          # detected: 3/4 survive
        assert gate.devices_lost(12e-3) == 1
        assert gate.healthy_devices(12e-3) == [0, 2, 3]

    def test_capacity_never_below_one(self):
        gate = FleetCapacityGate(
            2, 4, detection_latency=0.0, loss_times={0: 0.0, 1: 0.0}
        )
        assert gate.capacity(1.0) == 1
        assert gate.may_admit(0, 1.0)

    def test_capacity_rounds_up(self):
        gate = FleetCapacityGate(
            3, 4, detection_latency=0.0, loss_times={0: 0.0}
        )
        assert gate.capacity(1.0) == math.ceil(4 * 2 / 3)


class TestRouting:
    def test_round_robin_over_healthy(self):
        gate = FleetCapacityGate(3, 6)
        assert [gate.route(0.0) for _ in range(6)] == [0, 1, 2, 0, 1, 2]
        assert gate.admitted_per_device == {0: 2, 1: 2, 2: 2}

    def test_detected_lost_device_skipped(self):
        gate = FleetCapacityGate(
            3, 6, detection_latency=0.0, loss_times={1: 0.0}
        )
        assert [gate.route(1.0) for _ in range(4)] == [0, 2, 0, 2]
        assert gate.admitted_per_device[1] == 0

    def test_all_lost_falls_back_to_device_zero(self):
        gate = FleetCapacityGate(
            2, 4, detection_latency=0.0, loss_times={0: 0.0, 1: 0.0}
        )
        assert gate.route(1.0) == 0


class TestGradedRouting:
    """Smooth-weighted-round-robin over graded health weights."""

    def test_throttle_factor_window_semantics(self):
        gate = FleetCapacityGate(
            2, 4, throttle_windows={0: [(1e-3, 3e-3, 2.0)]}
        )
        assert gate.throttle_factor(0, 0.5e-3) == 1.0  # before
        assert gate.throttle_factor(0, 1e-3) == 2.0    # inclusive start
        assert gate.throttle_factor(0, 3e-3) == 1.0    # exclusive end
        assert gate.throttle_factor(1, 2e-3) == 1.0    # other device

    def test_health_weight_grades(self):
        gate = FleetCapacityGate(
            3,
            6,
            detection_latency=0.0,
            loss_times={2: 0.0},
            throttle_windows={1: [(0.0, 1.0, 4.0)]},
        )
        assert gate.health_weight(0, 0.5) == 1.0
        assert gate.health_weight(1, 0.5) == 0.25
        assert gate.health_weight(2, 0.5) == 0.0  # lost dominates

    def test_half_weight_device_interleaved_at_half_rate(self):
        # weights [0.5, 1.0]: the SWRR sequence has period 3 — the
        # throttled device serves one admission for the healthy one's two.
        gate = FleetCapacityGate(
            2, 4, throttle_windows={0: [(0.0, 1.0, 2.0)]}
        )
        assert [gate.route(0.5) for _ in range(6)] == [1, 0, 1, 1, 0, 1]
        assert gate.admitted_per_device == {0: 2, 1: 4}

    def test_quarter_weight_straggler_pinned_sequence(self):
        # weights [1, 0.25, 1]: period 9, traffic split 4:1:4 — the 4x
        # straggler earns a quarter of a healthy device's admissions.
        gate = FleetCapacityGate(
            3, 6, throttle_windows={1: [(0.0, 1.0, 4.0)]}
        )
        seq = [gate.route(0.5) for _ in range(9)]
        assert seq == [0, 2, 0, 2, 1, 0, 2, 0, 2]
        assert gate.admitted_per_device == {0: 4, 1: 1, 2: 4}

    def test_routing_recovers_after_window_closes(self):
        gate = FleetCapacityGate(
            2, 4, throttle_windows={0: [(0.0, 1e-3, 2.0)]}
        )
        [gate.route(0.5e-3) for _ in range(3)]  # drain one throttled period
        assert [gate.route(2e-3) for _ in range(4)] == [0, 1, 0, 1]

    def test_from_plan_collects_throttle_windows(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultKind.DEVICE_THROTTLE,
                    2e-3,
                    device=1,
                    duration=1e-3,
                    factor=4.0,
                ),
                FaultSpec(
                    FaultKind.DEVICE_THROTTLE,
                    0.0,
                    device=1,
                    duration=1e-3,
                    factor=2.0,
                ),
            ]
        )
        gate = FleetCapacityGate.from_plan(
            FleetServingConfig(num_devices=2), 4, plan
        )
        assert gate.throttle_windows == {
            1: [(0.0, 1e-3, 2.0), (2e-3, 3e-3, 4.0)]
        }
        assert gate.health_weight(1, 2.5e-3) == 0.25


class TestBreakerScoping:
    def test_scoped_key_includes_device(self):
        gate = FleetCapacityGate(4, 8, scope_breakers=True)
        assert gate.breaker_key(record(device_index=2)) == "dev2:nn"

    def test_unscoped_key_is_type_only(self):
        gate = FleetCapacityGate(4, 8, scope_breakers=False)
        assert gate.breaker_key(record(device_index=2)) == "nn"


class TestFromPlan:
    def test_first_loss_per_device_wins(self):
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.DEVICE_LOSS, 5e-3, device=1),
                FaultSpec(FaultKind.DEVICE_LOSS, 2e-3, device=1),
                FaultSpec(FaultKind.KERNEL_HANG, 1e-3, factor=4.0),
            ]
        )
        gate = FleetCapacityGate.from_plan(
            FleetServingConfig(num_devices=4, detection_latency=1e-3),
            16,
            plan,
        )
        assert gate.detect_times == {1: 3e-3}

    def test_no_plan_means_no_losses(self):
        gate = FleetCapacityGate.from_plan(
            FleetServingConfig(num_devices=2), 8, None
        )
        assert gate.detect_times == {}


class TestConfigValidation:
    def test_rejects_bad_device_count(self):
        with pytest.raises(ValueError):
            FleetServingConfig(num_devices=0)
        with pytest.raises(ValueError):
            FleetCapacityGate(0, 8)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            FleetServingConfig(detection_latency=-1.0)


class TestServingIntegration:
    def _arrivals(self):
        return poisson_arrivals(
            rate=8000.0,
            duration=0.004,
            type_mix=[("nn", 2), ("needle", 1)],
            seed=7,
        )

    def test_jobs_routed_across_devices(self):
        result = run_serving(
            self._arrivals(),
            ConcurrencyCapDispatcher(4),
            ServingConfig(seed=7, fleet=FleetServingConfig(num_devices=4)),
            num_streams=8,
        )
        assert result.fleet_devices == 4
        assert result.devices_lost == 0
        dispatched = [r for r in result.records if r.device_index >= 0]
        assert dispatched
        assert {r.device_index for r in dispatched} == {0, 1, 2, 3}

    def test_detected_loss_shrinks_admission_and_reroutes(self):
        arrivals = self._arrivals()
        loss_at = 1e-3
        plan = FaultPlan(
            [FaultSpec(FaultKind.DEVICE_LOSS, loss_at, device=1)]
        )
        config = ServingConfig(
            seed=7,
            plan=plan,
            fleet=FleetServingConfig(num_devices=4, detection_latency=1e-3),
        )
        result = run_serving(
            arrivals, ConcurrencyCapDispatcher(8), config, num_streams=8
        )
        assert result.fleet_devices == 4
        assert result.devices_lost == 1
        detect_at = loss_at + 1e-3
        late = [
            r for r in result.records
            if r.gpu_start >= detect_at and r.outcome in ("completed", "late")
        ]
        assert late
        assert all(r.device_index != 1 for r in late)

    def test_fleetless_run_unchanged_by_gate_code(self):
        arrivals = self._arrivals()
        plain = run_serving(
            arrivals, ConcurrencyCapDispatcher(4),
            ServingConfig(seed=7), num_streams=8,
        )
        again = run_serving(
            arrivals, ConcurrencyCapDispatcher(4),
            ServingConfig(seed=7), num_streams=8,
        )
        assert plain.fleet_devices == 0
        assert [r.complete_time for r in plain.records] == [
            r.complete_time for r in again.records
        ]
        assert all(r.device_index == 0 for r in plain.records)
