"""Slow-start re-admission after recovery (breaker and fleet gate).

Half-open -> closed must not snap to full concurrency: one good probe
says the dependency breathes, not that it can absorb the whole backlog.
The breaker ramp admits ``initial << step`` releases per interval
(pinned here as 1, 2, 4 for ``initial=1``); the fleet gate ramps
admission capacity linearly back after each loss detection.
"""

import math

import pytest

from repro.serving.breaker import BreakerState, CircuitBreakerPanel
from repro.serving.config import BreakerConfig, FleetServingConfig
from repro.serving.fleet_gate import FleetCapacityGate

pytestmark = pytest.mark.serving

COOLDOWN = 10e-3
INTERVAL = 1e-3


def recovered_panel(**overrides):
    """A panel whose breaker just closed after a successful probe."""
    cfg = dict(
        threshold=2,
        cooldown=COOLDOWN,
        jitter=0.0,
        slow_start_initial=1,
        slow_start_interval=INTERVAL,
        slow_start_steps=3,
    )
    cfg.update(overrides)
    panel = CircuitBreakerPanel(BreakerConfig(**cfg), seed=0)
    panel.on_failure("nn", 0.0)
    panel.on_failure("nn", 0.0)
    assert panel.state("nn") == BreakerState.OPEN
    assert panel.allow("nn", COOLDOWN)  # half-open probe
    panel.on_success("nn", COOLDOWN)
    assert panel.state("nn") == BreakerState.CLOSED
    return panel


def admitted_per_interval(panel, start, intervals, per_interval=16):
    """How many of ``per_interval`` release attempts pass in each interval."""
    counts = []
    for step in range(intervals):
        t = start + step * INTERVAL + INTERVAL / 2
        counts.append(
            sum(1 for _ in range(per_interval) if panel.allow("nn", t))
        )
    return counts


class TestBreakerSlowStart:
    def test_ramp_schedule_pinned(self):
        panel = recovered_panel()
        # Doubling per interval from initial=1 for 3 steps, then the cap
        # lifts entirely.
        assert admitted_per_interval(panel, COOLDOWN, 4) == [1, 2, 4, 16]

    def test_rejects_counted_truthfully(self):
        panel = recovered_panel()
        admitted_per_interval(panel, COOLDOWN, 1)
        assert panel.slow_start_rejects == 15
        assert panel.fast_fails == 15

    def test_disabled_keeps_historical_snap(self):
        panel = recovered_panel(slow_start_initial=0)
        assert admitted_per_interval(panel, COOLDOWN, 1) == [16]
        assert panel.slow_start_rejects == 0

    def test_reopen_clears_the_ramp(self):
        panel = recovered_panel()
        t = COOLDOWN + INTERVAL / 2
        panel.on_failure("nn", t)
        panel.on_failure("nn", t)
        assert panel.state("nn") == BreakerState.OPEN
        # A fresh recovery restarts the ramp from step 0.
        t2 = t + COOLDOWN
        assert panel.allow("nn", t2)
        panel.on_success("nn", t2)
        assert admitted_per_interval(panel, t2, 3) == [1, 2, 4]

    def test_other_types_unaffected_by_ramp(self):
        panel = recovered_panel()
        assert all(
            panel.allow("needle", COOLDOWN + INTERVAL / 2) for _ in range(16)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(slow_start_initial=1)  # needs an interval
        with pytest.raises(ValueError):
            BreakerConfig(slow_start_initial=-1)
        with pytest.raises(ValueError):
            BreakerConfig(
                slow_start_initial=1,
                slow_start_interval=1e-3,
                slow_start_steps=0,
            )


STREAMS = 8
WINDOW = 4e-3


class TestFleetGateSlowStart:
    def gate(self, **overrides):
        base = dict(
            detection_latency=0.0,
            loss_times={0: 10e-3},
            slow_start_window=WINDOW,
            slow_start_floor=0.25,
        )
        base.update(overrides)
        return FleetCapacityGate(4, STREAMS, **base)

    def test_capacity_ramps_linearly_after_detection(self):
        gate = self.gate()
        steady = STREAMS * 3 / 4  # 6 streams across the 3 survivors
        assert gate.capacity(9e-3) == STREAMS  # pre-loss
        assert gate.capacity(10e-3) == math.ceil(steady * 0.25)
        assert gate.capacity(12e-3) == math.ceil(steady * 0.625)  # halfway
        assert gate.capacity(14e-3) == math.ceil(steady)  # window over

    def test_ramp_monotone_and_never_below_one(self):
        gate = self.gate(slow_start_floor=0.01)
        samples = [gate.capacity(10e-3 + f * WINDOW) for f in
                   (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert samples == sorted(samples)
        assert samples[0] >= 1

    def test_window_zero_keeps_historical_step(self):
        gate = self.gate(slow_start_window=0.0)
        assert gate.capacity(10e-3) == math.ceil(STREAMS * 3 / 4)

    def test_second_detection_restarts_the_ramp(self):
        gate = self.gate(loss_times={0: 10e-3, 1: 20e-3})
        # Fully ramped after the first loss...
        assert gate.capacity(15e-3) == math.ceil(STREAMS * 3 / 4)
        # ...then the second detection drops to the new floor again.
        steady2 = STREAMS * 2 / 4
        assert gate.capacity(20e-3) == math.ceil(steady2 * 0.25)
        assert gate.capacity(24e-3) == math.ceil(steady2)

    def test_config_carries_ramp_to_gate(self):
        fleet = FleetServingConfig(
            num_devices=4, slow_start_window=WINDOW, slow_start_floor=0.5
        )
        gate = FleetCapacityGate.from_plan(fleet, STREAMS, None)
        assert gate.slow_start_window == WINDOW
        assert gate.slow_start_floor == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetServingConfig(slow_start_window=-1.0)
        with pytest.raises(ValueError):
            FleetServingConfig(slow_start_floor=0.0)
        with pytest.raises(ValueError):
            FleetServingConfig(slow_start_floor=1.5)
