"""Bounded admission and deadline-aware shedding.

Overload scenarios use a short, hot trace (arrival rate well above the
capped service rate) so the finite queue actually fills.
"""

import pytest

from repro.core.streaming import (
    ConcurrencyCapDispatcher,
    GreedyDispatcher,
    poisson_arrivals,
    run_streaming,
)
from repro.serving import ServingConfig, run_serving

pytestmark = pytest.mark.serving

MIX = [("gaussian", 1), ("nn", 1)]


def overload_trace(seed=11):
    # gaussian jobs run ~1 ms each; at cap 1 the service rate is far
    # below 3000/s, so the admission queue must back up.
    return poisson_arrivals(3000.0, 0.02, MIX, seed=seed)


def run(policy, qdepth=3, seed=11, **kwargs):
    cfg = ServingConfig(queue_depth=qdepth, queue_policy=policy)
    return run_serving(
        overload_trace(seed),
        ConcurrencyCapDispatcher(1),
        cfg,
        num_streams=4,
        **kwargs,
    )


class TestInertEquality:
    """An inert config must not perturb the streaming engine at all."""

    def test_byte_identical_to_run_streaming(self):
        arrivals = poisson_arrivals(8000.0, 0.004, [("nn", 2), ("needle", 1)], seed=1)
        plain = run_streaming(
            arrivals, GreedyDispatcher(), num_streams=16, scale="tiny"
        )
        served = run_serving(
            arrivals, GreedyDispatcher(), ServingConfig(), num_streams=16
        )
        assert served.completion_time == plain.completion_time
        assert served.energy == plain.energy
        assert served.sojourn_times == plain.sojourn_times
        assert served.queue_delays == plain.queue_delays
        assert served.peak_power == plain.peak_power
        assert [r.complete_time for r in served.records] == [
            r.complete_time for r in plain.records
        ]
        assert [r.stream_index for r in served.records] == [
            r.stream_index for r in plain.records
        ]

    def test_outcomes_stamped_even_when_inert(self):
        arrivals = poisson_arrivals(8000.0, 0.002, MIX, seed=2)
        served = run_serving(
            arrivals, GreedyDispatcher(), ServingConfig(), num_streams=8
        )
        assert served.outcomes == {"completed": len(arrivals)}
        assert served.shed_rate == 0.0


class TestBoundedAdmission:
    def test_every_arrival_gets_a_terminal_outcome(self):
        for policy in ("block", "reject", "shed-oldest"):
            result = run(policy)
            assert sum(result.outcomes.values()) == result.jobs

    def test_reject_sheds_new_arrivals(self):
        result = run("reject")
        assert result.outcomes.get("shed-reject", 0) > 0
        assert result.completed + result.shed == result.jobs

    def test_shed_oldest_evicts_queue_head(self):
        result = run("shed-oldest")
        assert result.outcomes.get("shed-oldest", 0) > 0

    def test_block_applies_backpressure_without_shedding(self):
        result = run("block")
        assert result.shed == 0
        assert result.completed == result.jobs

    def test_bounded_queues_cut_the_tail(self):
        blocked = run("block")
        rejecting = run("reject")
        oldest = run("shed-oldest")
        # Shedding policies bound the queue, so the tail sojourn of the
        # jobs that do complete is strictly below the unbounded backlog's.
        assert rejecting.p99_sojourn < blocked.p99_sojourn
        assert oldest.p99_sojourn < blocked.p99_sojourn

    def test_unbounded_depth_never_sheds(self):
        cfg = ServingConfig(queue_depth=0, queue_policy="reject")
        result = run_serving(
            overload_trace(), ConcurrencyCapDispatcher(1), cfg, num_streams=4
        )
        assert result.shed == 0


class TestDeadlineShedding:
    def test_unreachable_deadlines_are_shed(self):
        cfg = ServingConfig(slo_factor=3.0, seed=3)
        result = run_serving(
            overload_trace(), ConcurrencyCapDispatcher(1), cfg, num_streams=4
        )
        assert result.outcomes.get("shed-deadline", 0) > 0
        # Shedding is the point: what completes, completes in SLO.
        assert result.deadline_met == result.completed
        assert result.goodput <= result.throughput

    def test_shedding_off_keeps_late_jobs(self):
        cfg = ServingConfig(slo_factor=3.0, shed_unreachable=False, seed=3)
        result = run_serving(
            overload_trace(), ConcurrencyCapDispatcher(1), cfg, num_streams=4
        )
        assert result.outcomes.get("shed-deadline", 0) == 0
        assert result.outcomes.get("late", 0) > 0
        assert result.goodput < result.throughput

    def test_generous_slo_changes_nothing(self):
        arrivals = poisson_arrivals(2000.0, 0.004, MIX, seed=5)
        loose = ServingConfig(slo_factor=500.0, seed=5)
        result = run_serving(
            arrivals, GreedyDispatcher(), loose, num_streams=8
        )
        assert result.shed == 0
        assert result.deadline_met == result.jobs

    def test_deadlines_recorded_on_records(self):
        cfg = ServingConfig(slo_factor=4.0, slo_jitter=0.2, seed=9)
        result = run_serving(
            overload_trace(), ConcurrencyCapDispatcher(2), cfg, num_streams=4
        )
        assert all(r.slo_deadline > 0 for r in result.records)

    def test_slo_jitter_is_seeded(self):
        arrivals = overload_trace()
        runs = [
            run_serving(
                arrivals,
                ConcurrencyCapDispatcher(2),
                ServingConfig(slo_factor=3.0, slo_jitter=0.3, seed=21),
                num_streams=4,
            )
            for _ in range(2)
        ]
        assert [r.slo_deadline for r in runs[0].records] == [
            r.slo_deadline for r in runs[1].records
        ]
