"""Unit tests for :mod:`repro.serving.config`."""

import pytest

from repro.resilience import FaultPlan
from repro.resilience.faults import FaultKind, FaultSpec
from repro.serving import BreakerConfig, ServingConfig

pytestmark = pytest.mark.serving


class TestBreakerConfig:
    def test_defaults_valid(self):
        cfg = BreakerConfig()
        assert cfg.threshold >= 1
        assert cfg.cooldown > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0},
            {"cooldown": 0.0},
            {"cooldown": -1.0},
            {"jitter": -0.1},
            {"jitter": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)


class TestServingConfig:
    def test_default_is_inactive(self):
        assert ServingConfig().inactive

    def test_active_variants(self):
        assert not ServingConfig(queue_depth=4).inactive
        assert not ServingConfig(slo_factor=3.0).inactive
        assert not ServingConfig(breaker=BreakerConfig()).inactive
        plan = FaultPlan([FaultSpec(kind=FaultKind.HARNESS_CRASH, time=0.1)])
        assert not ServingConfig(plan=plan).inactive
        assert ServingConfig(plan=FaultPlan()).inactive

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_depth": -1},
            {"queue_policy": "drop-newest"},
            {"slo_factor": -1.0},
            {"slo_jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)

    def test_baselines_normalized_to_tuples(self):
        cfg = ServingConfig(baseline_runtimes=[("nn", 1e-3)])
        assert cfg.baseline_runtimes == (("nn", 1e-3),)
        assert isinstance(cfg.baseline_runtimes[0][1], float)

    def test_frozen(self):
        cfg = ServingConfig()
        with pytest.raises(Exception):
            cfg.queue_depth = 5
