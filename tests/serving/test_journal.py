"""Unit tests for the crash-safe run journal."""

import json

import pytest

from repro.serving import (
    JOURNAL_FORMAT,
    JournalError,
    JournalMismatchError,
    RunJournal,
)

pytestmark = pytest.mark.serving

FP = "abc123"


def entry(i):
    return {"index": i, "outcome": "completed", "complete": 0.001 * i + 0.25}


class TestFreshJournal:
    def test_header_written(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.begin(FP)
        journal.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == JOURNAL_FORMAT
        assert header["fingerprint"] == FP

    def test_entries_append_one_line_each(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.begin(FP)
            for i in range(3):
                journal.record(entry(i))
            assert journal.appended == 3
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        assert json.loads(lines[1]) == entry(0)

    def test_fresh_begin_truncates_old_content(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("garbage\n")
        journal = RunJournal(path)
        journal.begin(FP)
        journal.close()
        assert len(path.read_text().splitlines()) == 1

    def test_record_before_begin_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        with pytest.raises(JournalError):
            journal.record(entry(0))


class TestResume:
    def write_journal(self, path, n=3, fingerprint=FP):
        with RunJournal(path) as journal:
            journal.begin(fingerprint)
            for i in range(n):
                journal.record(entry(i))

    def test_replay_verifies_then_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=2)
        journal = RunJournal(path)
        assert journal.begin(FP, resume=True) == 2
        journal.record(entry(0))
        journal.record(entry(1))
        assert journal.verified == 2 and journal.pending == 0
        journal.record(entry(2))
        journal.close()
        assert journal.appended == 1
        assert len(path.read_text().splitlines()) == 4

    def test_divergent_replay_detected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=1)
        journal = RunJournal(path)
        journal.begin(FP, resume=True)
        bad = dict(entry(0), outcome="failed")
        with pytest.raises(JournalMismatchError):
            journal.record(bad)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, fingerprint="other")
        with pytest.raises(JournalMismatchError):
            RunJournal(path).begin(FP, resume=True)

    def test_torn_final_line_discarded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=2)
        with open(path, "a") as fh:
            fh.write('{"index": 2, "outco')  # interrupted write
        journal = RunJournal(path)
        assert journal.begin(FP, resume=True) == 2
        journal.close()
        # The rewrite dropped the torn line from disk.
        assert len(path.read_text().splitlines()) == 3

    def test_corruption_in_the_middle_is_an_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=2)
        lines = path.read_text().splitlines()
        lines[1] = '{"truncated'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            RunJournal(path).begin(FP, resume=True)

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal(tmp_path / "absent.jsonl").begin(FP, resume=True)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(JournalError):
            RunJournal(path).begin(FP, resume=True)

    def test_float_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "run.jsonl"
        value = 0.1 + 0.2  # classic repr-sensitive float
        with RunJournal(path) as journal:
            journal.begin(FP)
            journal.record({"index": 0, "complete": value})
        journal = RunJournal(path)
        journal.begin(FP, resume=True)
        journal.record({"index": 0, "complete": value})  # must verify
        assert journal.verified == 1
        journal.close()
