"""Unit tests for the crash-safe run journal."""

import json

import pytest

from repro.integrity import decode_line
from repro.serving import (
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    JournalError,
    JournalMismatchError,
    RunJournal,
)

pytestmark = pytest.mark.serving

FP = "abc123"


def entry(i):
    return {"index": i, "outcome": "completed", "complete": 0.001 * i + 0.25}


class TestFreshJournal:
    def test_header_written(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.begin(FP)
        journal.close()
        header = decode_line(path.read_bytes().splitlines()[0], expected_seq=0)
        assert header["format"] == JOURNAL_FORMAT
        assert header["version"] == JOURNAL_VERSION
        assert header["fingerprint"] == FP

    def test_entries_append_one_line_each(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.begin(FP)
            for i in range(3):
                journal.record(entry(i))
            assert journal.appended == 3
        lines = path.read_bytes().splitlines()
        assert len(lines) == 4
        assert decode_line(lines[1], expected_seq=1) == entry(0)

    def test_fresh_begin_truncates_old_content(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("garbage\n")
        journal = RunJournal(path)
        journal.begin(FP)
        journal.close()
        assert len(path.read_text().splitlines()) == 1

    def test_record_before_begin_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        with pytest.raises(JournalError):
            journal.record(entry(0))

    def test_appends_are_durable_before_record_returns(self, tmp_path):
        # The durability contract: when record() returns, an independent
        # reader (here: a second open of the same path — what a resume
        # after SIGKILL sees) observes the committed line without any
        # close() or flush from the writer.
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.begin(FP)
        try:
            for i in range(3):
                journal.record(entry(i))
                lines = path.read_bytes().splitlines()
                assert len(lines) == i + 2
                assert decode_line(lines[-1], expected_seq=i + 1) == entry(i)
        finally:
            journal.close()

    def test_crash_marker_is_durable_and_not_an_entry(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.begin(FP)
        journal.record(entry(0))
        journal.mark_crash(0.125)
        # Durable before close, like any record...
        assert len(path.read_bytes().splitlines()) == 3
        assert journal.markers == 1
        # ...but filtered from the entry view.
        assert journal.entries() == [json.loads(json.dumps(entry(0)))]
        journal.close()


class TestResume:
    def write_journal(self, path, n=3, fingerprint=FP):
        with RunJournal(path) as journal:
            journal.begin(fingerprint)
            for i in range(n):
                journal.record(entry(i))

    def test_replay_verifies_then_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=2)
        journal = RunJournal(path)
        assert journal.begin(FP, resume=True) == 2
        journal.record(entry(0))
        journal.record(entry(1))
        assert journal.verified == 2 and journal.pending == 0
        journal.record(entry(2))
        journal.close()
        assert journal.appended == 1
        assert len(path.read_text().splitlines()) == 4

    def test_divergent_replay_detected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=1)
        journal = RunJournal(path)
        journal.begin(FP, resume=True)
        bad = dict(entry(0), outcome="failed")
        with pytest.raises(JournalMismatchError):
            journal.record(bad)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, fingerprint="other")
        with pytest.raises(JournalMismatchError):
            RunJournal(path).begin(FP, resume=True)

    def test_torn_final_line_discarded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=2)
        with open(path, "a") as fh:
            fh.write('{"index": 2, "outco')  # interrupted write
        journal = RunJournal(path)
        assert journal.begin(FP, resume=True) == 2
        journal.close()
        # The rewrite dropped the torn line from disk.
        assert len(path.read_text().splitlines()) == 3

    def test_corruption_in_the_middle_is_quarantined(self, tmp_path):
        # With checksummed envelopes, mid-file corruption no longer
        # poisons the run: the valid prefix before the bad record
        # survives, everything after it is quarantined to the sidecar,
        # and replay regenerates the dropped suffix.
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=2)
        lines = path.read_bytes().splitlines()
        lines[1] = b'{"truncated'
        path.write_bytes(b"\n".join(lines) + b"\n")
        journal = RunJournal(path)
        assert journal.begin(FP, resume=True) == 0
        assert journal.recovery.mid_file_corruption
        assert journal.recovery.first_invalid_line == 2
        sidecar = tmp_path / "run.jsonl.quarantine"
        assert sidecar.exists() and sidecar.stat().st_size > 0
        journal.record(entry(0))
        journal.record(entry(1))
        journal.close()
        assert journal.appended == 2
        assert journal.entries() == [entry(0), entry(1)]

    def test_single_byte_flip_detected_and_recovered_past(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_journal(path, n=3)
        pristine = path.read_bytes()
        # Flip one payload byte in the middle record.
        offset = pristine.index(b'"index": 1') + 9
        data = bytearray(pristine)
        data[offset] ^= 0x40
        path.write_bytes(bytes(data))
        journal = RunJournal(path)
        assert journal.begin(FP, resume=True) == 1  # record 0 survived
        assert journal.recovery.corruption_reason == "checksum mismatch"
        for i in range(3):
            journal.record(entry(i))
        journal.close()
        # Replay + re-append converged back to the uninterrupted bytes.
        assert path.read_bytes() == pristine

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal(tmp_path / "absent.jsonl").begin(FP, resume=True)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(JournalError):
            RunJournal(path).begin(FP, resume=True)

    def test_float_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "run.jsonl"
        value = 0.1 + 0.2  # classic repr-sensitive float
        with RunJournal(path) as journal:
            journal.begin(FP)
            journal.record({"index": 0, "complete": value})
        journal = RunJournal(path)
        journal.begin(FP, resume=True)
        journal.record({"index": 0, "complete": value})  # must verify
        assert journal.verified == 1
        journal.close()
