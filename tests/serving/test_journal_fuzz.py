"""Fuzz the journal's torn-tail recovery at every byte offset.

A crash can cut the journal file anywhere inside its final fsynced write.
The recovery contract is: resume never raises on a torn tail, recovers
either all ``n`` records or exactly the intact ``n - 1`` prefix, and the
recovered prefix is byte-for-byte what was journaled.  This test makes
that contract exhaustive instead of anecdotal by truncating a real
journal at *every* byte offset of its last record line.
"""

import json

import pytest

from repro.serving import RunJournal

pytestmark = pytest.mark.serving

FP = "fuzz-fingerprint"
NUM_RECORDS = 6


def _entry(i):
    # Shaped like the serving layer's terminal outcomes: mixed value
    # types, floats with long reprs, nested-free flat dict.
    return {
        "index": i,
        "app": f"nn#{i}",
        "outcome": "completed" if i % 2 == 0 else "failed",
        "complete": 0.0012345678901234 * (i + 1),
        "attempts": i % 3 + 1,
    }


@pytest.fixture(scope="module")
def journal_bytes(tmp_path_factory):
    """One journal written through the real API, returned as raw bytes."""
    path = tmp_path_factory.mktemp("fuzz") / "run.jsonl"
    with RunJournal(path) as journal:
        journal.begin(FP)
        for i in range(NUM_RECORDS):
            journal.record(_entry(i))
    return path.read_bytes()


def _last_line_span(data):
    """(start, end) byte offsets of the final record line, newline incl."""
    body = data.rstrip(b"\n")
    start = body.rfind(b"\n") + 1
    return start, len(data)


def test_fixture_shape(journal_bytes):
    lines = journal_bytes.decode().splitlines()
    assert len(lines) == 1 + NUM_RECORDS
    start, end = _last_line_span(journal_bytes)
    assert json.loads(journal_bytes[start:end]) == _entry(NUM_RECORDS - 1)


# Longest possible record line stays well under this; parametrizing over
# a fixed range keeps collection independent of the journal's content.
_MAX_LINE = 120


@pytest.mark.parametrize("cut", range(_MAX_LINE))
def test_truncation_inside_last_record_recovers_prefix(
    journal_bytes, tmp_path, cut
):
    start, end = _last_line_span(journal_bytes)
    if start + cut > end:
        pytest.skip("offset past the end of the last record")
    torn = tmp_path / "torn.jsonl"
    torn.write_bytes(journal_bytes[: start + cut])

    journal = RunJournal(torn)
    recovered = journal.begin(FP, resume=True)
    journal.close()

    # Never raises; recovers the full log or exactly the intact prefix.
    assert recovered in (NUM_RECORDS - 1, NUM_RECORDS)
    entries = journal.entries()
    assert len(entries) == recovered
    for i, entry in enumerate(entries):
        assert entry == _entry(i)
    # The rewritten file must itself be a clean journal (no torn line).
    assert RunJournal(torn).begin(FP, resume=True) == recovered


def test_truncation_at_full_length_recovers_everything(
    journal_bytes, tmp_path
):
    path = tmp_path / "whole.jsonl"
    path.write_bytes(journal_bytes)
    assert RunJournal(path).begin(FP, resume=True) == NUM_RECORDS


def test_truncation_without_trailing_newline_keeps_record(
    journal_bytes, tmp_path
):
    # The crash cut exactly the final "\n": the record itself is intact
    # and must not be discarded as torn.
    path = tmp_path / "nonewline.jsonl"
    path.write_bytes(journal_bytes[:-1])
    assert RunJournal(path).begin(FP, resume=True) == NUM_RECORDS
