"""Fuzz the journal's torn-tail recovery at every byte offset.

A crash can cut the journal file anywhere inside its final fsynced write.
The recovery contract is: resume never raises on a torn tail, recovers
either all ``n`` records or exactly the intact ``n - 1`` prefix, and the
recovered prefix is byte-for-byte what was journaled.  This test makes
that contract exhaustive instead of anecdotal by truncating a real
journal at *every* byte offset of its last record line.
"""

import pytest

from repro.integrity import decode_line
from repro.serving import RunJournal

pytestmark = pytest.mark.serving

FP = "fuzz-fingerprint"
NUM_RECORDS = 6


def _entry(i):
    # Shaped like the serving layer's terminal outcomes: mixed value
    # types, floats with long reprs, nested-free flat dict.
    return {
        "index": i,
        "app": f"nn#{i}",
        "outcome": "completed" if i % 2 == 0 else "failed",
        "complete": 0.0012345678901234 * (i + 1),
        "attempts": i % 3 + 1,
    }


@pytest.fixture(scope="module")
def journal_bytes(tmp_path_factory):
    """One journal written through the real API, returned as raw bytes."""
    path = tmp_path_factory.mktemp("fuzz") / "run.jsonl"
    with RunJournal(path) as journal:
        journal.begin(FP)
        for i in range(NUM_RECORDS):
            journal.record(_entry(i))
    return path.read_bytes()


def _last_line_span(data):
    """(start, end) byte offsets of the final record line, newline incl."""
    body = data.rstrip(b"\n")
    start = body.rfind(b"\n") + 1
    return start, len(data)


def test_fixture_shape(journal_bytes):
    lines = journal_bytes.decode().splitlines()
    assert len(lines) == 1 + NUM_RECORDS
    start, end = _last_line_span(journal_bytes)
    record = decode_line(
        journal_bytes[start:end].rstrip(b"\n"), expected_seq=NUM_RECORDS
    )
    assert record == _entry(NUM_RECORDS - 1)


# Longest possible record line stays well under this; parametrizing over
# a fixed range keeps collection independent of the journal's content.
_MAX_LINE = 150


@pytest.mark.parametrize("cut", range(_MAX_LINE))
def test_truncation_inside_last_record_recovers_prefix(
    journal_bytes, tmp_path, cut
):
    start, end = _last_line_span(journal_bytes)
    if start + cut > end:
        pytest.skip("offset past the end of the last record")
    torn = tmp_path / "torn.jsonl"
    torn.write_bytes(journal_bytes[: start + cut])

    journal = RunJournal(torn)
    recovered = journal.begin(FP, resume=True)
    journal.close()

    # Never raises; recovers the full log or exactly the intact prefix.
    assert recovered in (NUM_RECORDS - 1, NUM_RECORDS)
    entries = journal.entries()
    assert len(entries) == recovered
    for i, entry in enumerate(entries):
        assert entry == _entry(i)
    # The rewritten file must itself be a clean journal (no torn line).
    assert RunJournal(torn).begin(FP, resume=True) == recovered


def test_truncation_at_full_length_recovers_everything(
    journal_bytes, tmp_path
):
    path = tmp_path / "whole.jsonl"
    path.write_bytes(journal_bytes)
    assert RunJournal(path).begin(FP, resume=True) == NUM_RECORDS


def test_truncation_without_trailing_newline_keeps_record(
    journal_bytes, tmp_path
):
    # The crash cut exactly the final "\n": the record itself is intact
    # and must not be discarded as torn.
    path = tmp_path / "nonewline.jsonl"
    path.write_bytes(journal_bytes[:-1])
    assert RunJournal(path).begin(FP, resume=True) == NUM_RECORDS


# -- multi-byte UTF-8 torn tails ------------------------------------------
#
# Regression for the recovery bug class where a tail truncated in the
# middle of a multi-byte codepoint surfaced as ``UnicodeDecodeError``
# instead of being classified as torn.  App names below force real
# multi-byte UTF-8 onto disk (the envelope encodes with
# ``ensure_ascii=False``), covering 2-, 3- and 4-byte sequences.

_UTF8_NAMES = ["señal", "ニューラルネット", "模型#7", "🧪-probe"]


def _utf8_entry(i):
    return {
        "index": i,
        "app": f"{_UTF8_NAMES[i % len(_UTF8_NAMES)]}#{i}",
        "outcome": "completed",
        "complete": 0.001 * (i + 1),
    }


@pytest.fixture(scope="module")
def utf8_journal_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz-utf8") / "run.jsonl"
    with RunJournal(path) as journal:
        journal.begin(FP)
        for i in range(NUM_RECORDS):
            journal.record(_utf8_entry(i))
    data = path.read_bytes()
    # The fixture only means something if multi-byte sequences exist.
    assert len(data) > len(data.decode("utf-8"))
    return data


def test_utf8_names_round_trip(utf8_journal_bytes, tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_bytes(utf8_journal_bytes)
    journal = RunJournal(path)
    assert journal.begin(FP, resume=True) == NUM_RECORDS
    assert journal.entries() == [_utf8_entry(i) for i in range(NUM_RECORDS)]
    journal.close()


@pytest.mark.parametrize("cut", range(1, 5))
def test_truncation_mid_codepoint_is_torn_not_an_error(
    utf8_journal_bytes, tmp_path, cut
):
    # Cut inside the last record's last multi-byte codepoint: the bytes
    # on disk are not valid UTF-8, which must read as "torn tail", never
    # escape as UnicodeDecodeError.
    data = utf8_journal_bytes
    start = data.rstrip(b"\n").rfind(b"\n") + 1
    last_line = data[start:].rstrip(b"\n")
    multi_starts = [
        i for i, b in enumerate(last_line) if b >= 0xC2
    ]
    assert multi_starts, "fixture lost its multi-byte codepoints"
    cut_at = start + multi_starts[-1] + 1  # one byte into the sequence
    torn = tmp_path / "torn.jsonl"
    torn.write_bytes(data[: cut_at + (cut - 1)])

    journal = RunJournal(torn)
    recovered = journal.begin(FP, resume=True)
    journal.close()
    assert recovered in (NUM_RECORDS - 1, NUM_RECORDS)
    assert journal.recovery.torn_tail or journal.recovery.clean


def test_every_truncation_of_utf8_journal_recovers(
    utf8_journal_bytes, tmp_path
):
    # Exhaustive: cut the whole file at every byte boundary; resume must
    # never raise and must recover a strict prefix of the entries.
    from repro.serving import JournalError

    expected = [_utf8_entry(i) for i in range(NUM_RECORDS)]
    header_end = utf8_journal_bytes.index(b"\n")  # intact header w/o "\n"
    for cut in range(len(utf8_journal_bytes)):
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(utf8_journal_bytes[:cut])
        journal = RunJournal(torn)
        try:
            recovered = journal.begin(FP, resume=True)
        except JournalError:
            # Clean rejection is only legitimate while the header itself
            # hasn't fully landed yet.
            assert cut < header_end
            continue
        journal.close()
        assert journal.entries() == expected[:recovered]
