"""Policy registry: static wrappers, greedy interleave, bandit choice."""

import pytest

from repro.scheduling.characterize import WorkloadCharacterizer
from repro.scheduling.orders import SchedulingOrder, all_orders, make_schedule
from repro.scheduling.policies import (
    BatchContext,
    EpsilonGreedyBanditPolicy,
    GreedyInterleavePolicy,
    POLICY_NAMES,
    StaticOrderPolicy,
    make_policy,
    mix_signature,
)

pytestmark = pytest.mark.scheduling


@pytest.fixture()
def ch():
    return WorkloadCharacterizer(scale="tiny")


def ctx(types, width=None, device=0, index=0, seed=0):
    return BatchContext(
        types=tuple(types),
        num_streams=width or len(types),
        device=device,
        decision_index=index,
        seed=seed,
    )


class TestRegistry:
    def test_every_name_instantiates(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_registry_covers_static_plus_adaptive(self):
        assert set(POLICY_NAMES) == {o.value for o in all_orders()} | {
            "greedy-interleave",
            "bandit",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("spiffy")

    def test_static_rejects_options(self):
        with pytest.raises(TypeError):
            make_policy("naive-fifo", epsilon=0.5)

    def test_bandit_options_forwarded(self):
        bandit = make_policy("bandit", epsilon=0.3, decay=0.0)
        assert bandit.epsilon == 0.3
        assert bandit.decay == 0.0


class TestStaticPolicies:
    def test_matches_make_schedule(self, ch):
        types = ["gaussian"] * 3 + ["needle"] * 3
        for order in all_orders():
            if order is SchedulingOrder.RANDOM_SHUFFLE:
                continue
            policy = StaticOrderPolicy(order)
            schedule, label = policy.schedule(ctx(types), ch)
            assert label == order.value
            assert schedule == make_schedule(types, order)

    def test_shuffle_is_seed_deterministic(self, ch):
        types = ["gaussian"] * 4 + ["nn"] * 4
        policy = StaticOrderPolicy(SchedulingOrder.RANDOM_SHUFFLE)
        a, _ = policy.schedule(ctx(types, seed=5, index=2), ch)
        b, _ = policy.schedule(ctx(types, seed=5, index=2), ch)
        c, _ = policy.schedule(ctx(types, seed=5, index=3), ch)
        assert a == b
        assert a != c  # a different decision gets an independent stream


class TestGreedyInterleave:
    def test_mixed_classes_alternate(self, ch):
        # gaussian (compute-heavy, most work) + nn (transfer-heavy):
        # alternation starting with gaussian == round-robin.
        types = ["gaussian"] * 4 + ["nn"] * 4
        schedule, _ = GreedyInterleavePolicy().schedule(ctx(types), ch)
        assert schedule == make_schedule(types, SchedulingOrder.ROUND_ROBIN)

    def test_starts_with_highest_compute_work(self, ch):
        # needle (compute class at tiny) vs srad (transfer class at tiny):
        # srad carries ~10x needle's compute work, so it launches first.
        types = ["needle"] * 4 + ["srad"] * 4
        schedule, _ = GreedyInterleavePolicy().schedule(ctx(types), ch)
        assert types[schedule[0]] == "srad"
        assert schedule == make_schedule(
            types, SchedulingOrder.REVERSE_ROUND_ROBIN
        )

    def test_single_class_falls_back_to_work_ranked_interleave(self, ch):
        # gaussian + needle are both compute-heavy at tiny scale; the
        # schedule still alternates, led by gaussian (more work).
        types = ["gaussian"] * 3 + ["needle"] * 3
        schedule, _ = GreedyInterleavePolicy().schedule(ctx(types), ch)
        assert [types[i] for i in schedule[:4]] == [
            "gaussian", "needle", "gaussian", "needle",
        ]

    def test_homogeneous_batch_is_fifo(self, ch):
        types = ["gaussian"] * 6
        schedule, _ = GreedyInterleavePolicy().schedule(ctx(types), ch)
        assert schedule == list(range(6))

    def test_instances_keep_fifo_order_within_type(self, ch):
        types = ["gaussian"] * 5 + ["nn"] * 3
        schedule, _ = GreedyInterleavePolicy().schedule(ctx(types), ch)
        gauss = [i for i in schedule if types[i] == "gaussian"]
        nn = [i for i in schedule if types[i] == "nn"]
        assert gauss == sorted(gauss)
        assert nn == sorted(nn)

    def test_three_types(self, ch):
        types = ["gaussian"] * 2 + ["nn"] * 2 + ["srad"] * 2
        schedule, _ = GreedyInterleavePolicy().schedule(ctx(types), ch)
        assert sorted(schedule) == list(range(6))
        assert types[schedule[0]] == "gaussian"


class TestMixSignature:
    def test_order_independent(self):
        a = mix_signature(["nn", "gaussian", "nn"], 4)
        b = mix_signature(["nn", "nn", "gaussian"], 4)
        assert a == b

    def test_width_matters(self):
        assert mix_signature(["nn"], 1) != mix_signature(["nn"], 2)

    def test_counts_matter(self):
        assert mix_signature(["nn"] * 2, 2) != mix_signature(["nn"] * 3, 2)


class TestBanditChoice:
    def test_exploration_pass_covers_all_arms_in_order(self, ch):
        bandit = EpsilonGreedyBanditPolicy()
        types = ["gaussian"] * 2 + ["nn"] * 2
        sig = mix_signature(types, 4)
        labels = []
        for i in range(5):
            _, label = bandit.schedule(ctx(types, index=i), ch)
            assert bandit.explored_last
            bandit.observe(sig, label, makespan=1.0 + i)
            labels.append(label)
        assert labels == [o.value for o in all_orders()]

    def test_exploits_best_arm_after_exploration(self, ch):
        bandit = EpsilonGreedyBanditPolicy(epsilon=0.0)
        types = ["gaussian"] * 2 + ["nn"] * 2
        sig = mix_signature(types, 4)
        rewards = {"round-robin": 0.5}
        for i in range(5):
            _, label = bandit.schedule(ctx(types, index=i), ch)
            bandit.observe(sig, label, rewards.get(label, 1.0))
        assert bandit.best_arm(sig) is SchedulingOrder.ROUND_ROBIN
        _, label = bandit.schedule(ctx(types, index=5), ch)
        assert label == "round-robin"
        assert not bandit.explored_last

    def test_best_arm_none_before_full_exploration(self, ch):
        bandit = EpsilonGreedyBanditPolicy()
        types = ["gaussian"] * 2
        sig = mix_signature(types, 2)
        assert bandit.best_arm(sig) is None

    def test_signatures_learn_independently(self, ch):
        bandit = EpsilonGreedyBanditPolicy(epsilon=0.0)
        a = ["gaussian"] * 2 + ["nn"] * 2
        b = ["needle"] * 2 + ["srad"] * 2
        for i in range(5):
            _, label = bandit.schedule(ctx(a, index=i), ch)
            bandit.observe(mix_signature(a, 4), label, 1.0)
        assert bandit.pulls(mix_signature(a, 4)) == 5
        assert bandit.pulls(mix_signature(b, 4)) == 0

    def test_regret_accumulates_only_above_best(self, ch):
        bandit = EpsilonGreedyBanditPolicy()
        sig = "s|w1"
        bandit.observe(sig, "naive-fifo", 1.0)
        assert bandit.cumulative_regret == 0.0
        bandit.observe(sig, "round-robin", 3.0)
        assert bandit.cumulative_regret == pytest.approx(2.0)
        bandit.observe(sig, "reverse-fifo", 0.5)  # new best: no regret
        assert bandit.cumulative_regret == pytest.approx(2.0)

    def test_unknown_arm_observation_ignored(self, ch):
        bandit = EpsilonGreedyBanditPolicy()
        bandit.observe("s|w1", "greedy-interleave", 1.0)
        assert bandit.pulls("s|w1") == 0

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            EpsilonGreedyBanditPolicy(epsilon=1.0)
        with pytest.raises(ValueError):
            EpsilonGreedyBanditPolicy(decay=-1.0)
