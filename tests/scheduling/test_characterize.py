"""Workload characterization: declared geometry, observation blending."""

import pytest

from repro.scheduling.characterize import (
    AppClass,
    DEFAULT_TRANSFER_THRESHOLD,
    WorkloadCharacterizer,
)

pytestmark = pytest.mark.scheduling


@pytest.fixture()
def ch():
    return WorkloadCharacterizer(scale="tiny")


class TestDeclaredGeometry:
    def test_gaussian_is_compute_heavy(self, ch):
        assert ch.classify("gaussian") is AppClass.COMPUTE_HEAVY
        assert ch.declared_fraction("gaussian") < DEFAULT_TRANSFER_THRESHOLD

    def test_nn_is_transfer_heavy(self, ch):
        # Table I: nn is the I/O-dominated data-mining app.
        assert ch.classify("nn") is AppClass.TRANSFER_HEAVY
        assert ch.declared_fraction("nn") > 0.7

    def test_fractions_are_probabilities(self, ch):
        for name in ("gaussian", "nn", "needle", "srad"):
            assert 0.0 <= ch.declared_fraction(name) <= 1.0

    @pytest.mark.parametrize("scale", ["tiny", "small", "paper"])
    def test_compute_work_ranking_is_scale_stable(self, scale):
        # The greedy policy's ranking key: gaussian > srad > needle > nn at
        # every problem size (this is what the start-type rule rests on).
        ch = WorkloadCharacterizer(scale=scale)
        works = [ch.compute_work(t) for t in ("gaussian", "srad", "needle", "nn")]
        assert works == sorted(works, reverse=True)
        assert works[-1] > 0.0

    def test_serial_estimate_positive(self, ch):
        for name in ("gaussian", "nn", "needle", "srad"):
            assert ch.serial_estimate(name) > 0.0

    def test_declared_costs_cached(self, ch):
        first = ch._declared_costs("gaussian")
        assert ch._declared_costs("gaussian") is first


class TestObservation:
    def _record(self, type_name, transfer, compute):
        """Minimal AppRecord double with the two measured quantities."""

        class Rec:
            pass

        r = Rec()
        r.type_name = type_name
        r.pure_transfer_time = lambda direction: transfer / 2
        r.kernel_busy_time = compute
        return r

    def test_no_observations_returns_declared(self, ch):
        assert ch.fraction("gaussian") == ch.declared_fraction("gaussian")
        assert ch.observations("gaussian") == 0

    def test_observation_moves_the_blend(self, ch):
        declared = ch.declared_fraction("gaussian")
        ch.observe(self._record("gaussian", transfer=9.0, compute=1.0))
        blended = ch.fraction("gaussian")
        assert blended > declared
        assert ch.observations("gaussian") == 1

    def test_prior_never_washes_out(self, ch):
        # Even a flood of pure-transfer observations caps the blend at the
        # midpoint of prior and EMA, so the declared prior keeps its vote.
        for _ in range(100):
            ch.observe(self._record("gaussian", transfer=1.0, compute=0.0))
        assert ch.fraction("gaussian") <= 0.5 * (
            ch.declared_fraction("gaussian") + 1.0
        )

    def test_zero_total_skipped(self, ch):
        ch.observe(self._record("gaussian", transfer=0.0, compute=0.0))
        assert ch.observations("gaussian") == 0

    def test_ema_step_size(self):
        ch = WorkloadCharacterizer(scale="tiny", ema_alpha=0.5)
        ch.observe(self._record("needle", transfer=1.0, compute=0.0))  # EMA=1.0
        ch.observe(self._record("needle", transfer=0.0, compute=1.0))  # ->0.5
        assert ch._observed["needle"] == pytest.approx(0.5)

    def test_observe_all(self, ch):
        ch.observe_all(
            [self._record("srad", 1.0, 1.0), self._record("nn", 1.0, 1.0)]
        )
        assert ch.observations("srad") == 1
        assert ch.observations("nn") == 1

    def test_real_records_feed_the_blend(self, ch):
        # End-to-end: records from a real harness run are observable.
        from repro.core.runner import quick_run

        result = quick_run(
            ("gaussian", "needle"), num_apps=2, num_streams=2, scale="tiny"
        )
        ch.observe_all(result.harness.records)
        assert ch.observations("gaussian") == 1
        assert ch.observations("needle") == 1
        assert 0.0 <= ch.fraction("gaussian") <= 1.0


class TestProfileAndValidation:
    def test_profile_snapshot(self, ch):
        p = ch.profile("nn")
        assert p.type_name == "nn"
        assert p.transfer_heavy
        assert p.observed_fraction is None
        assert p.compute_work == ch.compute_work("nn")

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            WorkloadCharacterizer(scale="tiny", threshold=0.0)
        with pytest.raises(ValueError):
            WorkloadCharacterizer(scale="tiny", threshold=1.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            WorkloadCharacterizer(scale="tiny", ema_alpha=0.0)

    def test_threshold_flips_class(self):
        strict = WorkloadCharacterizer(scale="tiny", threshold=0.01)
        assert strict.classify("gaussian") is AppClass.TRANSFER_HEAVY
