"""Hypothesis properties: permutation safety and decision determinism.

Two invariants the subsystem must never lose:

* **No drops, no dupes** — every policy's schedule is a permutation of the
  batch, for any batch composition.  A violated permutation silently runs
  an app twice (or never), which no downstream assertion would attribute
  to the scheduler.
* **Byte-identical decisions under a fixed seed** — the whole decision
  stream (orders, schedules, sync flags, widths) is a pure function of
  (config, batch sequence), including across a crash-resume cycle, which
  is what makes journal replay verification sound.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.scheduling import BatchScheduler, SchedulerConfig
from repro.scheduling.characterize import WorkloadCharacterizer
from repro.scheduling.policies import BatchContext, POLICY_NAMES, make_policy

pytestmark = pytest.mark.scheduling

TYPES = ("gaussian", "nn", "needle", "srad")

#: Shared characterizer: declared geometry is immutable, and per-example
#: construction would redo the profile builds for every hypothesis case.
CH = WorkloadCharacterizer(scale="tiny")

batches = st.lists(st.sampled_from(TYPES), min_size=1, max_size=12)
batch_sequences = st.lists(batches, min_size=1, max_size=5)


@settings(max_examples=40, deadline=None)
@given(types=batches, policy=st.sampled_from(POLICY_NAMES), seed=st.integers(0, 2**16))
def test_every_policy_emits_a_permutation(types, policy, seed):
    p = make_policy(policy)
    ctx = BatchContext(
        types=tuple(types),
        num_streams=len(types),
        device=0,
        decision_index=0,
        seed=seed,
    )
    schedule, label = p.schedule(ctx, CH)
    assert sorted(schedule) == list(range(len(types)))
    assert isinstance(label, str) and label


@settings(max_examples=15, deadline=None)
@given(
    seq=batch_sequences,
    policy=st.sampled_from(POLICY_NAMES),
    seed=st.integers(0, 2**16),
)
def test_decision_stream_is_seed_deterministic(seq, policy, seed):
    def run():
        s = BatchScheduler(
            SchedulerConfig(policy=policy, seed=seed, scale="tiny")
        )
        out = []
        for i, types in enumerate(seq):
            d = s.schedule(types)
            s.observe(d, 1e-3 * (1 + i))
            out.append(
                (d.order_label, d.schedule, d.memory_sync, d.num_streams)
            )
        return out

    assert run() == run()


@settings(max_examples=10, deadline=None)
@given(
    seq=st.lists(batches, min_size=2, max_size=5),
    policy=st.sampled_from(("bandit", "greedy-interleave", "random-shuffle")),
    seed=st.integers(0, 2**16),
)
def test_decisions_identical_after_journal_crash_resume(
    seq, policy, seed, tmp_path_factory
):
    tmp = tmp_path_factory.mktemp("journal")

    def run(path, resume=False, stop_after=None):
        s = BatchScheduler(
            SchedulerConfig(
                policy=policy,
                seed=seed,
                scale="tiny",
                journal_path=path,
                resume=resume,
            )
        )
        out = []
        with s:
            for i, types in enumerate(seq):
                if stop_after is not None and i >= stop_after:
                    break
                d = s.schedule(types)
                s.observe(d, 1e-3 * (1 + i))
                out.append(
                    (d.order_label, d.schedule, d.memory_sync, d.num_streams)
                )
        return out

    ref_path = tmp / f"ref-{seed}.jsonl"
    crash_path = tmp / f"crash-{seed}.jsonl"
    reference = run(ref_path)
    run(crash_path, stop_after=len(seq) // 2)  # "crash" mid-stream
    resumed = run(crash_path, resume=True)
    assert resumed == reference
    assert (
        crash_path.read_bytes().splitlines()[1:]
        == ref_path.read_bytes().splitlines()[1:]
    )
