"""Batch-scheduled serving: harness integration, learning, crash-resume."""

import pytest

from repro.serving import run_batched_serving
from repro.sim.errors import HarnessCrash

pytestmark = pytest.mark.scheduling

BATCH = [("gaussian", 2), ("needle", 2)]


class TestRunBatchedServing:
    def test_batches_run_and_feed_back(self):
        result = run_batched_serving(
            [BATCH] * 3, policy="greedy-interleave", scale="tiny", seed=1
        )
        assert len(result.batches) == 3
        assert result.total_makespan > 0
        assert result.total_energy > 0
        assert all(b.makespan > 0 for b in result.batches)
        assert result.policy == "greedy-interleave"

    def test_records_carry_order_and_sync_attribution(self):
        result = run_batched_serving(
            [BATCH], policy="round-robin", scale="tiny", seed=1
        )
        batch = result.batches[0]
        for record in batch.records:
            assert record.order_policy == "round-robin"
            assert record.memory_sync == batch.decision.memory_sync

    def test_flat_type_lists_accepted(self):
        result = run_batched_serving(
            [["gaussian", "gaussian", "needle"]],
            policy="naive-fifo",
            scale="tiny",
        )
        types = [r.type_name for r in result.batches[0].records]
        assert sorted(types) == ["gaussian", "gaussian", "needle"]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            run_batched_serving([[]], scale="tiny")

    def test_bandit_converges_to_best_measured_arm(self):
        # Deterministic sim: after one exploration pass the bandit's
        # exploit decisions hit the arm with the smallest measured
        # makespan, exactly.
        result = run_batched_serving(
            [BATCH] * 10, policy="bandit", scale="tiny", seed=1
        )
        explored = {
            b.decision.order_label: b.makespan
            for b in result.batches[:5]
        }
        best = min(explored, key=lambda k: (explored[k], k))
        exploit = [
            b for b in result.batches[5:] if not b.decision.explored
        ]
        assert exploit, "expected at least one exploit decision"
        for b in exploit:
            assert b.decision.order_label == best
            assert b.makespan == explored[best]

    def test_shared_scheduler_keeps_learning_across_calls(self):
        from repro.scheduling import BatchScheduler, SchedulerConfig

        scheduler = BatchScheduler(
            SchedulerConfig(policy="bandit", scale="tiny", seed=2)
        )
        run_batched_serving([BATCH] * 3, scheduler=scheduler, scale="tiny")
        run_batched_serving([BATCH] * 3, scheduler=scheduler, scale="tiny")
        assert scheduler.decision_count() == 6

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError):
            run_batched_serving([BATCH], scale="tiny", resume=True)


class TestCrashResume:
    def test_crash_then_resume_matches_uninterrupted(self, tmp_path):
        journal = tmp_path / "batched.jsonl"
        uninterrupted = run_batched_serving(
            [BATCH] * 6, policy="bandit", scale="tiny", seed=3
        )
        with pytest.raises(HarnessCrash):
            run_batched_serving(
                [BATCH] * 6,
                policy="bandit",
                scale="tiny",
                seed=3,
                journal_path=journal,
                crash_after=3,
            )
        resumed = run_batched_serving(
            [BATCH] * 6,
            policy="bandit",
            scale="tiny",
            seed=3,
            journal_path=journal,
            resume=True,
        )
        assert resumed.resumed
        assert resumed.recovered_entries == 6  # 3 decisions + 3 observations
        assert [d.order_label for d in resumed.decisions] == [
            d.order_label for d in uninterrupted.decisions
        ]
        assert [b.makespan for b in resumed.batches] == [
            b.makespan for b in uninterrupted.batches
        ]

    def test_resume_against_different_batches_is_refused(self, tmp_path):
        from repro.serving.journal import JournalMismatchError

        journal = tmp_path / "batched.jsonl"
        with pytest.raises(HarnessCrash):
            run_batched_serving(
                [BATCH] * 4,
                scale="tiny",
                seed=3,
                journal_path=journal,
                crash_after=2,
            )
        with pytest.raises(JournalMismatchError):
            run_batched_serving(
                [BATCH] * 5,  # different batch sequence -> different salt
                scale="tiny",
                seed=3,
                journal_path=journal,
                resume=True,
            )


class TestTelemetryProbe:
    def test_scheduler_probe_reports_decisions(self, env):
        from repro.scheduling import BatchScheduler, SchedulerConfig
        from repro.telemetry import Telemetry
        from repro.telemetry.probes import instrument_scheduler

        telemetry = Telemetry()
        scheduler = BatchScheduler(
            SchedulerConfig(policy="bandit", scale="tiny", seed=0)
        )
        instrument_scheduler(telemetry, scheduler)
        for _ in range(6):
            d = scheduler.schedule(["gaussian"] * 2 + ["nn"] * 2)
            scheduler.observe(d, 1e-3)
        telemetry.attach(env)
        snap = telemetry.sampler.sample_now()
        decisions = {
            key: value
            for key, value in snap.values.items()
            if key.startswith("repro_sched_decisions_total")
        }
        assert sum(decisions.values()) == 6
        # The first five decisions are the bandit's exploration pass.
        assert (
            snap.values['repro_sched_explorations_total{policy="bandit"}'] >= 5
        )
        assert snap.values["repro_sched_observed_makespan_seconds"] == 1e-3
        assert snap.values['repro_sched_bandit_regret_seconds{device="0"}'] >= 0

    def test_batched_serving_wires_the_probe(self, env):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        run_batched_serving(
            [BATCH] * 2, policy="naive-fifo", scale="tiny", telemetry=telemetry
        )
        telemetry.attach(env)
        snap = telemetry.sampler.sample_now()
        assert (
            snap.values[
                'repro_sched_decisions_total{policy="naive-fifo",order="naive-fifo"}'
            ]
            == 2
        )
