"""The extracted launch-order module and its back-compat re-export."""

import numpy as np
import pytest

from repro import scheduling
from repro.framework import scheduler as legacy
from repro.scheduling.orders import (
    FIGURE_3,
    SchedulingOrder,
    all_orders,
    make_schedule,
    ordering_rows,
    schedule_signature,
)

pytestmark = pytest.mark.scheduling


class TestBackCompat:
    def test_legacy_names_are_the_same_objects(self):
        assert legacy.SchedulingOrder is SchedulingOrder
        assert legacy.make_schedule is make_schedule
        assert legacy.schedule_signature is schedule_signature
        assert legacy.all_orders is all_orders

    def test_package_reexports(self):
        assert scheduling.SchedulingOrder is SchedulingOrder
        assert scheduling.make_schedule is make_schedule

    def test_framework_package_still_exports(self):
        from repro.framework import SchedulingOrder as fw_order

        assert fw_order is SchedulingOrder


class TestFigure3Reference:
    def test_reference_matches_make_schedule(self):
        types = ["AX"] * 4 + ["AY"] * 4
        for name, expected in FIGURE_3.items():
            order = SchedulingOrder(name)
            schedule = make_schedule(types, order)
            assert schedule_signature(types, schedule) == expected

    def test_deterministic_panels_only(self):
        assert "random-shuffle" not in FIGURE_3
        assert len(FIGURE_3) == 4

    def test_experiment_agrees_with_reference(self):
        from repro.core.experiments import fig3_orders

        orders = fig3_orders(m=4, n=4, seed=7)
        for name, expected in FIGURE_3.items():
            assert orders[name] == expected


class TestOrderingRows:
    def test_flattens_ordering_result(self):
        class Row:
            def __init__(self, order, makespan, norm):
                self.pair = ("gaussian", "needle")
                self.order = order
                self.makespan = makespan
                self.normalized_performance = norm

        class Result:
            rows = [
                Row(SchedulingOrder.NAIVE_FIFO, 0.002, 1.0),
                Row(SchedulingOrder.ROUND_ROBIN, 0.001, 2.0),
            ]

        rows = ordering_rows(Result())
        assert rows == [
            {
                "pair": "gaussian+needle",
                "order": "naive-fifo",
                "makespan_ms": 2.0,
                "normalized_perf": 1.0,
            },
            {
                "pair": "gaussian+needle",
                "order": "round-robin",
                "makespan_ms": 1.0,
                "normalized_perf": 2.0,
            },
        ]


class TestMakeSchedule:
    def test_shuffle_requires_rng(self):
        with pytest.raises(ValueError):
            make_schedule(["a", "b"], SchedulingOrder.RANDOM_SHUFFLE)

    def test_all_orders_are_permutations(self):
        types = ["x"] * 3 + ["y"] * 5 + ["z"] * 2
        rng = np.random.default_rng(0)
        for order in all_orders():
            schedule = make_schedule(types, order, rng=rng)
            assert sorted(schedule) == list(range(len(types)))
