"""BatchScheduler: decisions, predictions, journaling, crash-resume."""

import dataclasses

import pytest

from repro.scheduling import BatchScheduler, SchedulerConfig
from repro.scheduling.scheduler import DEFAULT_SYNC_THRESHOLD
from repro.serving.journal import JournalMismatchError

pytestmark = pytest.mark.scheduling

MIXED = ["gaussian"] * 4 + ["nn"] * 4


def sched(**kwargs):
    kwargs.setdefault("scale", "tiny")
    return BatchScheduler(SchedulerConfig(**kwargs))


class TestConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            sched(policy="nope")

    def test_fingerprint_stable(self):
        a = SchedulerConfig(policy="bandit", seed=1).fingerprint()
        b = SchedulerConfig(policy="bandit", seed=1).fingerprint()
        assert a == b

    @pytest.mark.parametrize(
        "change",
        [
            {"policy": "naive-fifo"},
            {"seed": 2},
            {"scale": "small"},
            {"max_width": 4},
            {"sync_threshold": 3.0},
            {"sync_override": True},
            {"epsilon": 0.2},
            {"salt": "other"},
        ],
    )
    def test_fingerprint_sensitive_to_each_field(self, change):
        base = SchedulerConfig(policy="bandit", seed=1)
        changed = dataclasses.replace(base, **change)
        assert base.fingerprint() != changed.fingerprint()


class TestDecisions:
    def test_decision_is_permutation(self):
        s = sched(policy="greedy-interleave")
        d = s.schedule(MIXED)
        assert sorted(d.schedule) == list(range(len(MIXED)))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            sched().schedule([])

    def test_width_defaults_to_batch_size(self):
        d = sched(policy="naive-fifo").schedule(MIXED)
        assert d.num_streams == len(MIXED)

    def test_max_width_caps(self):
        d = sched(policy="naive-fifo", max_width=3).schedule(MIXED)
        assert d.num_streams == 3

    def test_caller_width_respected_but_bounded(self):
        s = sched(policy="naive-fifo")
        assert s.schedule(MIXED, width=2).num_streams == 2
        assert s.schedule(MIXED, width=100).num_streams == len(MIXED)

    def test_decision_indices_are_per_device(self):
        s = sched(policy="naive-fifo")
        assert s.schedule(MIXED, device=0).decision_index == 0
        assert s.schedule(MIXED, device=1).decision_index == 0
        assert s.schedule(MIXED, device=0).decision_index == 1
        assert s.decision_count(0) == 2
        assert s.decision_count(1) == 1
        assert s.decision_count() == 3


class TestSyncPredictor:
    def test_mixed_batch_enables_sync(self):
        s = sched(policy="naive-fifo")
        d = s.schedule(MIXED)
        assert d.predicted_stretch >= DEFAULT_SYNC_THRESHOLD
        assert d.memory_sync

    def test_pure_compute_batch_keeps_sync_off(self):
        s = sched(policy="naive-fifo")
        d = s.schedule(["gaussian"] * 8)
        assert d.predicted_stretch < DEFAULT_SYNC_THRESHOLD
        assert not d.memory_sync

    def test_width_one_never_stretches(self):
        s = sched(policy="naive-fifo")
        assert s.predicted_stretch(["nn"] * 8, width=1) == 1.0

    def test_override_wins(self):
        on = sched(policy="naive-fifo", sync_override=True)
        assert on.schedule(["gaussian"] * 8).memory_sync
        off = sched(policy="naive-fifo", sync_override=False)
        assert not off.schedule(MIXED).memory_sync

    def test_predicted_makespan_bounded_below_by_longest_app(self):
        s = sched(policy="naive-fifo")
        longest = max(
            s.characterizer.serial_estimate(t) for t in set(MIXED)
        )
        assert s.predicted_makespan(MIXED, width=100) >= longest


class TestFeedback:
    def test_observe_records_makespan(self):
        s = sched(policy="bandit")
        d = s.schedule(MIXED)
        s.observe(d, 0.5)
        assert s.observed[0] == 0.5

    def test_per_device_policies_are_isolated(self):
        s = sched(policy="bandit")
        d0 = s.schedule(MIXED, device=0)
        s.observe(d0, 1.0)
        assert s.policy_for(0).pulls(d0.signature) == 1
        assert s.policy_for(1).pulls(d0.signature) == 0

    def test_regret_zero_for_static_policy(self):
        s = sched(policy="naive-fifo")
        d = s.schedule(MIXED)
        s.observe(d, 1.0)
        assert s.cumulative_regret(0) == 0.0


class TestJournal(object):
    def run_decisions(self, path, n=6, resume=False, crash_after=None, **kw):
        kw.setdefault("policy", "bandit")
        s = sched(journal_path=path, resume=resume, **kw)
        out = []
        with s:
            for i in range(n):
                if crash_after is not None and i >= crash_after:
                    break
                d = s.schedule(MIXED)
                s.observe(d, 1.0 + 0.25 * (i % 5))
                out.append(d)
        return s, out

    def test_decisions_journaled(self, tmp_path):
        path = tmp_path / "sched.jsonl"
        s, decisions = self.run_decisions(path)
        entries = s.journal.entries()
        assert len(entries) == 2 * len(decisions)  # decision + observation
        kinds = [e["kind"] for e in entries]
        assert kinds == ["decision", "observation"] * len(decisions)
        assert entries[0]["schedule"] == list(decisions[0].schedule)

    def test_crash_resume_replays_byte_identically(self, tmp_path):
        path = tmp_path / "sched.jsonl"
        _, full = self.run_decisions(tmp_path / "ref.jsonl", n=6)
        self.run_decisions(path, n=6, crash_after=3)
        s, resumed = self.run_decisions(path, n=6, resume=True)
        assert s.recovered == 6  # 3 decisions + 3 observations verified
        assert s.journal.verified == 6
        assert [d.order_label for d in resumed] == [
            d.order_label for d in full
        ]
        assert [d.schedule for d in resumed] == [d.schedule for d in full]
        ref = (tmp_path / "ref.jsonl").read_bytes().splitlines()[1:]
        got = path.read_bytes().splitlines()[1:]
        assert got == ref  # entry lines byte-identical across crash

    def test_resume_with_different_seed_is_refused(self, tmp_path):
        path = tmp_path / "sched.jsonl"
        self.run_decisions(path, n=4, crash_after=2)
        with pytest.raises(JournalMismatchError):
            self.run_decisions(path, n=4, resume=True, seed=99)

    def test_diverging_replay_raises(self, tmp_path):
        path = tmp_path / "sched.jsonl"
        self.run_decisions(path, n=4, crash_after=2)
        s = sched(policy="bandit", journal_path=path, resume=True)
        with s:
            d = s.schedule(MIXED)
            with pytest.raises(JournalMismatchError):
                s.observe(d, 123.456)  # journaled makespan was different
