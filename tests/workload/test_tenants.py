"""Tenant classes and the merged multi-tenant traffic stream."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import ArrivalSpec, TenantClass, TenantModel

from .conftest import BASELINES, SEED, batch_class, interactive_class, two_class_model

pytestmark = pytest.mark.workload


def arrivals_of(stream):
    return list(stream)


def key(a):
    return (a.time, a.type_name, a.tenant, a.tenant_id, a.deadline, a.priority)


class TestStream:
    def test_merged_ordering_and_indexing(self, model):
        arrivals = arrivals_of(model.stream(BASELINES, limit=300))
        assert [a.index for a in arrivals] == list(range(300))
        times = [a.time for a in arrivals]
        assert times == sorted(times)

    def test_duration_bound(self, model):
        arrivals = arrivals_of(model.stream(BASELINES, duration=0.05))
        assert arrivals
        assert all(a.time < 0.05 for a in arrivals)

    def test_needs_a_bound(self, model):
        with pytest.raises(ValueError, match="duration and/or"):
            model.stream(BASELINES)

    def test_deadlines_follow_slo_factor(self, model):
        for a in arrivals_of(model.stream(BASELINES, limit=200)):
            if a.tenant == "interactive":
                assert a.deadline == pytest.approx(
                    a.time + 4.0 * BASELINES[a.type_name]
                )
                assert a.priority == 2
            else:  # batch: slo_factor 0 disables deadlines
                assert a.deadline == 0.0
                assert a.type_name == "needle"

    def test_app_mix_respected(self, model):
        counts = Counter(
            a.type_name
            for a in arrivals_of(model.stream(BASELINES, limit=600))
            if a.tenant == "interactive"
        )
        total = sum(counts.values())
        assert 0.55 < counts["nn"] / total < 0.85
        assert set(counts) == {"nn", "gaussian"}

    def test_missing_baseline_rejected(self, model):
        with pytest.raises(ValueError, match="missing baselines"):
            model.stream({"nn": 1e-3}, limit=10)

    def test_no_deadline_class_skips_baseline_check(self):
        # batch has slo_factor=0, so its "needle" baseline is not needed.
        model = TenantModel(classes=(batch_class(),), seed=SEED)
        arrivals_of(model.stream({}, limit=20))


class TestIndependence:
    def test_class_substream_unperturbed_by_other_classes(self):
        merged = arrivals_of(two_class_model().stream(BASELINES, limit=400))
        solo_model = TenantModel(classes=(interactive_class(),), seed=SEED)
        solo = arrivals_of(solo_model.stream(BASELINES, limit=400))
        got = [key(a) for a in merged if a.tenant == "interactive"]
        want = [key(a) for a in solo][: len(got)]
        assert got == want

    def test_same_seed_same_stream(self):
        a = arrivals_of(two_class_model().stream(BASELINES, limit=250))
        b = arrivals_of(two_class_model().stream(BASELINES, limit=250))
        assert [key(x) for x in a] == [key(x) for x in b]

    def test_seed_changes_stream(self):
        a = arrivals_of(two_class_model().stream(BASELINES, limit=100))
        b = arrivals_of(two_class_model(seed=SEED + 1).stream(BASELINES, limit=100))
        assert [key(x) for x in a] != [key(x) for x in b]


class TestTenantSampling:
    def test_millions_of_tenants_are_cheap(self):
        cls = interactive_class(tenants=10_000_000)
        model = TenantModel(classes=(cls,), seed=SEED)
        ids = [a.tenant_id for a in model.stream(BASELINES, limit=500)]
        assert all(0 <= i < 10_000_000 for i in ids)
        assert len(set(ids)) > 100  # sampled, not collapsed

    def test_zipf_concentrates_on_head_ranks(self):
        cls = interactive_class(tenants=1000, popularity="zipf", zipf_s=1.5)
        model = TenantModel(classes=(cls,), seed=SEED)
        ids = [a.tenant_id for a in model.stream(BASELINES, limit=2000)]
        head_share = sum(1 for i in ids if i < 10) / len(ids)
        assert head_share > 0.4  # uniform would give ~0.01

    def test_uniform_spreads(self):
        cls = interactive_class(tenants=1000, popularity="uniform")
        model = TenantModel(classes=(cls,), seed=SEED)
        ids = [a.tenant_id for a in model.stream(BASELINES, limit=2000)]
        head_share = sum(1 for i in ids if i < 10) / len(ids)
        assert head_share < 0.05

    def test_single_tenant_is_id_zero(self):
        cls = batch_class(tenants=1)
        model = TenantModel(classes=(cls,), seed=SEED)
        assert all(
            a.tenant_id == 0 for a in model.stream(BASELINES, limit=50)
        )


class TestCursors:
    @given(consumed=st.integers(min_value=0, max_value=120))
    @settings(max_examples=25, deadline=None)
    def test_restore_never_replays_or_skips(self, consumed):
        cont = two_class_model().stream(BASELINES, limit=100_000, chunk=16)
        for _ in range(consumed):
            next(cont)
        cursor = cont.state()
        expected = [next(cont) for _ in range(60)]
        fresh = two_class_model().stream(BASELINES, limit=100_000, chunk=16)
        fresh.restore(cursor)
        got = [next(fresh) for _ in range(60)]
        assert [key(a) for a in got] == [key(a) for a in expected]
        assert [a.index for a in got] == [a.index for a in expected]

    def test_cursor_is_jsonable(self, model):
        import json

        stream = model.stream(BASELINES, limit=100)
        for _ in range(17):
            next(stream)
        json.dumps(stream.state())

    def test_class_count_mismatch_rejected(self, model):
        stream = model.stream(BASELINES, limit=100)
        cursor = stream.state()
        solo = TenantModel(classes=(interactive_class(),), seed=SEED)
        fresh = solo.stream(BASELINES, limit=100)
        with pytest.raises(ValueError, match="classes"):
            fresh.restore(cursor)


class TestValidation:
    def test_class_needs_positive_mix(self):
        with pytest.raises(ValueError, match="app_mix"):
            TenantClass(
                name="x",
                arrival=ArrivalSpec("poisson"),
                app_mix=(("nn", 0.0),),
            )

    def test_bad_popularity(self):
        with pytest.raises(ValueError, match="popularity"):
            interactive_class(popularity="powerlaw")

    def test_zipf_exponent_must_exceed_one(self):
        with pytest.raises(ValueError, match="zipf_s"):
            interactive_class(zipf_s=1.0)

    def test_tenants_must_be_positive(self):
        with pytest.raises(ValueError, match="tenants"):
            interactive_class(tenants=0)

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TenantModel(classes=(batch_class(), batch_class()), seed=0)

    def test_model_type_names_sorted_deduped(self, model):
        assert model.type_names == ("gaussian", "needle", "nn")

    def test_payload_is_jsonable(self, model):
        import json

        json.dumps(model.payload())
