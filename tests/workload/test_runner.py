"""Scenario runner: determinism, trace equivalence, crash-resume, fleets."""

import pytest

from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.serving import FleetServingConfig, RunJournal
from repro.sim.errors import HarnessCrash
from repro.workload import (
    SCENARIOS,
    TraceError,
    get_scenario,
    record_trace,
    run_traffic,
)

pytestmark = pytest.mark.workload

REQUESTS = 160


@pytest.fixture(scope="module")
def built():
    return get_scenario("steady").build(REQUESTS)


class TestScenarios:
    def test_canonical_set(self):
        assert sorted(SCENARIOS) == ["burst", "diurnal", "overload", "steady"]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("weekend")

    def test_load_normalization(self, built):
        scenario = built.scenario
        assert built.offered_rate == pytest.approx(
            scenario.load * built.service_rate
        )
        total = sum(
            c.arrival.rate for c in built.model.classes
        )
        assert total == pytest.approx(built.offered_rate)

    def test_diurnal_period_spans_cycles(self):
        b = get_scenario("diurnal").build(REQUESTS)
        duration = b.requests / b.offered_rate
        for cls in b.model.classes:
            assert cls.arrival.kind == "diurnal"
            assert cls.arrival.period == pytest.approx(
                duration / b.scenario.cycles
            )

    def test_fingerprint_sensitivity(self, built):
        assert built.fingerprint() == built.fingerprint()
        assert built.fingerprint() != built.fingerprint(extra={"policy": "x"})
        other = get_scenario("steady").build(REQUESTS + 1)
        assert built.fingerprint() != other.fingerprint()


class TestRunTraffic:
    def test_deterministic_metrics(self, built):
        a = run_traffic(built, policy="reject").metrics()
        b = run_traffic(built, policy="reject").metrics()
        assert a == b
        assert a["arrivals"] == REQUESTS

    def test_every_arrival_settles(self, built):
        result = run_traffic(built, policy="reject")
        assert result.stats.arrivals == REQUESTS
        assert set(result.stats.classes) == {"batch", "interactive"}
        per_class = sum(
            s.arrivals for s in result.stats.classes.values()
        )
        assert per_class == REQUESTS

    def test_greedy_baseline_runs(self, built):
        result = run_traffic(built, policy="greedy")
        assert result.policy == "greedy"
        assert result.stats.arrivals == REQUESTS
        assert result.stats.outcomes.get("shed", 0) == 0

    def test_overload_sheds(self):
        b = get_scenario("overload").build(REQUESTS)
        result = run_traffic(b, policy="reject", queue_depth=4)
        assert result.metrics()["shed_rate"] > 0.0

    def test_journal_is_deterministic(self, built, tmp_path):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_traffic(built, policy="reject", journal_path=p1)
        run_traffic(built, policy="reject", journal_path=p2)
        assert p1.read_bytes() == p2.read_bytes()


class TestTraceEquivalence:
    """Satellite: record-then-replay == inline generation, byte for byte."""

    def test_streamed_vs_recorded_journals_identical(self, built, tmp_path):
        trace = tmp_path / "trace.jsonl"
        record_trace(built.stream(), trace, built.fingerprint())
        j_inline = tmp_path / "inline.jsonl"
        j_replay = tmp_path / "replay.jsonl"
        inline = run_traffic(built, policy="reject", journal_path=j_inline)
        replay = run_traffic(
            built, policy="reject", trace_path=trace, journal_path=j_replay
        )
        assert j_inline.read_bytes() == j_replay.read_bytes()
        assert inline.metrics() == replay.metrics()

    def test_foreign_trace_refused(self, built, tmp_path):
        other = get_scenario("steady").build(REQUESTS + 8)
        trace = tmp_path / "other.jsonl"
        record_trace(other.stream(), trace, other.fingerprint())
        with pytest.raises(TraceError, match="fingerprint"):
            run_traffic(built, policy="reject", trace_path=trace)


class TestCrashResume:
    def crash_plan(self, built):
        duration = built.requests / built.offered_rate
        return FaultPlan(
            [FaultSpec(FaultKind.HARNESS_CRASH, time=0.4 * duration)]
        )

    def run(self, built, path, resume=False):
        return run_traffic(
            built,
            policy="reject",
            plan=self.crash_plan(built),
            journal_path=path,
            resume=resume,
        )

    def test_crash_then_resume_byte_identical(self, built, tmp_path):
        paths = []
        for name in ("one", "two"):
            path = tmp_path / f"{name}.jsonl"
            with pytest.raises(HarnessCrash):
                self.run(built, path)
            result = self.run(built, path, resume=True)
            assert result.serving.resumed
            assert result.serving.recovered_entries > 0
            assert result.stats.arrivals == REQUESTS
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_resumed_entries_match_uncrashed_reference(self, built, tmp_path):
        crashed = tmp_path / "crashed.jsonl"
        with pytest.raises(HarnessCrash):
            self.run(built, crashed)
        resumed = self.run(built, crashed, resume=True)
        reference = run_traffic(
            built, policy="reject", journal_path=tmp_path / "ref.jsonl"
        )
        # The crash plan changes the journal fingerprint (header line),
        # but every outcome entry must be identical.
        assert RunJournal(crashed).entries() == RunJournal(
            tmp_path / "ref.jsonl"
        ).entries()
        assert resumed.metrics() == reference.metrics()


class TestFleet:
    def test_device_loss_mid_scenario(self, built):
        duration = built.requests / built.offered_rate
        plan = FaultPlan(
            [FaultSpec(FaultKind.DEVICE_LOSS, time=0.3 * duration, device=1)]
        )
        fleet = FleetServingConfig(num_devices=4, detection_latency=1e-3)
        result = run_traffic(built, policy="reject", fleet=fleet, plan=plan)
        assert result.stats.arrivals == REQUESTS
        # The run is deterministic under a fleet too.
        again = run_traffic(built, policy="reject", fleet=fleet, plan=plan)
        assert again.metrics() == result.metrics()


class TestTelemetry:
    def test_class_counters_and_tenant_cap(self, built):
        from repro.telemetry import OVERFLOW_LABEL, OVERFLOW_METRIC, Telemetry

        telemetry = Telemetry()
        result = run_traffic(
            built, policy="reject", telemetry=telemetry, tenant_series_cap=4
        )
        outcomes = telemetry.registry.get("repro_traffic_outcomes_total")
        total = sum(v for _, v in outcomes.series())
        assert total == REQUESTS
        tenants = telemetry.registry.get("repro_traffic_tenant_requests_total")
        labels = {key for key, _ in tenants.series()}
        # The cap admits 4 exact series; the rest aggregate to __other__.
        assert (OVERFLOW_LABEL, OVERFLOW_LABEL) in labels
        assert len(labels) <= 5
        overflow = telemetry.registry.get(OVERFLOW_METRIC)
        assert overflow is not None
        assert (
            overflow.value(metric="repro_traffic_tenant_requests_total")
            == result.stats.arrivals - sum(
                v for key, v in tenants.series()
                if key != (OVERFLOW_LABEL, OVERFLOW_LABEL)
            )
        )
