"""Batched traffic scoring: virtual-clock SLO goodput per policy."""

import pytest

from repro.sim.errors import HarnessCrash
from repro.workload import get_scenario, run_traffic_batched

pytestmark = pytest.mark.workload

REQUESTS = 96


@pytest.fixture(scope="module")
def built():
    return get_scenario("overload").build(REQUESTS)


class TestBatchedScoring:
    def test_deterministic(self, built):
        a = run_traffic_batched(built, "bandit").metrics()
        b = run_traffic_batched(built, "bandit").metrics()
        assert a == b
        assert a["arrivals"] == REQUESTS

    def test_every_request_scored_once(self, built):
        result = run_traffic_batched(built, "naive-fifo")
        scored = sum(total for _, total in result.class_met.values())
        assert scored == REQUESTS
        assert 0 <= result.deadline_met <= REQUESTS
        assert result.virtual_makespan > 0.0

    def test_virtual_clock_monotone_in_batch_size(self, built):
        # Fewer, larger batches can't start earlier than their own last
        # arrival, so makespan stays positive and finite either way.
        small = run_traffic_batched(built, "naive-fifo", batch_size=4)
        large = run_traffic_batched(built, "naive-fifo", batch_size=16)
        assert small.virtual_makespan > 0.0
        assert large.virtual_makespan > 0.0

    def test_metrics_shape(self, built):
        m = run_traffic_batched(built, "bandit").metrics()
        assert m["scenario"] == "overload"
        assert m["policy"] == "bandit"
        assert set(m["classes"]) <= {"interactive", "batch"}
        assert m["goodput"] == pytest.approx(
            m["deadline_met"] / m["virtual_makespan"]
        )

    def test_batch_size_validated(self, built):
        with pytest.raises(ValueError, match="batch_size"):
            run_traffic_batched(built, "bandit", batch_size=0)


class TestCrashResume:
    def test_crash_then_resume_matches_uninterrupted(self, built, tmp_path):
        path = tmp_path / "sched.jsonl"
        with pytest.raises(HarnessCrash):
            run_traffic_batched(
                built, "bandit", journal_path=path, crash_after=3
            )
        resumed = run_traffic_batched(
            built, "bandit", journal_path=path, resume=True
        )
        assert resumed.batched.resumed
        reference = run_traffic_batched(built, "bandit")
        assert resumed.metrics() == reference.metrics()
