"""Shared fixtures for the workload suite: a small two-class tenant model.

The model mirrors the canonical scenarios' shape (latency-sensitive
interactive class over a throughput batch class) at rates small enough
that every test streams in milliseconds.  Baselines are hard-coded so
the generation-side tests are hermetic — they never depend on the
measured service times of the active scale.
"""

import pytest

from repro.workload import ArrivalSpec, TenantClass, TenantModel

SEED = 7

#: Hermetic per-type serial baselines (seconds) for deadline stamping.
BASELINES = {"nn": 1e-3, "gaussian": 2e-3, "needle": 4e-3, "srad": 8e-3}


def interactive_class(**overrides) -> TenantClass:
    kwargs = dict(
        name="interactive",
        arrival=ArrivalSpec("poisson", rate=500.0),
        app_mix=(("nn", 0.7), ("gaussian", 0.3)),
        slo_factor=4.0,
        priority=2,
        tenants=1_000_000,
        popularity="zipf",
        zipf_s=1.3,
    )
    kwargs.update(overrides)
    return TenantClass(**kwargs)


def batch_class(**overrides) -> TenantClass:
    kwargs = dict(
        name="batch",
        arrival=ArrivalSpec("pareto", rate=200.0, alpha=1.4),
        app_mix=(("needle", 1.0),),
        slo_factor=0.0,
    )
    kwargs.update(overrides)
    return TenantClass(**kwargs)


def two_class_model(seed: int = SEED) -> TenantModel:
    return TenantModel(classes=(interactive_class(), batch_class()), seed=seed)


@pytest.fixture
def model() -> TenantModel:
    return two_class_model()
