"""Property-based tests of the arrival processes (hypothesis).

Pins the chunk-seeded contract the whole workload layer leans on:
determinism per ``(seed, name)``, O(1) cursors that never replay or skip
an arrival, and the statistical shape each process advertises (Poisson
mean rate, Pareto tail index, log-normal mean rate, diurnal period and
swing).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    ArrivalSpec,
    DiurnalProcess,
    LogNormalProcess,
    ParetoProcess,
    PoissonProcess,
    build_process,
)

pytestmark = pytest.mark.workload

KINDS = ("poisson", "pareto", "lognormal", "diurnal")


def spec_for(kind: str, rate: float = 200.0) -> ArrivalSpec:
    if kind == "pareto":
        return ArrivalSpec("pareto", rate=rate, alpha=1.4)
    if kind == "lognormal":
        return ArrivalSpec("lognormal", rate=rate, sigma=1.2)
    if kind == "diurnal":
        return ArrivalSpec("diurnal", rate=rate, amplitude=0.6, period=0.5)
    return ArrivalSpec("poisson", rate=rate)


def take(process, n: int):
    return [next(process) for _ in range(n)]


class TestDeterminism:
    @given(
        kind=st.sampled_from(KINDS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_same_seed_and_name_same_stream(self, kind, seed, n):
        a = spec_for(kind).build(seed, name="tenant")
        b = spec_for(kind).build(seed, name="tenant")
        assert take(a, n) == take(b, n)

    @given(
        kind=st.sampled_from(KINDS),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_name_isolates_streams(self, kind, seed):
        a = spec_for(kind).build(seed, name="alpha")
        b = spec_for(kind).build(seed, name="beta")
        assert take(a, 50) != take(b, 50)

    @given(kind=st.sampled_from(KINDS))
    @settings(max_examples=8, deadline=None)
    def test_times_strictly_ordered(self, kind):
        times = take(spec_for(kind).build(3, name="t"), 400)
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 0.0


class TestCursors:
    @given(
        kind=st.sampled_from(KINDS),
        seed=st.integers(min_value=0, max_value=1000),
        consumed=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_resume_never_replays_or_skips(self, kind, seed, consumed):
        # chunk=8 so cursors routinely sit mid-chunk and across chunks.
        cont = spec_for(kind).build(seed, name="t", chunk=8)
        take(cont, consumed)
        cursor = cont.state()
        expected = take(cont, 40)
        fresh = spec_for(kind).build(seed, name="t", chunk=8)
        fresh.restore(cursor)
        assert take(fresh, 40) == expected

    def test_cursor_is_small_and_jsonable(self):
        import json

        p = spec_for("diurnal").build(1, name="t")
        take(p, 10)
        state = p.state()
        assert set(state) == {"chunk", "offset", "t0"}
        json.dumps(state)

    def test_offset_beyond_chunk_rejected(self):
        p = PoissonProcess(10.0, seed=1, chunk=8)
        with pytest.raises(ValueError, match="cursor"):
            p.restore({"chunk": 0, "offset": 9, "t0": 0.0})


class TestStatistics:
    def test_poisson_mean_rate(self):
        rate = 200.0
        times = take(PoissonProcess(rate, seed=11), 4000)
        observed = len(times) / times[-1]
        assert 0.9 * rate < observed < 1.1 * rate

    def test_lognormal_mean_rate(self):
        rate = 150.0
        times = take(LogNormalProcess(rate, sigma=1.0, seed=12), 4000)
        observed = len(times) / times[-1]
        assert 0.85 * rate < observed < 1.15 * rate

    def test_pareto_tail_index_hill(self):
        alpha = 1.3
        p = ParetoProcess(50.0, alpha=alpha, seed=13)
        times = np.array(take(p, 8000))
        deltas = np.diff(np.concatenate(([0.0], times)))
        # Hill estimator over the top decile of inter-arrivals.
        ordered = np.sort(deltas)[::-1]
        k = 800
        hill = np.mean(np.log(ordered[:k] / ordered[k]))
        assert abs(1.0 / hill - alpha) < 0.3

    def test_pareto_mean_rate(self):
        rate = 50.0
        times = take(ParetoProcess(rate, alpha=1.8, seed=14), 6000)
        observed = len(times) / times[-1]
        assert 0.85 * rate < observed < 1.15 * rate

    def test_diurnal_period_and_swing(self):
        period, amplitude, rate = 0.25, 0.8, 2000.0
        proc = build_process(
            ArrivalSpec("diurnal", rate=rate, amplitude=amplitude, period=period),
            seed=15,
        )
        horizon = 8 * period
        times = []
        for t in proc:
            if t >= horizon:
                break
            times.append(t)
        # Mean rate lands near the spec's rate despite thinning.
        observed = len(times) / horizon
        assert 0.85 * rate < observed < 1.15 * rate
        # Phase histogram: the sin peak (phase 1/4) beats the trough
        # (phase 3/4) by a wide margin when amplitude is 0.8.
        phases = (np.array(times) % period) / period
        counts, _ = np.histogram(phases, bins=8, range=(0.0, 1.0))
        peak, trough = counts[2], counts[6]
        assert peak > 2 * max(trough, 1)

    def test_diurnal_zero_amplitude_is_passthrough(self):
        base = PoissonProcess(100.0, seed=16, name="t")
        mod = DiurnalProcess(
            PoissonProcess(100.0, seed=16, name="t"),
            amplitude=0.0,
            period=1.0,
            seed=16,
            name="t",
        )
        assert take(base, 200) == take(mod, 200)


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            ArrivalSpec("weibull")

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            ArrivalSpec("poisson", rate=0.0)

    def test_pareto_needs_finite_mean(self):
        with pytest.raises(ValueError, match="alpha"):
            ArrivalSpec("pareto", alpha=1.0).build(0)

    def test_lognormal_needs_positive_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            ArrivalSpec("lognormal", sigma=0.0).build(0)

    def test_diurnal_amplitude_bounds(self):
        with pytest.raises(ValueError, match="amplitude"):
            ArrivalSpec("diurnal", amplitude=1.5).build(0)

    def test_base_only_composes_under_diurnal(self):
        with pytest.raises(ValueError, match="base"):
            ArrivalSpec("poisson", base=ArrivalSpec("poisson"))

    def test_diurnal_carrier_composes(self):
        spec = ArrivalSpec(
            "diurnal",
            rate=100.0,
            amplitude=0.5,
            period=1.0,
            base=ArrivalSpec("pareto", alpha=1.6),
        )
        proc = spec.build(1, name="t")
        assert isinstance(proc, DiurnalProcess)
        assert isinstance(proc.base, ParetoProcess)
        take(proc, 20)

    def test_scaled_changes_only_rate(self):
        spec = spec_for("pareto").scaled(42.0)
        assert spec.rate == 42.0
        assert spec.alpha == 1.4

    def test_payload_is_jsonable(self):
        import json

        json.dumps(spec_for("diurnal").payload())
