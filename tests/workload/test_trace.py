"""Replayable traces: round-trips, integrity rejection, crash-resume."""

import pytest

from repro.core.streaming import Arrival
from repro.integrity.record import encode_line
from repro.serving import JournalError, JournalMismatchError
from repro.sim.errors import HarnessCrash
from repro.workload import (
    CursorStore,
    TraceError,
    arrival_payload,
    payload_arrival,
    read_trace,
    record_trace,
)

from .conftest import BASELINES

pytestmark = pytest.mark.workload

FP = "trace-test-fingerprint"
LIMIT = 220
EVERY = 16


def stream(model):
    return model.stream(BASELINES, limit=LIMIT)


def key(a):
    return (a.index, a.time, a.type_name, a.tenant, a.tenant_id, a.deadline,
            a.priority)


class TestPayloads:
    def test_roundtrip_full(self):
        a = Arrival(index=3, time=0.5, type_name="nn", tenant="interactive",
                    tenant_id=41, deadline=0.9, priority=2)
        assert payload_arrival(arrival_payload(a)) == a

    def test_defaults_omitted(self):
        a = Arrival(index=0, time=0.1, type_name="srad")
        payload = arrival_payload(a)
        assert set(payload) == {"i", "t", "a"}
        assert payload_arrival(payload) == a


class TestRoundTrip:
    def test_record_then_replay_identical(self, model, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = record_trace(stream(model), path, FP)
        assert count == LIMIT
        with read_trace(path) as reader:
            assert reader.fingerprint == FP
            replayed = [key(a) for a in reader]
        assert replayed == [key(a) for a in stream(model)]

    def test_recording_is_deterministic(self, model, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        record_trace(stream(model), a, FP)
        record_trace(stream(model), b, FP)
        assert a.read_bytes() == b.read_bytes()


class TestReaderRejection:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        with pytest.raises(TraceError, match="empty"):
            read_trace(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.jsonl"
        line = encode_line({"format": "something-else", "fingerprint": FP}, 0)
        path.write_text(line)
        with pytest.raises(TraceError, match="not a traffic trace"):
            read_trace(path)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_bytes(b"not an envelope\n")
        with pytest.raises(TraceError, match="header"):
            read_trace(path)

    def test_corrupt_record_raises_at_line(self, model, tmp_path):
        path = tmp_path / "trace.jsonl"
        record_trace(stream(model), path, FP)
        data = bytearray(path.read_bytes())
        # Flip a byte well past the header.
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        reader = read_trace(path)
        with pytest.raises(TraceError, match="corrupt trace record"):
            for _ in reader:
                pass


class TestCrashResume:
    def reference(self, model, base):
        ref_trace = base / "ref-trace.jsonl"
        ref_cursor = base / "ref-cursor.jsonl"
        record_trace(
            stream(model), ref_trace, FP, cursor_path=ref_cursor,
            cursor_every=EVERY,
        )
        return ref_trace.read_bytes(), ref_cursor.read_bytes()

    def test_fast_path_resume_is_byte_identical(self, model, tmp_path):
        ref_trace, ref_cursor = self.reference(model, tmp_path)
        trace, cursor = tmp_path / "t.jsonl", tmp_path / "c.jsonl"
        with pytest.raises(HarnessCrash):
            record_trace(
                stream(model), trace, FP, cursor_path=cursor,
                cursor_every=EVERY, crash_after_cursors=3,
            )
        # Simulate a torn trace tail past the last durable cursor.
        with open(trace, "ab") as fh:
            fh.write(b"I1 deadbeef torn")
        count = record_trace(
            stream(model), trace, FP, cursor_path=cursor,
            cursor_every=EVERY, resume=True,
        )
        assert count == LIMIT
        assert trace.read_bytes() == ref_trace
        assert cursor.read_bytes() == ref_cursor

    def test_regeneration_resume_is_byte_identical(self, model, tmp_path):
        """Trace destroyed, cursors survive: full replay-verified regen."""
        ref_trace, ref_cursor = self.reference(model, tmp_path)
        trace, cursor = tmp_path / "t.jsonl", tmp_path / "c.jsonl"
        with pytest.raises(HarnessCrash):
            record_trace(
                stream(model), trace, FP, cursor_path=cursor,
                cursor_every=EVERY, crash_after_cursors=2,
            )
        trace.unlink()
        count = record_trace(
            stream(model), trace, FP, cursor_path=cursor,
            cursor_every=EVERY, resume=True,
        )
        assert count == LIMIT
        assert trace.read_bytes() == ref_trace
        assert cursor.read_bytes() == ref_cursor

    def test_resume_after_completion_is_byte_identical(self, model, tmp_path):
        ref_trace, ref_cursor = self.reference(model, tmp_path)
        trace, cursor = tmp_path / "t.jsonl", tmp_path / "c.jsonl"
        record_trace(
            stream(model), trace, FP, cursor_path=cursor, cursor_every=EVERY
        )
        count = record_trace(
            stream(model), trace, FP, cursor_path=cursor,
            cursor_every=EVERY, resume=True,
        )
        assert count == LIMIT
        assert trace.read_bytes() == ref_trace
        assert cursor.read_bytes() == ref_cursor

    def test_resume_with_wrong_fingerprint_refused(self, model, tmp_path):
        trace, cursor = tmp_path / "t.jsonl", tmp_path / "c.jsonl"
        with pytest.raises(HarnessCrash):
            record_trace(
                stream(model), trace, FP, cursor_path=cursor,
                cursor_every=EVERY, crash_after_cursors=1,
            )
        with pytest.raises(JournalMismatchError, match="different recording"):
            record_trace(
                stream(model), trace, "other-fingerprint", cursor_path=cursor,
                cursor_every=EVERY, resume=True,
            )

    def test_resume_without_cursor_store_refused(self, model, tmp_path):
        with pytest.raises(JournalError, match="no cursor store"):
            record_trace(
                stream(model), tmp_path / "t.jsonl", FP,
                cursor_path=tmp_path / "missing.jsonl", resume=True,
            )

    def test_resume_requires_cursor_path(self, model, tmp_path):
        with pytest.raises(ValueError, match="cursor_path"):
            record_trace(stream(model), tmp_path / "t.jsonl", FP, resume=True)

    def test_cursor_every_validated(self, model, tmp_path):
        with pytest.raises(ValueError, match="cursor_every"):
            record_trace(
                stream(model), tmp_path / "t.jsonl", FP, cursor_every=0
            )


class TestCursorStore:
    def test_non_cursor_file_refused(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(encode_line({"format": "something-else"}, 0))
        store = CursorStore(path)
        with pytest.raises(JournalError, match="not a traffic cursor store"):
            store.begin(FP, resume=True)

    def test_replay_divergence_detected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = CursorStore(path)
        store.begin(FP)
        store.record({"i": 16, "t": 0.5, "off": 100, "state": {}})
        store.close()
        resumed = CursorStore(path)
        assert len(resumed.begin(FP, resume=True)) == 1
        with pytest.raises(JournalMismatchError, match="diverged"):
            resumed.record({"i": 16, "t": 0.6, "off": 100, "state": {}})
        resumed.close()
