"""Tests for the gaussian application: numerics + workload profile."""

import numpy as np
import pytest

from repro.apps.gaussian import (
    GaussianApp,
    back_substitute,
    forward_eliminate,
    make_test_system,
    solve,
)
from repro.framework.kernel import KernelPhase, TransferPhase
from repro.gpu.commands import CopyDirection


class TestNumerics:
    """The Fan1/Fan2 arithmetic must solve linear systems correctly."""

    @pytest.mark.parametrize("n", [2, 3, 8, 33, 64])
    def test_matches_numpy_solve(self, n):
        a, b = make_test_system(n, np.random.default_rng(n))
        x = solve(a, b)
        np.testing.assert_allclose(x, np.linalg.solve(a, b), rtol=1e-8)

    def test_elimination_produces_upper_triangular(self):
        a, b = make_test_system(16)
        _, a_tri, _ = forward_eliminate(a, b)
        lower = np.tril(a_tri, k=-1)
        np.testing.assert_allclose(lower, np.zeros_like(lower), atol=1e-9)

    def test_multipliers_reproduce_elimination(self):
        """m is exactly the lower factor: (I + L) @ a_tri == a (LU)."""
        a, b = make_test_system(12)
        m, a_tri, _ = forward_eliminate(a, b)
        reconstructed = (np.eye(12) + m) @ a_tri
        np.testing.assert_allclose(reconstructed, a, rtol=1e-8, atol=1e-8)

    def test_back_substitute_identity(self):
        x = back_substitute(np.eye(4), np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(x, [1, 2, 3, 4])

    def test_zero_pivot_detected(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ZeroDivisionError):
            forward_eliminate(a, np.ones(2))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            forward_eliminate(np.ones((2, 3)), np.ones(2))
        with pytest.raises(ValueError):
            forward_eliminate(np.ones((2, 2)), np.ones(3))

    def test_test_system_is_diagonally_dominant(self):
        a, _ = make_test_system(32)
        off_diag = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) > off_diag)


class TestProfile:
    """Launch geometry must match Table III."""

    def test_paper_geometry(self):
        profile = GaussianApp.build_profile(n=512)
        kernel_phase = next(p for p in profile.phases if isinstance(p, KernelPhase))
        fan1 = [k for k in kernel_phase.descriptors if k.name == "Fan1"]
        fan2 = [k for k in kernel_phase.descriptors if k.name == "Fan2"]
        # Table III: 511 calls each.
        assert len(fan1) == 511
        assert len(fan2) == 511
        # Fan1: grid (1,1,1), block (512,1,1) -> 1 TB x 512 TPB.
        assert fan1[0].grid.as_tuple() == (1, 1, 1)
        assert fan1[0].block.as_tuple() == (512, 1, 1)
        # Fan2: grid (32,32,1), block (16,16,1) -> 1024 TB x 256 TPB.
        assert fan2[0].grid.as_tuple() == (32, 32, 1)
        assert fan2[0].block.as_tuple() == (16, 16, 1)
        assert fan2[0].num_blocks == 1024
        assert fan2[0].threads_per_block == 256

    def test_launch_order_alternates(self):
        profile = GaussianApp.build_profile(n=64)
        kernel_phase = next(p for p in profile.phases if isinstance(p, KernelPhase))
        names = [k.name for k in kernel_phase.descriptors]
        assert names[:4] == ["Fan1", "Fan2", "Fan1", "Fan2"]
        assert len(names) == 2 * 63

    def test_transfer_sizes(self):
        profile = GaussianApp.build_profile(n=512)
        matrix = 512 * 512 * 4
        # HtoD: a + b + m.
        assert profile.htod_bytes == 2 * matrix + 512 * 4
        # DtoH: a + b.
        assert profile.dtoh_bytes == matrix + 512 * 4
        assert profile.htod_bytes > 8 * 1024  # paper: all apps exceed 8 KB

    def test_phase_structure(self):
        profile = GaussianApp.build_profile(n=64)
        kinds = [type(p).__name__ for p in profile.phases]
        assert kinds == ["TransferPhase", "KernelPhase", "TransferPhase"]
        assert profile.phases[0].direction is CopyDirection.HTOD
        assert profile.phases[-1].direction is CopyDirection.DTOH

    def test_size_validation(self):
        with pytest.raises(ValueError):
            GaussianApp.build_profile(n=1)

    def test_create_sets_identity(self):
        app = GaussianApp.create(instance=3, n=64)
        assert app.app_id == "gaussian#3"
        assert app.profile.name == "gaussian"
