"""Tests for the uniform ``run_reference`` functional API.

Every registered application must be executable as a *real program* with a
verifiable output summary — the repository's proof that the ported
benchmarks are algorithms, not timing stubs.
"""

import pytest

from repro.apps.registry import APP_CLASSES, get_app_class


class TestUniformApi:
    def test_every_app_exposes_run_reference(self):
        for name, cls in APP_CLASSES.items():
            assert callable(getattr(cls, "run_reference", None)), name

    def test_deterministic_per_seed(self):
        for cls in APP_CLASSES.values():
            assert cls.run_reference(seed=3) == cls.run_reference(seed=3)


class TestGaussian:
    def test_residual_is_tiny(self):
        summary = get_app_class("gaussian").run_reference(n=96, seed=1)
        assert summary["residual"] < 1e-10
        assert summary["n"] == 96


class TestNN:
    def test_distances_sorted_and_bounded(self):
        summary = get_app_class("nn").run_reference(records=2048, k=8, seed=2)
        assert summary["k"] == 8
        assert 0 <= summary["nearest_distance"] <= summary["max_returned_distance"]
        # Max possible distance on the (63, 127) grid.
        assert summary["max_returned_distance"] < (63**2 + 127**2) ** 0.5


class TestNeedle:
    def test_alignment_consumes_both_sequences(self):
        summary = get_app_class("needle").run_reference(n=32, seed=4)
        # Alignment length = n + gaps contributed by either side.
        assert summary["alignment_length"] >= 32
        assert summary["gaps"] == 2 * (summary["alignment_length"] - 32)


class TestSrad:
    def test_filter_smooths(self):
        summary = get_app_class("srad").run_reference(n=48, iterations=15, seed=5)
        assert summary["roughness_after"] < summary["roughness_before"]
        assert summary["smoothing_pct"] > 20.0
