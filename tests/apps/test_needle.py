"""Tests for the needle (Needleman-Wunsch) application."""

import numpy as np
import pytest

from repro.apps.needle import (
    NeedleApp,
    make_sequences,
    nw_align,
    nw_matrix,
    nw_score,
)
from repro.framework.kernel import KernelPhase


def naive_nw(seq1, seq2, blosum, penalty):
    """Straightforward double-loop DP as the oracle."""
    rows, cols = len(seq1) + 1, len(seq2) + 1
    m = np.zeros((rows, cols), dtype=np.int64)
    m[0, :] = -penalty * np.arange(cols)
    m[:, 0] = -penalty * np.arange(rows)
    for i in range(1, rows):
        for j in range(1, cols):
            m[i, j] = max(
                m[i - 1, j - 1] + blosum[seq1[i - 1], seq2[j - 1]],
                m[i, j - 1] - penalty,
                m[i - 1, j] - penalty,
            )
    return m


class TestNumerics:
    @pytest.mark.parametrize("n,seed", [(4, 0), (7, 1), (16, 2), (33, 3)])
    def test_matches_naive_dp(self, n, seed):
        rng = np.random.default_rng(seed)
        seq1, seq2, blosum = make_sequences(n, rng)
        np.testing.assert_array_equal(
            nw_matrix(seq1, seq2, blosum, penalty=10),
            naive_nw(seq1, seq2, blosum, 10),
        )

    def test_rectangular_sequences(self):
        rng = np.random.default_rng(4)
        seq1 = rng.integers(1, 23, size=5)
        seq2 = rng.integers(1, 23, size=12)
        _, _, blosum = make_sequences(4, rng)
        np.testing.assert_array_equal(
            nw_matrix(seq1, seq2, blosum, 5), naive_nw(seq1, seq2, blosum, 5)
        )

    def test_identical_sequences_score_highest(self):
        rng = np.random.default_rng(5)
        seq, _, blosum = make_sequences(20, rng)
        self_score = nw_score(seq, seq, blosum)
        other = (seq + 1) % 22 + 1
        assert self_score >= nw_score(seq, other, blosum)

    def test_alignment_traceback_consistent(self):
        """Traceback length and gap count must reconcile with the DP."""
        rng = np.random.default_rng(6)
        seq1, seq2, blosum = make_sequences(12, rng)
        alignment = nw_align(seq1, seq2, blosum, penalty=10)
        used1 = [a for a, _ in alignment if a is not None]
        used2 = [b for _, b in alignment if b is not None]
        assert used1 == list(range(len(seq1)))  # every symbol consumed once
        assert used2 == list(range(len(seq2)))
        # Recompute the score along the traceback.
        score = 0
        for a, b in alignment:
            if a is not None and b is not None:
                score += blosum[seq1[a], seq2[b]]
            else:
                score -= 10
        assert score == nw_score(seq1, seq2, blosum, penalty=10)

    def test_negative_penalty_rejected(self):
        seq1, seq2, blosum = make_sequences(4)
        with pytest.raises(ValueError):
            nw_matrix(seq1, seq2, blosum, penalty=-1)

    def test_gap_only_alignment(self):
        """Empty vs non-empty sequence: pure gap penalties."""
        _, _, blosum = make_sequences(4)
        m = nw_matrix(np.array([], dtype=int), np.array([1, 2, 3]), blosum, 10)
        np.testing.assert_array_equal(m[0], [0, -10, -20, -30])


class TestProfile:
    def test_paper_geometry(self):
        """Table III: shared_1 grids (1,1,1)...(16,1,1), shared_2
        (15,1,1)...(1,1,1), block (32,1,1)."""
        profile = NeedleApp.build_profile(n=512)
        phase = next(p for p in profile.phases if isinstance(p, KernelPhase))
        k1 = [k for k in phase.descriptors if k.name == "needle_cuda_shared_1"]
        k2 = [k for k in phase.descriptors if k.name == "needle_cuda_shared_2"]
        assert len(k1) == 16 and len(k2) == 15
        assert [k.grid.x for k in k1] == list(range(1, 17))
        assert [k.grid.x for k in k2] == list(range(15, 0, -1))
        assert all(k.block.as_tuple() == (32, 1, 1) for k in k1 + k2)
        assert max(k.num_blocks for k in k1) == 16
        assert all(k.threads_per_block == 32 for k in k1 + k2)

    def test_underutilization(self):
        """needle never exceeds 2% of the K20's thread capacity."""
        from repro.gpu.specs import tesla_k20

        profile = NeedleApp.build_profile(n=512)
        phase = next(p for p in profile.phases if isinstance(p, KernelPhase))
        peak_threads = max(k.total_threads for k in phase.descriptors)
        assert peak_threads / tesla_k20().max_resident_threads < 0.02

    def test_transfer_sizes(self):
        profile = NeedleApp.build_profile(n=512)
        matrix = 513 * 513 * 4
        assert profile.htod_bytes == 2 * matrix
        assert profile.dtoh_bytes == matrix

    def test_validation(self):
        with pytest.raises(ValueError):
            NeedleApp.build_profile(n=100)  # not a multiple of 32
        with pytest.raises(ValueError):
            NeedleApp.build_profile(n=0)
