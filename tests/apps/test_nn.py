"""Tests for the nn application: numerics + workload profile."""

import numpy as np
import pytest

from repro.apps.nn import NNApp, euclid_distances, find_nearest, make_records
from repro.framework.kernel import KernelPhase


class TestNumerics:
    def test_euclid_matches_brute_force(self):
        rng = np.random.default_rng(1)
        records = make_records(500, rng)
        d = euclid_distances(records, 30.0, 60.0)
        expected = np.sqrt(((records - np.array([30.0, 60.0], dtype=np.float32)) ** 2).sum(axis=1))
        np.testing.assert_allclose(d, expected, rtol=1e-6)

    def test_find_nearest_matches_argsort(self):
        rng = np.random.default_rng(2)
        records = make_records(1000, rng)
        idx, dist = find_nearest(records, 10.0, 20.0, k=10)
        d_all = euclid_distances(records, 10.0, 20.0)
        expected = np.argsort(d_all, kind="stable")[:10]
        # Same distance set (ordering of exact ties may vary by index rule).
        np.testing.assert_allclose(np.sort(dist), np.sort(d_all[expected]), rtol=1e-6)
        assert np.all(np.diff(dist) >= 0)  # sorted ascending

    def test_find_nearest_matches_scipy(self):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        rng = np.random.default_rng(3)
        records = make_records(2000, rng).astype(np.float64)
        tree = scipy_spatial.cKDTree(records)
        dist_scipy, idx_scipy = tree.query([25.0, 50.0], k=5)
        idx, dist = find_nearest(records, 25.0, 50.0, k=5)
        np.testing.assert_allclose(np.sort(dist), np.sort(dist_scipy), rtol=1e-5)

    def test_k_clamped_to_record_count(self):
        records = make_records(3)
        idx, dist = find_nearest(records, 0, 0, k=10)
        assert len(idx) == 3

    def test_exact_match_distance_zero(self):
        records = make_records(10)
        idx, dist = find_nearest(records, records[4, 0], records[4, 1], k=1)
        assert idx[0] == 4
        assert dist[0] == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            find_nearest(make_records(5), 0, 0, k=0)
        with pytest.raises(ValueError):
            euclid_distances(np.ones((3, 3)), 0, 0)

    def test_record_ranges(self):
        records = make_records(10000)
        assert records.dtype == np.float32
        assert records[:, 0].min() >= 0 and records[:, 0].max() <= 63
        assert records[:, 1].min() >= 0 and records[:, 1].max() <= 127


class TestProfile:
    def test_paper_geometry(self):
        """Table III: euclid, 42764 records, 1 call, grid (168,1,1),
        block (256,1,1) -> 168 TB x 256 TPB."""
        profile = NNApp.build_profile(records=42764)
        phase = next(p for p in profile.phases if isinstance(p, KernelPhase))
        (euclid,) = phase.descriptors
        assert euclid.name == "euclid"
        assert euclid.grid.as_tuple() == (168, 1, 1)
        assert euclid.block.as_tuple() == (256, 1, 1)
        assert euclid.num_blocks == 168
        assert profile.kernel_launches == 1

    def test_transfer_sizes(self):
        profile = NNApp.build_profile(records=42764)
        assert profile.htod_bytes == 42764 * 8   # float2 per record
        assert profile.dtoh_bytes == 42764 * 4   # one float distance back

    def test_transfer_dominates_compute(self):
        """nn is the transfer-bound application of the mix."""
        from repro.gpu.occupancy import device_wide_blocks
        from repro.gpu.specs import tesla_k20

        spec = tesla_k20()
        profile = NNApp.build_profile(records=42764)
        phase = next(p for p in profile.phases if isinstance(p, KernelPhase))
        (euclid,) = phase.descriptors
        compute = euclid.serial_duration(device_wide_blocks(euclid, spec))
        transfer = spec.dma_htod.transfer_time(profile.htod_bytes)
        assert transfer > 2 * compute

    def test_validation(self):
        with pytest.raises(ValueError):
            NNApp.build_profile(records=0)
