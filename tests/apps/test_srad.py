"""Tests for the srad application: numerics + workload profile."""

import numpy as np
import pytest

from repro.apps.srad import SradApp, make_image, srad, srad_step
from repro.framework.kernel import (
    HostComputePhase,
    KernelPhase,
    SyncPhase,
    TransferPhase,
)
from repro.gpu.commands import CopyDirection


def naive_srad_step(j, q0sqr, lam):
    """Per-pixel loop oracle mirroring the CUDA kernels."""
    rows, cols = j.shape
    out = j.copy()
    dn = np.zeros_like(j)
    ds = np.zeros_like(j)
    dw = np.zeros_like(j)
    de = np.zeros_like(j)
    c = np.zeros_like(j)
    for i in range(rows):
        for k in range(cols):
            n_i = max(i - 1, 0)
            s_i = min(i + 1, rows - 1)
            w_k = max(k - 1, 0)
            e_k = min(k + 1, cols - 1)
            dn[i, k] = j[n_i, k] - j[i, k]
            ds[i, k] = j[s_i, k] - j[i, k]
            dw[i, k] = j[i, w_k] - j[i, k]
            de[i, k] = j[i, e_k] - j[i, k]
            g2 = (dn[i, k] ** 2 + ds[i, k] ** 2 + dw[i, k] ** 2 + de[i, k] ** 2) / j[i, k] ** 2
            l = (dn[i, k] + ds[i, k] + dw[i, k] + de[i, k]) / j[i, k]
            num = 0.5 * g2 - 0.0625 * l * l
            den = (1 + 0.25 * l) ** 2
            qsqr = num / den
            cv = 1.0 / (1.0 + (qsqr - q0sqr) / (q0sqr * (1 + q0sqr)))
            c[i, k] = min(max(cv, 0.0), 1.0)
    for i in range(rows):
        for k in range(cols):
            s_i = min(i + 1, rows - 1)
            e_k = min(k + 1, cols - 1)
            d = (
                c[i, k] * dn[i, k]
                + c[s_i, k] * ds[i, k]
                + c[i, k] * dw[i, k]
                + c[i, e_k] * de[i, k]
            )
            out[i, k] = j[i, k] + 0.25 * lam * d
    return out


class TestNumerics:
    def test_matches_naive_loop(self):
        rng = np.random.default_rng(0)
        j = make_image((8, 9), rng)
        expected = naive_srad_step(j, q0sqr=0.3, lam=0.5)
        np.testing.assert_allclose(srad_step(j, 0.3, 0.5), expected, rtol=1e-12)

    def test_smooths_speckle(self):
        """After diffusion, local variation of a noisy flat image drops."""
        rng = np.random.default_rng(1)
        noisy = np.clip(rng.normal(1.0, 0.2, size=(64, 64)), 0.05, None)
        filtered = srad(noisy, lam=0.5, iterations=20)
        def roughness(img):
            return float(np.abs(np.diff(img, axis=0)).mean()
                         + np.abs(np.diff(img, axis=1)).mean())
        assert roughness(filtered) < 0.5 * roughness(noisy)

    def test_homogeneous_image_is_fixed_point(self):
        flat = np.full((16, 16), 3.0)
        np.testing.assert_allclose(srad(flat, iterations=5), flat)

    def test_output_stays_finite_and_positive_scale(self):
        img = make_image((32, 32))
        out = srad(img, lam=0.25, iterations=10)
        assert np.all(np.isfinite(out))
        assert out.mean() == pytest.approx(img.mean(), rel=0.15)

    def test_zero_iterations_identity(self):
        img = make_image((8, 8))
        np.testing.assert_array_equal(srad(img, iterations=0), img)

    def test_nonpositive_image_rejected(self):
        with pytest.raises(ValueError):
            srad_step(np.zeros((4, 4)), 0.5, 0.5)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            srad(make_image((8, 8)), iterations=-1)

    def test_roi_argument(self):
        img = make_image((32, 32))
        out = srad(img, iterations=3, roi=(slice(0, 8), slice(0, 8)))
        assert np.all(np.isfinite(out))


class TestProfile:
    def test_paper_geometry(self):
        """Table III: srad_cuda_1/2, 10 calls, grid (32,32,1), block
        (16,16,1) -> 1024 TB x 256 TPB."""
        profile = SradApp.build_profile(n=512, iterations=10)
        phases = [p for p in profile.phases if isinstance(p, KernelPhase)]
        assert len(phases) == 10  # one per iteration
        for phase in phases:
            k1, k2 = phase.descriptors
            assert (k1.name, k2.name) == ("srad_cuda_1", "srad_cuda_2")
            assert k1.grid.as_tuple() == (32, 32, 1)
            assert k1.block.as_tuple() == (16, 16, 1)
            assert k1.num_blocks == 1024
            assert k1.threads_per_block == 256

    def test_in_loop_transfer_pattern(self):
        """srad has the Section III-C shape: DtoH + sync inside the loop."""
        profile = SradApp.build_profile(n=64, iterations=3)
        kinds = [type(p).__name__ for p in profile.phases]
        # HtoD, then 3 x (kernels, DtoH, sync, host), then final DtoH.
        assert kinds[0] == "TransferPhase"
        assert kinds[1:5] == [
            "KernelPhase",
            "TransferPhase",
            "SyncPhase",
            "HostComputePhase",
        ]
        assert kinds[-1] == "TransferPhase"
        in_loop_dtoh = [
            p
            for p in profile.phases
            if isinstance(p, TransferPhase)
            and p.direction is CopyDirection.DTOH
        ]
        assert len(in_loop_dtoh) == 4  # 3 per-iteration sums + final image

    def test_validation(self):
        with pytest.raises(ValueError):
            SradApp.build_profile(n=8)
        with pytest.raises(ValueError):
            SradApp.build_profile(n=64, iterations=0)
