"""Tests for the application registry (paper Table I)."""

import pytest

from repro.apps.base import RodiniaApp
from repro.apps.registry import (
    TABLE_I,
    all_pairs,
    get_app,
    get_app_class,
    list_apps,
    register_app,
)


class TestTableI:
    def test_all_four_rodinia_apps_ported(self):
        assert list_apps() == ["gaussian", "needle", "nn", "srad"]

    def test_table1_contents(self):
        benchmarks = {b for b, _ in TABLE_I}
        assert "Gaussian Elimination" in benchmarks
        assert "k-Nearest Neighbors" in benchmarks
        assert "Needleman-Wunsch" in benchmarks
        assert "Speckle reducing anisotropic diffusion" in benchmarks

    def test_six_heterogeneous_pairs(self):
        """C(4, 2) = 6 pairs — Figure 4 has subplots (a) through (f)."""
        pairs = all_pairs()
        assert len(pairs) == 6
        assert all(x < y for x, y in pairs)
        assert len(set(pairs)) == 6


class TestLookup:
    def test_get_app_class(self):
        assert issubclass(get_app_class("gaussian"), RodiniaApp)

    def test_get_app_builds_instance(self):
        app = get_app("nn", instance=2, records=512)
        assert app.app_id == "nn#2"
        assert app.profile.data_dim == "512"

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="available"):
            get_app_class("hotspot")


class TestRegistration:
    def test_register_custom_app(self):
        class CustomApp(RodiniaApp):
            @classmethod
            def build_profile(cls, **kwargs):
                from repro.apps.nn import NNApp

                return NNApp.build_profile(records=64)

        register_app("custom", CustomApp)
        try:
            assert "custom" in list_apps()
            assert get_app("custom").profile is not None
        finally:
            from repro.apps.registry import APP_CLASSES

            APP_CLASSES.pop("custom", None)

    def test_register_rejects_non_app(self):
        with pytest.raises(TypeError):
            register_app("bad", dict)


class TestWorkloadSummary:
    def test_summary_has_table3_columns(self):
        summary = get_app_class("srad").workload_summary(n=64, iterations=2)
        assert summary["name"] == "srad"
        assert summary["data_dim"] == "64 x 64"
        for kernel_info in summary["kernels"].values():
            assert {"calls", "grid_dims", "block_dim", "threads_per_block"} <= set(
                kernel_info
            )
