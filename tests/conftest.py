"""Shared fixtures for the test suite.

Tests default to the ``tiny`` problem-size profile so the whole suite runs
in seconds; experiment *shape* tests that need contention effects opt into
``small`` explicitly.  Set ``REPRO_SCALE=paper`` to run everything at the
paper's Table III sizes (slow).
"""

from __future__ import annotations

import os

import pytest

# Default the scale before any repro import resolves it.
os.environ.setdefault("REPRO_SCALE", "tiny")

from repro.gpu.specs import tesla_k20  # noqa: E402
from repro.sim.engine import Environment  # noqa: E402
from repro.sim.trace import TraceRecorder  # noqa: E402


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def trace() -> TraceRecorder:
    """An enabled trace recorder."""
    return TraceRecorder()


@pytest.fixture
def k20():
    """The paper's device spec."""
    return tesla_k20()


@pytest.fixture
def device(env, trace, k20):
    """A traced K20 device in a fresh environment."""
    from repro.gpu.device import GPUDevice

    return GPUDevice(env, spec=k20, trace=trace)
