"""Unit tests for the power model (:mod:`repro.gpu.power`)."""

import pytest

from repro.gpu.power import PowerModel, PowerState
from repro.gpu.specs import PowerSpec
from repro.sim.engine import Environment


def idle_state():
    return PowerState(occupancy=0.0, dma_busy=0, any_active=False)


def busy_state(occ=1.0, dma=0):
    return PowerState(occupancy=occ, dma_busy=dma, any_active=True)


class TestFormula:
    spec = PowerSpec()

    def model(self):
        return PowerModel(Environment(), self.spec)

    def test_idle_power(self):
        assert self.model().evaluate(idle_state()) == pytest.approx(self.spec.idle)

    def test_full_occupancy_power(self):
        expected = self.spec.idle + self.spec.context_active + self.spec.smx_dynamic_max
        assert self.model().evaluate(busy_state(1.0)) == pytest.approx(expected)

    def test_tdp_clamp(self):
        spec = PowerSpec(smx_dynamic_max=1000.0, tdp=225.0)
        model = PowerModel(Environment(), spec)
        assert model.evaluate(busy_state(1.0)) == 225.0

    def test_dma_contribution(self):
        with_dma = self.model().evaluate(busy_state(0.0, dma=2))
        without = self.model().evaluate(busy_state(0.0, dma=0))
        assert with_dma - without == pytest.approx(2 * self.spec.dma_active)

    def test_sublinear_concurrency_scaling(self):
        """Doubling occupancy must raise dynamic power by less than 2x —
        the paper's central energy observation."""
        model = self.model()
        base = model.evaluate(busy_state(0.0))
        p1 = model.evaluate(busy_state(0.4)) - base
        p2 = model.evaluate(busy_state(0.8)) - base
        assert p2 < 2 * p1
        assert p2 > p1  # but still monotone

    def test_invalid_states(self):
        with pytest.raises(ValueError):
            PowerState(occupancy=1.5, dma_busy=0, any_active=True)
        with pytest.raises(ValueError):
            PowerState(occupancy=0.5, dma_busy=-1, any_active=True)


class TestIntegration:
    def test_energy_of_constant_power(self):
        env = Environment()
        model = PowerModel(env, PowerSpec())
        env.timeout(10.0)
        env.run()
        assert model.energy() == pytest.approx(PowerSpec().idle * 10.0)

    def test_piecewise_integration(self):
        env = Environment()
        spec = PowerSpec()
        model = PowerModel(env, spec)

        def driver():
            yield env.timeout(5.0)       # 5 s idle
            model.update(busy_state(1.0))
            yield env.timeout(2.0)       # 2 s at full tilt
            model.update(idle_state())
            yield env.timeout(3.0)       # 3 s idle again

        env.process(driver())
        env.run()
        full = spec.idle + spec.context_active + spec.smx_dynamic_max
        expected = spec.idle * 5 + full * 2 + spec.idle * 3
        assert model.energy() == pytest.approx(expected)

    def test_energy_until_midpoint(self):
        env = Environment()
        spec = PowerSpec()
        model = PowerModel(env, spec)

        def driver():
            yield env.timeout(4.0)
            model.update(busy_state(1.0))
            yield env.timeout(4.0)

        env.process(driver())
        env.run()
        # Energy in the first half only.
        assert model.energy(until=4.0) == pytest.approx(spec.idle * 4.0)
        # Energy window inside the busy half.
        full = spec.idle + spec.context_active + spec.smx_dynamic_max
        assert model.energy(until=6.0) - model.energy(until=4.0) == pytest.approx(
            full * 2.0
        )

    def test_average_power(self):
        env = Environment()
        spec = PowerSpec()
        model = PowerModel(env, spec)

        def driver():
            model.update(busy_state(1.0))
            yield env.timeout(2.0)
            model.update(idle_state())
            yield env.timeout(2.0)

        env.process(driver())
        env.run()
        full = spec.idle + spec.context_active + spec.smx_dynamic_max
        assert model.average_power(0.0, 4.0) == pytest.approx((full + spec.idle) / 2)

    def test_peak_power_tracked(self):
        env = Environment()
        model = PowerModel(env, PowerSpec())
        model.update(busy_state(0.5))
        model.update(idle_state())
        assert model.peak_power > PowerSpec().idle

    def test_no_op_update_adds_no_segment(self):
        env = Environment()
        model = PowerModel(env, PowerSpec())
        before = len(model.segments())
        model.update(idle_state())  # same power as initial
        assert len(model.segments()) == before
