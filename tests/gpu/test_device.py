"""Integration tests for :class:`repro.gpu.device.GPUDevice`."""

import pytest

from repro.gpu.commands import CopyDirection
from repro.gpu.device import GPUDevice
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.gpu.specs import fermi_c2050, tesla_k20
from repro.sim.engine import Environment
from repro.sim.trace import TraceRecorder


def kd(blocks=8, tpb=256, duration=10e-6, name="k"):
    return KernelDescriptor(
        name=name,
        grid=Dim3(blocks, 1, 1),
        block=Dim3(tpb, 1, 1),
        registers_per_thread=0,
        block_duration=duration,
    )


class TestStreamOrdering:
    def test_in_stream_fifo(self, env, device):
        """memcpy -> kernel -> memcpy execute strictly in order."""
        s = device.create_stream()
        c1 = s.enqueue_memcpy(CopyDirection.HTOD, 10**6, buffer="in")
        k = s.enqueue_kernel(kd())
        c2 = s.enqueue_memcpy(CopyDirection.DTOH, 10**6, buffer="out")
        env.run()
        assert c1.done.value <= k.started.value
        assert k.done.value <= c2.started.value

    def test_independent_streams_overlap_kernels(self, env, device, trace):
        """Two streams' kernels overlap (Hyper-Q works)."""
        s1, s2 = device.create_stream(), device.create_stream()
        s1.enqueue_kernel(kd(blocks=8, duration=100e-6, name="a"))
        s2.enqueue_kernel(kd(blocks=8, duration=100e-6, name="b"))
        env.run()
        assert trace.max_concurrency("kernel") == 2

    def test_marker_completes_in_order(self, env, device):
        s = device.create_stream()
        c = s.enqueue_memcpy(CopyDirection.HTOD, 10**6)
        m = s.enqueue_marker("after-copy")
        env.run()
        assert m.done.value == pytest.approx(c.done.value)

    def test_synchronize_event(self, env, device):
        s = device.create_stream()
        s.enqueue_memcpy(CopyDirection.HTOD, 10**6)
        s.enqueue_kernel(kd())
        done_at = []

        def waiter():
            yield s.synchronize_event()
            done_at.append(env.now)

        env.process(waiter())
        env.run()
        assert done_at and done_at[0] == env.now

    def test_synchronize_empty_stream_immediate(self, env, device):
        s = device.create_stream()
        evt = s.synchronize_event()
        assert evt.triggered

    def test_device_synchronize(self, env, device):
        s1, s2 = device.create_stream(), device.create_stream()
        k1 = s1.enqueue_kernel(kd(duration=10e-6))
        k2 = s2.enqueue_kernel(kd(duration=30e-6))
        waited = []

        def waiter():
            yield device.synchronize_event()
            waited.append(env.now)

        env.process(waiter())
        env.run()
        assert waited[0] >= max(k1.done.value, k2.done.value)


class TestFermiFalseSerialization:
    """The ablation the paper motivates Hyper-Q with."""

    def test_single_queue_serializes_independent_streams(self):
        env = Environment()
        trace = TraceRecorder()
        device = GPUDevice(env, spec=fermi_c2050(), trace=trace)
        for _ in range(3):
            device.create_stream().enqueue_kernel(kd(blocks=4, duration=50e-6))
        env.run()
        assert trace.max_concurrency("kernel") == 1

    def test_kepler_removes_false_serialization(self):
        env = Environment()
        trace = TraceRecorder()
        device = GPUDevice(env, spec=tesla_k20(), trace=trace)
        for _ in range(3):
            device.create_stream().enqueue_kernel(kd(blocks=4, duration=50e-6))
        env.run()
        assert trace.max_concurrency("kernel") == 3

    def test_queue_aliasing_with_many_streams(self):
        """More streams than hardware queues -> some pairs serialize."""
        env = Environment()
        trace = TraceRecorder()
        device = GPUDevice(env, spec=tesla_k20().with_hardware_queues(2), trace=trace)
        for _ in range(4):
            device.create_stream().enqueue_kernel(kd(blocks=1, duration=50e-6))
        env.run()
        # 4 streams on 2 queues: at most 2 run concurrently.
        assert trace.max_concurrency("kernel") == 2


class TestDmaIntegration:
    def test_copies_route_to_direction_engines(self, env, device):
        s = device.create_stream()
        up = s.enqueue_memcpy(CopyDirection.HTOD, 10**6)
        down = s.enqueue_memcpy(CopyDirection.DTOH, 10**6)
        env.run()
        assert device.dma[CopyDirection.HTOD].commands_served == 1
        assert device.dma[CopyDirection.DTOH].commands_served == 1

    def test_opposite_directions_overlap(self, env, device, trace):
        """HtoD and DtoH engines run in parallel (two DMA engines)."""
        s1, s2 = device.create_stream(), device.create_stream()
        up = s1.enqueue_memcpy(CopyDirection.HTOD, 10**7)
        down = s2.enqueue_memcpy(CopyDirection.DTOH, 10**7)
        env.run()
        assert up.started.value == down.started.value == pytest.approx(0.0)

    def test_same_direction_serializes(self, env, device, trace):
        s1, s2 = device.create_stream(), device.create_stream()
        s1.enqueue_memcpy(CopyDirection.HTOD, 10**6)
        s2.enqueue_memcpy(CopyDirection.HTOD, 10**6)
        env.run()
        assert trace.max_concurrency("memcpy_htod") == 1


class TestPowerAccounting:
    def test_energy_accumulates_with_activity(self, env, device):
        s = device.create_stream()
        s.enqueue_kernel(kd(blocks=104, duration=100e-6))
        env.run()
        active_energy = device.power.energy()
        idle_energy = device.spec.power.idle * env.now
        assert active_energy > idle_energy

    def test_power_returns_to_idle(self, env, device):
        s = device.create_stream()
        s.enqueue_kernel(kd())
        env.run()
        assert device.power.current_power == pytest.approx(device.spec.power.idle)


class TestStreamManagement:
    def test_stream_ids_unique(self, env, device):
        ids = {device.create_stream().sid for _ in range(10)}
        assert len(ids) == 10

    def test_destroy_stream(self, env, device):
        s = device.create_stream()
        device.destroy_stream(s)
        assert s.sid not in device.streams
