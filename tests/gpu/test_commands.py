"""Unit tests for stream-level commands (:mod:`repro.gpu.commands`)."""

import pytest

from repro.gpu.commands import (
    Command,
    CopyDirection,
    KernelLaunchCommand,
    MarkerCommand,
    MemcpyCommand,
)
from repro.gpu.kernels import Dim3, KernelDescriptor


class TestCommandIdentity:
    def test_ids_monotone(self, env):
        a = MarkerCommand(env)
        b = MarkerCommand(env)
        assert b.cid > a.cid

    def test_events_created_pending(self, env):
        cmd = MarkerCommand(env)
        assert not cmd.ready.triggered
        assert not cmd.started.triggered
        assert not cmd.done.triggered

    def test_repr_contains_identity(self, env):
        cmd = MemcpyCommand(env, CopyDirection.HTOD, 64, app_id="nn#0")
        cmd.stream_id = 3
        text = repr(cmd)
        assert "nn#0" in text and "stream=3" in text


class TestMemcpy:
    def test_label_prefers_buffer_name(self, env):
        named = MemcpyCommand(env, CopyDirection.HTOD, 64, buffer="matrix")
        unnamed = MemcpyCommand(env, CopyDirection.DTOH, 64)
        assert "matrix" in named.label
        assert "64" in unnamed.label
        assert "DtoH" in unnamed.label

    def test_direction_str(self):
        assert str(CopyDirection.HTOD) == "HtoD"
        assert str(CopyDirection.DTOH) == "DtoH"

    def test_negative_size_rejected(self, env):
        with pytest.raises(ValueError):
            MemcpyCommand(env, CopyDirection.HTOD, -5)


class TestKernelLaunch:
    def test_label_is_kernel_name(self, env):
        kd = KernelDescriptor("Fan2", Dim3(4), Dim3(64), block_duration=1e-6)
        cmd = KernelLaunchCommand(env, kd)
        assert cmd.label == "Fan2"
        assert cmd.waves == 0
        assert cmd.first_block_time is None


class TestMarker:
    def test_label(self, env):
        assert MarkerCommand(env, name="sync-point").label == "marker(sync-point)"
