"""Unit tests for :mod:`repro.gpu.specs`."""

import pytest

from repro.gpu.specs import (
    DMASpec,
    DeviceSpec,
    SMXSpec,
    fermi_c2050,
    get_preset,
    tesla_k20,
)


class TestK20:
    """The paper's testbed numbers must match the K20 datasheet."""

    def test_paper_block_ceiling(self):
        # The paper: "the theoretical maximum number of thread blocks of 208".
        assert tesla_k20().max_resident_blocks == 208

    def test_smx_count_and_cores(self):
        spec = tesla_k20()
        assert spec.num_smx == 13
        assert spec.total_cores == 2496  # "thousands of CUDA cores"

    def test_thread_capacity(self):
        assert tesla_k20().max_resident_threads == 13 * 2048

    def test_hyperq_width(self):
        assert tesla_k20().hardware_queues == 32

    def test_one_copy_engine_per_direction(self):
        assert tesla_k20().copy_engines_per_direction == 1

    def test_compute_capability(self):
        assert tesla_k20().compute_capability == "3.5"


class TestFermi:
    def test_single_hardware_queue(self):
        assert fermi_c2050().hardware_queues == 1

    def test_cc20_limits(self):
        spec = fermi_c2050()
        assert spec.smx.max_blocks == 8
        assert spec.smx.max_threads == 1536


class TestDMASpec:
    def test_transfer_time_affine(self):
        dma = DMASpec(bandwidth=1e9, latency=10e-6)
        assert dma.transfer_time(0) == pytest.approx(10e-6)
        assert dma.transfer_time(10**9) == pytest.approx(1.0 + 10e-6)

    def test_linear_scaling_beyond_8kb(self):
        """The paper cites memory transfer time scaling linearly at 8 KB."""
        dma = DMASpec()
        t8k = dma.transfer_time(8 * 1024)
        t16k = dma.transfer_time(16 * 1024)
        t32k = dma.transfer_time(32 * 1024)
        assert (t32k - t16k) == pytest.approx(2 * (t16k - t8k), rel=1e-9)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DMASpec().transfer_time(-1)


class TestValidation:
    def test_bad_smx_spec(self):
        with pytest.raises(ValueError):
            SMXSpec(max_blocks=0)

    def test_bad_device_spec(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="x",
                compute_capability="0",
                num_smx=0,
                smx=SMXSpec(),
                hardware_queues=1,
                copy_engines_per_direction=1,
                global_memory=1,
            )

    def test_with_hardware_queues(self):
        narrowed = tesla_k20().with_hardware_queues(4)
        assert narrowed.hardware_queues == 4
        assert narrowed.num_smx == 13  # everything else preserved


class TestPresets:
    def test_lookup(self):
        assert get_preset("k20").name == "Tesla K20"
        assert get_preset("fermi").hardware_queues == 1

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_preset("volta")
