"""Unit tests for :mod:`repro.gpu.smx` (resource accounting + placement)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.gpu.smx import SMXArray, SMXState
from repro.gpu.specs import SMXSpec


def kd(tpb=256, regs=16, smem=0, blocks=1024, name="k"):
    return KernelDescriptor(
        name=name,
        grid=Dim3(blocks, 1, 1),
        block=Dim3(tpb, 1, 1),
        registers_per_thread=regs,
        shared_mem_per_block=smem,
        block_duration=1e-6,
    )


class TestSMXState:
    def test_initial_state_full_capacity(self):
        s = SMXState(0, SMXSpec())
        assert s.free_blocks == 16
        assert s.free_threads == 2048
        assert not s.busy
        assert s.resident_threads == 0

    def test_take_and_give_back_roundtrip(self):
        s = SMXState(0, SMXSpec())
        k = kd(tpb=256, regs=16)
        n = s.fits(k)
        s.take(k, n)
        assert s.fits(k) == 0
        assert s.busy
        s.give_back(k, n)
        assert s.fits(k) == n
        assert not s.busy

    def test_overtake_rejected(self):
        s = SMXState(0, SMXSpec())
        k = kd(tpb=1024)  # 2048 threads/SMX -> at most 2 resident
        with pytest.raises(ValueError):
            s.take(k, 3)

    def test_double_free_detected(self):
        s = SMXState(0, SMXSpec())
        k = kd(tpb=256)
        s.take(k, 1)
        s.give_back(k, 1)
        with pytest.raises(ValueError):
            s.give_back(k, 1)


class TestSMXArray:
    def test_place_respects_request_size(self):
        arr = SMXArray(13, SMXSpec())
        placements = arr.place(kd(tpb=256, regs=0), 5)
        assert sum(p.nblocks for p in placements) == 5
        assert arr.resident_blocks == 5

    def test_place_caps_at_capacity(self):
        arr = SMXArray(13, SMXSpec())
        # 256 threads/block -> 8/SMX -> 104 device-wide.
        placements = arr.place(kd(tpb=256, regs=0), 10_000)
        assert sum(p.nblocks for p in placements) == 104
        assert arr.place(kd(tpb=256, regs=0), 1) == []

    def test_release_restores_capacity(self):
        arr = SMXArray(4, SMXSpec())
        k = kd(tpb=256, regs=0)
        placements = arr.place(k, 32)
        arr.release(k, placements)
        assert arr.resident_blocks == 0
        assert arr.resident_threads == 0
        assert sum(p.nblocks for p in arr.place(k, 32)) == 32

    def test_leftover_packing_mixed_kernels(self):
        """A second kernel fits into space the first left unused."""
        arr = SMXArray(13, SMXSpec())
        big = kd(tpb=1024, regs=0, name="big")     # 2 blocks/SMX
        placements = arr.place(big, 26)            # fills every thread slot? no:
        assert sum(p.nblocks for p in placements) == 26
        # 26 * 1024 threads = device thread capacity; block slots remain but
        # no threads -> a thread-hungry kernel cannot enter...
        assert arr.place(kd(tpb=32, regs=0, name="tiny"), 1) == []
        arr.release(big, placements[:1])
        # ...until capacity frees.
        assert arr.place(kd(tpb=32, regs=0, name="tiny"), 4) != []

    def test_counters_match_recount(self):
        arr = SMXArray(13, SMXSpec())
        k1 = kd(tpb=256, regs=0, name="a")
        k2 = kd(tpb=64, regs=0, name="b")
        p1 = arr.place(k1, 40)
        p2 = arr.place(k2, 30)
        recount_blocks = sum(
            arr.spec.max_blocks - s.free_blocks for s in arr.smxs
        )
        recount_threads = sum(s.resident_threads for s in arr.smxs)
        assert arr.resident_blocks == recount_blocks
        assert arr.resident_threads == recount_threads
        assert arr.free_block_slots == 13 * 16 - recount_blocks

    def test_occupancy_snapshot(self):
        arr = SMXArray(2, SMXSpec())
        k = kd(tpb=1024, regs=0)
        arr.place(k, 2)
        busy, blocks, occ = arr.utilization_snapshot()
        assert blocks == 2
        assert occ == pytest.approx(2 * 1024 / (2 * 2048))

    def test_zero_request(self):
        arr = SMXArray(2, SMXSpec())
        assert arr.place(kd(), 0) == []


@given(
    requests=st.lists(
        st.tuples(
            st.sampled_from([32, 64, 128, 256, 512, 1024]),  # tpb
            st.integers(min_value=1, max_value=300),          # blocks wanted
        ),
        min_size=1,
        max_size=20,
    )
)
def test_placement_never_exceeds_limits(requests):
    """Property: whatever the placement mix, per-SMX limits always hold."""
    arr = SMXArray(13, SMXSpec())
    live = []
    for i, (tpb, want) in enumerate(requests):
        k = kd(tpb=tpb, regs=16, name=f"k{i}")
        placements = arr.place(k, want)
        placed = sum(p.nblocks for p in placements)
        assert placed <= want
        if placements:
            live.append((k, placements))
        for s in arr.smxs:
            assert 0 <= s.free_blocks <= s.spec.max_blocks
            assert 0 <= s.free_threads <= s.spec.max_threads
            assert 0 <= s.free_registers <= s.spec.registers
            assert 0 <= s.free_shared_mem <= s.spec.shared_memory
        # Occasionally release the oldest cohort to exercise both paths.
        if len(live) > 3:
            k_old, p_old = live.pop(0)
            arr.release(k_old, p_old)
    # Drain everything; the array must return to pristine state.
    for k_old, p_old in live:
        arr.release(k_old, p_old)
    assert arr.resident_blocks == 0
    assert arr.resident_threads == 0
    for s in arr.smxs:
        assert s.free_blocks == s.spec.max_blocks
        assert s.free_threads == s.spec.max_threads
