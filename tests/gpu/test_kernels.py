"""Unit tests for :mod:`repro.gpu.kernels`."""

import pytest

from repro.gpu.kernels import Dim3, KernelDescriptor


class TestDim3:
    def test_count(self):
        assert Dim3(32, 32, 1).count == 1024
        assert Dim3().count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Dim3(0, 1, 1)

    def test_as_tuple_and_str(self):
        d = Dim3(16, 16)
        assert d.as_tuple() == (16, 16, 1)
        assert str(d) == "(16, 16, 1)"


class TestKernelDescriptor:
    def make(self, **kw):
        defaults = dict(
            name="Fan2",
            grid=Dim3(32, 32),
            block=Dim3(16, 16),
            registers_per_thread=15,
            block_duration=4e-6,
        )
        defaults.update(kw)
        return KernelDescriptor(**defaults)

    def test_table3_fan2_geometry(self):
        """Table III row: Fan2 grid (32,32,1) block (16,16,1) -> 1024 TB, 256 TPB."""
        kd = self.make()
        assert kd.num_blocks == 1024
        assert kd.threads_per_block == 256
        assert kd.total_threads == 1024 * 256

    def test_registers_per_block(self):
        assert self.make().registers_per_block == 15 * 256

    def test_cuda_block_limit(self):
        with pytest.raises(ValueError):
            self.make(block=Dim3(1025, 1, 1))

    def test_positive_duration_required(self):
        with pytest.raises(ValueError):
            self.make(block_duration=0)

    def test_negative_footprint_rejected(self):
        with pytest.raises(ValueError):
            self.make(registers_per_thread=-1)

    def test_serial_duration_waves(self):
        kd = self.make(block_duration=1e-6)
        # 1024 blocks at 104 per wave -> 10 waves.
        assert kd.serial_duration(104) == pytest.approx(10e-6)
        assert kd.serial_duration(1024) == pytest.approx(1e-6)
        with pytest.raises(ValueError):
            kd.serial_duration(0)

    def test_scaled(self):
        kd = self.make(block_duration=2e-6)
        assert kd.scaled(3.0).block_duration == pytest.approx(6e-6)
        assert kd.scaled(3.0).name == kd.name
        with pytest.raises(ValueError):
            kd.scaled(0)

    def test_str_rendering(self):
        text = str(self.make())
        assert "Fan2" in text
        assert "1024 TB" in text
        assert "256 TPB" in text
