"""Unit tests for the DMA copy engines (:mod:`repro.gpu.dma`)."""

import pytest

from repro.gpu.commands import CopyDirection, MemcpyCommand
from repro.gpu.dma import CopyEngine
from repro.gpu.specs import DMASpec
from repro.sim.engine import Environment
from repro.sim.trace import TraceRecorder


def make_engine(policy="interleave", trace=None, bandwidth=1e9, latency=0.0):
    env = Environment()
    engine = CopyEngine(
        env,
        CopyDirection.HTOD,
        DMASpec(bandwidth=bandwidth, latency=latency),
        policy=policy,
        trace=trace,
    )
    return env, engine


def memcpy(env, nbytes, stream_id, app_id=None, buffer=""):
    cmd = MemcpyCommand(env, CopyDirection.HTOD, nbytes, buffer=buffer, app_id=app_id)
    cmd.stream_id = stream_id
    return cmd


class TestValidation:
    def test_unknown_policy(self):
        env = Environment()
        with pytest.raises(ValueError):
            CopyEngine(env, CopyDirection.HTOD, DMASpec(), policy="magic")

    def test_wrong_direction_rejected(self):
        env, engine = make_engine()
        cmd = MemcpyCommand(env, CopyDirection.DTOH, 100)
        with pytest.raises(ValueError):
            engine.submit(cmd)

    def test_zero_byte_memcpy_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            MemcpyCommand(env, CopyDirection.HTOD, 0)


class TestService:
    def test_single_transfer_timing(self):
        env, engine = make_engine(bandwidth=1e9, latency=5e-6)
        cmd = memcpy(env, 10**6, stream_id=0)
        engine.submit(cmd)
        env.run()
        assert cmd.done.value == pytest.approx(1e-3 + 5e-6)
        assert engine.commands_served == 1
        assert engine.bytes_moved == 10**6

    def test_engine_serializes_copies(self):
        """One engine: copies never overlap, whatever the stream."""
        trace = TraceRecorder()
        env, engine = make_engine(trace=trace)
        for sid in range(4):
            engine.submit(memcpy(env, 10**6, stream_id=sid))
        env.run()
        assert trace.max_concurrency("memcpy_htod") == 1

    def test_engine_goes_idle_and_wakes(self):
        env, engine = make_engine()
        first = memcpy(env, 1000, stream_id=0)
        engine.submit(first)
        env.run()
        late = memcpy(env, 1000, stream_id=0)

        def submit_later():
            yield env.timeout(1.0)
            engine.submit(late)

        env.process(submit_later())
        env.run()
        assert late.done.value > 1.0


class TestInterleavePolicy:
    def test_round_robin_across_streams(self):
        """Pending copies from different streams alternate — Figure 1."""
        env, engine = make_engine(policy="interleave")
        a = [memcpy(env, 1000, 0, app_id="A", buffer=f"a{i}") for i in range(3)]
        b = [memcpy(env, 1000, 1, app_id="B", buffer=f"b{i}") for i in range(3)]
        for cmd in a + b:  # all of A enqueued before all of B
            engine.submit(cmd)
        env.run()
        order = sorted(a + b, key=lambda c: c.started.value)
        assert [c.app_id for c in order] == ["A", "B", "A", "B", "A", "B"]

    def test_single_stream_runs_consecutively(self):
        """With one app pending (the mutex scenario) no interleaving occurs."""
        env, engine = make_engine(policy="interleave")
        cmds = [memcpy(env, 1000, 0, app_id="A") for _ in range(4)]
        for cmd in cmds:
            engine.submit(cmd)
        env.run()
        ends = [c.done.value for c in cmds]
        starts = [c.started.value for c in cmds]
        # Back-to-back service: each starts when the previous ends.
        assert starts[1:] == pytest.approx(ends[:-1])

    def test_stream_queue_cleanup(self):
        env, engine = make_engine(policy="interleave")
        engine.submit(memcpy(env, 1000, 5))
        env.run()
        assert engine.pending_count == 0
        assert not engine._per_stream  # ring pruned


class TestFifoPolicy:
    def test_arrival_order_service(self):
        env, engine = make_engine(policy="fifo")
        a = [memcpy(env, 1000, 0, app_id="A") for _ in range(3)]
        b = [memcpy(env, 1000, 1, app_id="B") for _ in range(3)]
        for cmd in a + b:
            engine.submit(cmd)
        env.run()
        order = sorted(a + b, key=lambda c: c.started.value)
        assert [c.app_id for c in order] == ["A", "A", "A", "B", "B", "B"]


class TestTraceOutput:
    def test_spans_on_stream_and_engine_tracks(self):
        trace = TraceRecorder()
        env, engine = make_engine(trace=trace)
        engine.submit(memcpy(env, 2048, 3, app_id="X", buffer="buf"))
        env.run()
        stream_spans = trace.filter(track="stream-3", category="memcpy_htod")
        engine_spans = trace.filter(track="dma-htod")
        assert len(stream_spans) == 1
        assert stream_spans[0].name == "buf"
        assert stream_spans[0].meta["bytes"] == 2048
        assert len(engine_spans) == 1
