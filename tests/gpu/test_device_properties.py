"""Property-based tests of the whole device model (hypothesis).

Random command mixes across random stream counts must always satisfy the
hardware invariants: everything completes, per-stream FIFO semantics hold,
copies never overlap within a direction, kernels never exceed the device's
resident-thread capacity, and the device returns to idle power.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.commands import CopyDirection
from repro.gpu.device import GPUDevice
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.sim.engine import Environment
from repro.sim.trace import TraceRecorder

# One command recipe: (kind, size parameter).
commands = st.one_of(
    st.tuples(st.just("htod"), st.integers(min_value=1, max_value=1 << 20)),
    st.tuples(st.just("dtoh"), st.integers(min_value=1, max_value=1 << 20)),
    st.tuples(st.just("kernel"), st.integers(min_value=1, max_value=300)),
)


@st.composite
def workloads(draw):
    num_streams = draw(st.integers(min_value=1, max_value=6))
    per_stream = draw(
        st.lists(
            st.lists(commands, min_size=0, max_size=6),
            min_size=num_streams,
            max_size=num_streams,
        )
    )
    tpb = draw(st.sampled_from([32, 64, 128, 256, 512, 1024]))
    return per_stream, tpb


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_device_invariants(workload):
    per_stream, tpb = workload
    env = Environment()
    trace = TraceRecorder()
    device = GPUDevice(env, trace=trace)
    issued = []

    for stream_cmds in per_stream:
        stream = device.create_stream()
        for i, (kind, size) in enumerate(stream_cmds):
            if kind == "htod":
                cmd = stream.enqueue_memcpy(CopyDirection.HTOD, size)
            elif kind == "dtoh":
                cmd = stream.enqueue_memcpy(CopyDirection.DTOH, size)
            else:
                kd = KernelDescriptor(
                    f"k{i}", Dim3(size), Dim3(tpb),
                    registers_per_thread=16, block_duration=2e-6,
                )
                cmd = stream.enqueue_kernel(kd)
            issued.append((stream.sid, cmd))
    env.run()

    # 1. Everything completes, in order per stream.
    last_done = {}
    for sid, cmd in issued:
        assert cmd.done.triggered, cmd
        start, end = cmd.started.value, cmd.done.value
        assert start <= end
        if sid in last_done:
            # In-stream FIFO: a command never starts before its predecessor
            # finished.
            assert start >= last_done[sid] - 1e-15
        last_done[sid] = end

    # 2. Single engine per copy direction.
    assert trace.max_concurrency("memcpy_htod") <= 1
    assert trace.max_concurrency("memcpy_dtoh") <= 1

    # 3. SMX resources fully returned; occupancy bounded during the run.
    assert device.smx.resident_blocks == 0
    assert device.smx.resident_threads == 0

    # 4. Device quiesces: power back to idle, nothing in flight.
    assert device._inflight == 0
    assert device.power.current_power == device.spec.power.idle

    # 5. Energy is consistent: at least idle * elapsed, at most TDP * elapsed.
    if env.now > 0:
        energy = device.power.energy()
        assert energy >= device.spec.power.idle * env.now - 1e-9
        assert energy <= device.spec.power.tdp * env.now + 1e-9
