"""Unit and property tests for the device memory allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.memory import ALIGNMENT, Allocation, GpuOutOfMemory, MemoryAllocator


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemoryAllocator(0)

    def test_alloc_free_roundtrip(self):
        alloc = MemoryAllocator(1 << 20)
        a = alloc.alloc(1000)
        assert a.size == 1024  # aligned to 256
        assert a.requested == 1000
        assert alloc.in_use == 1024
        alloc.free(a)
        assert alloc.in_use == 0
        assert alloc.available == 1 << 20

    def test_alignment(self):
        alloc = MemoryAllocator(1 << 20)
        for req in (1, 255, 256, 257, 4096):
            a = alloc.alloc(req)
            assert a.offset % ALIGNMENT == 0
            assert a.size % ALIGNMENT == 0
            assert a.size >= req

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryAllocator(1024).alloc(0)

    def test_oom(self):
        alloc = MemoryAllocator(1024)
        alloc.alloc(1024)
        with pytest.raises(GpuOutOfMemory):
            alloc.alloc(1)
        assert alloc.failed_allocs == 1

    def test_double_free_detected(self):
        alloc = MemoryAllocator(1 << 20)
        a = alloc.alloc(256)
        alloc.free(a)
        with pytest.raises(ValueError):
            alloc.free(a)

    def test_peak_tracking(self):
        alloc = MemoryAllocator(1 << 20)
        a = alloc.alloc(1024)
        b = alloc.alloc(2048)
        alloc.free(a)
        assert alloc.peak_in_use == 1024 + 2048


class TestCoalescing:
    def test_free_neighbours_merge(self):
        alloc = MemoryAllocator(4096)
        a = alloc.alloc(1024)
        b = alloc.alloc(1024)
        c = alloc.alloc(1024)
        alloc.free(a)
        alloc.free(c)
        assert alloc.largest_free_block == 2048  # tail + c merged
        alloc.free(b)
        assert alloc.largest_free_block == 4096
        assert alloc.fragmentation() == 0.0
        alloc.check_invariants()

    def test_fragmentation_metric(self):
        alloc = MemoryAllocator(4096)
        blocks = [alloc.alloc(1024) for _ in range(4)]
        alloc.free(blocks[0])
        alloc.free(blocks[2])
        # 2 KiB free in two 1 KiB holes -> fragmentation 0.5.
        assert alloc.fragmentation() == pytest.approx(0.5)

    def test_reuse_of_freed_hole(self):
        alloc = MemoryAllocator(2048)
        a = alloc.alloc(1024)
        b = alloc.alloc(1024)
        alloc.free(a)
        c = alloc.alloc(512)
        assert c.offset == 0  # first fit reuses the hole
        alloc.check_invariants()


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=64 * 1024)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=100)),
        ),
        max_size=80,
    )
)
def test_allocator_invariants_under_random_ops(ops):
    """Property: arbitrary alloc/free sequences preserve all invariants."""
    alloc = MemoryAllocator(1 << 20)
    live = []
    for op, arg in ops:
        if op == "alloc":
            try:
                live.append(alloc.alloc(arg))
            except GpuOutOfMemory:
                pass
        elif live:
            live_idx = arg % len(live)
            alloc.free(live.pop(live_idx))
        alloc.check_invariants()
        assert alloc.in_use == sum(a.size for a in live)
    for a in live:
        alloc.free(a)
    alloc.check_invariants()
    assert alloc.in_use == 0
    assert alloc.largest_free_block == 1 << 20
