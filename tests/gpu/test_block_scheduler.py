"""Unit tests for the LEFTOVER grid engine (:mod:`repro.gpu.block_scheduler`)."""

import pytest

from repro.gpu.block_scheduler import GridEngine
from repro.gpu.commands import KernelLaunchCommand
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.gpu.smx import SMXArray
from repro.gpu.specs import SMXSpec
from repro.sim.engine import Environment
from repro.sim.trace import TraceRecorder


def kd(blocks, tpb=256, duration=10e-6, name="k", regs=0, smem=0):
    return KernelDescriptor(
        name=name,
        grid=Dim3(blocks, 1, 1),
        block=Dim3(tpb, 1, 1),
        registers_per_thread=regs,
        shared_mem_per_block=smem,
        block_duration=duration,
    )


def make_engine(num_smx=13, trace=None, admission=None, quantum=0.0):
    env = Environment()
    arr = SMXArray(num_smx, SMXSpec())
    engine = GridEngine(
        env, arr, trace=trace, admission=admission, retire_quantum=quantum
    )
    return env, arr, engine


def launch(env, engine, descriptor, stream_id=0):
    cmd = KernelLaunchCommand(env, descriptor)
    cmd.stream_id = stream_id
    engine.submit(cmd)
    return cmd


class TestSingleGrid:
    def test_small_grid_single_wave(self):
        env, arr, engine = make_engine()
        cmd = launch(env, engine, kd(8, duration=5e-6))
        env.run()
        assert cmd.done.triggered
        assert cmd.waves == 1
        assert cmd.done.value == pytest.approx(5e-6)

    def test_fan2_needs_ten_waves(self):
        """1024 blocks of 256 threads on a K20 -> 104 per wave -> 10 waves."""
        env, arr, engine = make_engine()
        cmd = launch(env, engine, kd(1024, tpb=256, duration=4e-6, name="Fan2"))
        env.run()
        assert cmd.waves == 10
        assert cmd.done.value == pytest.approx(10 * 4e-6)

    def test_started_event_on_first_block(self):
        env, arr, engine = make_engine()
        cmd = launch(env, engine, kd(300, duration=1e-6))
        env.run()
        assert cmd.started.value == pytest.approx(0.0)
        assert cmd.first_block_time == pytest.approx(0.0)
        assert cmd.last_block_time == cmd.done.value

    def test_resources_returned_after_completion(self):
        env, arr, engine = make_engine()
        launch(env, engine, kd(500))
        env.run()
        assert arr.resident_blocks == 0
        assert engine.active_grids == 0
        assert engine.grids_completed == 1


class TestLeftoverPolicy:
    def test_later_grid_fills_leftover_space(self):
        """A tiny kernel overlaps a device-filling one (the LEFTOVER claim)."""
        env, arr, engine = make_engine()
        big = launch(env, engine, kd(26, tpb=768, duration=100e-6, name="big"))
        tiny = launch(env, engine, kd(2, tpb=32, duration=10e-6, name="tiny"))
        env.run()
        # 768 threads/block -> 2 blocks/SMX (thread bound), leaving 14 free
        # block slots and 512 threads per SMX: tiny runs inside big's window.
        assert tiny.done.value < big.done.value
        assert tiny.started.value == pytest.approx(0.0)

    def test_oversubscription_overlaps_figure5(self):
        """Five grids totalling 1203 blocks (> 208) all overlap."""
        env, arr, engine = make_engine(trace=TraceRecorder())
        mix = [
            kd(89, tpb=32, duration=60e-6, name="n1"),
            kd(88, tpb=32, duration=60e-6, name="n2"),
            kd(1, tpb=512, duration=50e-6, name="f1a"),
            kd(1, tpb=512, duration=50e-6, name="f1b"),
            kd(1024, tpb=256, duration=8e-6, name="Fan2"),
        ]
        assert sum(k.num_blocks for k in mix) == 1203
        cmds = [launch(env, engine, k, stream_id=i) for i, k in enumerate(mix)]
        env.run()
        assert engine.trace.max_concurrency("kernel") == 5

    def test_in_order_start_for_equal_kernels(self):
        """Grids of the same shape start in arrival order."""
        env, arr, engine = make_engine()
        cmds = [
            launch(env, engine, kd(104, tpb=1024, duration=10e-6, name=f"g{i}"))
            for i in range(3)
        ]
        env.run()
        starts = [c.started.value for c in cmds]
        assert starts == sorted(starts)
        assert starts[0] < starts[1] < starts[2]

    def test_throughput_conservation(self):
        """Total block-time equals aggregate service demand (no lost work)."""
        env, arr, engine = make_engine()
        grids = [launch(env, engine, kd(104, tpb=1024, duration=7e-6, name=f"g{i}"))
                 for i in range(4)]
        env.run()
        # 1024 tpb -> 2 blocks/SMX -> 26 resident; 104 blocks = 4 clean waves
        # per grid, and grids drain strictly in order (equal footprints).
        assert all(g.waves == 4 for g in grids)
        assert env.now == pytest.approx(4 * 4 * 7e-6)


class TestAdmissionControl:
    def test_symbiosis_serializes_oversubscribed(self):
        """With sum-fits admission, oversubscribing grids do not overlap."""
        from repro.core.baselines import symbiosis_admission
        from repro.gpu.specs import tesla_k20

        admission = symbiosis_admission(tesla_k20())
        env, arr, engine = make_engine(trace=TraceRecorder(), admission=admission)
        a = launch(env, engine, kd(150, tpb=64, duration=10e-6, name="a"))
        b = launch(env, engine, kd(150, tpb=64, duration=10e-6, name="b"))
        env.run()
        # 150 + 150 = 300 > 208 -> b must wait for a.
        assert b.started.value >= a.done.value
        assert engine.trace.max_concurrency("kernel") == 1

    def test_symbiosis_allows_fitting_pair(self):
        from repro.core.baselines import symbiosis_admission
        from repro.gpu.specs import tesla_k20

        admission = symbiosis_admission(tesla_k20())
        env, arr, engine = make_engine(trace=TraceRecorder(), admission=admission)
        a = launch(env, engine, kd(100, tpb=64, duration=10e-6, name="a"))
        b = launch(env, engine, kd(100, tpb=64, duration=10e-6, name="b"))
        env.run()
        assert engine.trace.max_concurrency("kernel") == 2


class TestRetireQuantum:
    def test_quantum_rounds_up(self):
        env, arr, engine = make_engine(quantum=2e-6)
        cmd = launch(env, engine, kd(1, duration=3e-6))
        env.run()
        assert cmd.done.value == pytest.approx(4e-6)

    def test_zero_quantum_exact(self):
        env, arr, engine = make_engine(quantum=0.0)
        cmd = launch(env, engine, kd(1, duration=3e-6))
        env.run()
        assert cmd.done.value == pytest.approx(3e-6)

    def test_negative_quantum_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            GridEngine(env, SMXArray(1, SMXSpec()), retire_quantum=-1.0)


class TestTrace:
    def test_kernel_span_recorded(self):
        trace = TraceRecorder()
        env, arr, engine = make_engine(trace=trace)
        launch(env, engine, kd(10, duration=5e-6, name="mykernel"), stream_id=7)
        env.run()
        spans = trace.filter(category="kernel")
        assert len(spans) == 1
        assert spans[0].name == "mykernel"
        assert spans[0].track == "stream-7"
        assert spans[0].meta["blocks"] == 10
