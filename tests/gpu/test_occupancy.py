"""Unit tests for :mod:`repro.gpu.occupancy` against CUDA occupancy rules."""

import pytest

from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.gpu.occupancy import blocks_per_smx, device_wide_blocks, occupancy
from repro.gpu.specs import SMXSpec, tesla_k20


def kd(name="k", grid=(1, 1, 1), block=(256, 1, 1), regs=16, smem=0):
    return KernelDescriptor(
        name=name,
        grid=Dim3(*grid),
        block=Dim3(*block),
        registers_per_thread=regs,
        shared_mem_per_block=smem,
        block_duration=1e-6,
    )


class TestLimits:
    smx = SMXSpec()  # CC 3.5: 16 blocks, 2048 threads, 64K regs, 48K smem

    def test_thread_limited(self):
        # 256 threads/block -> 2048/256 = 8 < 16 block limit.
        result = occupancy(kd(block=(256, 1, 1), regs=0), self.smx)
        assert result.blocks_per_smx == 8
        assert result.limiter == "threads"

    def test_block_limited(self):
        # 64 threads/block -> thread limit 32, clamped by 16 blocks/SMX.
        result = occupancy(kd(block=(64, 1, 1), regs=0), self.smx)
        assert result.blocks_per_smx == 16
        assert result.limiter == "blocks"

    def test_register_limited(self):
        # 128 regs/thread * 512 threads = 65536 regs -> exactly 1 block.
        result = occupancy(kd(block=(512, 1, 1), regs=128), self.smx)
        assert result.blocks_per_smx == 1
        assert result.limiter == "registers"

    def test_shared_memory_limited(self):
        # 20 KB smem/block -> floor(48/20) = 2 blocks.
        result = occupancy(kd(block=(64, 1, 1), regs=0, smem=20 * 1024), self.smx)
        assert result.blocks_per_smx == 2
        assert result.limiter == "shared_mem"

    def test_impossible_kernel_gets_zero(self):
        result = occupancy(kd(smem=64 * 1024), self.smx)
        assert result.blocks_per_smx == 0

    def test_thread_occupancy_fraction(self):
        result = occupancy(kd(block=(256, 1, 1), regs=0), self.smx)
        assert result.thread_occupancy == pytest.approx(1.0)  # 8 * 256 = 2048
        result = occupancy(kd(block=(32, 1, 1), regs=0), self.smx)
        assert result.thread_occupancy == pytest.approx(16 * 32 / 2048)

    def test_str(self):
        text = str(occupancy(kd(), self.smx))
        assert "blocks/SMX" in text


class TestPaperKernels:
    """Occupancy of the Table III kernels drives the paper's arguments."""

    spec = tesla_k20()

    def test_fan2_fills_device_over_waves(self):
        fan2 = kd("Fan2", grid=(32, 32, 1), block=(16, 16, 1), regs=15)
        per_smx = blocks_per_smx(fan2, self.spec.smx)
        assert per_smx == 8  # 2048 / 256 threads
        assert device_wide_blocks(fan2, self.spec) == 104
        # 1024 blocks / 104 resident -> multiple execution rounds, as the
        # paper notes for Fan2.
        assert fan2.num_blocks > device_wide_blocks(fan2, self.spec)

    def test_needle_underutilizes(self):
        needle = kd("needle", grid=(16, 1, 1), block=(32, 1, 1), regs=24)
        # All 16 blocks fit on a fraction of one SMX's thread capacity.
        assert blocks_per_smx(needle, self.spec.smx) == 16
        total_threads = 16 * 32
        assert total_threads / self.spec.max_resident_threads < 0.02

    def test_euclid_needs_two_waves(self):
        euclid = kd("euclid", grid=(168, 1, 1), block=(256, 1, 1), regs=12)
        resident = device_wide_blocks(euclid, self.spec)
        assert resident == 104
        assert 1 < euclid.num_blocks / resident <= 2
