"""Property-based SMX occupancy invariants (hypothesis).

Whatever random kernel mix is thrown at the device — including
DEVICE_THROTTLE windows stretching block runtimes mid-flight — every
SMX's free-resource counters must stay inside ``[0, spec ceiling]`` at
every observable instant, the array-level resident counters must agree
with the per-SMX ones, and everything must drain back to a fully free
array at quiesce.  A violation means blocks were double-placed or
double-released somewhere in the scheduler.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import GPUDevice
from repro.gpu.kernels import Dim3, KernelDescriptor
from repro.resilience.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.sim.engine import Environment

pytestmark = pytest.mark.fleet

# One kernel recipe: (blocks, threads-per-block, registers, shared mem).
kernels = st.tuples(
    st.integers(min_value=1, max_value=400),
    st.sampled_from([32, 64, 128, 256, 512, 1024]),
    st.sampled_from([8, 16, 32, 64]),
    st.sampled_from([0, 1 << 10, 8 << 10, 24 << 10]),
)

throttles = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2e-4),   # window start
        st.floats(min_value=1e-6, max_value=2e-4),  # window length
        st.floats(min_value=1.5, max_value=16.0),   # slowdown factor
    ),
    min_size=0,
    max_size=3,
)


@st.composite
def workloads(draw):
    num_streams = draw(st.integers(min_value=1, max_value=6))
    per_stream = draw(
        st.lists(
            st.lists(kernels, min_size=1, max_size=5),
            min_size=num_streams,
            max_size=num_streams,
        )
    )
    return per_stream, draw(throttles)


def _check_occupancy(device):
    spec = device.smx.spec
    resident_blocks = 0
    resident_threads = 0
    for smx in device.smx:
        assert 0 <= smx.free_blocks <= spec.max_blocks
        assert 0 <= smx.free_threads <= spec.max_threads
        assert 0 <= smx.free_shared_mem <= spec.shared_memory
        assert 0 <= smx.free_registers <= spec.registers
        resident_blocks += spec.max_blocks - smx.free_blocks
        resident_threads += smx.resident_threads
    # The O(1) array-level counters must agree with the per-SMX truth.
    assert device.smx.resident_blocks == resident_blocks
    assert device.smx.resident_threads == resident_threads


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_smx_occupancy_invariants_under_throttle(workload):
    per_stream, throttle_windows = workload
    env = Environment()
    plan = FaultPlan(
        [
            FaultSpec(
                FaultKind.DEVICE_THROTTLE,
                start,
                duration=length,
                factor=factor,
            )
            for start, length, factor in throttle_windows
        ]
    )
    env.attach_fault_injector(FaultInjector(env, plan))
    device = GPUDevice(env)
    issued = []

    for stream_cmds in per_stream:
        stream = device.create_stream()
        for i, (blocks, tpb, regs, smem) in enumerate(stream_cmds):
            kd = KernelDescriptor(
                f"k{i}", Dim3(blocks), Dim3(tpb),
                registers_per_thread=regs,
                shared_mem_per_block=smem,
                block_duration=2e-6,
            )
            issued.append(stream.enqueue_kernel(kd))

    # Sample the invariants at every command start/finish — the instants
    # the block scheduler mutates occupancy around.
    for cmd in issued:
        cmd.started.callbacks.append(lambda _e: _check_occupancy(device))
        cmd.done.callbacks.append(lambda _e: _check_occupancy(device))
    env.run()

    for cmd in issued:
        assert cmd.done.triggered and cmd.done.ok, cmd

    # Quiesce: every SMX back to fully free.
    _check_occupancy(device)
    spec = device.smx.spec
    for smx in device.smx:
        assert smx.free_blocks == spec.max_blocks
        assert smx.free_threads == spec.max_threads
        assert smx.free_shared_mem == spec.shared_memory
        assert smx.free_registers == spec.registers
    assert device.smx.resident_blocks == 0
    assert device.smx.resident_threads == 0


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=1000),
    st.sampled_from([32, 128, 1024]),
    st.floats(min_value=1.5, max_value=30.0),
)
def test_throttle_only_stretches_time_not_occupancy(blocks, tpb, factor):
    """A throttled run places the same waves, just slower."""

    def run(plan):
        env = Environment()
        if plan is not None:
            env.attach_fault_injector(FaultInjector(env, plan))
        device = GPUDevice(env)
        stream = device.create_stream()
        kd = KernelDescriptor(
            "k", Dim3(blocks), Dim3(tpb),
            registers_per_thread=16, block_duration=2e-6,
        )
        cmd = stream.enqueue_kernel(kd)
        env.run()
        assert cmd.done.ok
        _check_occupancy(device)
        return cmd.done.value - cmd.started.value

    clean = run(None)
    throttled = run(
        FaultPlan(
            [FaultSpec(FaultKind.DEVICE_THROTTLE, 0.0, duration=1.0, factor=factor)]
        )
    )
    assert throttled >= clean
