"""Unit tests for the hardware work queues (:mod:`repro.gpu.hyperq`)."""

import pytest

from repro.gpu.commands import MarkerCommand
from repro.gpu.hyperq import HardwareQueue, QueueFabric
from repro.sim.engine import Environment


class TestQueueFabric:
    def test_needs_one_queue(self, env):
        with pytest.raises(ValueError):
            QueueFabric(env, 0)

    def test_kepler_streams_get_distinct_queues(self, env):
        fabric = QueueFabric(env, 32)
        queues = {fabric.queue_for_stream(s).index for s in range(32)}
        assert len(queues) == 32

    def test_mapping_is_stable(self, env):
        fabric = QueueFabric(env, 32)
        q1 = fabric.queue_for_stream(5)
        q2 = fabric.queue_for_stream(5)
        assert q1 is q2

    def test_aliasing_beyond_queue_count(self, env):
        """Stream 33 shares a queue with stream 1 (mod 32) — the
        CUDA_DEVICE_MAX_CONNECTIONS aliasing behaviour."""
        fabric = QueueFabric(env, 32)
        assert fabric.queue_for_stream(1) is fabric.queue_for_stream(33)
        assert 33 in fabric.aliased_streams(1)
        assert 1 in fabric.aliased_streams(33)

    def test_fermi_single_queue(self, env):
        fabric = QueueFabric(env, 1)
        assert fabric.queue_for_stream(0) is fabric.queue_for_stream(7)

    def test_no_aliases_when_wide(self, env):
        fabric = QueueFabric(env, 32)
        for s in range(32):
            fabric.queue_for_stream(s)
        assert fabric.aliased_streams(3) == []


class TestHardwareQueue:
    def test_chain_dependencies(self, env):
        queue = HardwareQueue(env, 0)
        c1 = MarkerCommand(env)
        c2 = MarkerCommand(env)
        assert queue.push(c1) is None
        assert queue.push(c2) is c1.done
        assert queue.depth_total == 2
