#!/usr/bin/env python3
"""Online launch-order learning for a recurring, skewed workload mix.

A serving deployment rarely sees the paper's clean 50/50 pairs: here the
recurring batch is *skewed* (six gaussian eliminations to every two nn
lookups), so none of the Figure 3 intuition transfers directly and the
right launch order has to be discovered.  This example:

1. measures all five static launch orders on the skewed batch (the
   oracle a one-off deployment could never afford);
2. serves the same batch repeatedly through the adaptive scheduler's
   epsilon-greedy bandit (``repro.serving.run_batched_serving``), which
   explores each arm once and then exploits the best measured order;
3. prints the learning trajectory and checks the bandit's steady-state
   choice lands within 5% of the best static order — the same bound
   ``benchmarks/bench_scheduler_policies.py`` enforces on the even
   pairs.

Run:
    python examples/adaptive_scheduling_service.py [--scale small]
"""

import argparse

from repro.analysis.tables import format_table
from repro.scheduling.orders import all_orders
from repro.serving import run_batched_serving


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--batches", type=int, default=12,
                        help="how many times the recurring batch is served")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # The recurring admitted batch: compute-heavy gaussian dominates 3:1.
    batch = [("gaussian", 6), ("nn", 2)]
    mix = " + ".join(f"{n}x {t}" for t, n in batch)
    print(f"recurring batch: {mix} (scale={args.scale})")

    # -- the oracle: every static order, measured once -------------------
    statics = {}
    for order in all_orders():
        result = run_batched_serving(
            [batch], policy=order.value, scale=args.scale, seed=args.seed
        )
        statics[order.value] = result.batches[0].makespan
    best_label = min(statics, key=lambda k: (statics[k], k))
    best = statics[best_label]
    print()
    print(format_table(
        [
            {
                "order": label,
                "makespan_ms": ms * 1e3,
                "vs_best_pct": (ms - best) / best * 100.0,
            }
            for label, ms in sorted(statics.items(), key=lambda kv: kv[1])
        ],
        title="Static launch orders (exhaustive oracle)",
    ))
    print(f"best static order: {best_label} ({best * 1e3:.3f} ms)")

    # -- the learner: same batch, served repeatedly ----------------------
    result = run_batched_serving(
        [batch] * args.batches,
        policy="bandit",
        scale=args.scale,
        seed=args.seed,
    )
    print()
    print(format_table(
        [
            {
                "batch": i,
                "order": b.decision.order_label,
                "phase": "explore" if b.decision.explored else "exploit",
                "sync": b.decision.memory_sync,
                "makespan_ms": b.makespan * 1e3,
                "vs_best_pct": (b.makespan - best) / best * 100.0,
            }
            for i, b in enumerate(result.batches)
        ],
        title="Bandit learning trajectory",
    ))
    print(result.summary())

    exploit = [b for b in result.batches if not b.decision.explored]
    if not exploit:
        raise SystemExit(
            "no exploit decisions yet - raise --batches above the five "
            "exploration rounds"
        )
    steady = exploit[-1]
    gap_pct = (steady.makespan - best) / best * 100.0
    print()
    print(
        f"steady state: {steady.decision.order_label} at "
        f"{steady.makespan * 1e3:.3f} ms"
    )
    print(
        f"bandit converged within {gap_pct:.2f}% of the best static order "
        "(budget: 5%)"
    )
    assert gap_pct <= 5.0, "bandit missed the 5% convergence budget"


if __name__ == "__main__":
    main()
