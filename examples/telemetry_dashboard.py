#!/usr/bin/env python3
"""Live telemetry for a Hyper-Q run: scrape it, chart it, trace it.

Runs the paper's Figure 8 configuration (a {gaussian, needle} workload
with the memory-transfer mutex enabled) with the unified telemetry
subsystem attached, then shows every way the metrics leave the simulator:

* a terminal dashboard — per-series table with block-character sparklines
  of occupancy, power, queue depths and Hyper-Q slot usage over the run;
* a real HTTP scrape — the stdlib ``/metrics`` handler is started on an
  ephemeral port and scraped with ``urllib``, exactly what a Prometheus
  server would do;
* file dumps — Prometheus text exposition, JSONL snapshots, and a Chrome
  trace with the GPU timeline and the metric counter tracks merged into
  one file for ``chrome://tracing`` / Perfetto.

Run:
    python examples/telemetry_dashboard.py [--scale small|paper]
"""

import argparse
import urllib.request
from pathlib import Path

from repro.analysis.chrome_trace import write_chrome_trace
from repro.analysis.tables import format_table
from repro.core.runner import quick_run
from repro.telemetry import (
    MetricsServer,
    Telemetry,
    generate_latest,
    metrics_table,
    snapshots_to_counter_events,
    write_jsonl,
)

#: Metric families worth charting in Perfetto — the run's live vitals.
COUNTER_TRACKS = (
    "repro_gpu_thread_occupancy",
    "repro_gpu_power_watts",
    "repro_gpu_active_streams",
    "repro_gpu_hyperq_queues_in_use",
    "repro_gpu_dma_queue_depth",
    "repro_sim_calendar_depth",
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    parser.add_argument("--apps", type=int, default=16)
    parser.add_argument("--interval", type=float, default=None,
                        help="sample interval in simulated seconds")
    parser.add_argument("--filter", default="repro_gpu_", metavar="SUBSTR",
                        help="series filter for the terminal table")
    parser.add_argument("--out", type=Path, default=Path("results/telemetry"),
                        help="directory for the exporter dumps")
    args = parser.parse_args()

    interval = args.interval
    if interval is None:
        # Oversample short runs the same way the power examples do.
        interval = 100e-6 if args.scale != "paper" else 2e-3

    telemetry = Telemetry(interval=interval)
    run = quick_run(
        pair=("gaussian", "needle"),
        num_apps=args.apps,
        num_streams=args.apps,
        memory_sync=True,  # Figure 8's memory mode
        scale=args.scale,
        record_trace=True,
        telemetry=telemetry,
    )

    # -- terminal dashboard ------------------------------------------------
    print(run.summary())
    print()
    rows = metrics_table(telemetry.snapshots, pattern=args.filter, width=48)
    print(format_table(
        rows,
        title=f"Telemetry — {len(telemetry.snapshots)} samples every "
        f"{interval * 1e6:.0f} us of simulated time",
    ))

    # -- HTTP scrape -------------------------------------------------------
    with MetricsServer(telemetry.registry) as server:
        url = server.url
        scraped = urllib.request.urlopen(url, timeout=5).read().decode()
    lines = [l for l in scraped.splitlines() if not l.startswith("#")]
    print(f"\nscraped {len(lines)} series from {url} "
          "(stdlib handler, Prometheus text exposition)")

    # -- file dumps --------------------------------------------------------
    args.out.mkdir(parents=True, exist_ok=True)
    prom_path = args.out / "metrics.prom"
    prom_path.write_text(generate_latest(telemetry.registry))
    jsonl_path = args.out / "metrics.jsonl"
    write_jsonl(telemetry.snapshots, jsonl_path)
    counters = snapshots_to_counter_events(
        telemetry.snapshots, include=COUNTER_TRACKS
    )
    trace_path = write_chrome_trace(
        run.harness.trace,
        args.out / "trace_with_counters.json",
        counter_events=counters,
    )
    print(f"wrote {prom_path} ({prom_path.stat().st_size} bytes)")
    print(f"wrote {jsonl_path} ({len(telemetry.snapshots)} snapshots)")
    print(f"wrote merged Chrome trace {trace_path} "
          f"({len(counters)} counter events) — open in chrome://tracing")


if __name__ == "__main__":
    main()
