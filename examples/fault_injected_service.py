#!/usr/bin/env python3
"""Fault-injected serving: surviving hangs, failed launches and stalls.

Runs the same heterogeneous workload twice — once clean, once under a
deterministic fault plan (a transient launch failure, a 100x kernel hang,
a DMA stall and a power-sensor dropout) — with the full resilience stack
enabled: watchdog deadlines at 4x the serial baseline, up to four
attempts per application with seeded exponential backoff, and a
concurrency-degradation ladder that halves NS every two detected faults.

The faulted run finishes every application anyway, and the end-of-run
summary shows exactly what hit, what was detected, and what it cost.

Run:
    python examples/fault_injected_service.py [--scale tiny|small|paper]
"""

import argparse

from repro.core import ExperimentRunner, RunConfig, Workload
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="small", choices=("tiny", "small", "paper")
    )
    parser.add_argument("--apps", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    workload = Workload.heterogeneous_pair(
        "gaussian", "needle", args.apps, scale=args.scale
    )
    runner = ExperimentRunner()

    print(f"workload: {workload.describe()} (scale={args.scale})\n")

    # 1. Clean full-concurrency run: the healthy-service reference point,
    #    and the horizon the fault plan is expressed against.
    clean = runner.run(RunConfig(workload=workload, num_streams=args.apps))
    print(f"clean   : {clean.harness.summary()}")
    horizon = clean.makespan
    spawn0 = min(r.spawn_time for r in clean.harness.records)

    # 2. The same cell under a deterministic fault plan.  Times are
    #    simulated timestamps; kernel faults stay armed until a matching
    #    launch consumes them, while the power-dropout *window* expires on
    #    its own — anchor it to the measured spawn window, when the
    #    monitor is actually sampling.
    plan = FaultPlan(
        [
            FaultSpec(
                FaultKind.LAUNCH_FAIL, horizon * 0.05, target="gaussian#0"
            ),
            FaultSpec(
                FaultKind.KERNEL_HANG,
                horizon * 0.10,
                target="needle#1",
                factor=100.0,
            ),
            FaultSpec(
                FaultKind.DMA_STALL,
                horizon * 0.02,
                duration=horizon * 0.05,
                direction="HtoD",
            ),
            FaultSpec(
                FaultKind.POWER_DROPOUT,
                spawn0 + horizon * 0.2,
                duration=horizon * 0.4,
            ),
        ]
    )
    resilience = ResilienceConfig(
        plan=plan,
        retry=RetryPolicy(max_attempts=4, base_delay=horizon * 0.1),
        deadline_factor=4.0,
        degradation_threshold=2,
        seed=args.seed,
    )
    faulted = runner.run(
        RunConfig(
            workload=workload,
            num_streams=args.apps,
            resilience=resilience,
            # Sample densely relative to the horizon so the dropout
            # window covers sensor readings at every scale.
            power_interval=horizon * 0.01,
        )
    )
    print(f"faulted : {faulted.harness.summary()}\n")

    summary = faulted.harness.resilience
    print("resilience summary")
    for label, value in summary.rows():
        print(f"  {label:<24}: {value}")

    slowdown = (faulted.makespan / clean.makespan - 1.0) * 100.0
    print(
        f"\nall {summary.apps_completed}/{args.apps} applications completed "
        f"despite {summary.applied_total} injected faults "
        f"({summary.retries} retries, {summary.deadline_hits} watchdog "
        f"cancellations); makespan cost {slowdown:.1f}% vs clean"
    )


if __name__ == "__main__":
    main()
