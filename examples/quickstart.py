#!/usr/bin/env python3
"""Quickstart: run a heterogeneous workload serialized vs Hyper-Q concurrent.

Reproduces the paper's core observation in ~a minute: a mix of gaussian
(compute-heavy, underutilizing in its Fan1 phases) and needle (tiny grids)
applications runs dramatically faster when spread over Hyper-Q streams than
serialized on one stream — and enabling the host-side transfer mutex
improves it further by eliminating DMA copy-queue interleaving.

Run:
    python examples/quickstart.py [--scale small|paper]
"""

import argparse

from repro.analysis.timeline import render_timeline
from repro.core import ExperimentRunner, RunConfig, Workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    parser.add_argument("--apps", type=int, default=8)
    args = parser.parse_args()

    workload = Workload.heterogeneous_pair(
        "gaussian", "needle", args.apps, scale=args.scale
    )
    runner = ExperimentRunner()

    print(f"workload: {workload.describe()} (scale={args.scale})\n")

    # 1. Serialized baseline: every application on one stream.
    serial = runner.run_serial(workload)
    print(f"serialized      : {serial.harness.summary()}")

    # 2. Full concurrency: one Hyper-Q stream per application.
    concurrent = runner.run(
        RunConfig(workload=workload, num_streams=args.apps)
    )
    print(f"full-concurrent : {concurrent.harness.summary()}")

    # 3. Concurrency + the paper's memory-transfer synchronization.
    synced = runner.run(
        RunConfig(workload=workload, num_streams=args.apps, memory_sync=True,
                  record_trace=True)
    )
    print(f"+ memory sync   : {synced.harness.summary()}\n")

    print(
        f"concurrency improvement : "
        f"{concurrent.improvement_over(serial):6.1f}% vs serial"
    )
    print(
        f"with memory sync        : "
        f"{synced.improvement_over(serial):6.1f}% vs serial"
    )
    print(
        f"energy reduction        : "
        f"{synced.energy_improvement_over(serial):6.1f}% vs serial\n"
    )

    print(render_timeline(
        synced.harness.trace,
        width=96,
        title="Execution timeline (concurrent + memory sync):",
    ))


if __name__ == "__main__":
    main()
