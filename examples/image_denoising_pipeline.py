#!/usr/bin/env python3
"""An ultrasound image-denoising pipeline with launch-order scheduling.

Scenario: a medical-imaging pipeline runs SRAD (speckle-reducing
anisotropic diffusion) over incoming ultrasound frames while a second
tenant streams k-nearest-neighbor queries through the same GPU.  SRAD's
kernels fill the device in bursts with a host round trip per iteration; nn
is transfer-bound — exactly the heterogeneous mix whose overlap potential
the paper's Section III-C reordering study targets.

The example:
1. denoises a real synthetic speckled image with the validated SRAD
   implementation and reports the roughness reduction;
2. simulates the mixed 32-job workload under all five launch orders of
   Figure 3, with and without the transfer mutex, and reports which
   schedule wins (reproducing the Figure 7 vs Figure 8 effect).

Run:
    python examples/image_denoising_pipeline.py [--scale small|paper]
"""

import argparse

import numpy as np

from repro.apps.srad import make_image, srad
from repro.core import ExperimentRunner, Workload
from repro.framework.scheduler import all_orders


def roughness(img: np.ndarray) -> float:
    """Mean absolute neighbour difference — a simple speckle measure."""
    return float(
        np.abs(np.diff(img, axis=0)).mean() + np.abs(np.diff(img, axis=1)).mean()
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    parser.add_argument("--apps", type=int, default=16)
    args = parser.parse_args()

    print("Denoising a 128x128 speckled frame with SRAD (10 iterations):")
    frame = make_image((128, 128), np.random.default_rng(0), noise=0.25)
    cleaned = srad(frame, lam=0.5, iterations=10)
    print(f"  roughness before: {roughness(frame):.4f}")
    print(f"  roughness after : {roughness(cleaned):.4f} "
          f"({(1 - roughness(cleaned) / roughness(frame)) * 100:.0f}% reduction)\n")

    print(
        f"Scheduling a mixed batch of {args.apps // 2} SRAD frames and "
        f"{args.apps // 2} nn queries on {args.apps} streams:"
    )
    workload = Workload.heterogeneous_pair("nn", "srad", args.apps, scale=args.scale)
    runner = ExperimentRunner()

    header = f"{'launch order':<22} {'default':>12} {'memory sync':>12}"
    print(header)
    print("-" * len(header))
    matrices = {
        sync: runner.ordering_matrix(
            workload, num_streams=args.apps, memory_sync=sync
        )
        for sync in (False, True)
    }
    for order in all_orders():
        default_ms = matrices[False][order].makespan * 1e3
        sync_ms = matrices[True][order].makespan * 1e3
        print(f"{str(order):<22} {default_ms:10.2f}ms {sync_ms:10.2f}ms")

    for sync, results in matrices.items():
        order, run = min(results.items(), key=lambda kv: kv[1].makespan)
        label = "memory sync" if sync else "default"
        print(f"\nbest order ({label}): {order} at {run.makespan * 1e3:.2f} ms")
    print(
        "\nReordering compute-heavy SRAD frames ahead of transfer-bound nn "
        "queries lets the SRAD compute tail hide subsequent transfers — "
        "the paper's 'overlap potential' (Figures 7 and 8)."
    )


if __name__ == "__main__":
    main()
