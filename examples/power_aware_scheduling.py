#!/usr/bin/env python3
"""Energy accounting for a shared GPU: concurrency as a power tool.

The paper's Section V-D observation: GPU power rises only slightly as
concurrency increases (the device is not energy proportional), so packing
independent applications onto Hyper-Q streams converts saved wall time
almost directly into saved energy.

This example runs a {gaussian, needle} workload under serial / half / full
concurrency, samples the simulated on-board sensor exactly the way the
paper does (15 ms NVML polling, oversampled here for short runs), renders
the three power traces as terminal sparklines, and prints the
energy-vs-makespan ledger.

Run:
    python examples/power_aware_scheduling.py [--scale small|paper]
"""

import argparse

import numpy as np

from repro.core import ExperimentRunner, RunConfig, Workload

SPARK = " .:-=+*#%@"


def sparkline(samples, width=80, peak=None) -> str:
    """Render (time, watts) samples as a fixed-width sparkline."""
    if not samples:
        return ""
    watts = np.array([w for _, w in samples])
    # Resample to the display width.
    idx = np.linspace(0, len(watts) - 1, width).astype(int)
    resampled = watts[idx]
    peak = peak or float(resampled.max())
    levels = np.clip(
        (resampled / peak * (len(SPARK) - 1)).astype(int), 0, len(SPARK) - 1
    )
    return "".join(SPARK[l] for l in levels)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    parser.add_argument("--apps", type=int, default=16)
    args = parser.parse_args()

    workload = Workload.heterogeneous_pair(
        "gaussian", "needle", args.apps, scale=args.scale
    )
    runner = ExperimentRunner()
    interval = 100e-6 if args.scale != "paper" else 2e-3

    scenarios = [
        ("serial", 1),
        ("half-concurrent", max(1, args.apps // 2)),
        ("full-concurrent", args.apps),
    ]
    runs = {}
    for label, ns in scenarios:
        runs[label] = runner.run(
            RunConfig(workload=workload, num_streams=ns, power_interval=interval)
        )

    peak = max(r.peak_power for r in runs.values())
    print(f"workload: {workload.describe()}  (power sampled every "
          f"{interval * 1e3:.1f} ms, sensor peak {peak:.0f} W)\n")
    for label, _ in scenarios:
        run = runs[label]
        print(f"{label:<16} |{sparkline(run.harness.power_samples, peak=peak)}|")
    print()

    serial = runs["serial"]
    print(f"{'scenario':<18}{'makespan':>12}{'energy':>10}{'avg power':>11}"
          f"{'time saved':>12}{'energy saved':>14}")
    for label, _ in scenarios:
        run = runs[label]
        print(
            f"{label:<18}{run.makespan * 1e3:10.2f}ms{run.energy:9.2f}J"
            f"{run.average_power:10.1f}W"
            f"{run.improvement_over(serial):11.1f}%"
            f"{run.energy_improvement_over(serial):13.1f}%"
        )

    full = runs["full-concurrent"]
    print(
        f"\nFull concurrency draws "
        f"{full.average_power / serial.average_power:.2f}x the average power "
        f"but finishes {serial.makespan / full.makespan:.2f}x sooner: energy "
        f"drops {full.energy_improvement_over(serial):.1f}% — the paper's "
        f"'energy efficiency as a byproduct of concurrency'."
    )


if __name__ == "__main__":
    main()
