#!/usr/bin/env python3
"""Overload-resilient serving: shed load, trip breakers, survive crashes.

Drives the streaming Hyper-Q service well past saturation (arrivals at
~2.5x the device's service rate) and compares two admission disciplines:

* greedy     — admit everything immediately, never shed.  Throughput
               looks fine, but concurrency contention blows every
               sojourn past its SLO deadline: goodput collapses.
* shed-oldest — cap-N concurrency, a bounded admission queue that sheds
               the oldest waiter when full, and deadline-aware shedding
               of requests that can no longer meet their SLO.

Then it demonstrates crash-safe journaling: the same run is executed
with a planned harness crash mid-flight, resumed from the journal, and
the resumed result is checked entry-for-entry against an uninterrupted
reference run.

Run:
    python examples/overload_shedding_service.py [--scale tiny|small|paper]
"""

import argparse
import tempfile
from pathlib import Path

from repro.core.streaming import (
    ConcurrencyCapDispatcher,
    GreedyDispatcher,
    poisson_arrivals,
)
from repro.resilience import FaultKind, FaultPlan, FaultSpec
from repro.serving import (
    RunJournal,
    ServingConfig,
    measure_service_baselines,
    run_serving,
)
from repro.sim.errors import HarnessCrash

MIX = [("nn", 2), ("needle", 1)]


def describe(name, result):
    print(
        f"{name:<12}: goodput {result.goodput:7.0f} req/s | "
        f"throughput {result.throughput:7.0f} req/s | "
        f"p99 sojourn {result.p99_sojourn * 1e3:6.2f} ms | "
        f"shed {result.shed_rate:4.0%} | outcomes {dict(result.outcomes)}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="small", choices=("tiny", "small", "paper")
    )
    parser.add_argument("--cap", type=int, default=4)
    parser.add_argument("--qdepth", type=int, default=8)
    # Multiples of the *cap-N* service rate; greedy gets all 16 streams,
    # so it takes a few multiples before even greedy saturates.
    parser.add_argument("--overload", type=float, default=5.0)
    parser.add_argument("--duration", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    # Calibrate the overload against the measured service rate: each
    # type's baseline is a single-arrival end-to-end sojourn.
    baselines = measure_service_baselines(
        [name for name, _ in MIX], scale=args.scale
    )
    total = sum(weight for _, weight in MIX)
    mean_service = sum(baselines[n] * w / total for n, w in MIX)
    service_rate = args.cap / mean_service
    rate = args.overload * service_rate
    arrivals = poisson_arrivals(rate, args.duration, MIX, seed=args.seed)
    print(
        f"offered load: {len(arrivals)} arrivals at {rate:.0f}/s "
        f"({args.overload:.1f}x the cap-{args.cap} service rate, "
        f"scale={args.scale})\n"
    )

    # 1. Greedy baseline: unbounded admission, SLOs tracked but nothing
    #    shed — watch goodput fall far below throughput.
    greedy = run_serving(
        arrivals,
        GreedyDispatcher(),
        ServingConfig(
            slo_factor=6.0, slo_jitter=0.1,
            shed_unreachable=False, seed=args.seed,
        ),
        num_streams=16,
        scale=args.scale,
    )
    describe("greedy", greedy)

    # 2. Bounded admission + deadline-aware shedding: same trace, same
    #    SLOs, strictly better goodput and a bounded tail.
    shed_config = ServingConfig(
        queue_depth=args.qdepth,
        queue_policy="shed-oldest",
        slo_factor=6.0,
        slo_jitter=0.1,
        shed_unreachable=True,
        seed=args.seed,
    )
    shed = run_serving(
        arrivals,
        ConcurrencyCapDispatcher(args.cap),
        shed_config,
        num_streams=16,
        scale=args.scale,
    )
    describe("shed-oldest", shed)
    print(
        f"\nshedding lifts goodput "
        f"{greedy.goodput:.0f} -> {shed.goodput:.0f} req/s and cuts p99 "
        f"{greedy.p99_sojourn * 1e3:.2f} -> {shed.p99_sojourn * 1e3:.2f} ms\n"
    )

    # 3. Crash-safe journaling: the same shedding run with a planned
    #    harness crash mid-flight, then a deterministic resume.
    crash_at = args.duration / 2
    crash_config = ServingConfig(
        queue_depth=args.qdepth,
        queue_policy="shed-oldest",
        slo_factor=6.0,
        slo_jitter=0.1,
        shed_unreachable=True,
        plan=FaultPlan(
            [FaultSpec(kind=FaultKind.HARNESS_CRASH, time=crash_at)]
        ),
        seed=args.seed,
    )
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "run.jsonl"
        try:
            run_serving(
                arrivals,
                ConcurrencyCapDispatcher(args.cap),
                crash_config,
                num_streams=16,
                scale=args.scale,
                journal_path=journal_path,
            )
        except HarnessCrash as crash:
            committed = len(RunJournal(journal_path).entries())
            print(
                f"harness crashed at t={crash.time * 1e3:.1f} ms with "
                f"{committed} outcomes safely journaled"
            )
        resumed = run_serving(
            arrivals,
            ConcurrencyCapDispatcher(args.cap),
            crash_config,
            num_streams=16,
            scale=args.scale,
            journal_path=journal_path,
            resume=True,
        )
        print(
            f"resumed: replayed {resumed.recovered_entries} journaled "
            f"outcomes, finished the remaining "
            f"{len(arrivals) - resumed.recovered_entries}"
        )
        same = (
            resumed.sojourn_times == shed.sojourn_times
            and resumed.outcomes == shed.outcomes
            and resumed.energy == shed.energy
        )
        print(
            "resume matches the uninterrupted run exactly: "
            f"{'yes' if same else 'NO'}"
        )


if __name__ == "__main__":
    main()
