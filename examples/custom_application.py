#!/usr/bin/env python3
"""Extending the framework with a new application (the Table II contract).

The paper's conclusion advertises that the management framework "is readily
extensible for additional applications ... there is less effort required to
enable concurrency with new applications."  This example demonstrates the
contract: port a new workload — a batched matrix-multiply microservice —
by writing one ``RodiniaApp`` subclass that declares its buffers, launch
geometry and execution pattern.  No framework or scheduler code changes.

The new application then runs in a *three-way* heterogeneous mix with two
stock Rodinia applications, something the paper's methodology supports
("our framework supports the ability to test workloads with a higher
degree of task heterogeneity").

Run:
    python examples/custom_application.py
"""

import numpy as np

from repro.apps import RodiniaApp, register_app
from repro.core import ExperimentRunner, RunConfig, Workload
from repro.core.workload import SCALES
from repro.framework.kernel import AppProfile, Buffer, KernelPhase, TransferPhase
from repro.gpu.commands import CopyDirection
from repro.gpu.kernels import Dim3, KernelDescriptor


class MatMulApp(RodiniaApp):
    """Tiled dense matrix multiply: C = A @ B with 16x16 shared-memory tiles.

    A classic device-filling kernel: for n=512 the grid is 32x32 blocks of
    256 threads (1024 thread blocks — several scheduling waves on a K20),
    making it a good co-tenant for underutilizing applications.
    """

    benchmark = "Dense matrix multiply"
    kernel_names = ("matmul_tiled",)

    TILE = 16

    @classmethod
    def build_profile(cls, n: int = 512) -> AppProfile:
        if n % cls.TILE != 0:
            raise ValueError(f"n must be a multiple of {cls.TILE}")
        tiles = n // cls.TILE
        matrix_bytes = n * n * 4
        kernel = KernelDescriptor(
            name="matmul_tiled",
            grid=Dim3(tiles, tiles, 1),
            block=Dim3(cls.TILE, cls.TILE, 1),
            registers_per_thread=30,
            shared_mem_per_block=2 * cls.TILE * cls.TILE * 4,  # A + B tiles
            block_duration=8e-6,
        )
        return AppProfile(
            name="matmul",
            data_dim=f"{n} x {n}",
            host_allocs=(Buffer("A", matrix_bytes), Buffer("B", matrix_bytes),
                         Buffer("C", matrix_bytes)),
            device_allocs=(Buffer("dA", matrix_bytes), Buffer("dB", matrix_bytes),
                           Buffer("dC", matrix_bytes)),
            phases=(
                TransferPhase(
                    CopyDirection.HTOD,
                    (Buffer("A", matrix_bytes), Buffer("B", matrix_bytes)),
                ),
                KernelPhase((kernel,)),
                TransferPhase(CopyDirection.DTOH, (Buffer("C", matrix_bytes),)),
            ),
            init_cost=200e-6,
        )

    @staticmethod
    def reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The kernel's arithmetic (trivially, a matmul)."""
        return a @ b


def main() -> None:
    # A new application is one registration call away.
    register_app("matmul", MatMulApp)
    for scale in SCALES.values():
        scale.setdefault("matmul", {"n": 256})

    # Sanity: the reference computation is real.
    rng = np.random.default_rng(0)
    a, b = rng.standard_normal((64, 64)), rng.standard_normal((64, 64))
    assert np.allclose(MatMulApp.reference(a, b), a @ b)
    print("matmul registered; reference output validated against numpy.\n")

    # Three-way heterogeneous workload: matmul + needle + nn.
    workload = Workload.mixed(
        [("matmul", 4), ("needle", 4), ("nn", 4)], scale="small"
    )
    runner = ExperimentRunner()
    serial = runner.run_serial(workload)
    concurrent = runner.run(
        RunConfig(workload=workload, num_streams=workload.size, memory_sync=True)
    )

    print(f"workload        : {workload.describe()}")
    print(f"serialized      : {serial.harness.summary()}")
    print(f"concurrent+sync : {concurrent.harness.summary()}")
    print(
        f"\nimprovement: {concurrent.improvement_over(serial):.1f}% "
        f"makespan, {concurrent.energy_improvement_over(serial):.1f}% energy "
        "- with zero framework changes for the new application."
    )


if __name__ == "__main__":
    main()
