#!/usr/bin/env python3
"""A batch sequence-alignment service on one shared GPU.

Scenario (the paper's motivating use case): many independent small jobs —
here Needleman-Wunsch alignments, the classic GPU underutilizer (at most 16
blocks of 32 threads on a device with 26 624 thread slots) — arrive at a
shared Tesla K20.  Sequential execution wastes almost the whole device;
Hyper-Q lets the jobs overlap.

The example is end-to-end real: it first *computes* alignments with the
library's validated NW implementation (scores + traceback), then uses the
simulator to compare three service policies on a 16-job batch:

1. serialized (one stream),
2. Hyper-Q concurrent,
3. Hyper-Q concurrent + transfer mutex (the paper's full technique).

Run:
    python examples/sequence_alignment_service.py
"""

import numpy as np

from repro.apps.needle import make_sequences, nw_align, nw_score
from repro.core import ExperimentRunner, RunConfig, Workload


def align_and_report(job_id: int, n: int = 24) -> int:
    """Run one real alignment and print a compact report line."""
    rng = np.random.default_rng(job_id)
    seq1, seq2, blosum = make_sequences(n, rng)
    score = nw_score(seq1, seq2, blosum, penalty=10)
    alignment = nw_align(seq1, seq2, blosum, penalty=10)
    gaps = sum(1 for a, b in alignment if a is None or b is None)
    print(
        f"  job {job_id:2d}: length {n} vs {n}, score {score:5d}, "
        f"alignment length {len(alignment)}, gaps {gaps}"
    )
    return score


def main() -> None:
    print("Computing 6 real alignments with the NW reference kernel:")
    scores = [align_and_report(i) for i in range(6)]
    assert all(isinstance(s, int) for s in scores)

    print("\nSimulating a 16-job batch on a Tesla K20 "
          "(paper-scale 512x512 alignments):")
    batch = Workload.homogeneous("needle", 16, scale="paper")
    runner = ExperimentRunner()

    serial = runner.run_serial(batch)
    concurrent = runner.run(RunConfig(workload=batch, num_streams=16))
    full = runner.run(
        RunConfig(workload=batch, num_streams=16, memory_sync=True)
    )

    throughput = lambda r: 16 / r.makespan
    rows = [
        ("serialized (1 stream)", serial),
        ("Hyper-Q (16 streams)", concurrent),
        ("Hyper-Q + memory sync", full),
    ]
    print(f"{'policy':<24} {'makespan':>10} {'jobs/s':>9} {'energy':>9}")
    for label, run in rows:
        print(
            f"{label:<24} {run.makespan * 1e3:8.2f}ms "
            f"{throughput(run):9.0f} {run.energy:8.3f}J"
        )

    print(
        f"\nHyper-Q improves batch latency by "
        f"{concurrent.improvement_over(serial):.1f}% over serialized; "
        f"the transfer mutex adds "
        f"{full.improvement_over(concurrent):.1f}% more "
        f"and cuts energy by {full.energy_improvement_over(serial):.1f}% "
        f"overall."
    )


if __name__ == "__main__":
    main()
