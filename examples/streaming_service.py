#!/usr/bin/env python3
"""A streaming GPU service: online dispatch of arriving jobs.

The paper's future work envisions schedulers that "manage streaming
workloads, rather than a finite set".  This example runs an open-loop
service: nn queries and needle alignments arrive as a Poisson stream and
an online dispatcher decides when each job may enter the GPU.

Three policies are compared on the same arrival trace:

* greedy          — admit immediately (throughput-first),
* cap-1           — serialize everything (the no-Hyper-Q strawman),
* power-cap       — admit only under a board-power budget (energy-aware).

Run:
    python examples/streaming_service.py [--rate 12000] [--scale tiny]
"""

import argparse

from repro.core.streaming import (
    ConcurrencyCapDispatcher,
    GreedyDispatcher,
    PowerCapDispatcher,
    poisson_arrivals,
    run_streaming,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=12000.0,
                        help="mean arrivals per second")
    parser.add_argument("--duration", type=float, default=0.006,
                        help="trace length in simulated seconds")
    parser.add_argument("--scale", default="tiny", choices=("tiny", "small", "paper"))
    parser.add_argument("--streams", type=int, default=16)
    parser.add_argument("--power-cap", type=float, default=70.0)
    args = parser.parse_args()

    arrivals = poisson_arrivals(
        rate=args.rate,
        duration=args.duration,
        type_mix=[("nn", 2), ("needle", 1)],
        seed=7,
    )
    print(
        f"{len(arrivals)} arrivals over {args.duration * 1e3:.1f} ms "
        f"(~{args.rate:.0f}/s), mix 2:1 nn:needle, scale={args.scale}\n"
    )

    dispatchers = [
        GreedyDispatcher(),
        ConcurrencyCapDispatcher(1),
        PowerCapDispatcher(args.power_cap),
    ]
    header = (
        f"{'policy':<18}{'mean sojourn':>14}{'p95':>10}{'jobs/s':>9}"
        f"{'avg W':>8}{'peak W':>8}{'energy':>9}{'max inflight':>13}"
    )
    print(header)
    print("-" * len(header))
    results = []
    for dispatcher in dispatchers:
        result = run_streaming(
            arrivals,
            dispatcher,
            num_streams=args.streams,
            memory_sync=True,
            scale=args.scale,
        )
        results.append(result)
        print(
            f"{result.dispatcher:<18}"
            f"{result.mean_sojourn * 1e3:12.2f}ms"
            f"{result.p95_sojourn * 1e3:8.2f}ms"
            f"{result.throughput:9.0f}"
            f"{result.average_power:8.1f}"
            f"{result.peak_power:8.1f}"
            f"{result.energy:8.3f}J"
            f"{result.peak_in_flight:13d}"
        )

    greedy, serial, capped = results
    print(
        f"\nGreedy dispatch cuts mean sojourn "
        f"{serial.mean_sojourn / greedy.mean_sojourn:.1f}x vs serialized "
        f"service; the {args.power_cap:.0f} W cap trades "
        f"{(capped.mean_sojourn / greedy.mean_sojourn - 1) * 100:.0f}% extra "
        f"latency for a bounded admission power envelope."
    )


if __name__ == "__main__":
    main()
