#!/usr/bin/env python3
"""Multi-tenant traffic over a device fleet, with a policy leaderboard.

Builds a three-class tenant model — diurnal interactive traffic, a
heavy-tailed burst class and a steady batch class — normalizes it to a
target load against the measured service capacity, and then:

1. streams it open-loop through the serving stack on a 4-device fleet
   (cap-N admission, deadline-aware shedding), printing per-class SLO
   attainment;
2. replays the *same* arrivals through batched admission under several
   batch-scheduler policies (the learning bandit vs the paper's static
   launch orders), printing the per-policy SLO-goodput leaderboard and
   the bandit-vs-worst-static win/regression waterfall.

Run:
    python examples/multi_tenant_service.py [--scale tiny|small|paper]
"""

import argparse

from repro.analysis import (
    build_leaderboard,
    build_waterfall,
    render_leaderboard,
    render_waterfall,
)
from repro.serving import FleetServingConfig
from repro.workload import (
    ArrivalSpec,
    Scenario,
    TenantClass,
    run_traffic,
    run_traffic_batched,
)


def three_class_scenario() -> Scenario:
    """Diurnal interactive + bursty analytics + steady batch, 1.2x load."""
    return Scenario(
        name="three-tenants",
        description="diurnal interactive, heavy-tail analytics, steady batch",
        load=1.2,
        classes=(
            TenantClass(
                name="interactive",
                arrival=ArrivalSpec("diurnal", rate=3.0, amplitude=0.8),
                app_mix=(("nn", 0.6), ("gaussian", 0.4)),
                slo_factor=4.0,
                priority=2,
                tenants=100_000,
                popularity="zipf",
                zipf_s=1.3,
            ),
            TenantClass(
                name="analytics",
                arrival=ArrivalSpec("pareto", rate=2.0, alpha=1.3),
                app_mix=(("srad", 0.7), ("gaussian", 0.3)),
                slo_factor=8.0,
                priority=1,
                tenants=2_000,
            ),
            TenantClass(
                name="batch",
                arrival=ArrivalSpec("poisson", rate=1.0),
                app_mix=(("needle", 1.0),),
                slo_factor=12.0,
                priority=0,
                tenants=50,
            ),
        ),
        cycles=3.0,
        seed=42,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="small", choices=("tiny", "small", "paper")
    )
    parser.add_argument("--requests", type=int, default=240)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=8)
    args = parser.parse_args()

    built = three_class_scenario().build(args.requests, scale=args.scale)
    print(
        f"scenario '{built.name}': {built.requests} requests at "
        f"{built.scenario.load:.1f}x capacity "
        f"({built.offered_rate:,.0f} req/s offered)\n"
    )

    # -- 1. open-loop serving over a fleet --------------------------------
    fleet = FleetServingConfig(
        num_devices=args.devices, detection_latency=1e-3
    )
    result = run_traffic(
        built, policy="reject", scale=args.scale, fleet=fleet
    )
    print(f"open-loop serving over {args.devices} devices (policy: reject):")
    for name, stats in sorted(result.stats.classes.items()):
        print(
            f"  {name:<12} {stats.arrivals:4d} arrivals | "
            f"SLO attainment {stats.slo_attainment:5.1%} | "
            f"shed {stats.shed:3d} | "
            f"mean sojourn {stats.mean_sojourn * 1e3:7.2f} ms"
        )
    met = result.serving.deadline_met
    print(f"  overall: {met}/{built.requests} deadlines met, "
          f"goodput {result.serving.goodput:,.0f} req/s\n")

    # -- 2. batched admission: policy leaderboard + waterfall -------------
    policies = ("bandit", "naive-fifo", "round-robin", "reverse-fifo")
    cells = []
    for policy in policies:
        scored = run_traffic_batched(
            built, policy, batch_size=args.batch_size, scale=args.scale
        )
        cells.append(scored.metrics())
    board = build_leaderboard(cells)
    print(render_leaderboard(board))

    statics = {
        p: board[built.name]["policies"][p]["goodput"]
        for p in policies
        if p != "bandit"
    }
    worst = min(statics, key=statics.get)
    rows = build_waterfall(board, "bandit", worst)
    print()
    print(render_waterfall(rows))
    print(f"\nbandit vs worst static order ({worst}): "
          + ", ".join(f"{r['verdict']} on {r['scenario']}" for r in rows))


if __name__ == "__main__":
    main()
