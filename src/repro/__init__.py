"""Reproduction of Luley & Qiu (2016), "Effective Utilization of CUDA
Hyper-Q for Improved Power and Performance Efficiency".

The package layers, bottom-up:

* :mod:`repro.sim` -- a self-contained discrete-event simulation engine.
* :mod:`repro.gpu` -- a Kepler-class GPU model (SMX array, LEFTOVER thread
  block scheduler, per-direction DMA engines, Hyper-Q queue fabric, power).
* :mod:`repro.apps` -- the four ported Rodinia 3.0 applications (Table I),
  each with a validated numpy reference implementation and the simulator
  workload descriptors from Table III.
* :mod:`repro.framework` -- the paper's Hyper-Q Management Framework
  (Stream, StreamManager, Kernel base class, PowerMonitor, scheduling
  orders, transfer synchronization, test harness).
* :mod:`repro.resilience` -- fault injection, watchdog, retries and
  graceful concurrency degradation.
* :mod:`repro.core` -- the experiment layer reproducing every figure.
* :mod:`repro.serving` -- overload-resilient serving on the streaming
  dispatcher (bounded admission, SLO shedding, breakers, run journal).
* :mod:`repro.analysis` -- timelines, tables and statistics.

Quickstart::

    from repro import quick_run
    result = quick_run(pair=("gaussian", "needle"), num_apps=8,
                       num_streams=8, memory_sync=True)
    print(result.summary())
"""

from .version import __version__

__all__ = ["__version__"]


def __getattr__(name):
    # Lazy re-exports keep `import repro` cheap while still offering the
    # convenience surface documented in the README.
    if name in _LAZY:
        module, attr = _LAZY[name]
        import importlib

        value = getattr(importlib.import_module(module), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


_LAZY = {
    "Environment": ("repro.sim", "Environment"),
    "GPUDevice": ("repro.gpu", "GPUDevice"),
    "DeviceSpec": ("repro.gpu", "DeviceSpec"),
    "tesla_k20": ("repro.gpu", "tesla_k20"),
    "fermi_c2050": ("repro.gpu", "fermi_c2050"),
    "KernelDescriptor": ("repro.gpu", "KernelDescriptor"),
    "TraceRecorder": ("repro.sim", "TraceRecorder"),
    "Workload": ("repro.core", "Workload"),
    "ExperimentRunner": ("repro.core", "ExperimentRunner"),
    "RunConfig": ("repro.core", "RunConfig"),
    "RunResult": ("repro.core", "RunResult"),
    "quick_run": ("repro.core", "quick_run"),
    "get_app": ("repro.apps", "get_app"),
    "list_apps": ("repro.apps", "list_apps"),
    "SchedulingOrder": ("repro.framework", "SchedulingOrder"),
    "make_schedule": ("repro.framework", "make_schedule"),
    "TestHarness": ("repro.framework", "TestHarness"),
    "ServingConfig": ("repro.serving", "ServingConfig"),
    "BreakerConfig": ("repro.serving", "BreakerConfig"),
    "RunJournal": ("repro.serving", "RunJournal"),
    "run_serving": ("repro.serving", "run_serving"),
}
