"""Ported Rodinia 3.0 applications (paper Table I / Table III).

Each module carries a validated numpy reference implementation of the
benchmark's algorithm *and* the declarative simulator workload with the
exact launch geometry of Table III:

========  =================================  ==========================
name      benchmark                          kernels
========  =================================  ==========================
gaussian  Gaussian Elimination               Fan1, Fan2
nn        k-Nearest Neighbors                euclid
needle    Needleman-Wunsch                   needle_cuda_shared_1 / _2
srad      Speckle reducing anisotropic diff  srad_cuda_1 / _2
========  =================================  ==========================
"""

from .base import CALIBRATION, Calibration, RodiniaApp
from .gaussian import GaussianApp
from .needle import NeedleApp
from .nn import NNApp
from .registry import (
    APP_CLASSES,
    TABLE_I,
    all_pairs,
    get_app,
    get_app_class,
    list_apps,
    register_app,
)
from .srad import SradApp

__all__ = [
    "RodiniaApp",
    "Calibration",
    "CALIBRATION",
    "GaussianApp",
    "NNApp",
    "NeedleApp",
    "SradApp",
    "APP_CLASSES",
    "TABLE_I",
    "get_app",
    "get_app_class",
    "list_apps",
    "register_app",
    "all_pairs",
]
