"""Rodinia ``srad_v2`` — Speckle Reducing Anisotropic Diffusion.

SRAD (Yu & Acton, 2002) denoises ultrasound/radar images while preserving
edges.  Each iteration runs two device-filling kernels over the image
(Table III: 32x32 grids of 16x16 blocks, 1024 blocks of 256 threads,
10 iterations):

* ``srad_cuda_1`` — directional differences and the diffusion coefficient
  ``c`` from the instantaneous coefficient of variation;
* ``srad_cuda_2`` — divergence and the image update.

Execution pattern: the host reads back the ROI statistics buffer each
iteration to update ``q0sqr`` (the noise estimate), giving srad the
"iteration over a sequence of kernels, with memory transfers inside the
iteration loop" shape the paper calls out in Section III-C as an ideal
co-tenant for compute-oversubscribing applications.

Reference implementation: :func:`srad_step` / :func:`srad` vectorize the
exact kernel arithmetic (clamped-boundary differences, Rodinia's q0sqr
update) and are validated against a naive per-pixel loop in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..framework.kernel import (
    AppProfile,
    Buffer,
    HostComputePhase,
    KernelPhase,
    SyncPhase,
    TransferPhase,
)
from ..gpu.commands import CopyDirection
from ..gpu.kernels import Dim3, KernelDescriptor
from .base import CALIBRATION, FLOAT_BYTES, Calibration, RodiniaApp

__all__ = ["SradApp", "srad", "srad_step", "make_image"]

#: Paper problem size (Table III: "512 x 512").
DEFAULT_N = 512
#: Paper iteration count (Table III: 10 calls per kernel).
DEFAULT_ITERATIONS = 10
#: Tile edge (Table III: block (16, 16, 1)).
TILE = 16


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def make_image(
    shape: Tuple[int, int],
    rng: Optional[np.random.Generator] = None,
    noise: float = 0.15,
) -> np.ndarray:
    """A synthetic speckled test image: smooth ramp x multiplicative noise.

    Multiplicative (speckle) noise is the degradation SRAD is designed for.
    """
    rng = rng or np.random.default_rng(0)
    rows, cols = shape
    base = 0.5 + 0.4 * np.sin(np.linspace(0, 3 * np.pi, rows))[:, None]
    base = base * (0.6 + 0.4 * np.cos(np.linspace(0, 2 * np.pi, cols))[None, :])
    speckle = rng.normal(1.0, noise, size=shape)
    return np.clip(base * speckle, 1e-3, None)


def _clamped_diffs(j: np.ndarray):
    """dN/dS/dW/dE with replicated (clamped) boundaries, like the kernel."""
    dn = np.vstack([j[:1] - j[:1], j[:-1] - j[1:]])          # north: row i-1 - row i
    ds = np.vstack([j[1:] - j[:-1], j[-1:] - j[-1:]])        # south: row i+1 - row i
    dw = np.hstack([j[:, :1] - j[:, :1], j[:, :-1] - j[:, 1:]])
    de = np.hstack([j[:, 1:] - j[:, :-1], j[:, -1:] - j[:, -1:]])
    return dn, ds, dw, de


def srad_step(j: np.ndarray, q0sqr: float, lam: float) -> np.ndarray:
    """One SRAD iteration (= one ``srad_cuda_1`` + ``srad_cuda_2`` pair)."""
    j = np.asarray(j, dtype=np.float64)
    if np.any(j <= 0):
        raise ValueError("SRAD requires a strictly positive image")
    dn, ds, dw, de = _clamped_diffs(j)

    # Kernel 1: diffusion coefficient from the instantaneous CoV.
    g2 = (dn * dn + ds * ds + dw * dw + de * de) / (j * j)
    l = (dn + ds + dw + de) / j
    num = 0.5 * g2 - 0.0625 * l * l
    den = (1.0 + 0.25 * l) ** 2
    qsqr = num / den
    c = 1.0 / (1.0 + (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr)))
    c = np.clip(c, 0.0, 1.0)

    # Kernel 2: divergence with the coefficient at the "far" neighbour for
    # south/east, as in the CUDA source, then the update.
    c_s = np.vstack([c[1:], c[-1:]])
    c_e = np.hstack([c[:, 1:], c[:, -1:]])
    d = c * dn + c_s * ds + c * dw + c_e * de
    return j + 0.25 * lam * d


def srad(
    image: np.ndarray,
    lam: float = 0.5,
    iterations: int = DEFAULT_ITERATIONS,
    roi: Optional[Tuple[slice, slice]] = None,
) -> np.ndarray:
    """Full SRAD pipeline with the per-iteration host q0sqr update.

    ``roi`` is the homogeneous region used to estimate the speckle scale
    (Rodinia uses a fixed corner window); defaults to the whole image.
    """
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    j = np.asarray(image, dtype=np.float64).copy()
    roi = roi or (slice(None), slice(None))
    for _ in range(iterations):
        sample = j[roi]
        mean = float(sample.mean())
        var = float(sample.var())
        q0sqr = var / (mean * mean)
        if q0sqr <= 0:
            break  # fully homogeneous: diffusion has converged
        j = srad_step(j, q0sqr, lam)
    return j


# ---------------------------------------------------------------------------
# Simulator workload
# ---------------------------------------------------------------------------

class SradApp(RodiniaApp):
    """The ``srad`` application instance for the harness."""

    benchmark = "Speckle reducing anisotropic diffusion"
    kernel_names = ("srad_cuda_1", "srad_cuda_2")

    @staticmethod
    def run_reference(
        n: int = 64, iterations: int = 10, lam: float = 0.5, seed: int = 0
    ) -> dict:
        """Execute the real filter end to end; verifiable summary."""
        rng = np.random.default_rng(seed)
        image = make_image((n, n), rng, noise=0.2)
        filtered = srad(image, lam=lam, iterations=iterations)

        def roughness(img: np.ndarray) -> float:
            return float(
                np.abs(np.diff(img, axis=0)).mean()
                + np.abs(np.diff(img, axis=1)).mean()
            )

        before, after = roughness(image), roughness(filtered)
        return {
            "n": n,
            "iterations": iterations,
            "roughness_before": before,
            "roughness_after": after,
            "smoothing_pct": (1.0 - after / before) * 100.0,
        }

    @classmethod
    def build_profile(
        cls,
        n: int = DEFAULT_N,
        iterations: int = DEFAULT_ITERATIONS,
        calibration: Calibration = CALIBRATION,
    ) -> AppProfile:
        """Profile for an ``n x n`` image over ``iterations`` steps."""
        if n < TILE:
            raise ValueError(f"n must be >= {TILE}")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        tiles = -(-n // TILE)
        image_bytes = n * n * FLOAT_BYTES
        # Per-iteration ROI statistics readback (partial sums per tile row).
        stats_bytes = max(tiles * 2 * FLOAT_BYTES, 64)

        def launch(name: str, duration: float) -> KernelDescriptor:
            return KernelDescriptor(
                name=name,
                grid=Dim3(tiles, tiles, 1),
                block=Dim3(TILE, TILE, 1),
                registers_per_thread=22,
                # Kernel 1 stages the tile plus halo columns in shared memory.
                shared_mem_per_block=(TILE * TILE + 2 * TILE) * FLOAT_BYTES,
                block_duration=duration,
            )

        k1 = launch("srad_cuda_1", calibration.srad1_block)
        k2 = launch("srad_cuda_2", calibration.srad2_block)

        phases = [
            TransferPhase(
                CopyDirection.HTOD,
                (Buffer("J", image_bytes), Buffer("c", image_bytes)),
            ),
        ]
        for _ in range(iterations):
            phases.append(KernelPhase((k1, k2)))
            # Host reads the statistics buffer back and recomputes q0sqr
            # before it may launch the next iteration: a synchronous round
            # trip (cudaMemcpy of the sums + host reduction).
            phases.append(
                TransferPhase(CopyDirection.DTOH, (Buffer("sums", stats_bytes),))
            )
            phases.append(SyncPhase())
            phases.append(HostComputePhase(8e-6, label="q0sqr-update"))
        phases.append(
            TransferPhase(CopyDirection.DTOH, (Buffer("J", image_bytes),))
        )

        return AppProfile(
            name="srad",
            data_dim=f"{n} x {n}",
            host_allocs=(
                Buffer("J", image_bytes),
                Buffer("c", image_bytes),
            ),
            device_allocs=(
                Buffer("J_cuda", image_bytes),
                Buffer("C_cuda", image_bytes),
                Buffer("E_W_N_S", 4 * image_bytes),
                Buffer("sums", stats_bytes),
            ),
            phases=tuple(phases),
            init_cost=350e-6,
        )
