"""Application registry: name -> app class (paper Table I).

The harness and experiment layer look applications up by the Table I
"Kernel Name" strings (``gaussian``, ``nn``, ``needle``, ``srad``).  Third
party applications can register through :func:`register_app`, which is the
extensibility story the paper's conclusion advertises ("readily extensible
for additional applications").
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from .base import RodiniaApp
from .gaussian import GaussianApp
from .needle import NeedleApp
from .nn import NNApp
from .srad import SradApp

__all__ = [
    "APP_CLASSES",
    "get_app_class",
    "get_app",
    "list_apps",
    "register_app",
    "all_pairs",
    "TABLE_I",
]

#: Table I — Ported Rodinia 3.0 applications.
TABLE_I: Tuple[Tuple[str, str], ...] = (
    ("Gaussian Elimination", "gaussian"),
    ("k-Nearest Neighbors", "nn"),
    ("Needleman-Wunsch", "nw"),
    ("Speckle reducing anisotropic diffusion", "srad_v2"),
)

APP_CLASSES: Dict[str, Type[RodiniaApp]] = {
    "gaussian": GaussianApp,
    "nn": NNApp,
    "needle": NeedleApp,
    "srad": SradApp,
}


def register_app(name: str, app_class: Type[RodiniaApp]) -> None:
    """Add (or replace) an application class under ``name``."""
    if not issubclass(app_class, RodiniaApp):
        raise TypeError(f"{app_class!r} is not a RodiniaApp subclass")
    APP_CLASSES[name] = app_class


def get_app_class(name: str) -> Type[RodiniaApp]:
    """Look up an application class by its Table I kernel name."""
    try:
        return APP_CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(APP_CLASSES)}"
        ) from None


def get_app(name: str, instance: int = 0, **kwargs) -> RodiniaApp:
    """Instantiate application ``name`` with profile options ``kwargs``."""
    return get_app_class(name).create(instance=instance, **kwargs)


def list_apps() -> List[str]:
    """Registered application names, sorted."""
    return sorted(APP_CLASSES)


def all_pairs() -> List[Tuple[str, str]]:
    """The six heterogeneous pairings evaluated in Figure 4 (and 7-10)."""
    names = list_apps()
    return [
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i + 1, len(names))
    ]
