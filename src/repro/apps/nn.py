"""Rodinia ``nn`` — k-Nearest Neighbors (Table I / Table III).

The benchmark streams a database of hurricane records (latitude/longitude
pairs) to the device, computes the Euclidean distance of every record to a
target location with a single ``euclid`` kernel launch, copies the distance
array back, and selects the ``k`` smallest on the host.

With the paper's 42 764 records the kernel is a single launch of 168 blocks
x 256 threads — two scheduling waves — while the transfers dominate the
application's wall time: ``nn`` is the workload that makes DMA-engine
contention visible.

Reference implementation: :func:`euclid_distances` (the kernel body) and
:func:`find_nearest` (kernel + host selection), validated against a brute
force oracle and ``scipy.spatial`` in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..framework.kernel import AppProfile, Buffer, KernelPhase, TransferPhase
from ..gpu.commands import CopyDirection
from ..gpu.kernels import Dim3, KernelDescriptor
from .base import CALIBRATION, FLOAT_BYTES, Calibration, RodiniaApp

__all__ = ["NNApp", "euclid_distances", "find_nearest", "make_records"]

#: Paper problem size (Table III: "42764" records).
DEFAULT_RECORDS = 42764
#: Threads per block for ``euclid`` (Table III: block (256, 1, 1)).
EUCLID_BLOCK = 256
#: One record on the device: a float2 (latitude, longitude).
RECORD_BYTES = 2 * FLOAT_BYTES


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def make_records(
    count: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Random (lat, lng) records shaped ``(count, 2)`` (float32).

    Mirrors the value ranges of Rodinia's hurricane database generator
    (latitude 0..63, longitude 0..127).
    """
    rng = rng or np.random.default_rng(0)
    lat = rng.uniform(0.0, 63.0, size=count)
    lng = rng.uniform(0.0, 127.0, size=count)
    return np.stack([lat, lng], axis=1).astype(np.float32)


def euclid_distances(
    records: np.ndarray, target_lat: float, target_lng: float
) -> np.ndarray:
    """The ``euclid`` kernel body: distance of every record to the target."""
    records = np.asarray(records, dtype=np.float32)
    if records.ndim != 2 or records.shape[1] != 2:
        raise ValueError(f"records must be (n, 2), got {records.shape}")
    d_lat = records[:, 0] - np.float32(target_lat)
    d_lng = records[:, 1] - np.float32(target_lng)
    return np.sqrt(d_lat * d_lat + d_lng * d_lng)


def find_nearest(
    records: np.ndarray,
    target_lat: float,
    target_lng: float,
    k: int = 10,
) -> Tuple[np.ndarray, np.ndarray]:
    """Kernel + host selection: indices and distances of the k nearest.

    Results are sorted by ascending distance (ties broken by index, making
    the output deterministic for the tests).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    distances = euclid_distances(records, target_lat, target_lng)
    k = min(k, distances.shape[0])
    # argpartition (the efficient host-side selection), then exact ordering.
    candidates = np.argpartition(distances, k - 1)[:k]
    order = np.lexsort((candidates, distances[candidates]))
    idx = candidates[order]
    return idx, distances[idx]


# ---------------------------------------------------------------------------
# Simulator workload
# ---------------------------------------------------------------------------

class NNApp(RodiniaApp):
    """The ``nn`` application instance for the harness."""

    benchmark = "k-Nearest Neighbors"
    kernel_names = ("euclid",)

    @staticmethod
    def run_reference(
        records: int = 4096, k: int = 5, seed: int = 0
    ) -> dict:
        """Execute the real query end to end; verifiable summary."""
        rng = np.random.default_rng(seed)
        data = make_records(records, rng)
        target = (float(rng.uniform(0, 63)), float(rng.uniform(0, 127)))
        idx, dist = find_nearest(data, *target, k=k)
        return {
            "records": records,
            "k": int(len(idx)),
            "nearest_index": int(idx[0]),
            "nearest_distance": float(dist[0]),
            "max_returned_distance": float(dist[-1]),
        }

    @classmethod
    def build_profile(
        cls,
        records: int = DEFAULT_RECORDS,
        calibration: Calibration = CALIBRATION,
    ) -> AppProfile:
        """Profile for a database of ``records`` entries."""
        if records < 1:
            raise ValueError("records must be >= 1")
        blocks = -(-records // EUCLID_BLOCK)
        euclid = KernelDescriptor(
            name="euclid",
            grid=Dim3(blocks, 1, 1),
            block=Dim3(EUCLID_BLOCK, 1, 1),
            registers_per_thread=12,
            shared_mem_per_block=0,
            block_duration=calibration.euclid_block,
        )
        locations_bytes = records * RECORD_BYTES
        distances_bytes = records * FLOAT_BYTES
        return AppProfile(
            name="nn",
            data_dim=str(records),
            host_allocs=(
                Buffer("locations", locations_bytes),
                Buffer("distances", distances_bytes),
            ),
            device_allocs=(
                Buffer("d_locations", locations_bytes),
                Buffer("d_distances", distances_bytes),
            ),
            phases=(
                TransferPhase(
                    CopyDirection.HTOD, (Buffer("locations", locations_bytes),)
                ),
                KernelPhase((euclid,)),
                TransferPhase(
                    CopyDirection.DTOH, (Buffer("distances", distances_bytes),)
                ),
            ),
            init_cost=400e-6,  # parsing the record database is host-heavy
        )
