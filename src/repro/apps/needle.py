"""Rodinia ``nw`` (needle) — Needleman-Wunsch sequence alignment.

The benchmark fills a ``(n+1) x (n+1)`` dynamic-programming matrix for
global sequence alignment.  The GPU version processes the matrix in 32x32
tiles along anti-diagonals: ``needle_cuda_shared_1`` sweeps the upper-left
triangle of tiles (diagonal ``i`` launches ``i`` blocks, i = 1..16 for the
paper's 512x512 problem), and ``needle_cuda_shared_2`` sweeps the
lower-right triangle (i = 15..1) — exactly the ramping grid sizes Table III
lists as ``(1,1,1) ... (16,1,1)`` and ``(15,1,1) ... (1,1,1)``.

With at most 16 blocks of 32 threads resident (512 threads — under 2% of
the K20's 26 624-thread capacity), needle is the paper's canonical
underutilizing application: Hyper-Q can overlap many needle instances at
nearly no cost, and Figure 5's oversubscription snapshot features its
kernels.

Reference implementation: :func:`nw_matrix` (anti-diagonal vectorized DP)
and :func:`nw_align` (traceback), validated against a naive double-loop DP
in the tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..framework.kernel import AppProfile, Buffer, KernelPhase, TransferPhase
from ..gpu.commands import CopyDirection
from ..gpu.kernels import Dim3, KernelDescriptor
from .base import CALIBRATION, INT_BYTES, Calibration, RodiniaApp

__all__ = ["NeedleApp", "nw_matrix", "nw_score", "nw_align", "make_sequences"]

#: Paper problem size (Table III: "512 x 512").
DEFAULT_N = 512
#: Tile edge: BLOCK_SIZE in the CUDA source; Table III block dim (32, 1, 1).
TILE = 32


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def make_sequences(
    n: int, rng: Optional[np.random.Generator] = None, alphabet: int = 23
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random sequences plus a random substitution (reference) matrix.

    Rodinia seeds the DP matrix's first row/column with random sequence
    codes and scores matches through a BLOSUM-like table; we reproduce that
    with a symmetric random integer table over ``alphabet`` symbols.
    """
    rng = rng or np.random.default_rng(0)
    seq1 = rng.integers(1, alphabet, size=n)
    seq2 = rng.integers(1, alphabet, size=n)
    blosum = rng.integers(-4, 5, size=(alphabet, alphabet))
    blosum = np.minimum(blosum, blosum.T)  # symmetric substitution scores
    return seq1, seq2, blosum


def nw_matrix(
    seq1: np.ndarray,
    seq2: np.ndarray,
    blosum: np.ndarray,
    penalty: int = 10,
) -> np.ndarray:
    """Fill the NW DP matrix (anti-diagonal vectorized).

    ``M[i, j] = max(M[i-1, j-1] + ref(i, j), M[i, j-1] - p, M[i-1, j] - p)``
    with the standard gap initialization of the first row and column —
    identical cell arithmetic to the CUDA kernels, computed one
    anti-diagonal at a time (cells on an anti-diagonal are independent,
    which is also what makes the tiled GPU sweep legal).
    """
    seq1 = np.asarray(seq1)
    seq2 = np.asarray(seq2)
    if penalty < 0:
        raise ValueError("penalty is subtracted; pass it positive")
    rows, cols = len(seq1) + 1, len(seq2) + 1
    m = np.zeros((rows, cols), dtype=np.int64)
    m[0, :] = -penalty * np.arange(cols)
    m[:, 0] = -penalty * np.arange(rows)
    # Substitution score of cell (i, j): blosum[seq1[i-1], seq2[j-1]].
    ref = blosum[np.asarray(seq1)[:, None], np.asarray(seq2)[None, :]]
    for d in range(2, rows + cols - 1):
        i_lo = max(1, d - (cols - 1))
        i_hi = min(rows - 1, d - 1)
        i = np.arange(i_lo, i_hi + 1)
        j = d - i
        diag = m[i - 1, j - 1] + ref[i - 1, j - 1]
        left = m[i, j - 1] - penalty
        up = m[i - 1, j] - penalty
        m[i, j] = np.maximum(diag, np.maximum(left, up))
    return m


def nw_score(
    seq1: np.ndarray, seq2: np.ndarray, blosum: np.ndarray, penalty: int = 10
) -> int:
    """Alignment score (bottom-right DP cell)."""
    return int(nw_matrix(seq1, seq2, blosum, penalty)[-1, -1])


def nw_align(
    seq1: np.ndarray,
    seq2: np.ndarray,
    blosum: np.ndarray,
    penalty: int = 10,
) -> List[Tuple[Optional[int], Optional[int]]]:
    """Traceback: aligned index pairs, ``None`` marking gaps.

    Matches Rodinia's host-side traceback (prefer diagonal, then left,
    then up on ties).
    """
    m = nw_matrix(seq1, seq2, blosum, penalty)
    ref = blosum[np.asarray(seq1)[:, None], np.asarray(seq2)[None, :]]
    out: List[Tuple[Optional[int], Optional[int]]] = []
    i, j = len(seq1), len(seq2)
    while i > 0 or j > 0:
        if i > 0 and j > 0 and m[i, j] == m[i - 1, j - 1] + ref[i - 1, j - 1]:
            out.append((i - 1, j - 1))
            i, j = i - 1, j - 1
        elif j > 0 and m[i, j] == m[i, j - 1] - penalty:
            out.append((None, j - 1))
            j -= 1
        else:
            out.append((i - 1, None))
            i -= 1
    out.reverse()
    return out


# ---------------------------------------------------------------------------
# Simulator workload
# ---------------------------------------------------------------------------

class NeedleApp(RodiniaApp):
    """The ``needle`` application instance for the harness."""

    benchmark = "Needleman-Wunsch"
    kernel_names = ("needle_cuda_shared_1", "needle_cuda_shared_2")

    @staticmethod
    def run_reference(n: int = 48, penalty: int = 10, seed: int = 0) -> dict:
        """Execute the real alignment end to end; verifiable summary."""
        rng = np.random.default_rng(seed)
        seq1, seq2, blosum = make_sequences(n, rng)
        score = nw_score(seq1, seq2, blosum, penalty=penalty)
        alignment = nw_align(seq1, seq2, blosum, penalty=penalty)
        gaps = sum(1 for a, b in alignment if a is None or b is None)
        return {
            "n": n,
            "score": score,
            "alignment_length": len(alignment),
            "gaps": gaps,
        }

    @classmethod
    def build_profile(
        cls, n: int = DEFAULT_N, calibration: Calibration = CALIBRATION
    ) -> AppProfile:
        """Profile for an ``n x n`` alignment (default: the paper's 512)."""
        if n < TILE or n % TILE != 0:
            raise ValueError(f"n must be a positive multiple of {TILE}")
        tiles = n // TILE  # 16 for the paper's size
        matrix_bytes = (n + 1) * (n + 1) * INT_BYTES

        # Shared memory per block: the CUDA kernel stages a (TILE+1)^2 input
        # tile plus a TILE^2 reference tile.
        shared = ((TILE + 1) * (TILE + 1) + TILE * TILE) * INT_BYTES

        def launch(name: str, blocks: int) -> KernelDescriptor:
            return KernelDescriptor(
                name=name,
                grid=Dim3(blocks, 1, 1),
                block=Dim3(TILE, 1, 1),
                registers_per_thread=24,
                shared_mem_per_block=shared,
                block_duration=calibration.needle_block,
            )

        launches = [
            launch("needle_cuda_shared_1", i) for i in range(1, tiles + 1)
        ] + [
            launch("needle_cuda_shared_2", i) for i in range(tiles - 1, 0, -1)
        ]

        return AppProfile(
            name="needle",
            data_dim=f"{n} x {n}",
            host_allocs=(
                Buffer("input_itemsets", matrix_bytes),
                Buffer("reference", matrix_bytes),
            ),
            device_allocs=(
                Buffer("matrix_cuda", matrix_bytes),
                Buffer("reference_cuda", matrix_bytes),
            ),
            phases=(
                TransferPhase(
                    CopyDirection.HTOD,
                    (
                        Buffer("reference", matrix_bytes),
                        Buffer("input_itemsets", matrix_bytes),
                    ),
                ),
                KernelPhase(tuple(launches)),
                TransferPhase(
                    CopyDirection.DTOH, (Buffer("input_itemsets", matrix_bytes),)
                ),
            ),
            init_cost=300e-6,
        )
