"""Common machinery for the ported Rodinia 3.0 applications (Table I).

Each application module provides two things, mirroring how the paper's
framework "logically groups sections of the benchmark into class methods"
without modifying the kernels themselves:

1. A **numpy reference implementation** of the benchmark's algorithm,
   validated against an independent oracle in the test suite.  This keeps
   the ported applications *real programs*, not just timing stubs.
2. A :class:`RodiniaApp` subclass whose :meth:`build_profile` produces the
   declarative :class:`~repro.framework.kernel.AppProfile` — launch
   geometry exactly as in Table III, buffer sizes from the benchmark's data
   layout, and per-block durations from the calibrated cost model in
   :data:`CALIBRATION`.

Scaling: every ``build_profile`` takes the problem size as a parameter with
the paper's value as default, so tests can run reduced sizes while the
benchmark harness runs Table III sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..framework.kernel import KernelApp

__all__ = ["RodiniaApp", "Calibration", "CALIBRATION", "FLOAT_BYTES", "INT_BYTES"]

FLOAT_BYTES = 4
INT_BYTES = 4


@dataclass(frozen=True)
class Calibration:
    """Per-block kernel durations (seconds) for the cost model.

    Values are calibrated so that each application's *relative* behaviour
    matches its Rodinia characterization on Kepler-class hardware:

    * ``gaussian`` — long-running and compute-dominant, but alternating a
      1-block ``Fan1`` (device nearly idle) with a device-filling ``Fan2``.
    * ``needle`` — tiny grids (at most 16 blocks of 32 threads: under 2% of
      the K20's thread capacity), the paper's canonical underutilizer.
    * ``srad`` — device-filling compute in short bursts with a host round
      trip per iteration.
    * ``nn`` — a single short kernel; transfer-dominated overall.

    Absolute values are not load-bearing (the paper's own numbers come from
    one specific testbed); experiments report relative improvements.
    """

    fan1_block: float = 3.0e-6
    fan2_block: float = 4.0e-6
    needle_block: float = 15.0e-6
    srad1_block: float = 6.0e-6
    srad2_block: float = 6.0e-6
    euclid_block: float = 6.0e-6


#: Default calibration used by every app factory.
CALIBRATION = Calibration()


class RodiniaApp(KernelApp):
    """Base class for the four ported benchmarks.

    Adds to :class:`~repro.framework.kernel.KernelApp`:

    * ``benchmark`` / ``kernel_names`` class attributes matching Table I;
    * :meth:`workload_summary` — the Table III row data for reports.
    """

    #: Table I "CUDA Benchmark Name".
    benchmark: str = ""
    #: Kernel symbols this app launches (Table III "Kernel Name").
    kernel_names: Tuple[str, ...] = ()

    @classmethod
    def workload_summary(cls, **kwargs) -> Dict[str, object]:
        """Table III-style geometry summary for this app's profile."""
        profile = cls.build_profile(**kwargs)
        kernels: Dict[str, Dict[str, object]] = {}
        from ..framework.kernel import KernelPhase

        for phase in profile.phases:
            if not isinstance(phase, KernelPhase):
                continue
            for kd in phase.descriptors:
                entry = kernels.setdefault(
                    kd.name,
                    {
                        "calls": 0,
                        "grid_dims": set(),
                        "block_dim": kd.block.as_tuple(),
                        "threads_per_block": kd.threads_per_block,
                        "max_blocks": 0,
                    },
                )
                entry["calls"] += 1
                entry["grid_dims"].add(kd.grid.as_tuple())
                entry["max_blocks"] = max(entry["max_blocks"], kd.num_blocks)
        return {
            "name": profile.name,
            "data_dim": profile.data_dim,
            "htod_bytes": profile.htod_bytes,
            "dtoh_bytes": profile.dtoh_bytes,
            "kernel_launches": profile.kernel_launches,
            "kernels": kernels,
        }
