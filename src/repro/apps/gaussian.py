"""Rodinia ``gaussian`` — Gaussian elimination (Table I / Table III).

The benchmark solves a dense linear system ``a x = b`` by forward
elimination on the GPU followed by back substitution on the host.  Two
kernels alternate for ``n - 1`` iterations:

* ``Fan1`` — computes the multiplier column ``m[i][t] = a[i][t] / a[t][t]``;
  launched as a *single* thread block of 512 threads (Table III), leaving
  the rest of the device idle — this is why gaussian benefits from
  concurrent co-tenants.
* ``Fan2`` — rank-1 update of the trailing submatrix; a 32x32 grid of
  16x16 blocks (1024 blocks of 256 threads) that fills the device for
  several scheduling waves.

Reference implementation: :func:`forward_eliminate` / :func:`solve`
replicate the kernels' arithmetic with numpy and are validated against
``numpy.linalg.solve`` in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..framework.kernel import (
    AppProfile,
    Buffer,
    KernelPhase,
    TransferPhase,
)
from ..gpu.commands import CopyDirection
from ..gpu.kernels import Dim3, KernelDescriptor
from .base import CALIBRATION, FLOAT_BYTES, Calibration, RodiniaApp

__all__ = [
    "GaussianApp",
    "forward_eliminate",
    "back_substitute",
    "solve",
    "make_test_system",
]

#: Paper problem size (Table III: "512 x 512").
DEFAULT_N = 512
#: Fan1's one-dimensional block size (Table III: block (512, 1, 1)).
FAN1_BLOCK = 512
#: Fan2's tile edge (Table III: block (16, 16, 1)).
FAN2_TILE = 16


# ---------------------------------------------------------------------------
# Reference implementation (validated against numpy.linalg.solve)
# ---------------------------------------------------------------------------

def make_test_system(
    n: int, rng: Optional[np.random.Generator] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """A well-conditioned (diagonally dominant) random system.

    Rodinia's generator also produces diagonally dominant matrices so that
    elimination without pivoting — which is what Fan1/Fan2 implement — is
    numerically stable.
    """
    rng = rng or np.random.default_rng(0)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.diag_indices(n)] = np.abs(a).sum(axis=1) + 1.0
    b = rng.uniform(-1.0, 1.0, size=n)
    return a, b


def forward_eliminate(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fan1/Fan2 forward elimination (no pivoting).

    Returns ``(m, a_tri, b_mod)``: the multiplier matrix and the upper
    triangular system.  Iteration ``t`` performs exactly what one
    ``Fan1`` + ``Fan2`` launch pair performs on the device.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    b = np.array(b, dtype=np.float64, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"need a square matrix, got {a.shape}")
    if b.shape != (a.shape[0],):
        raise ValueError(f"rhs shape {b.shape} does not match {a.shape}")
    n = a.shape[0]
    m = np.zeros_like(a)
    for t in range(n - 1):
        pivot = a[t, t]
        if pivot == 0.0:
            raise ZeroDivisionError(f"zero pivot at step {t} (no pivoting)")
        # Fan1: multiplier column.
        m[t + 1 :, t] = a[t + 1 :, t] / pivot
        # Fan2: rank-1 update of the trailing rows (and the rhs).
        a[t + 1 :, t:] -= np.outer(m[t + 1 :, t], a[t, t:])
        b[t + 1 :] -= m[t + 1 :, t] * b[t]
    return m, a, b


def back_substitute(a_tri: np.ndarray, b_mod: np.ndarray) -> np.ndarray:
    """Host-side back substitution over the triangular system."""
    n = a_tri.shape[0]
    x = np.zeros(n, dtype=np.float64)
    for i in range(n - 1, -1, -1):
        x[i] = (b_mod[i] - a_tri[i, i + 1 :] @ x[i + 1 :]) / a_tri[i, i]
    return x


def solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full benchmark pipeline: eliminate on 'device', substitute on host."""
    _, a_tri, b_mod = forward_eliminate(a, b)
    return back_substitute(a_tri, b_mod)


# ---------------------------------------------------------------------------
# Simulator workload (Table III geometry)
# ---------------------------------------------------------------------------

class GaussianApp(RodiniaApp):
    """The ``gaussian`` application instance for the harness."""

    benchmark = "Gaussian Elimination"
    kernel_names = ("Fan1", "Fan2")

    @staticmethod
    def run_reference(n: int = 64, seed: int = 0) -> dict:
        """Execute the real algorithm end to end; verifiable summary.

        Part of the uniform functional API (every application exposes
        ``run_reference``): proof that the ported applications are real
        programs, not timing stubs.
        """
        rng = np.random.default_rng(seed)
        a, b = make_test_system(n, rng)
        x = solve(a, b)
        residual = float(np.linalg.norm(a @ x - b) / np.linalg.norm(b))
        return {"n": n, "residual": residual, "x_norm": float(np.linalg.norm(x))}

    @classmethod
    def build_profile(
        cls, n: int = DEFAULT_N, calibration: Calibration = CALIBRATION
    ) -> AppProfile:
        """Profile for an ``n x n`` system (default: the paper's 512)."""
        if n < 2:
            raise ValueError("n must be >= 2")
        matrix_bytes = n * n * FLOAT_BYTES
        vector_bytes = n * FLOAT_BYTES

        fan1 = KernelDescriptor(
            name="Fan1",
            grid=Dim3(1, 1, 1),
            block=Dim3(min(FAN1_BLOCK, _ceil_pow2(n)), 1, 1),
            registers_per_thread=14,
            shared_mem_per_block=0,
            block_duration=calibration.fan1_block,
        )
        tiles = -(-n // FAN2_TILE)
        fan2 = KernelDescriptor(
            name="Fan2",
            grid=Dim3(tiles, tiles, 1),
            block=Dim3(FAN2_TILE, FAN2_TILE, 1),
            registers_per_thread=15,
            shared_mem_per_block=0,
            block_duration=calibration.fan2_block,
        )

        # Rodinia's loop: for t in 0..n-2 { Fan1<<<>>>(t); Fan2<<<>>>(t); }.
        launches = []
        for _t in range(n - 1):
            launches.append(fan1)
            launches.append(fan2)

        return AppProfile(
            name="gaussian",
            data_dim=f"{n} x {n}",
            host_allocs=(
                Buffer("a", matrix_bytes),
                Buffer("b", vector_bytes),
                Buffer("m", matrix_bytes),
            ),
            device_allocs=(
                Buffer("a_cuda", matrix_bytes),
                Buffer("b_cuda", vector_bytes),
                Buffer("m_cuda", matrix_bytes),
            ),
            phases=(
                TransferPhase(
                    CopyDirection.HTOD,
                    (
                        Buffer("a", matrix_bytes),
                        Buffer("b", vector_bytes),
                        Buffer("m", matrix_bytes),
                    ),
                ),
                KernelPhase(tuple(launches)),
                TransferPhase(
                    CopyDirection.DTOH,
                    (
                        Buffer("a", matrix_bytes),
                        Buffer("b", vector_bytes),
                    ),
                ),
            ),
            init_cost=250e-6,
        )


def _ceil_pow2(n: int) -> int:
    """Smallest power of two >= n (Fan1 sizes its block this way)."""
    p = 1
    while p < n:
        p *= 2
    return p
