"""Multi-window SLO burn-rate monitors on the simulation clock.

Classic SRE error-budget alerting (the 1h/6h multi-window pattern),
scaled to simulated time: the serving layer grants an error budget —
a fraction of arrivals allowed to miss their deadline — and the monitor
watches how fast the budget burns.  ``burn rate = observed bad fraction
/ budget``; a burn rate of 1.0 spends exactly the budget over the
period, 14.4 spends a 30-day budget in 2 days.

Each configured window is a ``(short, long, threshold)`` triple: the
alert fires only when *both* the short and the long lookback exceed the
threshold — the short window makes the alert fast, the long window keeps
a transient blip from paging.  Alerts resolve symmetrically when both
windows drop back under.

Alert records are plain dicts, appended to :attr:`BurnRateMonitor.
alerts` in simulation order and — when the caller binds a journal —
written through it immediately, so an alert stream survives a harness
crash and replays byte-identically on resume.  Timestamps use the
``"t"`` key so the integrity scanner's clock-regression probe covers
alert journals too.

Everything is a pure function of the observed outcome sequence: no wall
clock, no randomness, deterministic across replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["BurnRateConfig", "BurnRateMonitor"]


@dataclass(frozen=True)
class BurnRateConfig:
    """Error budget plus multi-window alert policy.

    ``windows`` holds ``(short, long, threshold)`` triples in simulation
    seconds.  The defaults mirror the canonical fast-page / slow-ticket
    pair, scaled to millisecond-class serving runs.
    """

    #: Fraction of arrivals allowed to miss their deadline.
    budget: float = 0.05
    #: ``(short_window_s, long_window_s, burn_rate_threshold)`` triples.
    windows: Tuple[Tuple[float, float, float], ...] = (
        (1e-3, 6e-3, 14.4),
        (3e-3, 18e-3, 6.0),
    )
    #: Ignore windows holding fewer observations than this (cold start).
    min_events: int = 5


class BurnRateMonitor:
    """Streaming multi-window burn-rate evaluator.

    Engines call :meth:`observe` once per terminal outcome (in
    simulation-time order); the monitor re-evaluates every window and
    emits ``alert`` / ``alert-resolved`` records on state transitions.
    """

    def __init__(
        self,
        config: Optional[BurnRateConfig] = None,
        journal=None,
        token=None,
    ) -> None:
        self.config = config or BurnRateConfig()
        if self.config.budget <= 0:
            raise ValueError("error budget must be positive")
        #: Journal duck type (``record(entry)`` or fenced
        #: ``record(entry, token=...)``); bound by the serving layer.
        self.journal = journal
        #: Fence token presented with every journaled alert record.
        self.token = token
        #: Alert / alert-resolved records in simulation order.
        self.alerts: List[dict] = []
        self.observed: int = 0
        self.bad: int = 0
        self._events: List[Tuple[float, int]] = []  # (time, bad?)
        self._active = [False] * len(self.config.windows)

    # -- observation -------------------------------------------------------

    def observe(self, now: float, good: bool) -> None:
        """Feed one terminal outcome at simulation time ``now``."""
        now = float(now)
        self.observed += 1
        if not good:
            self.bad += 1
        self._events.append((now, 0 if good else 1))
        horizon = max(long for _, long, _ in self.config.windows or [(0, 0, 0)])
        cutoff = now - horizon
        while self._events and self._events[0][0] < cutoff:
            self._events.pop(0)
        for i, (short, long, threshold) in enumerate(self.config.windows):
            burn_short, n_short = self._burn(now, short)
            burn_long, _ = self._burn(now, long)
            firing = (
                n_short >= self.config.min_events
                and burn_short >= threshold
                and burn_long >= threshold
            )
            if firing and not self._active[i]:
                self._active[i] = True
                self._emit("alert", now, i, burn_short, burn_long)
            elif self._active[i] and not firing:
                self._active[i] = False
                self._emit("alert-resolved", now, i, burn_short, burn_long)

    def _burn(self, now: float, window: float) -> Tuple[float, int]:
        """(burn rate, sample count) over ``[now - window, now]``."""
        cutoff = now - window
        total = bad = 0
        for t, is_bad in reversed(self._events):
            if t < cutoff:
                break
            total += 1
            bad += is_bad
        if total == 0:
            return 0.0, 0
        return (bad / total) / self.config.budget, total

    def _emit(
        self, event: str, now: float, index: int,
        burn_short: float, burn_long: float,
    ) -> None:
        short, long, threshold = self.config.windows[index]
        record = {
            "event": event,
            "t": float(now),
            "window": index,
            "short": short,
            "long": long,
            "threshold": threshold,
            "burn_short": burn_short,
            "burn_long": burn_long,
        }
        self.alerts.append(record)
        if self.journal is not None:
            if self.token is not None:
                self.journal.record(record, token=self.token)
            else:
                self.journal.record(record)

    # -- summary -----------------------------------------------------------

    @property
    def firing(self) -> bool:
        """True while any window's alert is active."""
        return any(self._active)

    def summary(self) -> dict:
        return {
            "observed": self.observed,
            "bad": self.bad,
            "alerts": sum(1 for a in self.alerts if a["event"] == "alert"),
            "firing": self.firing,
        }
