"""Unified telemetry: registry, sampler, probes, exporters, trajectory.

Usage sketch::

    from repro.telemetry import Telemetry

    telemetry = Telemetry()                  # one per run (or shared)
    result = quick_run(..., telemetry=telemetry)
    print(generate_latest(telemetry.registry))       # Prometheus text
    write_jsonl(telemetry.snapshots, "metrics.jsonl")

Every integration point in the simulator takes ``telemetry=None`` and
skips all instrumentation when it stays ``None`` — disabled runs are
byte-identical to a build that never heard of this package.
"""

from .exporters import (
    TELEMETRY_PID,
    generate_latest,
    snapshots_to_counter_events,
    snapshots_to_jsonl,
    write_jsonl,
)
from .burnrate import BurnRateConfig, BurnRateMonitor
from .console import metrics_table, sparkline
from .httpd import CONTENT_TYPE_LATEST, MetricsServer
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    OVERFLOW_LABEL,
    OVERFLOW_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from .sampler import DEFAULT_SAMPLE_INTERVAL, Sampler, Snapshot, Telemetry
from .tracing import (
    ENGINE_CATEGORIES,
    TRACING_PID,
    WAIT_CATEGORIES,
    Span,
    SpanContext,
    Tracer,
    Tracing,
    spans_to_chrome_events,
    spans_to_otlp_jsonl,
    write_otlp_jsonl,
)
from .trajectory import load_trajectory, record_trajectory_point

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "OVERFLOW_LABEL",
    "OVERFLOW_METRIC",
    "Sampler",
    "Snapshot",
    "Telemetry",
    "DEFAULT_SAMPLE_INTERVAL",
    "generate_latest",
    "snapshots_to_jsonl",
    "snapshots_to_counter_events",
    "write_jsonl",
    "TELEMETRY_PID",
    "MetricsServer",
    "CONTENT_TYPE_LATEST",
    "metrics_table",
    "sparkline",
    "record_trajectory_point",
    "load_trajectory",
    "Tracing",
    "Tracer",
    "Span",
    "SpanContext",
    "TRACING_PID",
    "WAIT_CATEGORIES",
    "ENGINE_CATEGORIES",
    "spans_to_chrome_events",
    "spans_to_otlp_jsonl",
    "write_otlp_jsonl",
    "BurnRateConfig",
    "BurnRateMonitor",
]
