"""Sim-clock-driven sampler and the :class:`Telemetry` facade.

The sampler mirrors the framework's ``PowerMonitor`` lifecycle (paper
Section III-E): a simulated process that ticks at a fixed interval,
``start()``-ed before the workload and ``stop()``-ped when the workload
drains so the trailing ``env.run()`` settle terminates.  Each tick runs
the registered *probes* — zero-argument callables that pull live state
(queue depths, occupancy, watts) into the registry — then records a
:class:`Snapshot` of the whole registry keyed to simulated time.

Determinism: snapshots are keyed to ``env.now`` only; no wall clock ever
enters a sample.  Probes must read simulation state, never mutate it, so
enabling telemetry cannot perturb results (pinned by
``benchmarks/bench_telemetry_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Environment
    from ..sim.process import Process

__all__ = ["Snapshot", "Sampler", "Telemetry", "DEFAULT_SAMPLE_INTERVAL"]

#: Default sampling interval — the paper's 15 ms sensor rate, shared with
#: ``framework.power_monitor.DEFAULT_INTERVAL`` so power samples and metric
#: snapshots land on the same grid.
DEFAULT_SAMPLE_INTERVAL = 15e-3

Probe = Callable[[], None]


@dataclass(frozen=True)
class Snapshot:
    """One registry snapshot at a point in simulated time."""

    time: float
    values: Dict[str, float] = field(default_factory=dict)


class Sampler:
    """Periodic registry snapshotter driven by the simulated clock."""

    def __init__(
        self,
        env: "Environment",
        registry: MetricRegistry,
        interval: float = DEFAULT_SAMPLE_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.env = env
        self.registry = registry
        self.interval = interval
        self.probes: List[Probe] = []
        self.snapshots: List[Snapshot] = []
        self._running = False
        self._process: Optional["Process"] = None

    def add_probe(self, probe: Probe) -> None:
        """Register a zero-arg callable run (in order) at every tick."""
        self.probes.append(probe)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._process = self.env.process(self._sample_loop(), name="telemetry-sampler")

    def stop(self) -> None:
        """Stop sampling after the next tick."""
        self._running = False

    def sample_now(self) -> Snapshot:
        """Run probes and snapshot immediately (used by ticks and finalize)."""
        for probe in self.probes:
            probe()
        snap = Snapshot(self.env.now, self.registry.snapshot())
        self.snapshots.append(snap)
        return snap

    def _sample_loop(self):
        while self._running:
            self.sample_now()
            yield self.env.timeout(self.interval)

    @property
    def sample_count(self) -> int:
        """Number of snapshots taken so far."""
        return len(self.snapshots)


class Telemetry:
    """Facade bundling a registry with a sampler — the object layers share.

    A ``Telemetry`` is created detached; the harness calls :meth:`attach`
    once the :class:`~repro.sim.engine.Environment` exists, layers register
    metrics/probes through it during setup, and the harness drives
    ``start()``/``stop()``/``finalize()`` around the workload.  Everything
    downstream (exporters, CLI table, dashboard) reads ``snapshots`` and
    the live ``registry``.
    """

    def __init__(self, interval: float = DEFAULT_SAMPLE_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.registry = MetricRegistry()
        self.sampler: Optional[Sampler] = None
        self._pending_probes: List[Probe] = []

    # -- registry passthrough ---------------------------------------------

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> Counter:
        """Get or create a counter on the shared registry."""
        return self.registry.counter(name, help, labelnames, max_series=max_series)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> Gauge:
        """Get or create a gauge on the shared registry."""
        return self.registry.gauge(name, help, labelnames, max_series=max_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> Histogram:
        """Get or create a histogram on the shared registry."""
        return self.registry.histogram(
            name, help, buckets, labelnames, max_series=max_series
        )

    def add_probe(self, probe: Probe) -> None:
        """Register a probe; queued until :meth:`attach` if needed."""
        if self.sampler is not None:
            self.sampler.add_probe(probe)
        else:
            self._pending_probes.append(probe)

    # -- lifecycle ---------------------------------------------------------

    def attach(self, env: "Environment") -> Sampler:
        """Bind to an environment, creating the sampler (idempotent per env).

        Re-attaching to a *different* environment starts a fresh sampler but
        keeps the registry, so a multi-run session accumulates counters while
        each run snapshots on its own clock.
        """
        if self.sampler is not None and self.sampler.env is env:
            return self.sampler
        self.sampler = Sampler(env, self.registry, self.interval)
        for probe in self._pending_probes:
            self.sampler.add_probe(probe)
        self._pending_probes = []
        return self.sampler

    def start(self) -> None:
        """Start periodic sampling (requires :meth:`attach` first)."""
        if self.sampler is None:
            raise RuntimeError("telemetry not attached to an environment")
        self.sampler.start()

    def stop(self) -> None:
        """Stop periodic sampling after the next tick."""
        if self.sampler is not None:
            self.sampler.stop()

    def finalize(self) -> Optional[Snapshot]:
        """Take one last snapshot after the run settles.

        This closing snapshot is what guarantees every exporter agrees on
        final counter values: Prometheus renders the live registry, JSONL
        and Chrome counters render snapshots, and the last snapshot *is*
        the final registry state.
        """
        if self.sampler is None:
            return None
        self.sampler.stop()
        return self.sampler.sample_now()

    # -- views -------------------------------------------------------------

    @property
    def snapshots(self) -> List[Snapshot]:
        """All snapshots taken so far (empty before :meth:`attach`)."""
        return self.sampler.snapshots if self.sampler is not None else []

    def series(self, key: str) -> List[Dict[str, float]]:
        """Time series for one flat series key across snapshots."""
        return [
            {"t": snap.time, "value": snap.values[key]}
            for snap in self.snapshots
            if key in snap.values
        ]

    def last_value(self, key: str) -> Optional[float]:
        """Value of ``key`` in the most recent snapshot, if present."""
        for snap in reversed(self.snapshots):
            if key in snap.values:
                return snap.values[key]
        return None
