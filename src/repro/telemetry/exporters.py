"""Exporters: Prometheus text exposition, JSONL snapshots, Chrome counters.

All three render the same :class:`~repro.telemetry.registry.MetricRegistry`
state (directly, or via the sampler's snapshots whose last entry *is* the
final registry state), so final counter values agree across formats — the
cross-exporter consistency guarantee pinned by
``tests/telemetry/test_exporters.py``.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Sequence

from .registry import Histogram, MetricRegistry, _format_edge
from .sampler import Snapshot

__all__ = [
    "generate_latest",
    "snapshots_to_jsonl",
    "write_jsonl",
    "snapshots_to_counter_events",
    "TELEMETRY_PID",
]

#: Chrome trace process id for telemetry counter tracks.  The GPU timeline
#: from ``analysis/chrome_trace.py`` owns pid 1; counters live in their own
#: process so Perfetto groups them under a separate expandable header.
TELEMETRY_PID = 2

_SERIES_RE = re.compile(r'^(?P<name>[^{]+)(\{(?P<labels>.*)\})?$')


def generate_latest(registry: MetricRegistry) -> str:
    """Render the registry in Prometheus text exposition format.

    Output mirrors the official client: ``# HELP``/``# TYPE`` headers per
    metric, one line per series, histograms expanded to cumulative
    ``_bucket{le=...}`` lines plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key, cumulative, total, count in sorted(
                metric.snapshot_series(), key=lambda row: row[0]
            ):
                base = _label_text(metric.labelnames, key)
                for edge, n in zip(metric.edges, cumulative):
                    le = _format_edge(edge)
                    lines.append(
                        f"{metric.name}_bucket{{{_join(base, f'le={_q(le)}')}}} {_fmt(n)}"
                    )
                lines.append(
                    f"{metric.name}_bucket{{{_join(base, 'le=' + _q('+Inf'))}}} {_fmt(count)}"
                )
                suffix = f"{{{base}}}" if base else ""
                lines.append(f"{metric.name}_sum{suffix} {_fmt(total)}")
                lines.append(f"{metric.name}_count{suffix} {_fmt(count)}")
        else:
            for key, value in metric.sorted_series():
                base = _label_text(metric.labelnames, key)
                suffix = f"{{{base}}}" if base else ""
                lines.append(f"{metric.name}{suffix} {_fmt(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _label_text(labelnames: Sequence[str], values: Sequence[str]) -> str:
    return ",".join(f"{k}={_q(v)}" for k, v in zip(labelnames, values))


def _q(value: str) -> str:
    # Exposition-format label escaping: backslash first, then the
    # newline (a literal "\n" in the value would split the sample line),
    # then the quote.
    escaped = (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )
    return '"' + escaped + '"'


def _join(base: str, extra: str) -> str:
    return f"{base},{extra}" if base else extra


def _fmt(value: float) -> str:
    """Prometheus-style number: integers without a trailing ``.0``."""
    f = float(value)
    return str(int(f)) if f == int(f) else repr(f)


# -- JSONL -----------------------------------------------------------------


def snapshots_to_jsonl(snapshots: Iterable[Snapshot]) -> str:
    """One JSON object per snapshot: ``{"t": sim_time, "values": {...}}``.

    Keys are sorted so the output is byte-stable across runs; values are
    the flat series map from :meth:`MetricRegistry.snapshot`.
    """
    lines = [
        json.dumps({"t": snap.time, "values": snap.values}, sort_keys=True)
        for snap in snapshots
    ]
    return "\n".join(lines) + "\n" if lines else ""


def write_jsonl(snapshots: Iterable[Snapshot], path) -> None:
    """Write :func:`snapshots_to_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(snapshots_to_jsonl(snapshots))


# -- Chrome trace counters -------------------------------------------------


def snapshots_to_counter_events(
    snapshots: Iterable[Snapshot],
    include: Sequence[str] = (),
) -> List[dict]:
    """Chrome trace ``"ph": "C"`` counter events from sampler snapshots.

    One counter event per metric name per snapshot; each labelled series of
    the metric becomes one key in ``args`` so Perfetto stacks them on one
    counter track.  Histogram bucket series are skipped (hundreds of
    near-static lines swamp the UI) — ``_sum``/``_count`` still chart.

    ``include``, when non-empty, restricts output to metric base names in
    the sequence.  Timestamps are simulated seconds scaled to microseconds,
    matching the span events in ``analysis/chrome_trace.py``.
    """
    wanted = set(include)
    events: List[dict] = []
    for snap in snapshots:
        grouped: Dict[str, Dict[str, float]] = {}
        for key in sorted(snap.values):
            match = _SERIES_RE.match(key)
            if match is None:  # pragma: no cover - keys are well-formed
                continue
            name = match.group("name")
            if name.endswith("_bucket"):
                continue
            if wanted and not any(
                name == w or name == f"{w}_sum" or name == f"{w}_count"
                for w in wanted
            ):
                continue
            labels = match.group("labels") or ""
            grouped.setdefault(name, {})[labels or "value"] = snap.values[key]
        for name in sorted(grouped):
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": TELEMETRY_PID,
                    "ts": snap.time * 1e6,
                    "args": grouped[name],
                }
            )
    return events
