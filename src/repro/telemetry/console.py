"""Terminal rendering for telemetry: sparklines and a metrics table.

The ``repro telemetry`` CLI subcommand and the dashboard example both want
a compact "what happened over the run" view without leaving the terminal:
one row per exported series with its final value and a block-character
sparkline of the sampled trajectory.  Everything here is pure formatting
over :class:`~repro.telemetry.sampler.Snapshot` lists — no registry
mutation, no wall clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .sampler import Snapshot

__all__ = ["sparkline", "metrics_table"]

#: Eight block levels plus a blank for "no data"; the classic spark ramp.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _resample(values: Sequence[float], width: int) -> List[float]:
    """Bucket-mean ``values`` down to at most ``width`` points."""
    if len(values) <= width:
        return list(values)
    out = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max(lo + 1, (i + 1) * len(values) // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-height block-character sparkline.

    The series is bucket-averaged down to ``width`` columns and scaled to
    its own min..max range.  Degenerate inputs never divide by a zero
    range: an empty series renders a full-width run of the middle block
    (so table layouts keep their column), and a constant series renders
    the same flat middle-block line at its sampled length.
    """
    flat = SPARK_BLOCKS[len(SPARK_BLOCKS) // 2]
    if not values:
        return flat * max(1, width)
    sampled = _resample(values, max(1, width))
    lo = min(sampled)
    hi = max(sampled)
    if hi <= lo:
        return flat * len(sampled)
    span = hi - lo
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[min(top, int((v - lo) / span * top))] for v in sampled
    )


def metrics_table(
    snapshots: Sequence[Snapshot],
    pattern: Optional[str] = None,
    width: int = 40,
    include_buckets: bool = False,
) -> List[Dict[str, object]]:
    """One table row per series: last/min/max values plus a sparkline.

    Series keys come from the flat snapshot map (``name{label="v"}``);
    ``pattern`` is a plain substring filter on the key.  Histogram
    ``_bucket`` series are dropped by default (their ``_sum``/``_count``
    companions still appear) to keep the table readable.  Rows follow the
    key order of the final snapshot, which is registration order — stable
    across runs.
    """
    if not snapshots:
        return []
    final = snapshots[-1]
    rows: List[Dict[str, object]] = []
    for key in final.values:
        if pattern is not None and pattern not in key:
            continue
        if not include_buckets and "_bucket{" in key:
            continue
        series = [
            snap.values[key] for snap in snapshots if key in snap.values
        ]
        rows.append(
            {
                "metric": key,
                "last": final.values[key],
                "min": min(series),
                "max": max(series),
                "trend": sparkline(series, width=width),
            }
        )
    return rows
