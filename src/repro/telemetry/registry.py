"""Label-aware metric registry: counters, gauges and fixed-bucket histograms.

The registry is the telemetry subsystem's single source of truth.  Every
layer of the stack (sim engine, GPU model, serving, resilience, fleet)
registers metrics here and the exporters (:mod:`repro.telemetry.exporters`)
render the *same* registry state as Prometheus text, JSONL snapshots or
Chrome trace counters — which is what makes the cross-exporter consistency
guarantee testable.

Determinism rules (see ``docs/observability.md``):

* metric iteration order is registration order; series within a metric are
  sorted by label values — output never depends on dict insertion history;
* histogram bucket edges are fixed at construction (no adaptive binning);
* no wall-clock anywhere: values are keyed to *simulated* time by the
  :class:`~repro.telemetry.sampler.Sampler`.

The registry itself knows nothing about the simulation; it is a plain
in-memory data structure with O(1) update paths, cheap enough to consult
from cold paths and pulled (not pushed) from hot paths by the sampler.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "OVERFLOW_LABEL",
    "OVERFLOW_METRIC",
]

#: Label value absorbing updates past a metric's series cap.
OVERFLOW_LABEL = "__other__"

#: Registry counter tracking updates aggregated into :data:`OVERFLOW_LABEL`.
OVERFLOW_METRIC = "repro_telemetry_series_overflow_total"

#: Fixed latency bucket edges (seconds), log-spaced over the simulator's
#: microsecond-to-second dynamic range.  Deterministic by construction:
#: the same run always lands the same observation in the same bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

LabelValues = Tuple[str, ...]


def _format_series(name: str, labelnames: Sequence[str], values: LabelValues) -> str:
    """Canonical ``name{k="v",...}`` series key (Prometheus grammar)."""
    if not labelnames:
        return name
    inner = ",".join(
        f'{k}="{v}"' for k, v in zip(labelnames, values)
    )
    return f"{name}{{{inner}}}"


class Metric:
    """Base class: one named metric with a fixed label schema.

    ``max_series`` bounds the number of *distinct* label-value
    combinations the metric will track (a cardinality guard for
    high-cardinality labels like per-tenant ids).  Once the cap is
    reached, updates for unseen combinations are deterministically
    aggregated into one overflow series whose every label value is
    :data:`OVERFLOW_LABEL` (allowed to exist beyond the cap), and each
    such update is counted — on the metric (:attr:`overflowed`) and, when
    the metric lives in a registry, on the registry-level
    :data:`OVERFLOW_METRIC` counter.  Which series win the cap is
    first-come-first-kept, so a deterministic run admits a deterministic
    series set.  Reads (:meth:`Counter.value` etc.) are never routed.
    ``None`` (the default) leaves behavior — and memory — exactly as
    before the guard existed.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        if max_series is not None and max_series < 1:
            raise ValueError(f"{name}: max_series must be >= 1")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self.max_series = max_series
        self.overflowed = 0  # updates aggregated into the overflow series
        self._admitted: set = set()
        self._on_overflow = None  # registry hook (counts dropped updates)

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def _route(self, key: LabelValues) -> LabelValues:
        """Cardinality-guarded key for *update* paths (reads stay exact)."""
        if self.max_series is None or not self.labelnames:
            return key
        if key in self._admitted:
            return key
        if len(self._admitted) < self.max_series:
            self._admitted.add(key)
            return key
        self.overflowed += 1
        if self._on_overflow is not None:
            self._on_overflow(self)
        return (OVERFLOW_LABEL,) * len(self.labelnames)

    def series(self) -> Iterator[Tuple[LabelValues, float]]:  # pragma: no cover
        raise NotImplementedError

    def sorted_series(self) -> List[Tuple[LabelValues, float]]:
        """Series sorted by label values (deterministic export order)."""
        return sorted(self.series(), key=lambda kv: kv[0])


class Counter(Metric):
    """Monotonically increasing count (events, bytes, faults...)."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> None:
        super().__init__(name, help, labelnames, max_series=max_series)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to one labelled series."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        key = self._route(self._key(labels))
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current total of one series (0 if never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Iterator[Tuple[LabelValues, float]]:
        return iter(self._values.items())


class Gauge(Metric):
    """Point-in-time value (queue depth, occupancy, watts...)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> None:
        super().__init__(name, help, labelnames, max_series=max_series)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set one labelled series to ``value``."""
        self._values[self._route(self._key(labels))] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Adjust one series by ``amount`` (may be negative)."""
        key = self._route(self._key(labels))
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Convenience inverse of :meth:`inc`."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Current value of one series (0 if never set)."""
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Iterator[Tuple[LabelValues, float]]:
        return iter(self._values.items())


class _HistogramSeries:
    """Bucket counts + sum for one labelled histogram series."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, nbuckets: int) -> None:
        self.bucket_counts = [0] * nbuckets  # per-bucket (non-cumulative)
        self.total = 0.0
        self.count = 0


class Histogram(Metric):
    """Distribution over *fixed* bucket edges chosen at construction.

    Edges are upper bounds (``le``); an implicit ``+Inf`` bucket catches
    the overflow, exactly like Prometheus client histograms.  Adaptive
    binning is deliberately unsupported: fixed edges keep two runs of the
    same workload byte-comparable.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> None:
        super().__init__(name, help, labelnames, max_series=max_series)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError(f"{name}: need at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"{name}: bucket edges must be strictly increasing")
        self.edges = edges
        self._series: Dict[LabelValues, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation."""
        key = self._route(self._key(labels))
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.edges) + 1)
            self._series[key] = series
        series.bucket_counts[bisect_left(self.edges, value)] += 1
        series.total += value
        series.count += 1

    def snapshot_series(
        self,
    ) -> Iterator[Tuple[LabelValues, List[int], float, int]]:
        """(labels, cumulative bucket counts incl. +Inf, sum, count)."""
        for key, series in self._series.items():
            cumulative: List[int] = []
            running = 0
            for n in series.bucket_counts:
                running += n
                cumulative.append(running)
            yield key, cumulative, series.total, series.count

    def series(self) -> Iterator[Tuple[LabelValues, float]]:
        """The ``_count`` view, so generic consumers see something sane."""
        return ((key, float(s.count)) for key, s in self._series.items())


class MetricRegistry:
    """A named set of metrics with get-or-create registration.

    ``counter``/``gauge``/``histogram`` are idempotent: asking twice for
    the same name returns the same object (and raises if the kind or label
    schema changed), so independent layers can share metrics without
    coordinating.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        """The registered metric called ``name``, or ``None``."""
        return self._metrics.get(name)

    def _register(self, cls, name: str, help: str, **kwargs) -> Metric:
        max_series = kwargs.pop("max_series", None)
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            labelnames = tuple(kwargs.get("labelnames", ()))
            if existing.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} re-registered with labels {labelnames}, "
                    f"was {existing.labelnames}"
                )
            # max_series=None means "no opinion"; an explicit, different
            # cap is a coordination bug worth surfacing.
            if max_series is not None and existing.max_series != max_series:
                raise ValueError(
                    f"metric {name!r} re-registered with max_series="
                    f"{max_series}, was {existing.max_series}"
                )
            return existing
        metric = cls(name, help, max_series=max_series, **kwargs)
        metric._on_overflow = self._record_overflow
        self._metrics[name] = metric
        return metric

    def _record_overflow(self, metric: Metric) -> None:
        """Count one update absorbed by ``metric``'s overflow series."""
        counter = self._register(
            Counter,
            OVERFLOW_METRIC,
            "updates aggregated into the __other__ series after a metric "
            "reached its max_series cardinality cap",
            labelnames=("metric",),
        )
        counter.inc(metric=metric.name)

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._register(
            Counter, name, help, labelnames=labelnames, max_series=max_series
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._register(
            Gauge, name, help, labelnames=labelnames, max_series=max_series
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
        max_series: Optional[int] = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram` with fixed ``buckets``."""
        return self._register(
            Histogram,
            name,
            help,
            buckets=buckets,
            labelnames=labelnames,
            max_series=max_series,
        )

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat ``series-key -> value`` view of the whole registry.

        Counters and gauges contribute one entry per series; histograms
        contribute ``_sum``/``_count`` plus cumulative ``_bucket`` entries
        — the exact numbers the Prometheus exposition renders, so every
        exporter derives from one canonical view.
        """
        out: Dict[str, float] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                for key, cumulative, total, count in sorted(
                    metric.snapshot_series(), key=lambda row: row[0]
                ):
                    bucket_labels = metric.labelnames + ("le",)
                    for edge, n in zip(metric.edges, cumulative):
                        out[
                            _format_series(
                                metric.name + "_bucket",
                                bucket_labels,
                                key + (_format_edge(edge),),
                            )
                        ] = float(n)
                    out[
                        _format_series(
                            metric.name + "_bucket", bucket_labels, key + ("+Inf",)
                        )
                    ] = float(cumulative[-1] if cumulative else 0)
                    out[_format_series(metric.name + "_sum", metric.labelnames, key)] = total
                    out[_format_series(metric.name + "_count", metric.labelnames, key)] = float(count)
            else:
                for key, value in metric.sorted_series():
                    out[_format_series(metric.name, metric.labelnames, key)] = value
        return out


def _format_edge(edge: float) -> str:
    """``le`` label text for a bucket edge (trim trailing float noise)."""
    text = repr(edge)
    return text[:-2] if text.endswith(".0") else text
