"""Perf-trajectory recorder: append benchmark points to ``BENCH_*.json``.

The repo's benchmarks pin regressions run-to-run, but until now nothing
recorded the *trajectory* — how a benchmark's numbers move across commits.
``record_trajectory_point`` appends one dated point per invocation to a
JSON file at the repo root (``BENCH_telemetry.json`` first, one file per
benchmark family), so CI artifacts accumulate a history that can be
plotted or diffed.

The file is a JSON object ``{"benchmark": ..., "points": [...]}``; each
point carries the commit (when available from ``GITHUB_SHA`` or a plain
``git rev-parse``), a wall-clock ISO date (*metadata only* — never a
metric value, so determinism guarantees are untouched), and the caller's
metric dict.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

__all__ = ["record_trajectory_point", "load_trajectory"]


def _current_commit(repo_dir: Path) -> Optional[str]:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:  # pragma: no cover - git missing entirely
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def load_trajectory(path) -> dict:
    """Read a trajectory file, tolerating absence and torn writes."""
    path = Path(path)
    if not path.exists():
        return {"benchmark": path.stem, "points": []}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {"benchmark": path.stem, "points": []}
    if not isinstance(data, dict) or not isinstance(data.get("points"), list):
        return {"benchmark": path.stem, "points": []}
    return data


def record_trajectory_point(
    path, benchmark: str, metrics: Dict[str, float]
) -> dict:
    """Append one ``{commit, date, metrics}`` point to ``path``.

    Returns the full trajectory after the append.  Writes are
    whole-file-replace via a temp file so a crash never leaves a torn
    JSON document behind.
    """
    path = Path(path)
    data = load_trajectory(path)
    data["benchmark"] = benchmark
    point = {
        "commit": _current_commit(path.parent),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "metrics": {k: float(v) for k, v in sorted(metrics.items())},
    }
    data["points"].append(point)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return data
