"""Deterministic causal tracing for the simulated serving stack.

Every app admitted to an engine (streaming, harness, fleet) gets one
**trace**: a tree of spans rooted at its arrival whose leaves are
engine-level waits — admission queue, stream occupancy, transfer-mutex,
DMA service, Hyper-Q slot, SMX execution, retry backoff, migration
stall.  The tree answers the question aggregate metrics cannot: *why*
was this app's deadline missed?

Determinism contract (the house rule every subsystem follows):

* Trace and span IDs are derived from ``(seed, app_name, seq)`` via
  SHA-1 — no wall clock, no randomness.  The same seed replays to the
  same IDs, byte for byte, including across a crash/resume.
* Spans are *record-complete*: a layer records a span only once both
  boundaries are known (a discrete-event wait always knows them), so
  recording never perturbs the event calendar.  With ``tracing=None``
  the instrumented engines take one attribute check per site and emit
  nothing — results are byte-identical to an untraced run.

Usage::

    from repro.telemetry import Tracing

    tracing = Tracing(seed=7)
    result = run_serving(arrivals, dispatcher, config, tracing=tracing)
    for span in tracing.spans:
        print(span.name, span.category, span.duration)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "TRACING_PID",
    "WAIT_CATEGORIES",
    "ENGINE_CATEGORIES",
    "SpanContext",
    "Span",
    "Tracer",
    "Tracing",
    "spans_to_chrome_events",
    "spans_to_otlp_jsonl",
    "write_otlp_jsonl",
]

#: Chrome-trace process id for the tracing track (GPU=1, telemetry=2).
TRACING_PID = 3

#: Host-thread wait categories: sequential, non-overlapping slices of an
#: app's sojourn.  The critical-path extractor partitions the sojourn
#: into exactly these plus a computed ``service-other`` remainder.
WAIT_CATEGORIES = frozenset(
    {
        "admission-queue",
        "prepare",
        "stream-occupy",
        "transfer-mutex",
        "dma-burst",
        "sync-wait",
        "host-compute",
        "admission-limiter",
        "retry-backoff",
        "migration-stall",
    }
)

#: Engine-level leaf categories harvested from completed GPU commands;
#: they overlap the host waits and sub-attribute ``sync-wait`` time.
ENGINE_CATEGORIES = frozenset(
    {"hyperq-slot", "smx-exec", "dma-queue", "dma-service"}
)


def _hex_id(text: str, width: int) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:width]


@dataclass(frozen=True)
class SpanContext:
    """Immutable address of a span: propagated, never mutated."""

    trace_id: str
    span_id: str
    parent_id: str = ""


@dataclass
class Span:
    """One completed span.  ``end`` equal to ``start`` marks an instant."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    category: str
    start: float
    end: float
    app: str
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        """Plain-dict view (stable key order) for snapshots and tests."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "app": self.app,
            "meta": dict(sorted(self.meta.items())),
        }


class Tracer:
    """Replay-stable span recorder.

    IDs: ``trace_id = sha1(seed:app)[:16]``; every span in a trace gets
    ``span_id = f(trace_id, seq)`` — a 32-bit mix of the trace id's
    leading bits with ``seq``, a per-trace monotone counter (the root is
    seq 0).  Both are pure functions of ``(seed, app, seq)``, so the
    same seed always yields the same tree.  Recording order is the
    deterministic simulation order.

    Hot-path layout: engine instrumentation lands in a flat scalar
    buffer via :meth:`record_leaf` (six list appends of *existing*
    references — no tuple, no dict, so the per-span cost is
    sub-microsecond and, crucially, allocates nothing the cyclic GC
    tracks; the <2% overhead bound depends on both properties) and is
    materialized into :class:`Span` objects lazily the first time
    :attr:`spans` is read.
    """

    #: Fields per leaf record in the flat buffer.
    _STRIDE = 6

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        #: Name prefix for new traces (``set_scope``): lets repeated
        #: sub-runs (e.g. serving batches) reuse app names without
        #: colliding trace ids.
        self.scope: str = ""
        self._raw: list = []               # flat leaf fields, record order
        self._append = self._raw.append    # bound once: the leaf hot path
        self._view: List[Span] = []        # spans in record order
        self._materialized = 0             # _raw fields already in _view
        self._names: Dict[str, str] = {}   # trace_id -> app name
        self._seq: Dict[str, int] = {}     # trace_id -> next span seq
        self._bases: Dict[str, int] = {}   # trace_id -> span-id mix base
        self._roots: Dict[str, Span] = {}  # trace_id -> root span

    def set_scope(self, scope: str) -> None:
        """Prefix subsequent trace names with ``scope + "/"`` ("" clears)."""
        self.scope = scope

    def _span_id(self, trace_id: str, seq: int) -> str:
        # FNV/Weyl-style 32-bit mix of the trace id's leading bits with
        # the sequence number: unique per (trace, seq), stable across
        # replays, and ~20x cheaper than a per-span SHA-1.
        base = self._bases[trace_id]
        return format(
            (base * 0x01000193 ^ seq * 0x9E3779B1) & 0xFFFFFFFF, "08x"
        )

    # -- trace lifecycle ---------------------------------------------------

    def start_trace(self, app: str, start: float, **meta) -> SpanContext:
        """Open the root span of a new trace at ``start`` (sim seconds)."""
        if self.scope:
            app = f"{self.scope}/{app}"
        trace_id = _hex_id(f"{self.seed}:{app}", 16)
        if trace_id in self._names:
            raise ValueError(f"trace for app {app!r} already started")
        # Pending leaves recorded before this root must land in the view
        # first so record order is preserved (eager spans bypass _raw).
        self._materialize()
        self._names[trace_id] = app
        self._seq[trace_id] = 1
        self._bases[trace_id] = int(trace_id[:8], 16)
        root = Span(
            trace_id=trace_id,
            span_id=self._span_id(trace_id, 0),
            parent_id="",
            name=app,
            category="app",
            start=float(start),
            end=float(start),
            app=app,
            meta=dict(meta),
        )
        self._view.append(root)
        self._roots[trace_id] = root
        return SpanContext(trace_id, root.span_id)

    def end_trace(self, ctx: SpanContext, end: float, **meta) -> None:
        """Close the root span; ``meta`` (e.g. the outcome) is merged in."""
        root = self._roots[ctx.trace_id]
        root.end = float(end)
        root.meta.update(meta)

    def record(
        self,
        ctx: SpanContext,
        name: str,
        category: str,
        start: float,
        end: float,
        **meta,
    ) -> SpanContext:
        """Record a completed child span under ``ctx``; returns its context."""
        # Seqs are handed out in materialization order, so pending leaves
        # must claim theirs before this span takes the next one (the
        # flush is incremental — amortized O(1)).
        self._materialize()
        trace_id = ctx.trace_id
        seq = self._seq[trace_id]
        self._seq[trace_id] = seq + 1
        span = Span(
            trace_id=trace_id,
            span_id=self._span_id(trace_id, seq),
            parent_id=ctx.span_id,
            name=name,
            category=category,
            start=float(start),
            end=float(end),
            app=self._names[trace_id],
            meta=meta,
        )
        self._view.append(span)
        return SpanContext(trace_id, span.span_id, ctx.span_id)

    def record_leaf(
        self,
        ctx: SpanContext,
        name: str,
        category: str,
        start: float,
        end: float,
    ) -> None:
        """Fast path for leaf spans (no context returned, no id work).

        Engine instrumentation runs per kernel and per DMA burst, so this
        does the bare minimum: six appends of existing references into a
        flat buffer.  No tuple, dict or Span is allocated — the cyclic
        GC's allocation counter never moves, so heavy tracing cannot
        trigger extra collections of a large host heap.  Seq and span id
        are assigned lazily at materialization.  Use :meth:`record` when
        the span needs ``meta`` or children must nest under it.
        """
        a = self._append
        a(ctx.trace_id)
        a(ctx.span_id)
        a(name)
        a(category)
        a(start)
        a(end)

    def instant(
        self, ctx: SpanContext, name: str, category: str, t: float, **meta
    ) -> SpanContext:
        """Zero-length span: a point event on the trace timeline."""
        return self.record(ctx, name, category, t, t, **meta)

    # -- queries -----------------------------------------------------------

    def _materialize(self) -> None:
        """Convert pending flat leaf records into :class:`Span` objects.

        Leaf seqs are claimed here, in record order, from the same
        per-trace counters the eager paths use — so ids are identical
        whether a span went through :meth:`record` or :meth:`record_leaf`.
        Eager spans append straight to the view, which is why every eager
        entry point flushes this first: record order is the buffer order.
        """
        raw = self._raw
        n = len(raw)
        i = self._materialized
        if i == n:
            return
        names = self._names
        seq_map = self._seq
        view = self._view
        while i < n:
            trace_id = raw[i]
            seq = seq_map[trace_id]
            seq_map[trace_id] = seq + 1
            view.append(
                Span(
                    trace_id=trace_id,
                    span_id=self._span_id(trace_id, seq),
                    parent_id=raw[i + 1],
                    name=raw[i + 2],
                    category=raw[i + 3],
                    start=float(raw[i + 4]),
                    end=float(raw[i + 5]),
                    app=names[trace_id],
                    meta={},
                )
            )
            i += self._STRIDE
        self._materialized = n

    @property
    def spans(self) -> List[Span]:
        """All spans in record order (pending leaves materialize on demand)."""
        self._materialize()
        return self._view

    def trace_ids(self) -> List[str]:
        """Trace ids in start order."""
        return list(self._names)

    def trace_spans(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def root(self, trace_id: str) -> Span:
        return self._roots[trace_id]

    def span_tree(self, trace_id: str) -> dict:
        """Nested dict view of one trace (children in record order)."""
        spans = self.trace_spans(trace_id)
        children: Dict[str, List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)

        def build(span: Span) -> dict:
            node = span.as_dict()
            node["children"] = [
                build(c) for c in children.get(span.span_id, [])
            ]
            return node

        return build(self._roots[trace_id])


class Tracing:
    """User-facing tracing handle, passed as ``tracing=`` to any engine.

    Bundles the :class:`Tracer` with an optional multi-window SLO
    burn-rate monitor (see :mod:`repro.telemetry.burnrate`).  One
    ``Tracing`` instance covers one run — build a fresh one per run so
    spans from different runs never interleave.
    """

    def __init__(self, seed: int = 0, burn=None, alert_journal=None) -> None:
        from .burnrate import BurnRateMonitor

        self.seed = int(seed)
        self.tracer = Tracer(seed)
        #: BurnRateConfig enabling SLO burn-rate alerting, or None.
        self.burn = burn
        #: Path for the fenced alert-record journal (engines bind it).
        self.alert_journal = alert_journal
        self.monitor = (
            BurnRateMonitor(burn) if burn is not None else None
        )

    @property
    def spans(self) -> List[Span]:
        return self.tracer.spans

    @property
    def alerts(self) -> List[dict]:
        return self.monitor.alerts if self.monitor is not None else []


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def spans_to_chrome_events(
    spans: Iterable[Span], pid: int = TRACING_PID
) -> List[dict]:
    """Spans -> Chrome async begin/end event pairs (``"ph": "b"/"e"``).

    Each trace renders as one async track keyed by its trace id; nesting
    inside a track follows the begin/end timestamps.  Feed the result to
    :func:`repro.analysis.chrome_trace.to_chrome_trace` via
    ``span_events=`` to merge with the GPU and telemetry tracks.
    """
    events: List[dict] = []
    for span in spans:
        common = {
            "cat": span.category or "trace",
            "name": span.name,
            "pid": pid,
            "tid": 0,
            "id": span.trace_id,
            "scope": span.app,
        }
        begin = dict(common)
        begin.update({"ph": "b", "ts": span.start * 1e6})
        if span.meta:
            begin["args"] = {
                k: span.meta[k] for k in sorted(span.meta)
            }
        end = dict(common)
        end.update({"ph": "e", "ts": span.end * 1e6})
        events.append(begin)
        events.append(end)
    return events


def spans_to_otlp_jsonl(spans: Iterable[Span]) -> str:
    """Spans -> OTLP-shaped JSON lines (one span per line, byte-stable).

    The shape follows OpenTelemetry's JSON span encoding closely enough
    for downstream tooling: hex ``traceId``/``spanId``/``parentSpanId``,
    nanosecond integer timestamps, and a sorted key/value attribute
    list.  Times are simulation nanoseconds, not wall-clock.
    """
    lines = []
    for span in spans:
        attributes = [
            {"key": "category", "value": {"stringValue": span.category}},
            {"key": "app", "value": {"stringValue": span.app}},
        ]
        for key in sorted(span.meta):
            attributes.append(
                {"key": key, "value": {"stringValue": str(span.meta[key])}}
            )
        payload = {
            "traceId": span.trace_id,
            "spanId": span.span_id,
            "parentSpanId": span.parent_id,
            "name": span.name,
            "kind": "SPAN_KIND_INTERNAL",
            "startTimeUnixNano": int(round(span.start * 1e9)),
            "endTimeUnixNano": int(round(span.end * 1e9)),
            "attributes": attributes,
        }
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_otlp_jsonl(path, spans: Iterable[Span]) -> None:
    """Write :func:`spans_to_otlp_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spans_to_otlp_jsonl(spans))
