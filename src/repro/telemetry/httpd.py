"""Tiny stdlib scrape endpoint serving Prometheus text exposition.

A real deployment would point a Prometheus server at this; here it exists
so the serving story is complete end-to-end (and testable with nothing but
``urllib``).  The server runs on a daemon thread, binds port 0 by default
(the OS picks a free port — no collisions in CI), and renders the registry
*live*: each scrape reflects whatever the simulation has recorded so far.

Wall-clock threading never touches metric values — the HTTP layer only
reads the registry, so determinism is unaffected.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .exporters import generate_latest
from .registry import MetricRegistry

__all__ = ["MetricsServer", "CONTENT_TYPE_LATEST"]

#: Content type of the exposition format (version pinned like the real one).
CONTENT_TYPE_LATEST = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    registry: MetricRegistry  # set on the subclass by MetricsServer

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "try /metrics")
            return
        body = generate_latest(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE_LATEST)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr chatter."""


class MetricsServer:
    """Threaded HTTP server exposing one registry at ``/metrics``."""

    def __init__(self, registry: MetricRegistry, port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,), {"registry": registry})
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Scrape URL for this server."""
        return f"http://127.0.0.1:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
