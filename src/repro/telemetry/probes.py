"""Standard probes: wire each layer's live state into the registry.

Probes follow a strict pull model — on every sampler tick they *read*
simulation state (queue depths, occupancy, watts, counters) and write it
into registry metrics.  Nothing here mutates the simulation, and nothing
here runs at all when telemetry is disabled, which is how the subsystem
stays byte-identical-off and <2%-overhead-on.

Monotonic model counters (commands issued, grids completed, bytes moved)
are mirrored into registry :class:`~repro.telemetry.registry.Counter`
objects via the *delta pattern*: each probe closure remembers the last
value it saw and increments the counter by the difference, so exported
counters stay genuinely monotonic (Prometheus ``rate()`` works) instead of
being gauges in disguise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .sampler import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..fleet.coordinator import FailoverCoordinator
    from ..fleet.health import HealthMonitor
    from ..fleet.registry import FleetDevice
    from ..gpu.device import GPUDevice
    from ..sim.engine import Environment

__all__ = [
    "instrument_environment",
    "instrument_device",
    "instrument_records",
    "instrument_injector",
    "instrument_health_monitor",
    "instrument_fleet_device",
    "instrument_failover",
    "instrument_hedging",
    "instrument_cascade",
    "instrument_scheduler",
    "instrument_integrity",
]

#: Histogram bucket edges for failover durations (seconds): sub-millisecond
#: detection through multi-second recoveries.
FAILOVER_BUCKETS = (1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0)


def _pull_counter(counter, read: Callable[[], float], **labels) -> Callable[[], None]:
    """Delta-pattern probe: mirror a monotonic model counter into ``counter``."""
    last = [float(read())]

    def probe() -> None:
        current = float(read())
        delta = current - last[0]
        if delta > 0:
            counter.inc(delta, **labels)
            last[0] = current

    return probe


# -- sim engine ------------------------------------------------------------


def instrument_environment(telemetry: Telemetry, env: "Environment") -> None:
    """Event-loop depth and throughput of the discrete-event engine."""
    depth = telemetry.gauge(
        "repro_sim_calendar_depth", "Events pending in the event calendar"
    )
    events = telemetry.counter(
        "repro_sim_events_total", "Events popped from the calendar"
    )

    telemetry.add_probe(lambda: depth.set(env.queue_size))
    telemetry.add_probe(_pull_counter(events, lambda: env.events_processed))


# -- GPU device ------------------------------------------------------------


def instrument_device(
    telemetry: Telemetry, device: "GPUDevice", device_label: str = "0"
) -> None:
    """Occupancy, DMA, Hyper-Q, grid-engine and power signals of one GPU."""
    dev = device_label

    occupancy = telemetry.gauge(
        "repro_gpu_thread_occupancy",
        "Resident threads / device thread capacity",
        labelnames=("device",),
    )
    busy_smx = telemetry.gauge(
        "repro_gpu_busy_smx",
        "SMXs with at least one resident block",
        labelnames=("device",),
    )
    resident_blocks = telemetry.gauge(
        "repro_gpu_resident_blocks",
        "Thread blocks resident across the device",
        labelnames=("device",),
    )
    smx_occupancy = telemetry.gauge(
        "repro_gpu_smx_occupancy",
        "Per-SMX resident threads / SMX thread capacity",
        labelnames=("device", "smx"),
    )
    watts = telemetry.gauge(
        "repro_gpu_power_watts", "Instantaneous board power", labelnames=("device",)
    )
    active_grids = telemetry.gauge(
        "repro_gpu_active_grids",
        "Grids resident on the grid engine",
        labelnames=("device",),
    )
    inflight = telemetry.gauge(
        "repro_gpu_inflight_commands",
        "Commands dispatched and not yet retired",
        labelnames=("device",),
    )
    active_streams = telemetry.gauge(
        "repro_gpu_active_streams",
        "Streams with in-flight commands",
        labelnames=("device",),
    )
    hq_in_use = telemetry.gauge(
        "repro_gpu_hyperq_queues_in_use",
        "Hardware work queues with at least one stream mapped",
        labelnames=("device",),
    )
    hq_live = telemetry.gauge(
        "repro_gpu_hyperq_live_queues",
        "Hardware work queues with an unretired tail command",
        labelnames=("device",),
    )
    dma_depth = telemetry.gauge(
        "repro_gpu_dma_queue_depth",
        "Memcpy commands waiting for the engine",
        labelnames=("device", "direction"),
    )
    dma_stretch = telemetry.gauge(
        "repro_gpu_dma_latency_stretch",
        "(wire + queueing time) / wire time of served transfers",
        labelnames=("device", "direction"),
    )
    commands = telemetry.counter(
        "repro_gpu_commands_issued_total",
        "Commands enqueued on the device",
        labelnames=("device",),
    )
    grids_done = telemetry.counter(
        "repro_gpu_grids_completed_total",
        "Kernel grids retired",
        labelnames=("device",),
    )
    waves = telemetry.counter(
        "repro_gpu_waves_total",
        "Block-scheduler placement passes that placed work",
        labelnames=("device",),
    )
    hq_depth = telemetry.counter(
        "repro_gpu_hyperq_commands_total",
        "Commands pushed through the hardware work queues",
        labelnames=("device",),
    )
    dma_cmds = telemetry.counter(
        "repro_gpu_dma_commands_total",
        "Memcpy commands served",
        labelnames=("device", "direction"),
    )
    dma_bytes = telemetry.counter(
        "repro_gpu_dma_bytes_total",
        "Bytes moved by the DMA engines",
        labelnames=("device", "direction"),
    )
    dma_busy_s = telemetry.counter(
        "repro_gpu_dma_busy_seconds_total",
        "Accumulated wire time",
        labelnames=("device", "direction"),
    )
    dma_wait_s = telemetry.counter(
        "repro_gpu_dma_wait_seconds_total",
        "Accumulated ready-to-start queueing delay",
        labelnames=("device", "direction"),
    )

    smx_cap = float(device.smx.spec.max_threads)
    fabric = device.fabric

    def sample_device() -> None:
        occupancy.set(device.smx.thread_occupancy, device=dev)
        busy_smx.set(device.smx.busy_smx_count, device=dev)
        resident_blocks.set(device.smx.resident_blocks, device=dev)
        for smx in device.smx:
            smx_occupancy.set(
                smx.resident_threads / smx_cap, device=dev, smx=str(smx.index)
            )
        watts.set(device.power.current_power, device=dev)
        active_grids.set(device.grid_engine.active_grids, device=dev)
        inflight.set(device._inflight, device=dev)
        active_streams.set(device._active_streams, device=dev)
        hq_in_use.set(len(set(fabric._stream_to_queue.values())), device=dev)
        hq_live.set(
            sum(
                1
                for q in fabric.queues
                if q._tail is not None and q._tail.callbacks is not None
            ),
            device=dev,
        )
        for direction, engine in device.dma.items():
            d = direction.value
            dma_depth.set(engine.pending_count, device=dev, direction=d)
            if engine.busy_seconds > 0:
                dma_stretch.set(
                    (engine.busy_seconds + engine.wait_seconds) / engine.busy_seconds,
                    device=dev,
                    direction=d,
                )

    telemetry.add_probe(sample_device)
    telemetry.add_probe(
        _pull_counter(commands, lambda: device.commands_issued, device=dev)
    )
    telemetry.add_probe(
        _pull_counter(grids_done, lambda: device.grid_engine.grids_completed, device=dev)
    )
    telemetry.add_probe(
        _pull_counter(waves, lambda: device.grid_engine.total_waves, device=dev)
    )
    telemetry.add_probe(
        _pull_counter(
            hq_depth,
            lambda: sum(q.depth_total for q in fabric.queues),
            device=dev,
        )
    )
    for direction, engine in device.dma.items():
        d = direction.value
        telemetry.add_probe(
            _pull_counter(
                dma_cmds, lambda e=engine: e.commands_served, device=dev, direction=d
            )
        )
        telemetry.add_probe(
            _pull_counter(
                dma_bytes, lambda e=engine: e.bytes_moved, device=dev, direction=d
            )
        )
        telemetry.add_probe(
            _pull_counter(
                dma_busy_s, lambda e=engine: e.busy_seconds, device=dev, direction=d
            )
        )
        telemetry.add_probe(
            _pull_counter(
                dma_wait_s, lambda e=engine: e.wait_seconds, device=dev, direction=d
            )
        )


# -- resilience ------------------------------------------------------------


def instrument_records(telemetry: Telemetry, records: Iterable) -> None:
    """Retry/fault/watchdog accounting pulled from live ``AppRecord``s."""
    retries = telemetry.counter(
        "repro_resilience_retries_total", "Application retry attempts"
    )
    denied = telemetry.counter(
        "repro_resilience_retries_denied_total",
        "Retries refused by the shared retry budget",
    )
    faults = telemetry.counter(
        "repro_resilience_faults_detected_total", "Faults detected by supervisors"
    )
    watchdog = telemetry.counter(
        "repro_resilience_watchdog_firings_total", "Watchdog deadline hits"
    )

    telemetry.add_probe(
        _pull_counter(retries, lambda: sum(r.retries for r in records))
    )
    telemetry.add_probe(
        _pull_counter(denied, lambda: sum(r.retries_denied for r in records))
    )
    telemetry.add_probe(
        _pull_counter(faults, lambda: sum(r.faults_detected for r in records))
    )
    telemetry.add_probe(
        _pull_counter(watchdog, lambda: sum(r.deadline_hits for r in records))
    )


def instrument_injector(
    telemetry: Telemetry, injector, device_label: str = "0"
) -> None:
    """Per-kind injected-fault counts pulled from a ``FaultInjector``."""
    if injector is None:
        return
    injected = telemetry.counter(
        "repro_resilience_faults_injected_total",
        "Faults armed by the injector, by kind",
        labelnames=("device", "kind"),
    )

    last: dict = {}

    def probe() -> None:
        for kind, n in injector.applied_counts().items():
            key = getattr(kind, "value", str(kind))
            delta = n - last.get(key, 0)
            if delta > 0:
                injected.inc(delta, device=device_label, kind=key)
                last[key] = n

    telemetry.add_probe(probe)


# -- fleet -----------------------------------------------------------------

#: Numeric encoding of device health for the gauge (2 = healthy, 1 =
#: degraded, 0 = lost) — higher is healthier, so dips read naturally.
_HEALTH_SCORE = {"healthy": 2.0, "degraded": 1.0, "lost": 0.0}


def instrument_fleet_device(telemetry: Telemetry, device: "FleetDevice") -> None:
    """GPU signals plus registry health for one fleet slot."""
    label = str(device.index)
    instrument_device(telemetry, device.gpu, device_label=label)
    instrument_injector(telemetry, device.injector, device_label=label)
    health = telemetry.gauge(
        "repro_fleet_device_health",
        "Registry health (2 healthy / 1 degraded / 0 lost)",
        labelnames=("device",),
    )
    telemetry.add_probe(
        lambda: health.set(_HEALTH_SCORE[device.state.value], device=label)
    )


def instrument_health_monitor(
    telemetry: Telemetry, monitor: "HealthMonitor"
) -> None:
    """Heartbeat reads/misses and observed-state transitions."""
    beats = telemetry.counter(
        "repro_fleet_heartbeats_total", "Heartbeat readings taken"
    )
    missed = telemetry.counter(
        "repro_fleet_missed_heartbeats_total",
        "Heartbeats observed missing, per device",
        labelnames=("device",),
    )
    transitions = telemetry.counter(
        "repro_fleet_health_transitions_total",
        "Observed device state transitions",
        labelnames=("device", "to"),
    )

    telemetry.add_probe(_pull_counter(beats, lambda: monitor.heartbeats_read))

    missed_last: dict = {}
    events_seen = [0]

    def probe() -> None:
        for index, n in monitor.missed_heartbeats.items():
            delta = n - missed_last.get(index, 0)
            if delta > 0:
                missed.inc(delta, device=str(index))
                missed_last[index] = n
        for event in monitor.events[events_seen[0]:]:
            transitions.inc(1, device=str(event.device), to=event.new_state)
        events_seen[0] = len(monitor.events)

    telemetry.add_probe(probe)


def instrument_failover(
    telemetry: Telemetry, coordinator: "FailoverCoordinator"
) -> None:
    """Failover counts, durations and migrated-app totals."""
    failovers = telemetry.counter(
        "repro_fleet_failovers_total", "Completed device failovers"
    )
    migrated = telemetry.counter(
        "repro_fleet_migrated_apps_total", "Applications migrated off lost devices"
    )
    duration = telemetry.histogram(
        "repro_fleet_failover_duration_seconds",
        "Loss-to-resume duration of completed failovers",
        buckets=FAILOVER_BUCKETS,
    )

    seen = [0]

    def probe() -> None:
        recoveries = coordinator.recoveries
        for rec in recoveries[seen[0]:]:
            failovers.inc()
            migrated.inc(len(rec.get("apps", ())))
            resumed = rec.get("resumed")
            lost = rec.get("lost")
            if resumed is not None and lost is not None:
                duration.observe(resumed - lost)
        seen[0] = len(recoveries)

    telemetry.add_probe(probe)


def instrument_hedging(telemetry: Telemetry, manager, detector) -> None:
    """Graded health scores plus hedge decision counters.

    ``detector`` feeds a per-device score gauge (1.0 = at the fleet's
    pace); ``manager`` feeds launch/win/duplicate/denial counters via the
    delta pattern.
    """
    score = telemetry.gauge(
        "repro_fleet_health_score",
        "Graded straggler-detector health score (1.0 = at fleet pace)",
        labelnames=("device",),
    )

    def score_probe() -> None:
        for index, health in detector.scores().items():
            score.set(health.score, device=str(index))

    telemetry.add_probe(score_probe)

    launched = telemetry.counter(
        "repro_fleet_hedges_total", "Speculative hedge replicas launched"
    )
    wins = telemetry.counter(
        "repro_fleet_hedge_wins_total", "Hedges whose replica finished first"
    )
    duplicates = telemetry.counter(
        "repro_fleet_duplicate_kernels_total",
        "Kernels executed twice because of hedging",
    )
    denials = telemetry.counter(
        "repro_fleet_hedge_denials_total",
        "Hedge candidates denied, by reason",
        labelnames=("reason",),
    )
    telemetry.add_probe(
        _pull_counter(launched, lambda: manager.hedges_launched)
    )
    telemetry.add_probe(_pull_counter(wins, lambda: manager.hedge_wins))
    telemetry.add_probe(
        _pull_counter(duplicates, lambda: manager.duplicate_kernels)
    )
    telemetry.add_probe(
        _pull_counter(denials, lambda: manager.budget_denials, reason="budget")
    )
    telemetry.add_probe(
        _pull_counter(
            denials, lambda: manager.no_target_denials, reason="no-target"
        )
    )
    telemetry.add_probe(
        _pull_counter(
            denials,
            lambda: manager.retry_budget_denials,
            reason="retry-budget",
        )
    )


def instrument_cascade(
    telemetry: Telemetry, probe=None, storm=None, budget=None
) -> None:
    """Correlated-failure containment signals.

    ``probe`` is a :class:`~repro.resilience.metastable.MetastabilityProbe`
    (brownout ladder level, metastable windows, sheds), ``storm`` a
    :class:`~repro.fleet.storm.MigrationQueue` (depth plus queue/release
    counters), ``budget`` a :class:`~repro.resilience.budget.RetryBudget`
    (grants/denials).  Any of them may be ``None``; read-only pulls only.
    """
    if probe is None and storm is None and budget is None:
        return
    if probe is not None:
        level = telemetry.gauge(
            "repro_fleet_brownout_level",
            "Current brownout-ladder level (0 = off)",
        )
        metastable = telemetry.counter(
            "repro_fleet_metastable_windows_total",
            "Detection windows spent metastable (goodput below floor "
            "past the trip budget)",
        )
        sheds = telemetry.counter(
            "repro_fleet_brownout_sheds_total",
            "Admissions shed by a level-2 brownout",
        )
        telemetry.add_probe(lambda: level.set(float(probe.level)))
        telemetry.add_probe(
            _pull_counter(metastable, lambda: probe.metastable_windows)
        )
        telemetry.add_probe(_pull_counter(sheds, lambda: probe.sheds))
    if storm is not None:
        depth = telemetry.gauge(
            "repro_fleet_migration_queue_depth",
            "Apps queued for paced failover re-admission",
        )
        queued = telemetry.counter(
            "repro_fleet_migrations_queued_total",
            "Detected-lost apps entering the paced migration queue",
        )
        released = telemetry.counter(
            "repro_fleet_migrations_released_total",
            "Queued apps released into a survivor's recovery slot",
        )
        telemetry.add_probe(lambda: depth.set(float(storm.depth)))
        telemetry.add_probe(_pull_counter(queued, lambda: storm.queued_total))
        telemetry.add_probe(
            _pull_counter(released, lambda: storm.released_total)
        )
    if budget is not None:
        spends = telemetry.counter(
            "repro_resilience_retry_budget_total",
            "Retry-budget spend attempts, by verdict",
            labelnames=("verdict",),
        )
        telemetry.add_probe(
            _pull_counter(
                spends, lambda: budget.granted_total, verdict="granted"
            )
        )
        telemetry.add_probe(
            _pull_counter(
                spends, lambda: budget.denied_total, verdict="denied"
            )
        )


# -- integrity -------------------------------------------------------------


def instrument_integrity(
    telemetry: Telemetry, checker, fence=None, journal=None
) -> None:
    """Invariant-check and fencing counters from the integrity subsystem.

    ``checker`` is an :class:`~repro.integrity.invariants.InvariantChecker`
    (or ``None``); ``fence`` an optional :class:`~repro.integrity.fencing.
    GenerationFence`; ``journal`` any object exposing the ``RunJournal``
    counters (``recovered``/``verified``/``appended``).  All three are
    read-only pulls — the probe observes the defenses, it never drives
    them.
    """
    if checker is None and fence is None and journal is None:
        return
    if checker is not None:
        checks = telemetry.counter(
            "repro_integrity_checks_total",
            "Full invariant-catalog passes executed",
        )
        violations = telemetry.counter(
            "repro_integrity_violations_total",
            "Invariant violations found (any mode)",
        )
        telemetry.add_probe(_pull_counter(checks, lambda: checker.checks_run))
        telemetry.add_probe(
            _pull_counter(violations, lambda: checker.violations_found)
        )
    if fence is not None:
        advances = telemetry.counter(
            "repro_integrity_fence_advances_total",
            "Device generation advances (fenced device losses)",
        )
        rejected = telemetry.counter(
            "repro_integrity_stale_writes_rejected_total",
            "Journal writes rejected for carrying a stale fencing token",
        )
        telemetry.add_probe(_pull_counter(advances, lambda: fence.advances))
        telemetry.add_probe(_pull_counter(rejected, lambda: fence.rejected))
    if journal is not None:
        appended = telemetry.counter(
            "repro_integrity_records_appended_total",
            "Envelope records durably appended",
        )
        verified = telemetry.counter(
            "repro_integrity_records_verified_total",
            "Recovered records re-verified by replay",
        )
        telemetry.add_probe(
            _pull_counter(appended, lambda: journal.appended)
        )
        telemetry.add_probe(
            _pull_counter(verified, lambda: journal.verified)
        )


# -- scheduling ------------------------------------------------------------


def instrument_scheduler(telemetry: Telemetry, scheduler) -> None:
    """Decision, prediction and regret signals of a ``BatchScheduler``.

    Pull-model like everything else: each sampler tick mirrors the
    scheduler's decision log into a per-(policy, order) counter, exposes
    the latest decision's predicted vs observed makespan as gauges, and
    tracks the bandit's cumulative regret per device.  Attaching this
    probe never changes a decision — the scheduler is read, not driven.
    """
    decisions = telemetry.counter(
        "repro_sched_decisions_total",
        "Batch scheduling decisions, by policy and chosen order",
        labelnames=("policy", "order"),
    )
    explorations = telemetry.counter(
        "repro_sched_explorations_total",
        "Decisions that were exploratory (bandit arm trials)",
        labelnames=("policy",),
    )
    predicted = telemetry.gauge(
        "repro_sched_predicted_makespan_seconds",
        "Predicted makespan of the most recent decision",
    )
    observed = telemetry.gauge(
        "repro_sched_observed_makespan_seconds",
        "Observed makespan of the most recently measured batch",
    )
    regret = telemetry.gauge(
        "repro_sched_bandit_regret_seconds",
        "Cumulative bandit regret (observed minus best-known makespan)",
        labelnames=("device",),
    )

    seen: dict = {"decisions": 0, "explored": 0}

    def probe() -> None:
        log = scheduler.decisions
        for decision in log[seen["decisions"]:]:
            decisions.inc(
                1, policy=decision.policy, order=decision.order_label
            )
            if decision.explored:
                seen["explored"] += 1
                explorations.inc(1, policy=decision.policy)
        seen["decisions"] = len(log)
        if log:
            predicted.set(log[-1].predicted_makespan)
        measured = [m for m in scheduler.observed if m is not None]
        if measured:
            observed.set(measured[-1])
        for device in sorted(scheduler._policies):
            regret.set(
                scheduler.cumulative_regret(device), device=str(device)
            )

    telemetry.add_probe(probe)
