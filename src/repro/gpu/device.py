"""The simulated GPU device: streams, queue fabric, engines and power.

:class:`GPUDevice` is the hub of the hardware model.  Host-side code (the
framework layer) creates :class:`DeviceStream` objects and enqueues
commands; the device wires each command's ordering dependencies (in-stream
FIFO plus hardware work-queue FIFO, per :mod:`repro.gpu.hyperq`), routes
ready commands to the right engine (DMA per direction, grid engine for
kernels) and keeps the power model informed of every activity change.

The device knows nothing about applications, scheduling policies or the
paper's experiments — it is the substrate those layers run on.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional

from ..sim.engine import Environment
from ..sim.events import AllOf, Event
from ..sim.trace import TraceRecorder
from .block_scheduler import GridEngine
from .commands import (
    Command,
    CopyDirection,
    KernelLaunchCommand,
    MarkerCommand,
    MemcpyCommand,
)
from .dma import CopyEngine
from .hyperq import QueueFabric
from .kernels import KernelDescriptor
from .memory import MemoryAllocator
from .power import PowerModel, PowerState
from .smx import SMXArray
from .specs import DeviceSpec, tesla_k20

__all__ = ["DeviceStream", "GPUDevice"]


class DeviceStream:
    """A CUDA stream: an in-order command queue owned by a device.

    Create through :meth:`GPUDevice.create_stream`.  All ``enqueue_*``
    methods are asynchronous in the CUDA sense: they return the command
    immediately; wait on ``command.done`` (or :meth:`synchronize_event`)
    for completion.
    """

    def __init__(self, device: "GPUDevice", sid: int, name: str = "") -> None:
        self.device = device
        self.sid = sid
        self.name = name or f"stream-{sid}"
        self._tail: Optional[Event] = None
        self.commands_enqueued: int = 0

    def __repr__(self) -> str:
        return f"<DeviceStream {self.sid} ({self.name})>"

    # -- enqueue API ---------------------------------------------------------

    def enqueue_memcpy(
        self,
        direction: CopyDirection,
        nbytes: int,
        buffer: str = "",
        app_id: Optional[str] = None,
    ) -> MemcpyCommand:
        """Enqueue an async memcpy; returns immediately."""
        cmd = MemcpyCommand(
            self.device.env, direction, nbytes, buffer=buffer, app_id=app_id
        )
        self.device._enqueue(self, cmd)
        return cmd

    def enqueue_kernel(
        self, descriptor: KernelDescriptor, app_id: Optional[str] = None
    ) -> KernelLaunchCommand:
        """Enqueue a kernel launch; returns immediately."""
        cmd = KernelLaunchCommand(self.device.env, descriptor, app_id=app_id)
        self.device._enqueue(self, cmd)
        return cmd

    def enqueue_marker(
        self, name: str = "event", app_id: Optional[str] = None
    ) -> MarkerCommand:
        """Enqueue an ordering marker (``cudaEventRecord`` equivalent)."""
        cmd = MarkerCommand(self.device.env, name=name, app_id=app_id)
        self.device._enqueue(self, cmd)
        return cmd

    def synchronize_event(self) -> Event:
        """Event that triggers when all currently enqueued work completes.

        Equivalent to ``cudaStreamSynchronize``: host processes do
        ``yield stream.synchronize_event()``.
        """
        if self._tail is None or self._tail.callbacks is None:
            # Nothing pending (or tail already processed): complete now.
            evt = Event(self.device.env)
            evt.succeed()
            return evt
        return self._tail

    def _push_tail(self, cmd: Command) -> Optional[Event]:
        prev = self._tail
        self._tail = cmd.done
        self.commands_enqueued += 1
        return prev


class GPUDevice:
    """One simulated GPU.

    Parameters
    ----------
    env:
        Simulation environment.
    spec:
        Hardware description (default: the paper's Tesla K20).
    trace:
        Optional :class:`TraceRecorder`; when given, every memcpy and
        kernel produces timeline spans.
    copy_policy:
        Copy-queue service discipline (``"interleave"`` or ``"fifo"``).
    admission:
        Optional admission-control hook forwarded to the grid engine
        (used by the symbiosis baseline; ``None`` = LEFTOVER policy).
    injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` forwarded
        to the grid engine (launch failures, kernel hangs) and both copy
        engines (DMA stalls); ``None`` keeps the device fault-free.
    """

    def __init__(
        self,
        env: Environment,
        spec: Optional[DeviceSpec] = None,
        trace: Optional[TraceRecorder] = None,
        copy_policy: str = "interleave",
        admission=None,
        injector=None,
    ) -> None:
        self.env = env
        self.spec = spec or tesla_k20()
        self.trace = trace
        self.smx = SMXArray(self.spec.num_smx, self.spec.smx)
        self.power = PowerModel(env, self.spec.power)
        self.injector = injector
        self.grid_engine = GridEngine(
            env,
            self.smx,
            trace=trace,
            on_change=self._power_changed,
            admission=admission,
            injector=injector,
        )
        self.dma = {
            CopyDirection.HTOD: CopyEngine(
                env,
                CopyDirection.HTOD,
                self.spec.dma_htod,
                policy=copy_policy,
                trace=trace,
                on_change=self._power_changed,
                injector=injector,
            ),
            CopyDirection.DTOH: CopyEngine(
                env,
                CopyDirection.DTOH,
                self.spec.dma_dtoh,
                policy=copy_policy,
                trace=trace,
                on_change=self._power_changed,
                injector=injector,
            ),
        }
        self.fabric = QueueFabric(env, self.spec.hardware_queues)
        self.memory = MemoryAllocator(self.spec.global_memory)
        self._stream_ids = count(0)
        self.streams: Dict[int, DeviceStream] = {}
        self._inflight: int = 0
        # Per-stream in-flight command counts (for the power model's
        # active-stream term).
        self._stream_inflight: Dict[int, int] = {}
        self._active_streams: int = 0
        # Statistics
        self.commands_issued: int = 0

    def __repr__(self) -> str:
        return f"<GPUDevice {self.spec.name} streams={len(self.streams)}>"

    # -- streams ----------------------------------------------------------

    def create_stream(self, name: str = "") -> DeviceStream:
        """Create a new stream (``cudaStreamCreate``)."""
        sid = next(self._stream_ids)
        stream = DeviceStream(self, sid, name=name)
        self.streams[sid] = stream
        return stream

    def destroy_stream(self, stream: DeviceStream) -> None:
        """Destroy a stream (host must have synchronized it first)."""
        self.streams.pop(stream.sid, None)

    # -- command plumbing ----------------------------------------------------

    def _enqueue(self, stream: DeviceStream, cmd: Command) -> None:
        cmd.stream_id = stream.sid
        cmd.enqueue_time = self.env.now
        self.commands_issued += 1
        queue = self.fabric.queue_for_stream(stream.sid)
        cmd.queue_id = queue.index

        deps: List[Event] = []
        prev_stream = stream._push_tail(cmd)
        if prev_stream is not None and prev_stream.callbacks is not None:
            deps.append(prev_stream)
        prev_queue = queue.push(cmd)
        if (
            prev_queue is not None
            and prev_queue is not prev_stream
            and prev_queue.callbacks is not None
        ):
            deps.append(prev_queue)

        if not deps:
            self._dispatch(cmd)
        elif len(deps) == 1:
            deps[0].callbacks.append(lambda _e, c=cmd: self._dispatch(c))
        else:
            gate = AllOf(self.env, deps)
            gate.callbacks.append(lambda _e, c=cmd: self._dispatch(c))

    def _dispatch(self, cmd: Command) -> None:
        """Route a dependency-free command to its engine."""
        now = self.env.now
        cmd.ready.succeed(now)
        self._inflight += 1
        sid = cmd.stream_id
        prev = self._stream_inflight.get(sid, 0)
        self._stream_inflight[sid] = prev + 1
        if prev == 0:
            self._active_streams += 1
        cmd.done.callbacks.append(
            lambda _e, s=sid: self._command_retired(s)
        )
        if isinstance(cmd, MemcpyCommand):
            self.dma[cmd.direction].submit(cmd)
        elif isinstance(cmd, KernelLaunchCommand):
            self.grid_engine.submit(cmd)
        elif isinstance(cmd, MarkerCommand):
            cmd.started.succeed(now)
            cmd.done.succeed(now)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot dispatch {cmd!r}")
        if prev == 0:
            self._power_changed()

    def _command_retired(self, stream_id: Optional[int]) -> None:
        self._inflight -= 1
        remaining = self._stream_inflight.get(stream_id, 0) - 1
        self._stream_inflight[stream_id] = remaining
        if remaining == 0:
            self._active_streams -= 1
        self._power_changed()

    # -- power ------------------------------------------------------------------

    def _power_changed(self) -> None:
        dma_busy = (
            1 if self.dma[CopyDirection.HTOD].busy else 0
        ) + (1 if self.dma[CopyDirection.DTOH].busy else 0)
        self.power.update(
            PowerState(
                occupancy=min(self.smx.thread_occupancy, 1.0),
                dma_busy=dma_busy,
                any_active=self._inflight > 0,
                active_streams=self._active_streams,
            )
        )

    # -- global sync ---------------------------------------------------------

    def synchronize_event(self) -> Event:
        """Event completing when every stream's enqueued work is done
        (``cudaDeviceSynchronize``)."""
        tails = [
            s._tail
            for s in self.streams.values()
            if s._tail is not None and s._tail.callbacks is not None
        ]
        if not tails:
            evt = Event(self.env)
            evt.succeed()
            return evt
        if len(tails) == 1:
            return tails[0]
        return AllOf(self.env, tails)
