"""DMA copy engines and the copy-queue service discipline.

Current GPUs have one DMA engine per transfer direction (HtoD and DtoH).
That single engine is the contention point at the heart of the paper:
despite 32 independent Hyper-Q work queues, every host-to-device copy funnels
through one engine, and the engine *interleaves* service among streams — a
command from stream A, then one from stream B, and so on.  An application
cannot start its kernels until all of its input transfers are complete, so
interleaving stretches every application's *effective* memory transfer
latency (Figure 1 / Figure 6, up to ~8x).

Two service disciplines are provided:

``"interleave"`` (default, matches observed hardware behaviour)
    Round-robin across streams that have a ready copy command, one command
    per turn.
``"fifo"``
    Strict ready-order service; used in ablations to separate the effect of
    the discipline from the effect of a single engine.

The paper's fix — the host-side transfer mutex — works with either
discipline because it keeps at most one application's commands pending.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Optional

from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.trace import TraceRecorder
from .commands import CopyDirection, MemcpyCommand
from .specs import DMASpec

__all__ = ["CopyEngine", "COPY_POLICIES"]

COPY_POLICIES = ("interleave", "fifo")


class CopyEngine:
    """One DMA engine serving a single transfer direction.

    Parameters
    ----------
    env:
        Simulation environment.
    direction:
        :class:`CopyDirection` this engine serves.
    spec:
        Bandwidth/latency model.
    policy:
        ``"interleave"`` or ``"fifo"`` (see module docstring).
    trace:
        Optional recorder; spans land on tracks ``stream-<id>`` (category
        ``memcpy_htod``/``memcpy_dtoh``) plus an engine utilization track.
    on_change:
        Power-model hook invoked when the engine goes busy/idle.
    injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` consulted
        before each command is served; armed ``dma_stall`` faults freeze
        the engine for their duration (PCIe hiccup / stalled copy engine).
        ``None`` (default) leaves the service loop untouched.
    """

    def __init__(
        self,
        env: Environment,
        direction: CopyDirection,
        spec: DMASpec,
        policy: str = "interleave",
        trace: Optional[TraceRecorder] = None,
        on_change: Optional[Callable[[], None]] = None,
        injector=None,
    ) -> None:
        if policy not in COPY_POLICIES:
            raise ValueError(
                f"unknown copy policy {policy!r}; expected one of {COPY_POLICIES}"
            )
        self.env = env
        self.direction = direction
        self.spec = spec
        self.policy = policy
        self.trace = trace
        self.on_change = on_change
        self.injector = injector
        self.busy: bool = False
        # interleave: per-stream FIFOs served round-robin.
        self._per_stream: "OrderedDict[int, Deque[MemcpyCommand]]" = OrderedDict()
        self._rr_order: Deque[int] = deque()
        # fifo: single ready-order queue.
        self._fifo: Deque[MemcpyCommand] = deque()
        self._wakeup: Optional[Event] = None
        # Statistics
        self.commands_served: int = 0
        self.bytes_moved: int = 0
        #: Accumulated wire time and ready->start queueing delay (seconds).
        #: Their ratio is the engine's effective-latency stretch: how much
        #: longer a transfer took end-to-end than its raw wire time
        #: (Figure 6's per-app metric, aggregated at the engine).
        self.busy_seconds: float = 0.0
        self.wait_seconds: float = 0.0
        env.process(self._service(), name=f"dma-{direction.value}")

    def __repr__(self) -> str:
        return (
            f"<CopyEngine {self.direction} policy={self.policy} "
            f"pending={self.pending_count}>"
        )

    @property
    def pending_count(self) -> int:
        """Number of commands waiting for the engine."""
        if self.policy == "fifo":
            return len(self._fifo)
        return sum(len(q) for q in self._per_stream.values())

    # -- submission --------------------------------------------------------

    def submit(self, cmd: MemcpyCommand) -> None:
        """Hand a *ready* memcpy command to the engine."""
        if cmd.direction is not self.direction:
            raise ValueError(
                f"{cmd!r} ({cmd.direction}) submitted to {self.direction} engine"
            )
        if self.policy == "fifo":
            self._fifo.append(cmd)
        else:
            sid = cmd.stream_id if cmd.stream_id is not None else -1
            queue = self._per_stream.get(sid)
            if queue is None:
                queue = deque()
                self._per_stream[sid] = queue
                self._rr_order.append(sid)
            queue.append(cmd)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _next(self) -> Optional[MemcpyCommand]:
        if self.policy == "fifo":
            return self._fifo.popleft() if self._fifo else None
        # Round-robin: advance to the next stream with work, rotating the
        # order so each stream gets one command per turn.
        for _ in range(len(self._rr_order)):
            sid = self._rr_order[0]
            self._rr_order.rotate(-1)
            queue = self._per_stream.get(sid)
            if queue:
                cmd = queue.popleft()
                if not queue:
                    # Drop empty stream queues so the RR ring stays small.
                    del self._per_stream[sid]
                    self._rr_order.remove(sid)
                return cmd
        return None

    # -- service loop --------------------------------------------------------

    def _service(self):
        env = self.env
        category = (
            "memcpy_htod" if self.direction is CopyDirection.HTOD else "memcpy_dtoh"
        )
        while True:
            cmd = self._next()
            if cmd is None:
                self._wakeup = Event(env)
                yield self._wakeup
                self._wakeup = None
                continue
            if self.injector is not None:
                stall = self.injector.dma_stall(self.direction.value, env.now)
                if stall > 0:
                    stall_start = env.now
                    yield env.timeout(stall)
                    if self.trace is not None:
                        self.trace.record(
                            track=f"dma-{self.direction.value.lower()}",
                            category="dma_stall",
                            name="injected stall",
                            start=stall_start,
                            end=env.now,
                        )
            duration = self.spec.transfer_time(cmd.nbytes)
            if self.injector is not None:
                # Gray DMA degradation: a stretched link serves the copy
                # at a fraction of spec bandwidth for the window's span.
                stretch = self.injector.dma_stretch(
                    self.direction.value, env.now
                )
                if stretch != 1.0:
                    duration *= stretch
            start = env.now
            cmd.started.succeed(start)
            self.busy = True
            if self.on_change is not None:
                self.on_change()
            yield env.timeout(duration)
            end = env.now
            self.busy = False
            self.commands_served += 1
            self.bytes_moved += cmd.nbytes
            self.busy_seconds += end - start
            if cmd.ready.triggered and cmd.ready._value is not None:
                self.wait_seconds += start - cmd.ready._value
            if self.trace is not None:
                self.trace.record(
                    track=f"stream-{cmd.stream_id}",
                    category=category,
                    name=cmd.buffer or f"{cmd.nbytes}B",
                    start=start,
                    end=end,
                    app=cmd.app_id,
                    bytes=cmd.nbytes,
                )
                self.trace.record(
                    track=f"dma-{self.direction.value.lower()}",
                    category=f"dma_{self.direction.value.lower()}",
                    name=cmd.app_id or "",
                    start=start,
                    end=end,
                    bytes=cmd.nbytes,
                )
            if self.on_change is not None:
                self.on_change()
            cmd.done.succeed(end)
