"""Stream-level commands exchanged between host code and device engines.

CUDA's execution model is: host threads *enqueue* commands (async memory
copies, kernel launches, event records) onto streams; the device consumes
them subject to (a) in-stream FIFO ordering and (b) hardware work-queue
ordering (see :mod:`repro.gpu.hyperq`).  Each command here carries three
events that model code and metrics hang off:

``ready``
    All ordering dependencies satisfied; the command is eligible for its
    engine (DMA or grid).
``started``
    The engine began executing it (first byte on the wire / first thread
    block placed).
``done``
    Fully complete (last byte / last thread block retired).
"""

from __future__ import annotations

from enum import Enum
from itertools import count
from typing import TYPE_CHECKING, Any, Dict, Optional

from ..sim.events import Event
from .kernels import KernelDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Environment

__all__ = ["CopyDirection", "Command", "MemcpyCommand", "KernelLaunchCommand", "MarkerCommand"]

_command_ids = count(1)


class CopyDirection(Enum):
    """Transfer direction; each direction has its own DMA engine."""

    HTOD = "HtoD"
    DTOH = "DtoH"

    def __str__(self) -> str:
        return self.value


class Command:
    """Base class for everything that can sit in a stream.

    Attributes
    ----------
    cid:
        Globally unique id, monotone in creation order — ties in engine
        queues are broken by it, keeping the whole simulation deterministic.
    stream_id / queue_id:
        Filled in by the device when the command is enqueued.
    app_id:
        The application instance that issued the command (``None`` for
        infrastructure commands); metrics group spans by it.
    """

    kind = "command"

    def __init__(self, env: "Environment", app_id: Optional[str] = None) -> None:
        self.cid: int = next(_command_ids)
        self.env = env
        self.app_id = app_id
        self.stream_id: Optional[int] = None
        self.queue_id: Optional[int] = None
        self.enqueue_time: Optional[float] = None
        self.ready: Event = Event(env)
        self.started: Event = Event(env)
        self.done: Event = Event(env)
        self.meta: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} #{self.cid} app={self.app_id!r} "
            f"stream={self.stream_id}>"
        )

    @property
    def label(self) -> str:
        """Short human-readable description used in traces."""
        return self.kind


class MemcpyCommand(Command):
    """An asynchronous ``cudaMemcpyAsync`` of ``nbytes`` in ``direction``.

    ``buffer`` is a free-form label naming what is being moved (e.g.
    ``"matrix_a"``) so timelines read like the paper's profiler screenshots.
    """

    kind = "memcpy"

    def __init__(
        self,
        env: "Environment",
        direction: CopyDirection,
        nbytes: int,
        buffer: str = "",
        app_id: Optional[str] = None,
    ) -> None:
        super().__init__(env, app_id=app_id)
        if nbytes <= 0:
            raise ValueError(f"memcpy of {nbytes} bytes")
        self.direction = direction
        self.nbytes = int(nbytes)
        self.buffer = buffer

    @property
    def label(self) -> str:
        return f"memcpy{self.direction}({self.buffer or self.nbytes})"


class KernelLaunchCommand(Command):
    """A kernel launch: the full grid described by ``descriptor``."""

    kind = "kernel"

    def __init__(
        self,
        env: "Environment",
        descriptor: KernelDescriptor,
        app_id: Optional[str] = None,
    ) -> None:
        super().__init__(env, app_id=app_id)
        self.descriptor = descriptor
        #: Filled by the block scheduler: number of scheduling waves used.
        self.waves: int = 0
        #: Time the first / last block was placed (diagnostics).
        self.first_block_time: Optional[float] = None
        self.last_block_time: Optional[float] = None

    @property
    def label(self) -> str:
        return self.descriptor.name


class MarkerCommand(Command):
    """A no-op ordering marker (models ``cudaEventRecord``).

    Completes as soon as it becomes ready; used by host code to wait for a
    prefix of a stream without synchronizing the entire device.
    """

    kind = "marker"

    def __init__(self, env: "Environment", name: str = "event", app_id: Optional[str] = None) -> None:
        super().__init__(env, app_id=app_id)
        self.name = name

    @property
    def label(self) -> str:
        return f"marker({self.name})"
