"""Device specifications for the simulated GPU.

The paper's testbed is an NVIDIA Tesla K20 (Kepler GK110, compute
capability 3.5).  :func:`tesla_k20` builds the spec used by every
experiment; :func:`fermi_c2050` builds a Fermi-generation spec (single
hardware work queue) used for the Hyper-Q ablation — the paper motivates
Hyper-Q by Fermi's false serialization, so the ablation quantifies what the
32 hardware queues buy.

All sizes are bytes, times are seconds, rates are bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "SMXSpec",
    "DMASpec",
    "HostSpec",
    "PowerSpec",
    "DeviceSpec",
    "tesla_k20",
    "fermi_c2050",
    "PRESETS",
    "get_preset",
]

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class SMXSpec:
    """Per-multiprocessor resource limits (one SMX on Kepler).

    These four limits are exactly the quantities the CUDA occupancy rules
    minimize over; :mod:`repro.gpu.occupancy` uses them directly.
    """

    max_blocks: int = 16          # resident thread blocks per SMX (CC 3.5)
    max_threads: int = 2048       # resident threads per SMX
    registers: int = 65536        # 32-bit registers per SMX
    shared_memory: int = 48 * KIB  # bytes of shared memory per SMX
    cores: int = 192              # CUDA cores (reporting only)

    def __post_init__(self) -> None:
        if min(self.max_blocks, self.max_threads, self.registers) <= 0:
            raise ValueError("SMX limits must be positive")


@dataclass(frozen=True)
class DMASpec:
    """One copy engine (a single PCIe transfer direction).

    ``latency`` models the fixed per-``cudaMemcpyAsync`` cost (driver launch
    plus PCIe round trip); ``bandwidth`` the asymptotic streaming rate.
    Transfer time for ``n`` bytes is ``latency + n / bandwidth``, the
    standard affine model (transfer time scales linearly past ~8 KB, which
    the paper verified for the K20 citing Boyer's measurements).

    The default bandwidth is the *effective* rate for the paper's workload
    regime — many pinned transfers in the 100 KB - 1 MB range issued from
    concurrent host threads — which sits well below the PCIe gen2 x16
    streaming peak (~6 GB/s) on K20-era systems.
    """

    bandwidth: float = 3.0 * GIB   # effective rate for ~1 MB pinned copies
    latency: float = 12e-6         # fixed overhead per transfer command

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` in one command."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class HostSpec:
    """Host-side cost model for API calls and threading.

    The paper's harness uses ``std::thread`` per application; thread spawn
    cost staggers the order in which applications reach the GPU, which is
    precisely the lever the reordering study (Section III-C) pulls.
    """

    api_call_overhead: float = 4e-6      # cudaMemcpyAsync / kernel<<<>>> enqueue
    kernel_launch_overhead: float = 6e-6  # device-side launch latency
    thread_spawn_cost: float = 25e-6     # std::thread creation + start
    malloc_host_per_byte: float = 2.5e-10  # cudaMallocHost (pinned) cost/byte
    malloc_host_base: float = 150e-6
    malloc_device_base: float = 80e-6
    free_base: float = 40e-6


@dataclass(frozen=True)
class PowerSpec:
    """Board-level power model parameters (see :mod:`repro.gpu.power`).

    Calibrated against public Tesla K20 characteristics: ~17 W idle, 225 W
    TDP, with realistic compute kernels drawing 100-150 W.  The exponent
    ``concurrency_exponent`` (< 1) encodes the paper's observation that
    power grows *sublinearly* with the number of concurrent streams.
    """

    idle: float = 17.0              # W, device powered but quiescent
    context_active: float = 28.0    # W, added while any work is in flight
    smx_dynamic_max: float = 150.0  # W, added at 100% thread occupancy
    concurrency_exponent: float = 0.4  # occupancy -> dynamic power shape
    dma_active: float = 11.0        # W per busy copy engine
    stream_active: float = 0.6      # W per stream with work in flight
    tdp: float = 225.0              # W, sanity upper bound


@dataclass(frozen=True)
class DeviceSpec:
    """Complete description of one simulated GPU."""

    name: str
    compute_capability: str
    num_smx: int
    smx: SMXSpec
    hardware_queues: int            # 32 on Kepler (Hyper-Q), 1 on Fermi
    copy_engines_per_direction: int  # 1 on both generations studied
    global_memory: int
    dma_htod: DMASpec = field(default_factory=DMASpec)
    dma_dtoh: DMASpec = field(default_factory=DMASpec)
    host: HostSpec = field(default_factory=HostSpec)
    power: PowerSpec = field(default_factory=PowerSpec)

    def __post_init__(self) -> None:
        if self.num_smx <= 0:
            raise ValueError("num_smx must be positive")
        if self.hardware_queues <= 0:
            raise ValueError("hardware_queues must be positive")
        if self.global_memory <= 0:
            raise ValueError("global_memory must be positive")

    # -- derived quantities ----------------------------------------------

    @property
    def max_resident_blocks(self) -> int:
        """Device-wide resident thread-block ceiling.

        For the K20 this is 13 SMX x 16 blocks = 208, the "theoretical
        maximum number of thread blocks" the paper quotes when arguing that
        the Figure 5 workload (1203 requested blocks) oversubscribes the
        device.
        """
        return self.num_smx * self.smx.max_blocks

    @property
    def max_resident_threads(self) -> int:
        """Device-wide resident thread ceiling (26624 on the K20)."""
        return self.num_smx * self.smx.max_threads

    @property
    def total_cores(self) -> int:
        """Total CUDA cores (2496 on the K20)."""
        return self.num_smx * self.smx.cores

    def with_hardware_queues(self, n: int) -> "DeviceSpec":
        """A copy of this spec with a different Hyper-Q width."""
        return replace(self, hardware_queues=n)


def tesla_k20() -> DeviceSpec:
    """The paper's testbed: Tesla K20, CC 3.5, Hyper-Q with 32 queues."""
    return DeviceSpec(
        name="Tesla K20",
        compute_capability="3.5",
        num_smx=13,
        smx=SMXSpec(),
        hardware_queues=32,
        copy_engines_per_direction=1,
        global_memory=5 * GIB - 256 * MIB,  # 4.75 GiB usable of 5 GB board
    )


def fermi_c2050() -> DeviceSpec:
    """A Fermi-generation device: one hardware work queue (no Hyper-Q).

    Used only by the ablation benchmarks; block/thread limits follow
    compute capability 2.0.
    """
    return DeviceSpec(
        name="Tesla C2050",
        compute_capability="2.0",
        num_smx=14,
        smx=SMXSpec(
            max_blocks=8,
            max_threads=1536,
            registers=32768,
            shared_memory=48 * KIB,
            cores=32,
        ),
        hardware_queues=1,
        copy_engines_per_direction=1,
        global_memory=3 * GIB,
    )


PRESETS: Dict[str, "DeviceSpec"] = {}


def _register(name: str, factory) -> None:
    PRESETS[name] = factory()


_register("k20", tesla_k20)
_register("fermi", fermi_c2050)


def get_preset(name: str) -> DeviceSpec:
    """Look up a named device preset (``"k20"`` or ``"fermi"``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown device preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
