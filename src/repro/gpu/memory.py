"""Device global-memory allocator.

Models ``cudaMalloc``/``cudaFree`` over the K20's ~5 GB of GDDR5 with a
first-fit free list and coalescing on free.  The paper's workloads are far
from exhausting device memory (32 applications x a few MB each), but a real
framework must fail loudly on exhaustion and the allocator's occupancy
statistics feed the utilization reports.

Allocation granularity is 256 bytes (the CUDA texture alignment) — matching
hardware behaviour and keeping offsets aligned for any downstream user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["GpuOutOfMemory", "Allocation", "MemoryAllocator"]

ALIGNMENT = 256


class GpuOutOfMemory(MemoryError):
    """Raised when a ``cudaMalloc`` cannot be satisfied."""


@dataclass(frozen=True)
class Allocation:
    """One live device allocation."""

    offset: int
    size: int          # aligned size actually reserved
    requested: int     # size the caller asked for

    @property
    def end(self) -> int:
        """First byte past the allocation."""
        return self.offset + self.size


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class MemoryAllocator:
    """First-fit allocator with free-block coalescing."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        # Sorted, disjoint, coalesced free extents: (offset, size).
        self._free: List[Tuple[int, int]] = [(0, self.capacity)]
        self._live: dict = {}
        self.in_use: int = 0
        self.peak_in_use: int = 0
        self.total_allocs: int = 0
        self.failed_allocs: int = 0

    def __repr__(self) -> str:
        return (
            f"<MemoryAllocator {self.in_use}/{self.capacity} B in use, "
            f"{len(self._live)} allocations>"
        )

    # -- allocation ---------------------------------------------------------

    def alloc(self, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` (rounded up to the 256 B alignment)."""
        if nbytes <= 0:
            raise ValueError(f"allocation of {nbytes} bytes")
        size = _align(nbytes)
        for i, (offset, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    del self._free[i]
                else:
                    self._free[i] = (offset + size, extent - size)
                allocation = Allocation(offset=offset, size=size, requested=nbytes)
                self._live[offset] = allocation
                self.in_use += size
                self.peak_in_use = max(self.peak_in_use, self.in_use)
                self.total_allocs += 1
                return allocation
        self.failed_allocs += 1
        raise GpuOutOfMemory(
            f"cannot allocate {nbytes} B ({size} B aligned); "
            f"{self.available} B free in {len(self._free)} fragments"
        )

    def free(self, allocation: Allocation) -> None:
        """Release an allocation; adjacent free extents are merged."""
        live = self._live.pop(allocation.offset, None)
        if live is not allocation:
            if live is not None:
                self._live[allocation.offset] = live
            raise ValueError(f"double free or foreign allocation: {allocation}")
        self.in_use -= allocation.size
        # Insert in sorted position, then coalesce neighbours.
        entry = (allocation.offset, allocation.size)
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < entry[0]:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, entry)
        self._coalesce(lo)

    def _coalesce(self, index: int) -> None:
        # Merge with successor first, then predecessor.
        if index + 1 < len(self._free):
            off, size = self._free[index]
            noff, nsize = self._free[index + 1]
            if off + size == noff:
                self._free[index] = (off, size + nsize)
                del self._free[index + 1]
        if index > 0:
            poff, psize = self._free[index - 1]
            off, size = self._free[index]
            if poff + psize == off:
                self._free[index - 1] = (poff, psize + size)
                del self._free[index]

    # -- introspection -------------------------------------------------------

    @property
    def available(self) -> int:
        """Total free bytes (possibly fragmented)."""
        return self.capacity - self.in_use

    @property
    def largest_free_block(self) -> int:
        """Largest single allocatable extent."""
        return max((size for _, size in self._free), default=0)

    @property
    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._live)

    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when unfragmented or full."""
        avail = self.available
        if avail == 0:
            return 0.0
        return 1.0 - self.largest_free_block / avail

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property-based tests)."""
        total_free = sum(size for _, size in self._free)
        assert total_free == self.capacity - self.in_use, "free-space accounting"
        prev_end = -1
        for off, size in self._free:
            assert size > 0, "empty free extent"
            assert off > prev_end, "overlapping or unsorted free extents"
            prev_end = off + size
        assert prev_end <= self.capacity, "free extent past capacity"
        # Free extents must be maximal (coalesced): no two adjacent.
        for (off, size), (noff, _) in zip(self._free, self._free[1:]):
            assert off + size < noff, "uncoalesced adjacent free extents"
