"""Per-SMX resource accounting for the thread-block scheduler.

Each :class:`SMXState` tracks the four resources the occupancy rules care
about (block slots, threads, shared memory, registers).  The
:class:`SMXArray` aggregates all SMXs of a device and answers the two
questions the block scheduler asks:

* "how many more blocks of kernel K fit right now, and where?"
* "give those resources back" (when a block cohort retires).

Placement is round-robin across SMXs starting from a rotating cursor —
matching the GigaThread engine's breadth-first block distribution and
keeping SMX load balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .kernels import KernelDescriptor
from .specs import SMXSpec

__all__ = ["SMXState", "Placement", "SMXArray"]


@dataclass
class SMXState:
    """Mutable free-resource counters of one SMX."""

    index: int
    spec: SMXSpec
    free_blocks: int = 0
    free_threads: int = 0
    free_shared_mem: int = 0
    free_registers: int = 0

    def __post_init__(self) -> None:
        self.free_blocks = self.spec.max_blocks
        self.free_threads = self.spec.max_threads
        self.free_shared_mem = self.spec.shared_memory
        self.free_registers = self.spec.registers

    def fits(self, kernel: KernelDescriptor) -> int:
        """How many more blocks of ``kernel`` fit on this SMX now."""
        # Hot path: manual min-chain over cached kernel attributes.
        n = self.free_blocks
        if n <= 0:
            return 0
        m = self.free_threads // kernel._threads_per_block
        if m < n:
            n = m
        smem = kernel.shared_mem_per_block
        if smem:
            m = self.free_shared_mem // smem
            if m < n:
                n = m
        regs = kernel._registers_per_block
        if regs:
            m = self.free_registers // regs
            if m < n:
                n = m
        return n if n > 0 else 0

    def take(self, kernel: KernelDescriptor, nblocks: int) -> None:
        """Reserve resources for ``nblocks`` blocks of ``kernel``."""
        if nblocks > self.fits(kernel):
            raise ValueError(
                f"SMX {self.index}: cannot host {nblocks} blocks of "
                f"{kernel.name}"
            )
        self.free_blocks -= nblocks
        self.free_threads -= nblocks * kernel.threads_per_block
        self.free_shared_mem -= nblocks * kernel.shared_mem_per_block
        self.free_registers -= nblocks * kernel.registers_per_block

    def give_back(self, kernel: KernelDescriptor, nblocks: int) -> None:
        """Release resources of ``nblocks`` retired blocks of ``kernel``."""
        self.free_blocks += nblocks
        self.free_threads += nblocks * kernel.threads_per_block
        self.free_shared_mem += nblocks * kernel.shared_mem_per_block
        self.free_registers += nblocks * kernel.registers_per_block
        if (
            self.free_blocks > self.spec.max_blocks
            or self.free_threads > self.spec.max_threads
            or self.free_shared_mem > self.spec.shared_memory
            or self.free_registers > self.spec.registers
        ):
            raise ValueError(
                f"SMX {self.index}: resource release exceeds capacity "
                f"(double free of {kernel.name} blocks?)"
            )

    @property
    def busy(self) -> bool:
        """Whether any block is resident."""
        return self.free_blocks < self.spec.max_blocks

    @property
    def resident_threads(self) -> int:
        """Threads currently resident on this SMX."""
        return self.spec.max_threads - self.free_threads


@dataclass(frozen=True)
class Placement:
    """Blocks of one kernel placed on one SMX in one scheduling pass."""

    smx_index: int
    nblocks: int


class SMXArray:
    """All SMXs of a device, with round-robin block placement."""

    def __init__(self, num_smx: int, spec: SMXSpec) -> None:
        if num_smx <= 0:
            raise ValueError("num_smx must be positive")
        self.spec = spec
        self.smxs: List[SMXState] = [SMXState(i, spec) for i in range(num_smx)]
        self._cursor = 0
        # Running device-level counters (kept in sync by place/release so
        # the power model's frequent queries stay O(1)).
        self._resident_blocks = 0
        self._resident_threads = 0
        #: Effective compute speed scale the grid engine last observed
        #: (1.0 = spec clocks, 4.0 = blocks retiring 4x slow).  Written
        #: when cohorts are scheduled under a gray SMX_SLOWDOWN window so
        #: telemetry/health probes can see the degradation ground truth;
        #: placement math never reads it.
        self.speed_scale: float = 1.0

    def __iter__(self) -> Iterator[SMXState]:
        return iter(self.smxs)

    def __len__(self) -> int:
        return len(self.smxs)

    # -- placement --------------------------------------------------------

    def place(self, kernel: KernelDescriptor, max_blocks: int) -> List[Placement]:
        """Place up to ``max_blocks`` blocks of ``kernel``; return placements.

        Distribution is breadth-first round-robin from a persistent cursor
        (like the GigaThread engine's block distributor): blocks are dealt
        in whole "levels" across the SMXs, so loads stay balanced, in
        O(num_smx) time independent of the block count.  Returns an empty
        list when nothing fits; never places more than requested.
        """
        if max_blocks <= 0:
            return []
        n_smx = len(self.smxs)
        if self._resident_blocks >= n_smx * self.spec.max_blocks:
            return []
        start = self._cursor % n_smx
        remaining = max_blocks
        placements: List[Placement] = []
        total_placed = 0
        # Greedy fill in cursor order: each SMX takes as many blocks as it
        # can host before moving on.  The rotating cursor spreads successive
        # cohorts across the array, which keeps long-run SMX load balanced
        # without per-block dealing.
        for offset in range(n_smx):
            idx = (start + offset) % n_smx
            smx = self.smxs[idx]
            n = smx.fits(kernel)
            if n <= 0:
                continue
            if n > remaining:
                n = remaining
            smx.take(kernel, n)
            placements.append(Placement(idx, n))
            total_placed += n
            remaining -= n
            if remaining == 0:
                self._cursor = (idx + 1) % n_smx
                break
        if total_placed:
            self._resident_blocks += total_placed
            self._resident_threads += total_placed * kernel._threads_per_block
        return placements

    def release(self, kernel: KernelDescriptor, placements: List[Placement]) -> None:
        """Return the resources of a retired cohort."""
        total = 0
        for p in placements:
            self.smxs[p.smx_index].give_back(kernel, p.nblocks)
            total += p.nblocks
        self._resident_blocks -= total
        self._resident_threads -= total * kernel._threads_per_block

    # -- device-level introspection ----------------------------------------

    @property
    def busy_smx_count(self) -> int:
        """Number of SMXs with at least one resident block."""
        return sum(1 for s in self.smxs if s.busy)

    @property
    def resident_threads(self) -> int:
        """Total resident threads across the device."""
        return self._resident_threads

    @property
    def resident_blocks(self) -> int:
        """Total resident blocks across the device."""
        return self._resident_blocks

    @property
    def free_block_slots(self) -> int:
        """Unoccupied block slots across the device (O(1))."""
        return len(self.smxs) * self.spec.max_blocks - self._resident_blocks

    @property
    def thread_occupancy(self) -> float:
        """Resident threads / device thread capacity, in [0, 1]."""
        cap = len(self.smxs) * self.spec.max_threads
        return self._resident_threads / cap

    def utilization_snapshot(self) -> Tuple[int, int, float]:
        """(busy SMXs, resident blocks, thread occupancy) for power/logs."""
        return (self.busy_smx_count, self.resident_blocks, self.thread_occupancy)
