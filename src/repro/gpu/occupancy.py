"""CUDA occupancy arithmetic for the simulated device.

Given a kernel's per-block footprint and an :class:`~repro.gpu.specs.SMXSpec`,
compute how many blocks of that kernel one SMX can host simultaneously.
This is the same min-over-limits rule the CUDA occupancy calculator uses:

* block-count limit (``max_blocks`` per SMX),
* thread limit (``max_threads // threads_per_block``),
* shared-memory limit,
* register limit.

Simplifications vs real hardware (documented, not load-bearing for the
paper's claims): register allocation granularity (warp-level, 256-register
quanta on Kepler) and shared-memory bank configuration are ignored — both
shift occupancy by at most one block for the Table III kernels and do not
change any serialization behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernels import KernelDescriptor
from .specs import DeviceSpec, SMXSpec

__all__ = ["OccupancyResult", "blocks_per_smx", "occupancy", "device_wide_blocks"]


@dataclass(frozen=True)
class OccupancyResult:
    """Breakdown of the occupancy computation for one kernel.

    ``limiter`` names which resource clamps the block count — useful in
    reports explaining *why* a kernel cannot fill the device.
    """

    kernel: str
    blocks_per_smx: int
    limit_blocks: int
    limit_threads: int
    limit_shared_mem: int
    limit_registers: int
    limiter: str
    thread_occupancy: float  # resident threads / max threads, one SMX

    def __str__(self) -> str:
        return (
            f"{self.kernel}: {self.blocks_per_smx} blocks/SMX "
            f"(limited by {self.limiter}), "
            f"{self.thread_occupancy:.1%} thread occupancy"
        )


def blocks_per_smx(kernel: KernelDescriptor, smx: SMXSpec) -> int:
    """Maximum resident blocks of ``kernel`` on one SMX (may be 0 if the
    kernel cannot run at all, e.g. it wants more shared memory than exists).
    """
    limits = _limits(kernel, smx)
    return min(limits.values())


def _limits(kernel: KernelDescriptor, smx: SMXSpec) -> dict:
    tpb = kernel.threads_per_block
    limits = {
        "blocks": smx.max_blocks,
        "threads": smx.max_threads // tpb,
    }
    if kernel.shared_mem_per_block > 0:
        limits["shared_mem"] = smx.shared_memory // kernel.shared_mem_per_block
    else:
        limits["shared_mem"] = smx.max_blocks
    regs = kernel.registers_per_block
    if regs > 0:
        limits["registers"] = smx.registers // regs
    else:
        limits["registers"] = smx.max_blocks
    return limits


def occupancy(kernel: KernelDescriptor, smx: SMXSpec) -> OccupancyResult:
    """Full occupancy breakdown for ``kernel`` on one SMX."""
    limits = _limits(kernel, smx)
    blocks = min(limits.values())
    # Name the binding constraint; prefer the conventional reporting order.
    limiter = "blocks"
    for key in ("blocks", "threads", "shared_mem", "registers"):
        if limits[key] == blocks:
            limiter = key
            break
    resident_threads = blocks * kernel.threads_per_block
    return OccupancyResult(
        kernel=kernel.name,
        blocks_per_smx=blocks,
        limit_blocks=limits["blocks"],
        limit_threads=limits["threads"],
        limit_shared_mem=limits["shared_mem"],
        limit_registers=limits["registers"],
        limiter=limiter,
        thread_occupancy=resident_threads / smx.max_threads,
    )


def device_wide_blocks(kernel: KernelDescriptor, spec: DeviceSpec) -> int:
    """Maximum resident blocks of ``kernel`` across the whole device."""
    return blocks_per_smx(kernel, spec.smx) * spec.num_smx
