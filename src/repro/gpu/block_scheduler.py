"""The device grid engine: thread-block scheduling under the LEFTOVER policy.

The paper's "lazy resource utilization policy" (Section III-A) relies on the
Kepler GigaThread engine's behaviour, called LEFTOVER in Pai et al.: thread
blocks are scheduled *in the order their grids arrived* until some SMX
resource is exhausted; whenever an application's kernel leaves resources
unused, blocks from a *later* grid (possibly from a different stream) are
packed into the leftover space.  This is what lets five kernels requesting
1203 thread blocks overlap on a device with a 208-block ceiling (Figure 5).

Implementation notes
--------------------
* Blocks of one grid placed in the same scheduling pass form a *cohort*
  that shares a single completion event — this keeps the event count
  proportional to scheduling waves rather than thread blocks, which is what
  makes 32-application experiments tractable in pure Python.
* Scheduling passes are deferred to a NORMAL-priority event at the current
  time, so all same-time cohort retirements release their resources before
  the next pass runs (and multiple triggers coalesce into one pass).
* An optional ``admission`` hook lets :mod:`repro.core.baselines` implement
  the symbiosis-style admission control the paper compares against (a grid
  is held back until the hook admits it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..resilience.faults import FaultInjector, FaultKind
from ..sim.engine import Environment
from ..sim.errors import FaultError
from ..sim.events import NORMAL, Event
from ..sim.trace import TraceRecorder
from .commands import KernelLaunchCommand
from .kernels import KernelDescriptor
from .smx import Placement, SMXArray

__all__ = ["GridEngine", "GridState"]


@dataclass
class GridState:
    """Book-keeping for one in-flight kernel launch."""

    cmd: KernelLaunchCommand
    to_place: int          # blocks not yet given to an SMX
    outstanding: int = 0   # blocks currently resident
    waves: int = 0         # scheduling passes that placed >= 1 block
    admitted: bool = True  # admission-control gate (LEFTOVER: always True)
    hang_factor: float = 1.0  # injected slowdown (1.0 = healthy grid)

    @property
    def kernel(self) -> KernelDescriptor:
        """The launch's kernel descriptor."""
        return self.cmd.descriptor

    @property
    def finished(self) -> bool:
        """All blocks placed and retired."""
        return self.to_place == 0 and self.outstanding == 0


class GridEngine:
    """Schedules kernel grids onto an :class:`SMXArray`.

    Parameters
    ----------
    env:
        Simulation environment.
    smx_array:
        The device's SMX resources.
    trace:
        Optional recorder; one ``kernel`` span per launch command.
    on_change:
        Callback invoked after every occupancy change (power model hook).
    admission:
        Optional ``(GridState, List[GridState]) -> bool`` called before a
        *new* grid may receive blocks while other grids are active.  The
        default (``None``) is the LEFTOVER policy: everything is admitted.
    injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` consulted
        at every launch submission.  An armed ``launch_fail`` fails the
        command immediately (transient ``cudaLaunchKernel`` error); an
        armed ``kernel_hang`` inflates the grid's block retirement time by
        the fault's factor.  ``None`` (the default) keeps the engine
        byte-identical to a build without fault injection.
    max_concurrent_grids:
        Hardware limit on simultaneously executing grids (32 on CC 3.5).
    retire_quantum:
        Cohort retirements are rounded *up* to a multiple of this many
        seconds (default 1 us).  Without it, slightly staggered cohorts
        retire at distinct instants, each retirement triggers its own
        scheduling pass placing a slightly smaller cohort, and scheduling
        degenerates toward per-block granularity (quadratic event blowup
        under heavy contention).  The quantum bounds the timing error of
        any single block at ``retire_quantum`` while keeping the event
        count proportional to true scheduling waves.  Set to 0 to disable.
    """

    def __init__(
        self,
        env: Environment,
        smx_array: SMXArray,
        trace: Optional[TraceRecorder] = None,
        on_change: Optional[Callable[[], None]] = None,
        admission: Optional[Callable[[GridState, List["GridState"]], bool]] = None,
        injector: Optional[FaultInjector] = None,
        max_concurrent_grids: int = 32,
        retire_quantum: float = 1e-6,
    ) -> None:
        if retire_quantum < 0:
            raise ValueError("retire_quantum must be >= 0")
        self.env = env
        self.smx = smx_array
        self.trace = trace
        self.on_change = on_change
        self.admission = admission
        self.injector = injector
        self.max_concurrent_grids = max_concurrent_grids
        self.retire_quantum = retire_quantum
        self._pending: List[GridState] = []
        self._pass_scheduled = False
        # Statistics
        self.grids_completed: int = 0
        self.total_waves: int = 0

    # -- submission --------------------------------------------------------

    def submit(self, cmd: KernelLaunchCommand) -> Optional[GridState]:
        """Accept a ready kernel launch command for scheduling.

        Returns ``None`` when an injected launch failure rejected the
        command (its ``done`` event fails with a
        :class:`~repro.sim.errors.FaultError`; ``started`` never fires).
        """
        hang_factor = 1.0
        if self.injector is not None:
            fault = self.injector.kernel_fault(cmd.app_id, self.env.now)
            if fault is not None:
                if fault.kind is FaultKind.LAUNCH_FAIL:
                    error = FaultError(
                        f"injected launch failure for {cmd.descriptor.name} "
                        f"({cmd.app_id or 'unknown app'})",
                        kind=FaultKind.LAUNCH_FAIL.value,
                        target=cmd.app_id,
                    )
                    # Defuse: stream/queue gates and retirement callbacks
                    # still fire on a failed event, but an unwaited failure
                    # must not abort the engine — the app thread detects it
                    # at its next synchronize.
                    cmd.done.fail(error)
                    cmd.done.defuse()
                    return None
                hang_factor = fault.factor
            throttle = self.injector.throttle_factor(self.env.now)
            if throttle != 1.0:
                hang_factor *= throttle
            jitter = self.injector.clock_jitter(cmd.app_id, self.env.now)
            if jitter != 1.0:
                hang_factor *= jitter
        nblocks = cmd.descriptor.num_blocks
        grid = GridState(cmd=cmd, to_place=nblocks, hang_factor=hang_factor)
        if self.admission is not None:
            grid.admitted = False
        self._pending.append(grid)
        self._request_pass()
        return grid

    @property
    def active_grids(self) -> int:
        """Grids currently holding or awaiting SMX resources."""
        return len(self._pending)

    # -- scheduling --------------------------------------------------------

    def _request_pass(self) -> None:
        """Schedule a scheduling pass at the current time (coalesced)."""
        if self._pass_scheduled:
            return
        self._pass_scheduled = True
        evt = Event(self.env)
        evt._ok = True
        evt._value = None
        evt.callbacks.append(self._run_pass)
        # NORMAL priority: runs after all already-queued same-time cohort
        # retirements, so released resources are visible to this pass.
        self.env.schedule(evt, priority=NORMAL)

    def _run_pass(self, _evt: Event) -> None:
        self._pass_scheduled = False
        now = self.env.now
        changed = False
        executing = sum(1 for g in self._pending if g.outstanding > 0)
        # Fast path: with no free block slot anywhere, no kernel can place.
        free_block_slots = self.smx.free_block_slots

        for grid in self._pending:
            if free_block_slots == 0:
                break
            if grid.to_place == 0:
                continue
            if self.admission is not None and not grid.admitted:
                active = [g for g in self._pending if g is not grid and g.outstanding > 0]
                if not self.admission(grid, active):
                    # Admission control holds this grid back; LEFTOVER mode
                    # never takes this branch.  In-order semantics: later
                    # grids must not jump a held-back grid, mirroring a
                    # software scheduler that launches sequentially.
                    break
                grid.admitted = True
            if grid.outstanding == 0:
                if executing >= self.max_concurrent_grids:
                    continue
            placements = self.smx.place(grid.kernel, grid.to_place)
            placed = sum(p.nblocks for p in placements)
            if placed == 0:
                continue
            if grid.outstanding == 0 and grid.to_place == grid.kernel.num_blocks:
                # First blocks of this launch.
                grid.cmd.started.succeed(now)
                grid.cmd.first_block_time = now
                executing += 1
            grid.to_place -= placed
            grid.outstanding += placed
            grid.waves += 1
            self.total_waves += 1
            free_block_slots -= placed
            changed = True
            self._schedule_retirement(grid, placements, placed)

        if changed and self.on_change is not None:
            self.on_change()

    def _schedule_retirement(
        self, grid: GridState, placements: List[Placement], placed: int
    ) -> None:
        """Arrange for a cohort to retire after the kernel's block duration."""
        duration = grid.kernel.block_duration * grid.hang_factor
        if self.injector is not None:
            # Gray SMX slowdown acts per *cohort*, not per launch: a
            # window opening mid-kernel slows its remaining waves, which
            # is what makes the degradation visible to latency stretch
            # while DEVICE_THROTTLE stays a submit-time property.
            slow = self.injector.smx_slowdown(self.env.now)
            self.smx.speed_scale = slow
            if slow != 1.0:
                duration *= slow
        q = self.retire_quantum
        if q > 0:
            # Round the absolute retirement instant up to the quantum so
            # near-simultaneous cohorts coalesce into one scheduling pass.
            now = self.env.now
            target = now + duration
            quantized = -(-target // q) * q  # ceil to the grid
            duration = quantized - now
        evt = Event(self.env)
        evt._ok = True
        evt._value = None

        def _retire(_e: Event, grid=grid, placements=placements, placed=placed) -> None:
            self.smx.release(grid.kernel, placements)
            grid.outstanding -= placed
            if grid.finished:
                self._finish(grid)
            if self.on_change is not None:
                self.on_change()
            self._request_pass()

        evt.callbacks.append(_retire)
        self.env.schedule(evt, delay=duration, priority=NORMAL)

    def _finish(self, grid: GridState) -> None:
        now = self.env.now
        self._pending.remove(grid)
        self.grids_completed += 1
        cmd = grid.cmd
        cmd.waves = grid.waves
        cmd.last_block_time = now
        if self.trace is not None and cmd.first_block_time is not None:
            self.trace.record(
                track=f"stream-{cmd.stream_id}",
                category="kernel",
                name=cmd.descriptor.name,
                start=cmd.first_block_time,
                end=now,
                app=cmd.app_id,
                blocks=cmd.descriptor.num_blocks,
                waves=grid.waves,
            )
        cmd.done.succeed(now)
