"""Kernel launch descriptors and the per-block cost model.

A :class:`KernelDescriptor` captures everything the simulator needs about
one CUDA kernel launch: the launch geometry (grid and block dimensions from
the paper's Table III), the per-block resource footprint (threads, shared
memory, registers) and the per-block execution duration.

The duration is the *cost model*: how long one thread block occupies its
SMX slot.  Absolute values are calibrated to K20-era measurements of the
Rodinia applications (see :mod:`repro.apps`); the paper's conclusions only
depend on the relative magnitudes (which applications are compute-heavy vs
transfer-heavy) and on the resource footprints that drive occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Dim3", "KernelDescriptor"]


@dataclass(frozen=True)
class Dim3:
    """A CUDA ``dim3`` — x/y/z extents, all >= 1."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise ValueError(f"dim3 components must be >= 1, got {self}")

    @property
    def count(self) -> int:
        """Total number of elements (x * y * z)."""
        return self.x * self.y * self.z

    def as_tuple(self) -> Tuple[int, int, int]:
        """The (x, y, z) tuple."""
        return (self.x, self.y, self.z)

    def __str__(self) -> str:
        return f"({self.x}, {self.y}, {self.z})"


@dataclass(frozen=True)
class KernelDescriptor:
    """Static description of one kernel launch.

    Attributes
    ----------
    name:
        Kernel symbol name (e.g. ``"Fan2"`` — matches Table III).
    grid, block:
        Launch geometry.  ``grid.count`` thread blocks of ``block.count``
        threads each.
    registers_per_thread:
        Register footprint; with ``block.count`` this bounds blocks/SMX.
    shared_mem_per_block:
        Static + dynamic shared memory per block, in bytes.
    block_duration:
        Seconds one thread block keeps its SMX resources busy.
    flops_per_block:
        Optional bookkeeping for utilization reports (not used for timing).
    """

    name: str
    grid: Dim3
    block: Dim3
    registers_per_thread: int = 32
    shared_mem_per_block: int = 0
    block_duration: float = 10e-6
    flops_per_block: float = 0.0

    def __post_init__(self) -> None:
        if self.block.count > 1024:
            raise ValueError(
                f"{self.name}: {self.block.count} threads/block exceeds the "
                "CUDA limit of 1024"
            )
        if self.registers_per_thread < 0 or self.shared_mem_per_block < 0:
            raise ValueError(f"{self.name}: negative resource footprint")
        if self.block_duration <= 0:
            raise ValueError(f"{self.name}: block_duration must be positive")
        # Hot-path caches: the block scheduler reads these once per
        # placement attempt, so precompute instead of re-deriving.
        object.__setattr__(self, "_num_blocks", self.grid.count)
        object.__setattr__(self, "_threads_per_block", self.block.count)
        object.__setattr__(
            self,
            "_registers_per_block",
            self.registers_per_thread * self.block.count,
        )

    # -- derived ----------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Total thread blocks in the launch (``#TB`` in Table III)."""
        return self._num_blocks

    @property
    def threads_per_block(self) -> int:
        """Threads per block (``#TPB`` in Table III)."""
        return self._threads_per_block

    @property
    def total_threads(self) -> int:
        """Total threads across the whole grid."""
        return self._num_blocks * self._threads_per_block

    @property
    def registers_per_block(self) -> int:
        """Register footprint of one resident block."""
        return self._registers_per_block

    def serial_duration(self, concurrent_blocks: int) -> float:
        """Lower-bound duration if ``concurrent_blocks`` run per wave.

        Convenience for tests and analysis: ``ceil(num_blocks / width) *
        block_duration``, i.e. the kernel's makespan when the device grants
        it a fixed number of block slots.
        """
        if concurrent_blocks <= 0:
            raise ValueError("concurrent_blocks must be positive")
        waves = -(-self.num_blocks // concurrent_blocks)
        return waves * self.block_duration

    def scaled(self, duration_factor: float) -> "KernelDescriptor":
        """A copy with the per-block duration multiplied by ``factor``."""
        from dataclasses import replace

        if duration_factor <= 0:
            raise ValueError("duration_factor must be positive")
        return replace(
            self, block_duration=self.block_duration * duration_factor
        )

    def __str__(self) -> str:
        return (
            f"{self.name}<<<{self.grid}, {self.block}>>> "
            f"[{self.num_blocks} TB x {self.threads_per_block} TPB]"
        )
