"""Kepler-class GPU hardware model (the paper's Tesla K20, simulated).

Substrate layers:

* :mod:`~repro.gpu.specs` — device descriptions (K20, Fermi ablation).
* :mod:`~repro.gpu.kernels` — kernel launch descriptors + cost model.
* :mod:`~repro.gpu.occupancy` — CUDA occupancy arithmetic.
* :mod:`~repro.gpu.smx` / :mod:`~repro.gpu.block_scheduler` — SMX resources
  and the LEFTOVER thread-block scheduler.
* :mod:`~repro.gpu.dma` — the per-direction DMA engines whose contention the
  paper studies.
* :mod:`~repro.gpu.hyperq` — hardware work queues (Hyper-Q vs Fermi).
* :mod:`~repro.gpu.power` — board power model with exact energy integral.
* :mod:`~repro.gpu.memory` — device memory allocator.
* :mod:`~repro.gpu.device` — :class:`GPUDevice` tying it all together.
"""

from .block_scheduler import GridEngine, GridState
from .commands import (
    Command,
    CopyDirection,
    KernelLaunchCommand,
    MarkerCommand,
    MemcpyCommand,
)
from .device import DeviceStream, GPUDevice
from .dma import COPY_POLICIES, CopyEngine
from .hyperq import HardwareQueue, QueueFabric
from .kernels import Dim3, KernelDescriptor
from .memory import Allocation, GpuOutOfMemory, MemoryAllocator
from .occupancy import OccupancyResult, blocks_per_smx, device_wide_blocks, occupancy
from .power import PowerModel, PowerState
from .smx import Placement, SMXArray, SMXState
from .specs import (
    DeviceSpec,
    DMASpec,
    HostSpec,
    PowerSpec,
    SMXSpec,
    fermi_c2050,
    get_preset,
    tesla_k20,
)

__all__ = [
    "GPUDevice",
    "DeviceStream",
    "DeviceSpec",
    "SMXSpec",
    "DMASpec",
    "HostSpec",
    "PowerSpec",
    "tesla_k20",
    "fermi_c2050",
    "get_preset",
    "Dim3",
    "KernelDescriptor",
    "occupancy",
    "OccupancyResult",
    "blocks_per_smx",
    "device_wide_blocks",
    "SMXArray",
    "SMXState",
    "Placement",
    "GridEngine",
    "GridState",
    "CopyEngine",
    "COPY_POLICIES",
    "QueueFabric",
    "HardwareQueue",
    "PowerModel",
    "PowerState",
    "MemoryAllocator",
    "Allocation",
    "GpuOutOfMemory",
    "Command",
    "MemcpyCommand",
    "KernelLaunchCommand",
    "MarkerCommand",
    "CopyDirection",
]
