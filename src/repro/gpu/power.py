"""Board-level power model with exact energy integration.

The paper measures GPU power through NVML's on-board sensor and observes
(Section III-D / V-D) that power consumption grows only *slightly* with the
number of concurrent streams, so reducing makespan reduces energy.  The
model here reproduces that shape:

``P = idle + context_active·[any work in flight]
       + smx_dynamic_max · occupancy^alpha + dma_active · (busy copy engines)``

with ``alpha < 1`` (``PowerSpec.concurrency_exponent``): doubling the number
of resident threads raises dynamic power by well under 2x, the
lack-of-energy-proportionality the paper's introduction leads with.

The model is piecewise-constant: the device calls :meth:`update` on every
occupancy/DMA state change, and energy is the exact integral of the
recorded segments.  The paper's *measurement procedure* (sampling the sensor
at 15 ms / 66.7 Hz) lives in
:class:`repro.framework.power_monitor.PowerMonitor`, which samples this
model; tests compare the sampled estimate against the exact integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.engine import Environment
from .specs import PowerSpec

__all__ = ["PowerModel", "PowerState"]


@dataclass(frozen=True)
class PowerState:
    """Inputs to the power formula at one instant."""

    occupancy: float      # resident threads / device capacity, [0, 1]
    dma_busy: int         # busy copy engines (0..2)
    any_active: bool      # any command in flight anywhere
    active_streams: int = 0  # streams with at least one command in flight

    def __post_init__(self) -> None:
        if not 0.0 <= self.occupancy <= 1.0 + 1e-9:
            raise ValueError(f"occupancy {self.occupancy} outside [0, 1]")
        if self.dma_busy < 0 or self.active_streams < 0:
            raise ValueError("negative activity counts")


class PowerModel:
    """Piecewise-constant instantaneous power with exact integration."""

    def __init__(self, env: Environment, spec: PowerSpec) -> None:
        self.env = env
        self.spec = spec
        self._segments: List[Tuple[float, float]] = []  # (start_time, watts)
        self._current_power: float = self.evaluate(
            PowerState(occupancy=0.0, dma_busy=0, any_active=False)
        )
        self._last_change: float = env.now
        self._energy_before: float = 0.0  # J accumulated in closed segments
        self.peak_power: float = self._current_power
        #: Keep the full segment history.  Long streamed runs flip this
        #: off (bounded-memory mode): the running integral stays exact,
        #: but retrospective ``energy(until<now)`` / ``segments()``
        #: queries need the history and raise instead of silently lying.
        self.retain_segments: bool = True

    # -- formula -----------------------------------------------------------

    def evaluate(self, state: PowerState) -> float:
        """Instantaneous board power (W) for ``state``."""
        s = self.spec
        power = s.idle
        if state.any_active:
            power += s.context_active
        if state.occupancy > 0.0:
            power += s.smx_dynamic_max * state.occupancy ** s.concurrency_exponent
        power += s.dma_active * state.dma_busy
        # Each concurrently active stream keeps front-end/driver machinery
        # busy: the per-stream increment behind the paper's "power
        # consumption increases slightly as the number of streams increases".
        power += s.stream_active * state.active_streams
        return min(power, s.tdp)

    # -- state updates -------------------------------------------------------

    def update(self, state: PowerState) -> None:
        """Record a state change at the current simulated time."""
        now = self.env.now
        new_power = self.evaluate(state)
        if new_power == self._current_power:
            return
        dt = now - self._last_change
        if dt > 0:
            if self.retain_segments:
                self._segments.append((self._last_change, self._current_power))
            self._energy_before += self._current_power * dt
        self._current_power = new_power
        self._last_change = now
        self.peak_power = max(self.peak_power, new_power)

    # -- queries ---------------------------------------------------------------

    @property
    def current_power(self) -> float:
        """Instantaneous power right now (W)."""
        return self._current_power

    def energy(self, until: Optional[float] = None) -> float:
        """Exact energy (J) consumed from t=0 to ``until`` (default: now)."""
        t = self.env.now if until is None else until
        if t < self._last_change:
            if not self.retain_segments:
                raise RuntimeError(
                    "energy(until=<past>) needs the segment history, which "
                    "this model does not retain (retain_segments=False)"
                )
            # Integrate only closed segments up to t.
            total = 0.0
            segs = self._segments + [(self._last_change, self._current_power)]
            for (start, watts), (next_start, _) in zip(segs, segs[1:]):
                if next_start <= t:
                    total += watts * (next_start - start)
                elif start < t:
                    total += watts * (t - start)
            return total
        return self._energy_before + self._current_power * (t - self._last_change)

    def average_power(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        """Mean power over [t0, t1] (J integral / duration)."""
        t1 = self.env.now if t1 is None else t1
        if t1 <= t0:
            return self._current_power
        return (self.energy(t1) - self.energy(t0)) / (t1 - t0)

    def segments(self) -> List[Tuple[float, float]]:
        """Closed (start_time, watts) segments plus the open tail."""
        if not self.retain_segments:
            raise RuntimeError(
                "segment history not retained (retain_segments=False)"
            )
        return self._segments + [(self._last_change, self._current_power)]
