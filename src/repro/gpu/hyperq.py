"""Hardware work queues: Hyper-Q (Kepler) vs single queue (Fermi).

A CUDA stream is a *software* ordering domain.  What the device actually
consumes are hardware work queues.  On Fermi there is exactly one: commands
from all streams merge into it, and a command cannot be dispatched until the
previous command in the queue has completed — independent streams therefore
*falsely serialize* on each other.  Kepler's Hyper-Q provides 32 hardware
queues; each stream maps onto one, and only streams that alias onto the same
queue (more than 32 streams) still suffer false dependencies.

This module implements both: a :class:`QueueFabric` with ``n`` queues and a
deterministic stream->queue mapping (round-robin by stream id, matching the
driver's grab-next-connection behaviour).  A command's ``ready`` event fires
when *both* its stream predecessor and its hardware-queue predecessor have
completed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import Environment
from ..sim.events import Event
from .commands import Command

__all__ = ["HardwareQueue", "QueueFabric"]


class HardwareQueue:
    """One hardware work queue: a chain of completion dependencies."""

    def __init__(self, env: Environment, index: int) -> None:
        self.env = env
        self.index = index
        #: ``done`` event of the most recently enqueued command.
        self._tail: Optional[Event] = None
        self.depth_total: int = 0

    def push(self, cmd: Command) -> Optional[Event]:
        """Append ``cmd``; return the event it must wait on (or ``None``)."""
        prev = self._tail
        self._tail = cmd.done
        self.depth_total += 1
        return prev

    def __repr__(self) -> str:
        return f"<HardwareQueue {self.index}>"


class QueueFabric:
    """The set of hardware queues of one device.

    Parameters
    ----------
    env:
        Simulation environment.
    num_queues:
        32 for Kepler/Hyper-Q, 1 for Fermi.
    """

    def __init__(self, env: Environment, num_queues: int) -> None:
        if num_queues < 1:
            raise ValueError("need at least one hardware queue")
        self.env = env
        self.queues: List[HardwareQueue] = [
            HardwareQueue(env, i) for i in range(num_queues)
        ]
        self._stream_to_queue: Dict[int, int] = {}

    @property
    def num_queues(self) -> int:
        """Number of hardware queues in the fabric."""
        return len(self.queues)

    def queue_for_stream(self, stream_id: int) -> HardwareQueue:
        """Deterministic stream -> queue mapping (stream id mod queues).

        With more streams than queues this aliases multiple streams onto a
        queue, reintroducing false serialization among them — exactly the
        behaviour of exceeding ``CUDA_DEVICE_MAX_CONNECTIONS``.
        """
        qidx = self._stream_to_queue.get(stream_id)
        if qidx is None:
            qidx = stream_id % len(self.queues)
            self._stream_to_queue[stream_id] = qidx
        return self.queues[qidx]

    def aliased_streams(self, stream_id: int) -> List[int]:
        """Stream ids sharing a queue with ``stream_id`` (diagnostics)."""
        qidx = self.queue_for_stream(stream_id).index
        return [
            sid
            for sid, q in self._stream_to_queue.items()
            if q == qidx and sid != stream_id
        ]
