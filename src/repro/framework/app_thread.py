"""The simulated host thread that runs one application instance.

The paper's harness launches each application class instance "on its own
independent child thread"; within the thread the instance runs its execution
pattern (in general HtoD transfers -> kernel execution -> DtoH transfers).
:class:`AppThread` is that child thread as a simulation process.  It drives
the application's :class:`~repro.framework.kernel.KernelApp` lifecycle
(Table II methods) and implements the two policies under study:

* **stream sharing** — the thread occupies its assigned framework stream
  for the whole GPU section, serializing co-resident applications;
* **memory-transfer synchronization** — when enabled, every HtoD transfer
  phase runs inside the global transfer mutex and the thread waits for the
  phase's copies to *complete* before releasing (the pseudo-burst of
  Section III-B).  When disabled, copies are enqueued asynchronously and
  the thread runs ahead, exactly like stock CUDA code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..gpu.commands import (
    CopyDirection,
    KernelLaunchCommand,
    MemcpyCommand,
)
from ..gpu.device import GPUDevice
from ..gpu.specs import HostSpec
from ..sim.events import AllOf
from .kernel import (
    HostComputePhase,
    KernelApp,
    KernelPhase,
    SyncPhase,
    TransferPhase,
)
from .metrics import AppRecord, KernelEvent, TransferEvent
from .stream import Stream

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Environment

__all__ = ["AppContext", "AppThread"]


@dataclass
class AppContext:
    """Per-application state handed to every Table II method.

    ``stream`` is the *device* stream; it is ``None`` until the harness
    assigns one at child-thread launch time (allocation and initialization
    do not need a stream).
    """

    env: "Environment"
    device: GPUDevice
    stream: Optional[object]
    host_spec: HostSpec
    app_id: str
    device_allocations: Dict[str, object] = field(default_factory=dict)
    memcpy_commands: List[MemcpyCommand] = field(default_factory=list)
    kernel_commands: List[KernelLaunchCommand] = field(default_factory=list)
    #: Commands issued since the last :meth:`drain_new_transfers` call —
    #: the synchronizer waits on exactly these.
    _new_transfers: List[MemcpyCommand] = field(default_factory=list)

    def note_transfer(self, cmd: MemcpyCommand) -> None:
        """Record an enqueued memcpy (called by ``transfer_memory``)."""
        self.memcpy_commands.append(cmd)
        self._new_transfers.append(cmd)

    def note_kernel(self, cmd: KernelLaunchCommand) -> None:
        """Record an enqueued kernel launch."""
        self.kernel_commands.append(cmd)

    def drain_new_transfers(self) -> List[MemcpyCommand]:
        """Commands enqueued since the last drain (and reset the list)."""
        new, self._new_transfers = self._new_transfers, []
        return new


class AppThread:
    """One child thread executing one :class:`KernelApp` instance.

    Mirrors the paper's harness structure: the *parent* thread allocates
    and initializes every application's memory up front (:meth:`prepare`)
    and frees it after all children complete (:meth:`cleanup`); the child
    thread (:meth:`run`) executes only the application's GPU section —
    "in general, HtoD memory transfer -- kernel execution -- DtoH memory
    transfer".

    Parameters
    ----------
    env, device:
        Simulation environment and target GPU.
    app:
        The application instance to run.
    synchronizer:
        Transfer synchronizer (real or null, see
        :mod:`repro.framework.sync`).
    record:
        The :class:`~repro.framework.metrics.AppRecord` to fill in.
    """

    def __init__(
        self,
        env: "Environment",
        device: GPUDevice,
        app: KernelApp,
        synchronizer,
        record: AppRecord,
    ) -> None:
        self.env = env
        self.device = device
        self.app = app
        self.stream: Optional[Stream] = None
        self.synchronizer = synchronizer
        self.record = record
        # Causal-tracing context for this app, set by the engine that
        # admitted it (None in untraced runs: every site below is one
        # attribute check and results stay byte-identical).
        self.trace_ctx = None
        self.ctx = AppContext(
            env=env,
            device=device,
            stream=None,
            host_spec=device.spec.host,
            app_id=app.app_id,
        )

    # -- parent-thread phases ---------------------------------------------------

    def prepare(self):
        """Allocate host + device memory and initialize host data.

        Run by the harness *parent* before any child thread starts ("The
        execution flow ... begins with ... allocating all host and device
        memory, and initializing host memory").
        """
        yield from self.app.allocate_host_memory(self.ctx)
        yield from self.app.allocate_device_memory(self.ctx)
        yield from self.app.initialize_host_memory(self.ctx)

    def cleanup(self):
        """Free all memory (parent thread, after every child completes)."""
        yield from self.app.free_device_memory(self.ctx)
        yield from self.app.free_host_memory(self.ctx)

    def assign_stream(self, stream: Stream) -> None:
        """Bind the framework stream (done at child-thread launch time)."""
        self.stream = stream
        self.ctx.stream = stream.device_stream

    # -- the child-thread body ----------------------------------------------------

    def run(self):
        """Process generator: the application's GPU section."""
        if self.stream is None:
            raise RuntimeError(f"{self.app.app_id}: no stream assigned")
        env = self.env
        app = self.app
        ctx = self.ctx
        record = self.record

        traced = env.tracer is not None and self.trace_ctx is not None

        # Serialize with other applications sharing this stream.
        occupy_from = env.now
        lock_request = yield from self.stream.occupy(app.app_id)
        record.gpu_start = env.now
        if traced:
            self._trace("stream.occupy", "stream-occupy", occupy_from)
        try:
            for phase in app.profile.phases:
                if isinstance(phase, TransferPhase):
                    yield from self._run_transfer_phase(phase)
                elif isinstance(phase, KernelPhase):
                    yield from app.execute_kernel(ctx, phase)
                elif isinstance(phase, SyncPhase):
                    sync_from = env.now
                    yield ctx.stream.synchronize_event()
                    if traced:
                        self._trace("stream.sync", "sync-wait", sync_from)
                elif isinstance(phase, HostComputePhase):
                    host_from = env.now
                    yield env.timeout(phase.duration)
                    if traced:
                        self._trace("host.compute", "host-compute", host_from)
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown phase {phase!r}")

            # Final cudaStreamSynchronize: wait for everything enqueued.
            sync_from = env.now
            yield ctx.stream.synchronize_event()
            if traced:
                self._trace("stream.sync.final", "sync-wait", sync_from)
            # A failed command that was not the stream tail completes the
            # sync successfully; surface it the way a CUDA error code
            # returned by cudaStreamSynchronize would be.
            self._check_faults()
        finally:
            record.complete_time = env.now
            self._harvest()
            self.stream.vacate(app.app_id, lock_request)

    def reset_for_retry(self) -> None:
        """Discard one attempt's command/metric state before re-running.

        Called by the resilience supervisor between attempts.  Device and
        host allocations persist (the retry reuses them, like a server
        re-issuing the same request); only the enqueued-command bookkeeping
        and the per-attempt measured events are cleared.
        """
        ctx = self.ctx
        ctx.memcpy_commands.clear()
        ctx.kernel_commands.clear()
        ctx._new_transfers.clear()
        self.record.transfers.clear()
        self.record.kernels.clear()

    def _check_faults(self) -> None:
        """Raise the first recorded command failure of this attempt."""
        for cmd in self.ctx.kernel_commands:
            if cmd.done.triggered and not cmd.done.ok:
                raise cmd.done.value
        for cmd in self.ctx.memcpy_commands:
            if cmd.done.triggered and not cmd.done.ok:
                raise cmd.done.value

    def _run_transfer_phase(self, phase: TransferPhase):
        """One transfer phase, with or without the paper's mutex."""
        app = self.app
        ctx = self.ctx
        use_mutex = (
            self.synchronizer.enabled
            and phase.direction is CopyDirection.HTOD
            and phase.synchronized
        )
        traced = self.env.tracer is not None and self.trace_ctx is not None
        if use_mutex:
            mutex_from = self.env.now
            token = yield from self.synchronizer.acquire(app.app_id)
            if traced:
                self._trace("transfer.mutex", "transfer-mutex", mutex_from)
            try:
                yield from app.transfer_memory(ctx, phase)
                pending = [c.done for c in ctx.drain_new_transfers()]
                if pending:
                    # Hold the mutex until this app's burst fully lands.
                    burst_from = self.env.now
                    yield AllOf(self.env, pending)
                    if traced:
                        self._trace("transfer.burst", "dma-burst", burst_from)
            finally:
                self.synchronizer.release(app.app_id, token)
        else:
            yield from app.transfer_memory(ctx, phase)
            ctx.drain_new_transfers()

    # -- measurement ------------------------------------------------------------

    def _trace(self, name: str, category: str, start: float, end=None):
        """Record one completed wait span on this app's trace.

        Skips empty intervals so untouched waits (an already-free mutex,
        an already-drained stream) do not clutter the tree.
        """
        end = self.env.now if end is None else end
        if end > start:
            self.env.tracer.record_leaf(
                self.trace_ctx, name, category, start, end
            )

    def _harvest(self) -> None:
        """Convert completed commands into metric events."""
        record = self.record
        for cmd in self.ctx.memcpy_commands:
            if not cmd.done.triggered or not cmd.done.ok:
                continue  # app failed mid-flight; keep only completed work
            record.transfers.append(
                TransferEvent(
                    direction=cmd.direction,
                    nbytes=cmd.nbytes,
                    buffer=cmd.buffer,
                    enqueued=cmd.enqueue_time,
                    started=cmd.started.value,
                    completed=cmd.done.value,
                )
            )
        for cmd in self.ctx.kernel_commands:
            if not cmd.done.triggered or not cmd.done.ok:
                continue
            record.kernels.append(
                KernelEvent(
                    name=cmd.descriptor.name,
                    num_blocks=cmd.descriptor.num_blocks,
                    enqueued=cmd.enqueue_time,
                    started=cmd.started.value,
                    completed=cmd.done.value,
                    waves=cmd.waves,
                )
            )
        if self.env.tracer is not None and self.trace_ctx is not None:
            self._harvest_spans()

    def _harvest_spans(self) -> None:
        """Engine-level leaf spans from this attempt's completed events.

        Kernel enqueue->start is Hyper-Q slot wait, start->complete is
        SMX execution; copy enqueue->start is DMA queueing, start->
        complete is DMA service.  The critical-path extractor uses these
        to sub-attribute time spent inside synchronization waits.
        """
        # Tight loop over every completed command: bind the fast-path
        # recorder locally, it runs twice per kernel and per burst.
        leaf = self.env.tracer.record_leaf
        ctx = self.trace_ctx
        for ev in self.record.transfers:
            if ev.started > ev.enqueued:
                leaf(ctx, "dma.queue", "dma-queue", ev.enqueued, ev.started)
            if ev.completed > ev.started:
                # Direction rides in the span name (an existing interned
                # string pair, not a per-span meta dict): detailed copy
                # identity lives in record.transfers / the GPU trace
                # tracks, the span only needs the wait category.
                leaf(
                    ctx,
                    "dma.service.htod"
                    if ev.direction is CopyDirection.HTOD
                    else "dma.service.dtoh",
                    "dma-service", ev.started, ev.completed,
                )
        for ev in self.record.kernels:
            if ev.started > ev.enqueued:
                leaf(
                    ctx, "hyperq.slot", "hyperq-slot", ev.enqueued,
                    ev.started,
                )
            if ev.completed > ev.started:
                leaf(ctx, ev.name, "smx-exec", ev.started, ev.completed)
