"""Metrics: effective memory transfer latency (Eqs. 1-2) and derived stats.

The paper defines, for an application ``Ai`` whose operation sequence is
``{mHD..., k..., mDH...}`` (Eq. 1), the *effective memory transfer latency*

    Le(*) = Tend(last m*) - Tstart(first m*)        (Eq. 2)

per transfer direction: the wall time from the start of the application's
first copy to the completion of its last, *including* any time other
applications' copies held the DMA engine in between.  The aggregate
reported in Figure 6 averages Le per application over the applications of
each stream, then averages across the NS streams; both steps are
implemented verbatim here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..gpu.commands import CopyDirection

__all__ = [
    "TransferEvent",
    "KernelEvent",
    "AppRecord",
    "effective_latency",
    "average_effective_latency",
    "improvement_pct",
    "makespan",
    "deadline_met_count",
    "goodput",
]


@dataclass(frozen=True)
class TransferEvent:
    """One completed memcpy command of an application."""

    direction: CopyDirection
    nbytes: int
    buffer: str
    enqueued: float
    started: float
    completed: float

    @property
    def service_time(self) -> float:
        """Time the DMA engine actually spent on this copy."""
        return self.completed - self.started

    @property
    def queueing_delay(self) -> float:
        """Time between enqueue and service start."""
        return self.started - self.enqueued


@dataclass(frozen=True)
class KernelEvent:
    """One completed kernel launch of an application."""

    name: str
    num_blocks: int
    enqueued: float
    started: float
    completed: float
    waves: int

    @property
    def execution_time(self) -> float:
        """First block placed -> last block retired."""
        return self.completed - self.started


@dataclass
class AppRecord:
    """Everything measured about one application instance in one run."""

    app_id: str
    type_name: str
    instance: int
    stream_index: int
    launch_index: int            # position in the launch schedule
    spawn_time: float = 0.0      # host thread creation
    gpu_start: float = 0.0       # stream occupied (GPU section begins)
    complete_time: float = 0.0   # GPU section ends (after final sync + frees)
    transfers: List[TransferEvent] = field(default_factory=list)
    kernels: List[KernelEvent] = field(default_factory=list)
    # -- resilience accounting (all zero/False in fault-free runs) --------
    attempts: int = 1            # total attempts, including the first
    retries: int = 0             # attempts after a detected fault
    retries_denied: int = 0      # retries refused by the retry budget
    faults_detected: int = 0     # faults that killed an attempt
    deadline_hits: int = 0       # watchdog cancellations among those
    failed: bool = False         # gave up after exhausting the retry budget
    # -- serving accounting (inert outside repro.serving runs) ------------
    slo_deadline: float = 0.0    # absolute SLO deadline; 0 = no SLO
    outcome: str = ""            # terminal serving outcome ("" = not set)
    tenant: str = ""             # tenant-class name ("" = single-tenant)
    tenant_id: int = 0           # sub-tenant index within the class
    # -- fleet accounting (inert outside repro.fleet runs) ----------------
    device_index: int = 0        # device the app finally ran on
    migrations: int = 0          # device-loss failovers survived
    reexecuted_kernels: int = 0  # in-flight kernels re-run after failover
    hedges: int = 0              # speculative replicas launched for this app
    hedge_wins: int = 0          # hedges whose replica finished first
    duplicate_kernels: int = 0   # kernels both primary and replica executed
    # -- scheduling accounting (lets reports attribute makespans) ---------
    order_policy: str = ""       # launch-order policy the run used
    memory_sync: bool = False    # whether the HtoD transfer mutex was on

    @property
    def wall_time(self) -> float:
        """GPU-section duration of this instance."""
        return self.complete_time - self.gpu_start

    def transfer_events(self, direction: CopyDirection) -> List[TransferEvent]:
        """This app's copies in ``direction``, in completion order."""
        return [t for t in self.transfers if t.direction is direction]

    def effective_latency(self, direction: CopyDirection) -> Optional[float]:
        """Eq. 2 for this application, or ``None`` if no such transfers."""
        events = self.transfer_events(direction)
        if not events:
            return None
        return max(t.completed for t in events) - min(t.started for t in events)

    def pure_transfer_time(self, direction: CopyDirection) -> float:
        """Sum of DMA service times (the no-contention lower bound)."""
        return sum(t.service_time for t in self.transfer_events(direction))

    @property
    def kernel_busy_time(self) -> float:
        """Sum of kernel execution intervals (may double-count overlap)."""
        return sum(k.execution_time for k in self.kernels)

    @property
    def ran(self) -> bool:
        """Whether this instance actually executed (vs shed before start)."""
        return self.complete_time > 0.0

    @property
    def deadline_met(self) -> bool:
        """Whether this instance completed within its SLO deadline.

        ``True`` for completed work without an SLO (no deadline to miss);
        ``False`` for failed or shed instances.
        """
        if self.failed or not self.ran:
            return False
        if self.slo_deadline <= 0.0:
            return True
        return self.complete_time <= self.slo_deadline


def effective_latency(
    record: AppRecord, direction: CopyDirection = CopyDirection.HTOD
) -> Optional[float]:
    """Function form of :meth:`AppRecord.effective_latency`."""
    return record.effective_latency(direction)


def average_effective_latency(
    records: Sequence[AppRecord],
    direction: CopyDirection = CopyDirection.HTOD,
) -> float:
    """The paper's two-level average of Le.

    "We calculate the average effective memory transfer latency by summing
    Le for each application Ai on stream sj, and dividing by the number of
    applications executed on that stream.  The overall average is then
    taken across all NS streams."
    """
    per_stream: Dict[int, List[float]] = defaultdict(list)
    for record in records:
        le = record.effective_latency(direction)
        if le is not None:
            per_stream[record.stream_index].append(le)
    if not per_stream:
        return 0.0
    stream_means = [sum(v) / len(v) for v in per_stream.values()]
    return sum(stream_means) / len(stream_means)


def improvement_pct(baseline: float, value: float) -> float:
    """Relative improvement of ``value`` over ``baseline``, in percent.

    Positive when ``value`` is better (smaller); this is how every
    "improvement over serialized execution" number in the paper is defined.
    """
    if baseline <= 0:
        raise ValueError(f"non-positive baseline {baseline!r}")
    return (baseline - value) / baseline * 100.0


def makespan(records: Sequence[AppRecord]) -> float:
    """Wall time from the first spawn to the last completion."""
    if not records:
        return 0.0
    return max(r.complete_time for r in records) - min(r.spawn_time for r in records)


def deadline_met_count(records: Sequence[AppRecord]) -> int:
    """Instances that completed within their SLO deadline."""
    return sum(1 for r in records if r.deadline_met)


def goodput(records: Sequence[AppRecord], horizon: float) -> float:
    """Deadline-met completions per second of ``horizon``.

    The serving layer's headline metric: raw throughput counts every
    completion, goodput only the ones that still had value when they
    landed.  ``horizon`` is usually the run's completion time.
    """
    if horizon <= 0:
        return 0.0
    return deadline_met_count(records) / horizon
