"""The framework's ``Stream`` class (paper Section III-E).

A thin abstraction over the device stream that adds what the paper's C++
``Stream`` class adds over the raw CUDA handle: identity, bookkeeping of the
applications that executed on it, and a host-side occupancy lock so that
applications *sharing* a stream run back-to-back rather than interleaving
their command sequences.

The host lock is what creates the paper's "serialization dependency of
application tasks within a particular hardware execution queue" when the
number of applications exceeds the number of streams (NA > NS): apps mapped
to the same stream serialize in launch order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..gpu.device import DeviceStream
from ..sim.resources import Mutex

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Environment

__all__ = ["Stream"]


class Stream:
    """One framework-managed CUDA stream."""

    def __init__(self, env: "Environment", device_stream: DeviceStream, index: int) -> None:
        self.env = env
        self.device_stream = device_stream
        self.index = index
        #: Host-side lock: one application at a time owns the stream.
        self.host_lock = Mutex(env, name=f"stream-{index}-lock")
        #: app_ids that have completed on this stream, in completion order.
        self.completed_apps: List[str] = []
        self._current_app: Optional[str] = None

    def __repr__(self) -> str:
        return (
            f"<Stream {self.index} device_sid={self.device_stream.sid} "
            f"current={self._current_app!r}>"
        )

    @property
    def sid(self) -> int:
        """The underlying device stream id."""
        return self.device_stream.sid

    @property
    def current_app(self) -> Optional[str]:
        """The app currently holding the stream, if any."""
        return self._current_app

    @property
    def apps_executed(self) -> int:
        """Number of applications that have completed on this stream."""
        return len(self.completed_apps)

    # -- occupancy protocol (used by AppThread) -----------------------------

    def occupy(self, app_id: str):
        """Acquire the host lock; ``yield from`` inside a process.

        Interrupt-safe: if the waiting process is cancelled (e.g. by the
        resilience watchdog) the pending request is withdrawn — or, when
        the grant raced the cancellation, released — so the lock never
        leaks to a dead application.
        """
        request = self.host_lock.request()
        try:
            yield request
        except BaseException:
            if self.host_lock.holds(request):
                self.host_lock.unlock(request)
            else:
                request.cancel()
            raise
        self._current_app = app_id
        return request

    def vacate(self, app_id: str, request) -> None:
        """Release the host lock after the app's GPU section completes."""
        self.completed_apps.append(app_id)
        self._current_app = None
        self.host_lock.unlock(request)
