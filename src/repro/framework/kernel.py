"""The abstract ``Kernel`` application base class (paper Table II).

The paper's framework defines an abstract C++ ``Kernel`` class whose virtual
methods encapsulate the CUDA API calls of one application's lifecycle.  The
test harness drives any application through this interface without binding
to the derived class.  This module is the Python port: :class:`KernelApp`
exposes the same seven-method interface (snake_case; the mapping to the
paper's names is :data:`TABLE_II`), and a declarative :class:`AppProfile`
describes the application's *execution pattern* — the ordered transfer and
kernel phases the simulator replays.

Phases
------
The canonical Rodinia pattern is ``HtoD transfers -> kernel launches -> DtoH
transfers`` (the paper's "general" pattern in Section IV).  Applications
like srad interleave transfers inside their iteration loop; profiles express
that by listing phases in order, so the base-class machinery needs no
app-specific branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Tuple

from ..gpu.commands import CopyDirection
from ..gpu.kernels import KernelDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from .app_thread import AppContext

__all__ = [
    "Buffer",
    "Phase",
    "TransferPhase",
    "KernelPhase",
    "SyncPhase",
    "HostComputePhase",
    "AppProfile",
    "KernelApp",
    "TABLE_II",
]

#: Mapping from this port's method names to the paper's Table II interface.
TABLE_II = {
    "allocate_host_memory": "allocateHostMemory (cudaMallocHost)",
    "allocate_device_memory": "allocateDeviceMemory (cudaMalloc)",
    "initialize_host_memory": "initializeHostMemory (load/init host data)",
    "transfer_memory": "transferMemory (cudaMemcpyAsync)",
    "execute_kernel": "executeKernel (grid/block dims + kernel launch)",
    "free_host_memory": "freeHostMemory (cudaFreeHost)",
    "free_device_memory": "freeDeviceMemory (cudaFree)",
}


@dataclass(frozen=True)
class Buffer:
    """A named host/device buffer moved by one ``cudaMemcpyAsync``."""

    name: str
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"buffer {self.name!r} has {self.nbytes} bytes")


class Phase:
    """Base class for execution-pattern phases (marker only)."""

    __slots__ = ()


@dataclass(frozen=True)
class TransferPhase(Phase):
    """Move ``buffers`` in ``direction``, one memcpy command per buffer.

    ``synchronized`` marks HtoD phases that the paper's transfer mutex
    should wrap when memory synchronization is enabled.
    """

    direction: CopyDirection
    buffers: Tuple[Buffer, ...]
    synchronized: bool = True

    def __post_init__(self) -> None:
        if not self.buffers:
            raise ValueError("TransferPhase needs at least one buffer")

    @property
    def total_bytes(self) -> int:
        """Total payload of the phase."""
        return sum(b.nbytes for b in self.buffers)


@dataclass(frozen=True)
class KernelPhase(Phase):
    """Launch ``descriptors`` in order on the application's stream."""

    descriptors: Tuple[KernelDescriptor, ...]

    def __post_init__(self) -> None:
        if not self.descriptors:
            raise ValueError("KernelPhase needs at least one launch")

    @property
    def total_blocks(self) -> int:
        """Total thread blocks across the phase's launches."""
        return sum(k.num_blocks for k in self.descriptors)


@dataclass(frozen=True)
class SyncPhase(Phase):
    """``cudaStreamSynchronize``: host blocks until the stream drains."""


@dataclass(frozen=True)
class HostComputePhase(Phase):
    """Host-side CPU work of fixed duration (e.g. convergence checks)."""

    duration: float
    label: str = "host-compute"

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("negative host compute duration")


@dataclass(frozen=True)
class AppProfile:
    """Declarative description of one application's GPU behaviour.

    Attributes
    ----------
    name:
        Application name (Table I's "Kernel Name", e.g. ``"gaussian"``).
    data_dim:
        Human-readable problem size (Table III's "Data dim").
    host_allocs / device_allocs:
        Buffers created by the allocation methods; sizes drive the host
        cost model and the device memory allocator.
    phases:
        Ordered, fully unrolled execution pattern.
    init_cost:
        Host seconds spent in ``initialize_host_memory``.
    """

    name: str
    data_dim: str
    host_allocs: Tuple[Buffer, ...]
    device_allocs: Tuple[Buffer, ...]
    phases: Tuple[Phase, ...]
    init_cost: float = 100e-6

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"profile {self.name!r} has no phases")

    # -- derived workload statistics (used by reports and tests) ----------

    @property
    def htod_bytes(self) -> int:
        """Total host-to-device payload."""
        return sum(
            p.total_bytes
            for p in self.phases
            if isinstance(p, TransferPhase) and p.direction is CopyDirection.HTOD
        )

    @property
    def dtoh_bytes(self) -> int:
        """Total device-to-host payload."""
        return sum(
            p.total_bytes
            for p in self.phases
            if isinstance(p, TransferPhase) and p.direction is CopyDirection.DTOH
        )

    @property
    def kernel_launches(self) -> int:
        """Total kernel launches (Table III's "Calls", summed)."""
        return sum(
            len(p.descriptors) for p in self.phases if isinstance(p, KernelPhase)
        )

    @property
    def total_blocks(self) -> int:
        """Total thread blocks launched over the app's lifetime."""
        return sum(
            p.total_blocks for p in self.phases if isinstance(p, KernelPhase)
        )

    @property
    def compute_time_lower_bound(self) -> float:
        """Sum over launches of one block duration (infinite-GPU bound)."""
        total = 0.0
        for p in self.phases:
            if isinstance(p, KernelPhase):
                for k in p.descriptors:
                    total += k.block_duration
        return total


class KernelApp:
    """Base class for applications driven by the test harness.

    Subclasses provide an :class:`AppProfile` (usually via
    :meth:`build_profile`) and may override any lifecycle method.  All
    lifecycle methods are *simulation coroutines*: they ``yield`` events
    and are driven inside the application's host thread process (see
    :mod:`repro.framework.app_thread`).

    The class deliberately mirrors the paper's Table II: the harness calls
    only these methods and never inspects the concrete subclass.
    """

    def __init__(self, profile: AppProfile, instance: int = 0) -> None:
        self.profile = profile
        self.instance = instance
        self.app_id = f"{profile.name}#{instance}"

    def __repr__(self) -> str:
        return f"<KernelApp {self.app_id}>"

    # -- Table II interface ------------------------------------------------

    def allocate_host_memory(self, ctx: "AppContext") -> Generator:
        """``cudaMallocHost`` for every host buffer (pinned, so costly)."""
        host = ctx.host_spec
        total = sum(b.nbytes for b in self.profile.host_allocs)
        cost = host.malloc_host_base + host.malloc_host_per_byte * total
        yield ctx.env.timeout(cost)

    def allocate_device_memory(self, ctx: "AppContext") -> Generator:
        """``cudaMalloc`` for every device buffer."""
        for buf in self.profile.device_allocs:
            ctx.device_allocations[buf.name] = ctx.device.memory.alloc(buf.nbytes)
            yield ctx.env.timeout(ctx.host_spec.malloc_device_base)

    def initialize_host_memory(self, ctx: "AppContext") -> Generator:
        """Load/initialize host data (CPU time only)."""
        yield ctx.env.timeout(self.profile.init_cost)

    def transfer_memory(self, ctx: "AppContext", phase: TransferPhase) -> Generator:
        """Enqueue one ``cudaMemcpyAsync`` per buffer of ``phase``.

        Does *not* wait for completion (CUDA async semantics); the caller
        decides whether to synchronize (the transfer mutex does).
        """
        for buf in phase.buffers:
            yield ctx.env.timeout(ctx.host_spec.api_call_overhead)
            cmd = ctx.stream.enqueue_memcpy(
                phase.direction, buf.nbytes, buffer=buf.name, app_id=self.app_id
            )
            ctx.note_transfer(cmd)

    def execute_kernel(self, ctx: "AppContext", phase: KernelPhase) -> Generator:
        """Enqueue the phase's kernel launches in order (async)."""
        for descriptor in phase.descriptors:
            yield ctx.env.timeout(
                ctx.host_spec.api_call_overhead
                + ctx.host_spec.kernel_launch_overhead
            )
            cmd = ctx.stream.enqueue_kernel(descriptor, app_id=self.app_id)
            ctx.note_kernel(cmd)

    def free_host_memory(self, ctx: "AppContext") -> Generator:
        """``cudaFreeHost`` for all host buffers."""
        yield ctx.env.timeout(ctx.host_spec.free_base)

    def free_device_memory(self, ctx: "AppContext") -> Generator:
        """``cudaFree`` for all device buffers."""
        for name in list(ctx.device_allocations):
            ctx.device.memory.free(ctx.device_allocations.pop(name))
        yield ctx.env.timeout(ctx.host_spec.free_base)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build_profile(cls, **kwargs) -> AppProfile:  # pragma: no cover - abstract
        """Build the app's :class:`AppProfile` (overridden by subclasses)."""
        raise NotImplementedError

    @classmethod
    def create(cls, instance: int = 0, **kwargs) -> "KernelApp":
        """Instantiate with a freshly built profile."""
        return cls(cls.build_profile(**kwargs), instance=instance)
