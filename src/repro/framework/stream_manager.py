"""The framework's ``StreamManager`` (paper Section III-E).

Creates, destroys and hands out :class:`~repro.framework.stream.Stream`
objects.  The paper stresses that their harness "dynamically assigns GPU
streams to [application] threads as they are needed"; the manager implements
that with a deterministic round-robin over the stream pool in *request
order* — the application launched first gets stream 0, the second stream 1,
and so on, wrapping when NA > NS.  Because launch order is exactly what the
scheduling policies of Section III-C permute, the assignment ties the
schedule to the hardware queues the paper reasons about.

An alternative ``"least-loaded"`` policy (fewest assignments so far, ties by
index) is provided for ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..gpu.device import GPUDevice
from .stream import Stream

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Environment

__all__ = ["StreamManager", "ASSIGNMENT_POLICIES"]

ASSIGNMENT_POLICIES = ("round-robin", "least-loaded")


class StreamManager:
    """Pool of framework streams over one device.

    Parameters
    ----------
    env, device:
        Simulation environment and the GPU the streams belong to.
    num_streams:
        NS — the paper sweeps this from 1 (serialized) to 32 (fully
        parallel, one Hyper-Q queue per stream).
    policy:
        Assignment policy (see module docstring).
    """

    def __init__(
        self,
        env: "Environment",
        device: GPUDevice,
        num_streams: int,
        policy: str = "round-robin",
    ) -> None:
        if num_streams < 1:
            raise ValueError("need at least one stream")
        if policy not in ASSIGNMENT_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {ASSIGNMENT_POLICIES}"
            )
        self.env = env
        self.device = device
        self.policy = policy
        self.streams: List[Stream] = [
            Stream(env, device.create_stream(), i) for i in range(num_streams)
        ]
        self._assignments: Dict[int, int] = {s.index: 0 for s in self.streams}
        self._next = 0

    @classmethod
    def from_decision(
        cls,
        env: "Environment",
        device: GPUDevice,
        decision,
        policy: str = "round-robin",
    ) -> "StreamManager":
        """Build a pool sized by a scheduler decision.

        ``decision`` is a :class:`repro.scheduling.SchedulingDecision`; its
        ``num_streams`` (the granted concurrency width) becomes NS.
        """
        return cls(env, device, decision.num_streams, policy=policy)

    def __repr__(self) -> str:
        return f"<StreamManager {len(self.streams)} streams ({self.policy})>"

    @property
    def num_streams(self) -> int:
        """NS — size of the stream pool."""
        return len(self.streams)

    # -- assignment ----------------------------------------------------------

    def acquire(self, app_id: str) -> Stream:
        """Assign a stream to an application (called once per app thread)."""
        if self.policy == "round-robin":
            stream = self.streams[self._next % len(self.streams)]
            self._next += 1
        else:  # least-loaded
            stream = min(
                self.streams, key=lambda s: (self._assignments[s.index], s.index)
            )
        self._assignments[stream.index] += 1
        return stream

    def assignment_counts(self) -> Dict[int, int]:
        """stream index -> number of apps assigned (diagnostics)."""
        return dict(self._assignments)

    # -- teardown ------------------------------------------------------------

    def destroy_all(self) -> None:
        """Destroy every managed stream (host must have synchronized)."""
        for stream in self.streams:
            self.device.destroy_stream(stream.device_stream)
        self.streams.clear()
        self._assignments.clear()
