"""The framework's ``PowerMonitor`` (paper Section III-E / IV).

The paper links against NVML and logs the on-board power sensor from a
dedicated host thread at a constant rate — 15 ms in the methodology section,
oversampled at 66.7 Hz for the energy study (Section V-D) "to reduce the
noise in our calculations".

Here the monitor is a simulated process sampling the device's
:class:`~repro.gpu.power.PowerModel` at a fixed interval.  Energy is
estimated from the samples the same way the paper does (left Riemann sum of
sample power x interval); tests compare that estimate against the model's
exact piecewise integral to bound the sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from ..gpu.device import GPUDevice

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Environment
    from ..sim.process import Process

__all__ = ["PowerSample", "PowerMonitor"]

#: The paper's sampling interval: 15 ms (66.7 Hz).
DEFAULT_INTERVAL = 15e-3


@dataclass(frozen=True)
class PowerSample:
    """One sensor reading."""

    time: float
    watts: float


class PowerMonitor:
    """Samples board power on a fixed interval until stopped."""

    def __init__(
        self,
        env: "Environment",
        device: GPUDevice,
        interval: float = DEFAULT_INTERVAL,
        injector=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.env = env
        self.device = device
        self.interval = interval
        #: Optional fault injector; samples falling inside an armed
        #: ``power_dropout`` window are dropped (NVML read failure), the
        #: way a real sensor thread silently loses readings.
        self.injector = injector
        self.samples: List[PowerSample] = []
        self.dropped_samples: int = 0
        #: Keep every reading.  Bounded-memory streamed runs flip this
        #: off; the running aggregates (count / sum / max) stay exact so
        #: ``average_power``/``peak_power``/``energy_estimate`` still
        #: work, only the raw series is gone.
        self.retain_samples: bool = True
        self._count: int = 0
        self._sum: float = 0.0
        self._max: float = 0.0
        self._running = False
        self._process: Optional["Process"] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._process = self.env.process(self._sample_loop(), name="power-monitor")

    def stop(self) -> None:
        """Stop sampling after the next tick."""
        self._running = False

    def _sample_loop(self):
        while self._running:
            if self.injector is not None and self.injector.drop_power_sample(
                self.env.now
            ):
                self.dropped_samples += 1
            else:
                watts = self.device.power.current_power
                self._count += 1
                self._sum += watts
                self._max = max(self._max, watts)
                if self.retain_samples:
                    self.samples.append(PowerSample(self.env.now, watts))
            yield self.env.timeout(self.interval)

    # -- analysis --------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Number of readings taken."""
        return self._count

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, watts) as numpy arrays."""
        if self._count and not self.retain_samples:
            raise RuntimeError(
                "raw samples not retained (retain_samples=False)"
            )
        if not self.samples:
            return np.empty(0), np.empty(0)
        t = np.fromiter((s.time for s in self.samples), dtype=float)
        w = np.fromiter((s.watts for s in self.samples), dtype=float)
        return t, w

    def average_power(self) -> float:
        """Mean of the sampled readings (W)."""
        if self.retain_samples:
            _, w = self.as_arrays()
            return float(w.mean()) if w.size else 0.0
        return self._sum / self._count if self._count else 0.0

    def peak_power(self) -> float:
        """Max sampled reading (W)."""
        if self.retain_samples:
            _, w = self.as_arrays()
            return float(w.max()) if w.size else 0.0
        return self._max

    def energy_estimate(self) -> float:
        """Left-Riemann energy estimate (J): sum(power_i * interval).

        This is exactly the paper's measurement procedure; compare with
        ``device.power.energy()`` for the true integral.
        """
        if self.retain_samples:
            _, w = self.as_arrays()
            return float(w.sum() * self.interval)
        return self._sum * self.interval
