"""The modular test harness (paper Section IV).

Execution flow, mirroring the paper's description: the harness loads an
application scheduling order, instantiates a class object for each
application, starts the power-monitor thread, launches each application on
its own child thread (in schedule order, separated by the thread-spawn
cost — which is what lets launch order prejudice execution order), waits
for all children, then tears everything down.

:class:`HarnessConfig` captures one experimental cell (schedule, NS, memory
sync on/off, device, copy policy); :meth:`TestHarness.run` executes it in a
fresh simulation environment and returns a :class:`HarnessResult` with the
per-application records, makespan, energy and the optional trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpu.device import GPUDevice
from ..gpu.specs import DeviceSpec, tesla_k20
from ..resilience import (
    AppSupervisor,
    ConcurrencyLimiter,
    DegradationController,
    FaultInjector,
    ResilienceConfig,
    ResilienceSummary,
    Watchdog,
)
from ..sim.engine import Environment
from ..sim.events import AllOf
from ..sim.trace import TraceRecorder
from .app_thread import AppThread
from .kernel import KernelApp
from .metrics import AppRecord, average_effective_latency, makespan
from .power_monitor import DEFAULT_INTERVAL, PowerMonitor
from .stream_manager import StreamManager
from .sync import make_synchronizer

__all__ = ["HarnessConfig", "HarnessResult", "TestHarness"]


@dataclass
class HarnessConfig:
    """One experimental configuration.

    Attributes
    ----------
    apps:
        Application instances in *launch order* (the scheduling policies of
        Section III-C are applied upstream, in :mod:`repro.core`).
    num_streams:
        NS.  ``1`` is the paper's serialized baseline; ``len(apps)`` is the
        full-concurrent scenario.
    memory_sync:
        Enable the Section III-B transfer mutex.
    spec:
        Device description (default Tesla K20).
    copy_policy:
        DMA service discipline (``"interleave"`` default).
    record_trace:
        Keep a full timeline (needed for Figures 1/2/5; off for sweeps).
    power_interval:
        Power sensor sampling period (paper: 15 ms; 66.7 Hz for Fig 9/10).
    spawn_jitter:
        Std-dev (seconds) of gaussian jitter added to thread spawn times,
        modelling OS nondeterminism.  0 = fully deterministic.
    seed:
        Seed for the jitter RNG.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig` enabling
        fault injection, the watchdog, retries and concurrency
        degradation.  ``None`` (default) runs the original code paths and
        produces byte-identical results to a build without the resilience
        subsystem.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  When given, the
        harness attaches its sampler to the run's environment, wires the
        standard sim/GPU/resilience probes and drives the sampler's
        lifecycle alongside the power monitor.  ``None`` (default) keeps
        every layer on the uninstrumented code paths — byte-identical
        results, pinned by ``bench_telemetry_overhead.py``.
    """

    apps: Sequence[KernelApp]
    num_streams: int
    memory_sync: bool = False
    spec: Optional[DeviceSpec] = None
    copy_policy: str = "interleave"
    record_trace: bool = False
    power_interval: float = DEFAULT_INTERVAL
    monitor_power: bool = True
    spawn_jitter: float = 0.0
    seed: int = 0
    stream_policy: str = "round-robin"
    #: Optional grid-engine admission hook (symbiosis baseline); None = LEFTOVER.
    admission: object = None
    resilience: Optional[ResilienceConfig] = None
    #: Optional repro.telemetry.Telemetry (kept untyped to avoid importing
    #: the subsystem on the hot path when disabled).
    telemetry: object = None
    #: Launch-order policy label stamped onto every AppRecord ("" = unset),
    #: so reports can attribute makespan differences to the ordering used.
    order_label: str = ""
    #: Optional repro.telemetry.Tracing (untyped, same convention as
    #: telemetry): one causal trace per app with engine-level wait spans.
    #: ``None`` keeps every layer untraced — byte-identical results,
    #: pinned by ``bench_tracing_overhead.py``.
    tracing: object = None
    #: Runtime invariant checking (see :mod:`repro.integrity.invariants`):
    #: ``None``/``False`` = off (byte-identical results, pinned by
    #: ``bench_integrity_overhead.py``); ``True`` = strided probes with
    #: defaults; or a preconfigured ``InvariantChecker`` instance.
    integrity: object = None

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("empty schedule")
        if self.num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        if self.spec is None:
            self.spec = tesla_k20()


@dataclass
class HarnessResult:
    """Everything measured in one harness run."""

    config: HarnessConfig
    records: List[AppRecord]
    makespan: float              # first spawn -> last completion (s)
    total_time: float            # simulated clock at teardown (s)
    energy: float                # exact integral over the makespan window (J)
    average_power: float         # energy / makespan (W)
    peak_power: float            # model peak over the run (W)
    sampled_average_power: float  # the paper's sensor-sampled estimate (W)
    power_samples: List[Tuple[float, float]]
    trace: Optional[TraceRecorder]
    stream_assignments: Dict[int, int]
    resilience: Optional[ResilienceSummary] = None
    #: The run's telemetry (same object as config.telemetry), if enabled.
    telemetry: object = None
    #: The run's InvariantChecker (counters and any recorded violations),
    #: if integrity checking was enabled.
    integrity: object = None

    # -- summary helpers -------------------------------------------------------

    def effective_latency(self, direction=None) -> float:
        """Two-level average Le (paper Figure 6 metric), HtoD by default."""
        from ..gpu.commands import CopyDirection

        return average_effective_latency(
            self.records, direction or CopyDirection.HTOD
        )

    def per_type_wall_times(self) -> Dict[str, List[float]]:
        """GPU-section durations grouped by application type."""
        out: Dict[str, List[float]] = {}
        for r in self.records:
            out.setdefault(r.type_name, []).append(r.wall_time)
        return out

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        cfg = self.config
        kinds = sorted({r.type_name for r in self.records})
        text = (
            f"{len(self.records)} apps ({'+'.join(kinds)}) on "
            f"{cfg.num_streams} streams, sync={'on' if cfg.memory_sync else 'off'}: "
            f"makespan {self.makespan * 1e3:.2f} ms, energy {self.energy:.3f} J, "
            f"avg power {self.average_power:.1f} W, peak {self.peak_power:.1f} W"
        )
        if self.resilience is not None:
            text += f"; {self.resilience.describe()}"
        return text


class TestHarness:
    """Executes one :class:`HarnessConfig` in a fresh environment."""

    # Not a pytest test class, despite the (paper-given) name.
    __test__ = False

    def __init__(self, config: HarnessConfig) -> None:
        self.config = config

    def run(self) -> HarnessResult:
        """Build the world, run the schedule to completion, measure."""
        cfg = self.config
        env = Environment()
        trace = TraceRecorder() if cfg.record_trace else None
        resil = cfg.resilience
        injector: Optional[FaultInjector] = None
        hot_injector: Optional[FaultInjector] = None
        watchdog: Optional[Watchdog] = None
        limiter: Optional[ConcurrencyLimiter] = None
        controller: Optional[DegradationController] = None
        if resil is not None:
            injector = FaultInjector(env, resil.plan, trace=trace)
            # Only an actual fault plan warrants paying the per-event /
            # per-command hook costs; with an empty plan the engines stay
            # on their original code paths (the injector still serves
            # retry/deadline trace marks).
            if not injector.plan.empty:
                hot_injector = injector
                env.attach_fault_injector(injector)
            if resil.wants_deadlines:
                watchdog = Watchdog(env)
            if resil.degradation_threshold > 0:
                limiter = ConcurrencyLimiter(env, cfg.num_streams)
                controller = DegradationController(
                    limiter, resil.degradation_threshold, injector
                )
        device = GPUDevice(
            env,
            spec=cfg.spec,
            trace=trace,
            copy_policy=cfg.copy_policy,
            admission=cfg.admission,
            injector=hot_injector,
        )
        manager = StreamManager(
            env, device, cfg.num_streams, policy=cfg.stream_policy
        )
        synchronizer = make_synchronizer(env, cfg.memory_sync)
        monitor = PowerMonitor(
            env, device, interval=cfg.power_interval, injector=hot_injector
        )
        records: List[AppRecord] = []
        rng = np.random.default_rng(cfg.seed)

        integrity = None
        if cfg.integrity:
            from ..integrity.invariants import InvariantChecker

            integrity = (
                cfg.integrity
                if isinstance(cfg.integrity, InvariantChecker)
                else InvariantChecker()
            )
            integrity.watch_device(device)
            integrity.attach(env)

        tracer = cfg.tracing.tracer if cfg.tracing is not None else None
        if tracer is not None:
            env.attach_tracer(tracer)

        telemetry = cfg.telemetry
        if telemetry is not None:
            from ..telemetry.probes import (
                instrument_device,
                instrument_environment,
                instrument_injector,
                instrument_integrity,
                instrument_records,
            )

            telemetry.attach(env)
            instrument_environment(telemetry, env)
            instrument_device(telemetry, device)
            instrument_records(telemetry, records)
            instrument_injector(telemetry, injector)
            instrument_integrity(telemetry, integrity)

        #: launch_index -> root SpanContext for every traced app.
        trace_ctxs: Dict[int, object] = {}

        def parent():
            # Paper flow: instantiate + allocate + initialize every
            # application on the parent thread, sequentially, up front.
            threads = []
            for launch_index, app in enumerate(cfg.apps):
                record = AppRecord(
                    app_id=app.app_id,
                    type_name=app.profile.name,
                    instance=app.instance,
                    stream_index=-1,
                    launch_index=launch_index,
                )
                records.append(record)
                thread = AppThread(env, device, app, synchronizer, record)
                threads.append(thread)
                if tracer is not None:
                    thread.trace_ctx = tracer.start_trace(
                        record.app_id, env.now,
                        type=record.type_name, index=launch_index,
                    )
                    trace_ctxs[launch_index] = thread.trace_ctx
                prepare_from = env.now
                yield from thread.prepare()
                if tracer is not None and env.now > prepare_from:
                    tracer.record_leaf(
                        thread.trace_ctx, "host.prepare", "prepare",
                        prepare_from, env.now,
                    )
                thread._trace_ready_at = env.now

            # Then start the power-monitor thread and launch each
            # application on its own child thread, in schedule order.
            if cfg.monitor_power:
                monitor.start()
            if telemetry is not None:
                telemetry.start()
            children = []
            for thread in threads:
                # std::thread creation cost staggers the children; optional
                # jitter models OS scheduling nondeterminism.
                delay = cfg.spec.host.thread_spawn_cost
                if cfg.spawn_jitter > 0:
                    delay += float(abs(rng.normal(0.0, cfg.spawn_jitter)))
                yield env.timeout(delay)
                stream = manager.acquire(thread.app.app_id)
                thread.assign_stream(stream)
                thread.record.stream_index = stream.index
                thread.record.spawn_time = env.now
                if tracer is not None and env.now > thread._trace_ready_at:
                    # Spawn stagger: time between being prepared and the
                    # parent reaching this app in launch order.
                    tracer.record_leaf(
                        thread.trace_ctx, "admission.stagger",
                        "admission-queue", thread._trace_ready_at, env.now,
                    )
                if resil is None:
                    children.append(
                        env.process(
                            thread.run(), name=f"thread-{thread.app.app_id}"
                        )
                    )
                else:
                    supervisor = AppSupervisor(
                        env,
                        thread,
                        policy=resil.retry,
                        watchdog=watchdog,
                        deadline=resil.deadline_for(thread.app.profile.name),
                        limiter=limiter,
                        controller=controller,
                        injector=injector,
                        seed=resil.seed,
                    )
                    children.append(
                        env.process(
                            supervisor.run(),
                            name=f"supervise-{thread.app.app_id}",
                        )
                    )
            if children:
                yield AllOf(env, children)
            monitor.stop()
            if telemetry is not None:
                telemetry.stop()

            # Teardown: parent frees all memory and destroys the streams.
            for thread in threads:
                yield from thread.cleanup()
            manager.destroy_all()

        done = env.process(parent(), name="harness-parent")
        env.run(until=done)
        # Let any same-time trailing events (power segment closes) settle.
        env.run()
        if integrity is not None:
            # Closing pass so short runs are checked at least once even if
            # they never crossed a stride boundary.
            integrity.check_now(env.now)
            integrity.detach()
        if telemetry is not None:
            # Closing snapshot: the final registry state every exporter
            # agrees on (cross-exporter consistency).
            telemetry.finalize()

        assignments: Dict[int, int] = {}
        for record in records:
            assignments[record.stream_index] = (
                assignments.get(record.stream_index, 0) + 1
            )
            # Terminal outcome in the serving layer's vocabulary, so batch
            # and streaming records aggregate through the same accounting.
            record.outcome = "failed" if record.failed else "completed"
            record.order_policy = cfg.order_label
            record.memory_sync = cfg.memory_sync
            if tracer is not None:
                ctx = trace_ctxs.get(record.launch_index)
                if ctx is not None:
                    tracer.end_trace(
                        ctx, record.complete_time, outcome=record.outcome
                    )
        span = makespan(records)
        t0 = min(r.spawn_time for r in records)
        t1 = max(r.complete_time for r in records)
        energy = device.power.energy(t1) - device.power.energy(t0)
        summary: Optional[ResilienceSummary] = None
        if resil is not None:
            summary = ResilienceSummary(
                planned_faults=len(resil.plan) if resil.plan is not None else 0,
                applied_faults=injector.applied_counts(),
                faults_detected=sum(r.faults_detected for r in records),
                retries=sum(r.retries for r in records),
                deadline_hits=sum(r.deadline_hits for r in records),
                apps_failed=sum(1 for r in records if r.failed),
                apps_completed=sum(1 for r in records if not r.failed),
                degradation_steps=(
                    controller.step_count if controller is not None else 0
                ),
                final_concurrency_limit=(
                    limiter.limit if limiter is not None else cfg.num_streams
                ),
            )
        return HarnessResult(
            config=cfg,
            records=records,
            makespan=span,
            total_time=env.now,
            energy=energy,
            average_power=energy / span if span > 0 else 0.0,
            peak_power=device.power.peak_power,
            sampled_average_power=monitor.average_power(),
            power_samples=[(s.time, s.watts) for s in monitor.samples],
            trace=trace,
            stream_assignments=assignments,
            resilience=summary,
            telemetry=telemetry,
            integrity=integrity,
        )
