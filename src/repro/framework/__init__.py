"""Python port of the paper's Hyper-Q Management Framework (Section III-E).

The C++ original encapsulates the CUDA API behind a ``Stream`` class, a
``StreamManager``, a ``PowerMonitor`` linked to NVML, and an abstract
``Kernel`` base class whose virtual methods (Table II) let the test harness
drive any application without knowing its concrete type.  This package is
the same architecture over the simulated device:

* :class:`~repro.framework.kernel.KernelApp` + :class:`AppProfile` — the
  Table II interface and the declarative execution pattern.
* :class:`~repro.framework.stream.Stream` /
  :class:`~repro.framework.stream_manager.StreamManager` — stream pool and
  dynamic assignment.
* :class:`~repro.framework.sync.TransferSynchronizer` — the Section III-B
  HtoD transfer mutex ("pseudo-burst" transfers).
* :mod:`~repro.framework.scheduler` — the five launch orders of Figure 3.
* :class:`~repro.framework.power_monitor.PowerMonitor` — NVML-style power
  sampling.
* :class:`~repro.framework.harness.TestHarness` — runs one configured
  schedule end to end and measures everything.
"""

from .app_thread import AppContext, AppThread
from .harness import HarnessConfig, HarnessResult, TestHarness
from .kernel import (
    TABLE_II,
    AppProfile,
    Buffer,
    HostComputePhase,
    KernelApp,
    KernelPhase,
    Phase,
    SyncPhase,
    TransferPhase,
)
from .metrics import (
    AppRecord,
    KernelEvent,
    TransferEvent,
    average_effective_latency,
    effective_latency,
    improvement_pct,
    makespan,
)
from .power_monitor import DEFAULT_INTERVAL, PowerMonitor, PowerSample
from .scheduler import SchedulingOrder, all_orders, make_schedule, schedule_signature
from .stream import Stream
from .stream_manager import ASSIGNMENT_POLICIES, StreamManager
from .sync import NullSynchronizer, TransferSynchronizer, make_synchronizer

__all__ = [
    "KernelApp",
    "AppProfile",
    "Buffer",
    "Phase",
    "TransferPhase",
    "KernelPhase",
    "SyncPhase",
    "HostComputePhase",
    "TABLE_II",
    "Stream",
    "StreamManager",
    "ASSIGNMENT_POLICIES",
    "TransferSynchronizer",
    "NullSynchronizer",
    "make_synchronizer",
    "SchedulingOrder",
    "make_schedule",
    "schedule_signature",
    "all_orders",
    "PowerMonitor",
    "PowerSample",
    "DEFAULT_INTERVAL",
    "AppThread",
    "AppContext",
    "TestHarness",
    "HarnessConfig",
    "HarnessResult",
    "AppRecord",
    "TransferEvent",
    "KernelEvent",
    "average_effective_latency",
    "effective_latency",
    "improvement_pct",
    "makespan",
]
