"""Host-side memory-transfer synchronization (paper Section III-B).

The paper's fix for DMA copy-queue interleaving is a host-side mutex around
each application's HtoD transfer stage: an application acquires the mutex,
enqueues *all* of its HtoD copies, waits for them to complete, and only then
releases — a "pseudo-burst transfer mechanism" functionally equivalent to
batching the small transfers.  While one application holds the mutex, no
other application's copies enter the copy queue, so the single DMA engine
serves one application's transfers consecutively (Figure 2) instead of
interleaving them (Figure 1).

:class:`TransferSynchronizer` wraps a :class:`~repro.sim.resources.Mutex`
and records hold statistics; :class:`NullSynchronizer` is the disabled
(default CUDA behaviour) variant with the same interface, so application
code is policy-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from ..sim.resources import Mutex, Request

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Environment

__all__ = ["TransferSynchronizer", "NullSynchronizer", "make_synchronizer"]


@dataclass
class _HoldRecord:
    """One completed critical section (per-app transfer burst)."""

    app_id: str
    acquired: float
    released: float

    @property
    def duration(self) -> float:
        return self.released - self.acquired


class TransferSynchronizer:
    """The paper's HtoD transfer mutex."""

    enabled = True

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.mutex = Mutex(env, name="htod-transfer-mutex")
        self.holds: List[_HoldRecord] = []
        self._open: dict = {}

    def acquire(self, app_id: str) -> Generator:
        """Acquire the transfer mutex (``yield from`` in a process).

        Interrupt-safe like :meth:`Stream.occupy`: a cancelled waiter
        withdraws (or releases) its request instead of leaking the mutex.
        """
        request = self.mutex.request()
        try:
            yield request
        except BaseException:
            if self.mutex.holds(request):
                self.mutex.unlock(request)
            else:
                request.cancel()
            raise
        self._open[app_id] = (request, self.env.now)
        return request

    def release(self, app_id: str, request: Request) -> None:
        """Release after the app's transfers have fully completed."""
        _req, acquired = self._open.pop(app_id)
        self.holds.append(
            _HoldRecord(app_id=app_id, acquired=acquired, released=self.env.now)
        )
        self.mutex.unlock(request)

    # -- diagnostics ---------------------------------------------------------

    @property
    def total_holds(self) -> int:
        """Completed critical sections."""
        return len(self.holds)

    @property
    def max_wait_queue(self) -> int:
        """Peak number of applications queued on the mutex."""
        return self.mutex.peak_queue_length

    def hold_intervals(self) -> List[Tuple[float, float]]:
        """(acquired, released) per hold — tests assert these are disjoint."""
        return [(h.acquired, h.released) for h in self.holds]


class NullSynchronizer:
    """Disabled synchronization: acquire/release are free no-ops."""

    enabled = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.total_holds = 0

    def acquire(self, app_id: str) -> Generator:
        """Immediately 'acquires'; never blocks."""
        return
        yield  # pragma: no cover - makes this a generator function

    def release(self, app_id: str, request: Optional[Request]) -> None:
        """No-op."""
        self.total_holds += 1


def make_synchronizer(env: "Environment", enabled: bool, decision=None):
    """Factory: the paper's mutex when ``enabled``, else the null variant.

    ``decision`` may be a :class:`repro.scheduling.SchedulingDecision`; its
    ``memory_sync`` field then overrides ``enabled``, so the adaptive
    scheduler's per-batch sync choice flows through without every caller
    learning a new signature.
    """
    if decision is not None:
        enabled = bool(decision.memory_sync)
    return TransferSynchronizer(env) if enabled else NullSynchronizer(env)
