"""Back-compat re-export: the launch-order policies moved.

The five Figure 3 orders now live in :mod:`repro.scheduling.orders`, the
static half of the adaptive scheduling subsystem.  This module keeps the
historical ``repro.framework.scheduler`` import path working — every name
below is the same object as its ``repro.scheduling`` counterpart.
"""

from __future__ import annotations

from ..scheduling.orders import (  # noqa: F401
    SchedulingOrder,
    all_orders,
    make_schedule,
    schedule_signature,
)

__all__ = ["SchedulingOrder", "make_schedule", "schedule_signature", "all_orders"]
