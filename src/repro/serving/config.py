"""User-facing configuration for the overload-resilient serving layer.

:class:`ServingConfig` is the single knob surface for
:func:`repro.serving.run_serving`: bounded admission, SLO deadlines,
deadline-aware shedding, circuit breaking and fault injection are all
declared here, immutably, so a config object fully identifies an
experiment (it participates in the run journal's fingerprint).

A default-constructed config is *inert*: ``run_serving`` with it produces
byte-identical results to :func:`repro.core.streaming.run_streaming`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..resilience.faults import FaultPlan

__all__ = [
    "BreakerConfig",
    "FleetServingConfig",
    "ServingConfig",
    "QUEUE_POLICIES",
]

#: Valid backpressure policies for a full admission queue.
QUEUE_POLICIES = ("block", "reject", "shed-oldest")


@dataclass(frozen=True)
class BreakerConfig:
    """Per-app-type circuit breaker tuning.

    Attributes
    ----------
    threshold:
        Consecutive failures of one app type that open its breaker.
    cooldown:
        Nominal seconds an open breaker stays open before probing.
    jitter:
        Relative cooldown jitter: the actual open window is
        ``cooldown * (1 + jitter * u)`` with ``u ~ Uniform(-1, 1)`` drawn
        from a seeded per-type stream, so breakers for different types do
        not re-probe in lockstep (and the schedule stays reproducible).
    slow_start_initial:
        ``0`` (default) keeps the historical half-open -> closed *snap*:
        one successful probe re-admits unlimited traffic at once, which
        after a correlated outage re-ignites the very overload that
        opened the breaker.  ``> 0`` enables slow-start re-admission:
        after the probe succeeds, at most ``initial << step`` releases
        are allowed per ``slow_start_interval`` (1, 2, 4, ... for
        ``initial=1``), doubling each interval for ``slow_start_steps``
        intervals before the cap lifts.
    slow_start_interval:
        Ramp step length in simulated seconds (required positive when
        slow-start is enabled).
    slow_start_steps:
        Number of doubling intervals before traffic is unrestricted.
    """

    threshold: int = 3
    cooldown: float = 50e-3
    jitter: float = 0.1
    slow_start_initial: int = 0
    slow_start_interval: float = 0.0
    slow_start_steps: int = 3

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if self.cooldown <= 0:
            raise ValueError("breaker cooldown must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("breaker jitter must be in [0, 1)")
        if self.slow_start_initial < 0:
            raise ValueError("slow_start_initial must be >= 0")
        if self.slow_start_initial > 0 and self.slow_start_interval <= 0:
            raise ValueError(
                "slow_start_interval must be positive when slow-start "
                "is enabled"
            )
        if self.slow_start_steps < 1:
            raise ValueError("slow_start_steps must be >= 1")


@dataclass(frozen=True)
class FleetServingConfig:
    """Fleet-aware admission for the serving layer.

    Declares that the serving deployment spans ``num_devices`` devices so
    admission capacity, routing and breaker scoping react to device loss
    (``DEVICE_LOSS`` specs in the fault plan).  See
    :class:`~repro.serving.fleet_gate.FleetCapacityGate` for exactly what
    the model does — it is a capacity/routing layer over the simulated
    executor, not N executors.

    Attributes
    ----------
    num_devices:
        Devices the serving capacity is spread across.
    detection_latency:
        Seconds between a planned device loss and the serving layer
        *observing* it (capacity shrinks at the detection instant, not
        the loss instant — mirroring the fleet health monitor).
    scope_breakers:
        Scope circuit breakers per ``(device, app type)`` instead of per
        app type, so one sick device's failures do not open the breaker
        for the whole fleet.
    slow_start_window:
        ``0`` (default) lets admission capacity stay at the full
        surviving share the instant a loss is detected.  ``> 0`` ramps
        capacity after each detection: starting at ``slow_start_floor``
        of the post-loss steady capacity and rising linearly back to it
        over this many seconds, so survivors absorb the redistributed
        load gradually instead of all at once.
    slow_start_floor:
        Fraction of post-loss capacity admitted at the detection
        instant when the ramp is enabled.
    """

    num_devices: int = 1
    detection_latency: float = 2e-3
    scope_breakers: bool = True
    slow_start_window: float = 0.0
    slow_start_floor: float = 0.25

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.detection_latency < 0:
            raise ValueError("detection_latency must be >= 0")
        if self.slow_start_window < 0:
            raise ValueError("slow_start_window must be >= 0")
        if not 0.0 < self.slow_start_floor <= 1.0:
            raise ValueError("slow_start_floor must be in (0, 1]")


@dataclass(frozen=True)
class ServingConfig:
    """Everything the serving layer adds on top of a streaming run.

    Attributes
    ----------
    queue_depth:
        Maximum jobs waiting for admission; ``0`` = unbounded.
    queue_policy:
        Backpressure policy when the queue is full: ``"block"`` (the
        arrival waits), ``"reject"`` (shed the new arrival) or
        ``"shed-oldest"`` (evict the queue head to make room).
    slo_factor:
        Each job's SLO deadline is ``arrival + slo_factor * baseline``
        where ``baseline`` is its type's serial-baseline runtime.  ``0``
        disables SLOs entirely.
    slo_jitter:
        Relative deadline jitter, ``Uniform(-jitter, +jitter)`` scaled
        onto the SLO window per arrival (seeded; reproducible).
    baseline_runtimes:
        ``((type_name, seconds), ...)`` serial baselines.  ``None`` means
        measure them (one cached single-app serial run per type, exactly
        the watchdog-deadline convention of :mod:`repro.resilience`).
    shed_unreachable:
        Shed a job at release time when its queueing delay already makes
        the deadline unreachable (``now + baseline > deadline``).  Only
        meaningful with ``slo_factor > 0``.
    breaker:
        :class:`BreakerConfig` enabling per-app-type circuit breakers, or
        ``None``.
    plan:
        Optional :class:`~repro.resilience.FaultPlan`.  Device-level
        faults are injected as in :mod:`repro.resilience`; a
        ``HARNESS_CRASH`` spec kills the run at its arm time (see the
        journal / resume workflow in :mod:`repro.serving.journal`).
    seed:
        Seed for every serving-side random draw (SLO jitter, breaker
        cooldown jitter).
    fleet:
        Optional :class:`FleetServingConfig` making admission capacity,
        routing and breaker scoping device-aware.  ``None`` (default)
        keeps the layer single-device and byte-identical to before.
    """

    queue_depth: int = 0
    queue_policy: str = "block"
    slo_factor: float = 0.0
    slo_jitter: float = 0.0
    baseline_runtimes: Optional[Tuple[Tuple[str, float], ...]] = None
    shed_unreachable: bool = True
    breaker: Optional[BreakerConfig] = None
    plan: Optional[FaultPlan] = None
    seed: int = 0
    fleet: Optional[FleetServingConfig] = None

    def __post_init__(self) -> None:
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.queue_policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {self.queue_policy!r}; "
                f"choose from {QUEUE_POLICIES}"
            )
        if self.slo_factor < 0:
            raise ValueError("slo_factor must be >= 0")
        if not 0.0 <= self.slo_jitter < 1.0:
            raise ValueError("slo_jitter must be in [0, 1)")
        if self.baseline_runtimes is not None:
            object.__setattr__(
                self,
                "baseline_runtimes",
                tuple((str(n), float(t)) for n, t in self.baseline_runtimes),
            )

    @property
    def inactive(self) -> bool:
        """Whether this config changes nothing about a streaming run."""
        return (
            self.queue_depth == 0
            and self.slo_factor == 0.0
            and self.breaker is None
            and (self.plan is None or self.plan.empty)
            and self.fleet is None
        )
