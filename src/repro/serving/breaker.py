"""Per-app-type circuit breakers for the serving layer.

A breaker watches one application type's terminal outcomes.  After
``threshold`` *consecutive* failures the breaker **opens**: arrivals of
that type are failed fast at release time (outcome ``"breaker-open"``)
instead of occupying a stream that injected faults will just kill again.
After a seeded-jittered cooldown the breaker goes **half-open** and lets
exactly one probe job through; a successful probe closes the breaker, a
failed probe re-opens it with a fresh cooldown draw.

The cooldown jitter is drawn from a per-type generator seeded with
``(seed, "breaker:<type>")`` via the same CRC-32 convention as
:func:`repro.resilience.retry.app_rng`, so breaker schedules are
byte-reproducible across processes and independent across app types.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..resilience.retry import app_rng
from .config import BreakerConfig

__all__ = ["BreakerState", "CircuitBreakerPanel"]


class BreakerState:
    """The three classic breaker states (string constants)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class _TypeBreaker:
    """State machine for one application type."""

    __slots__ = (
        "state",
        "consecutive_failures",
        "open_until",
        "probing",
        "rng",
        "ramp_start",
        "ramp_until",
        "ramp_step",
        "ramp_count",
    )

    def __init__(self, rng: np.random.Generator) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.probing = False
        self.rng = rng
        # Slow-start ramp after a half-open -> closed transition: while
        # ``now < ramp_until`` at most ``initial << step`` releases pass
        # per interval.  All zero when slow-start is disabled.
        self.ramp_start = 0.0
        self.ramp_until = 0.0
        self.ramp_step = -1
        self.ramp_count = 0


class CircuitBreakerPanel:
    """One circuit breaker per application type, lazily created.

    This is the engine-facing duck type consumed by
    :class:`~repro.core.streaming.ServingHooks`: :meth:`allow` gates
    release, :meth:`on_success` / :meth:`on_failure` feed outcomes back.
    """

    def __init__(self, config: BreakerConfig, seed: int = 0, telemetry=None) -> None:
        self.config = config
        self.seed = seed
        self._breakers: Dict[str, _TypeBreaker] = {}
        #: Times any breaker transitioned to OPEN (incl. re-opens).
        self.trips = 0
        #: Releases refused because a breaker was open.
        self.fast_fails = 0
        #: Releases deferred by a post-recovery slow-start ramp.
        self.slow_start_rejects = 0
        # Optional repro.telemetry.Telemetry: state transitions and fast
        # fails are cold events, so pushing them costs nothing on the hot
        # path and nothing at all when telemetry is None.
        self._transitions = None
        self._fast_fail_counter = None
        self._state_gauge = None
        if telemetry is not None:
            self._transitions = telemetry.counter(
                "repro_serving_breaker_transitions_total",
                "Circuit breaker state transitions",
                labelnames=("type", "to"),
            )
            self._fast_fail_counter = telemetry.counter(
                "repro_serving_breaker_fast_fails_total",
                "Releases refused while a breaker was open",
                labelnames=("type",),
            )
            self._state_gauge = telemetry.gauge(
                "repro_serving_breaker_state",
                "Breaker state (0 closed / 1 half-open / 2 open)",
                labelnames=("type",),
            )

    _STATE_SCORE = {
        BreakerState.CLOSED: 0.0,
        BreakerState.HALF_OPEN: 1.0,
        BreakerState.OPEN: 2.0,
    }

    def _note_state(self, type_name: str, state: str) -> None:
        if self._transitions is not None:
            self._transitions.inc(type=type_name, to=state)
            self._state_gauge.set(self._STATE_SCORE[state], type=type_name)

    def _get(self, type_name: str) -> _TypeBreaker:
        breaker = self._breakers.get(type_name)
        if breaker is None:
            breaker = _TypeBreaker(app_rng(self.seed, f"breaker:{type_name}"))
            self._breakers[type_name] = breaker
        return breaker

    def _open(self, type_name: str, breaker: _TypeBreaker, now: float) -> None:
        cfg = self.config
        u = 2.0 * float(breaker.rng.random()) - 1.0
        breaker.state = BreakerState.OPEN
        breaker.open_until = now + cfg.cooldown * (1.0 + cfg.jitter * u)
        breaker.probing = False
        breaker.ramp_until = 0.0
        self.trips += 1
        self._note_state(type_name, BreakerState.OPEN)

    # -- engine-facing surface --------------------------------------------

    def allow(self, type_name: str, now: float) -> bool:
        """Whether a job of ``type_name`` may be released at ``now``."""
        breaker = self._get(type_name)
        if breaker.state == BreakerState.CLOSED:
            if now < breaker.ramp_until:
                # Slow-start: the breaker just recovered; re-admit
                # 1x, 2x, 4x... per interval instead of snapping to
                # full concurrency on one good probe.
                cfg = self.config
                step = int(
                    (now - breaker.ramp_start) / cfg.slow_start_interval
                )
                if step != breaker.ramp_step:
                    breaker.ramp_step = step
                    breaker.ramp_count = 0
                cap = cfg.slow_start_initial << step
                if breaker.ramp_count >= cap:
                    self.slow_start_rejects += 1
                    self.fast_fails += 1
                    if self._fast_fail_counter is not None:
                        self._fast_fail_counter.inc(type=type_name)
                    return False
                breaker.ramp_count += 1
            return True
        if breaker.state == BreakerState.OPEN and now >= breaker.open_until:
            # Cooldown elapsed: half-open, admit exactly one probe.
            breaker.state = BreakerState.HALF_OPEN
            breaker.probing = True
            self._note_state(type_name, BreakerState.HALF_OPEN)
            return True
        # OPEN within cooldown, or HALF_OPEN with the probe still in
        # flight: fail fast.
        self.fast_fails += 1
        if self._fast_fail_counter is not None:
            self._fast_fail_counter.inc(type=type_name)
        return False

    def on_success(self, type_name: str, now: float) -> None:
        """A job of ``type_name`` completed cleanly at ``now``."""
        breaker = self._get(type_name)
        breaker.consecutive_failures = 0
        if breaker.state == BreakerState.HALF_OPEN:
            breaker.state = BreakerState.CLOSED
            breaker.probing = False
            cfg = self.config
            if cfg.slow_start_initial > 0:
                breaker.ramp_start = now
                breaker.ramp_until = (
                    now + cfg.slow_start_steps * cfg.slow_start_interval
                )
                breaker.ramp_step = -1
                breaker.ramp_count = 0
            self._note_state(type_name, BreakerState.CLOSED)

    def on_failure(self, type_name: str, now: float) -> None:
        """A job of ``type_name`` died with a fault at ``now``."""
        breaker = self._get(type_name)
        breaker.consecutive_failures += 1
        if breaker.state == BreakerState.HALF_OPEN:
            # The probe itself failed: straight back to OPEN.
            self._open(type_name, breaker, now)
        elif (
            breaker.state == BreakerState.CLOSED
            and breaker.consecutive_failures >= self.config.threshold
        ):
            self._open(type_name, breaker, now)

    # -- introspection -----------------------------------------------------

    def state(self, type_name: str) -> str:
        """Current state of ``type_name``'s breaker (CLOSED if unseen)."""
        breaker = self._breakers.get(type_name)
        return breaker.state if breaker is not None else BreakerState.CLOSED

    def states(self) -> Dict[str, str]:
        """Snapshot of every instantiated breaker's state."""
        return {name: b.state for name, b in sorted(self._breakers.items())}
