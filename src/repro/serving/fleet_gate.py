"""Fleet-aware admission capacity, routing and breaker scoping.

The streaming engine simulates *one* executor; a serving deployment spans
several devices.  :class:`FleetCapacityGate` closes that gap as a pure
capacity/routing model layered over the engine:

* **capacity** — the deployment's admission capacity is the stream budget
  spread evenly across devices; when a device loss is *detected* (loss
  instant + ``detection_latency``, mirroring the fleet health monitor)
  the in-flight ceiling shrinks proportionally.  Work already running is
  never killed — the model constrains what is *admitted*, matching how a
  load balancer reacts to a node dropping out of its healthy set.
* **routing** — each admitted job is stamped with a device index, drawn
  by *smooth weighted round-robin* over per-device health weights: a lost
  device weighs 0, a device inside a planned ``DEVICE_THROTTLE`` window
  weighs ``1/factor`` (the graded health score a straggler detector would
  assign it — running ``factor`` times slower earns ``factor`` times less
  traffic), everything else weighs 1.  With uniform weights the sequence
  degenerates to plain round-robin, so fault-free routing is unchanged.
* **breaker scoping** — breaker keys become ``dev<i>:<type>`` so one sick
  device's failures fail fast only on that device, instead of opening
  the breaker for an app type fleet-wide.

Everything is deterministic: loss/detection/throttle instants come from
the fault plan, and the routing credits advance in admission order.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from ..resilience.faults import FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..framework.metrics import AppRecord
    from .config import FleetServingConfig

__all__ = ["FleetCapacityGate"]


class FleetCapacityGate:
    """Device-aware admission capacity for the serving layer."""

    def __init__(
        self,
        num_devices: int,
        num_streams: int,
        *,
        detection_latency: float = 2e-3,
        loss_times: Optional[Mapping[int, float]] = None,
        throttle_windows: Optional[
            Mapping[int, Sequence[Tuple[float, float, float]]]
        ] = None,
        scope_breakers: bool = True,
        slow_start_window: float = 0.0,
        slow_start_floor: float = 0.25,
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        self.num_devices = num_devices
        self.num_streams = num_streams
        self.scope_breakers = scope_breakers
        self.slow_start_window = slow_start_window
        self.slow_start_floor = slow_start_floor
        #: device index -> absolute instant its loss is *detected*.
        self.detect_times: Dict[int, float] = {
            int(dev) % num_devices: t + detection_latency
            for dev, t in (loss_times or {}).items()
        }
        #: device index -> ``(start, end, factor)`` throttle windows; a
        #: device inside one is *degraded* (weight ``1/factor``), not dead.
        self.throttle_windows: Dict[int, List[Tuple[float, float, float]]] = {
            int(dev) % num_devices: sorted(windows)
            for dev, windows in (throttle_windows or {}).items()
        }
        #: Smooth-weighted-round-robin credits, advanced per admission.
        self._credits: List[float] = [0.0] * num_devices
        self.admitted_per_device: Dict[int, int] = {
            i: 0 for i in range(num_devices)
        }

    @classmethod
    def from_plan(
        cls,
        fleet: "FleetServingConfig",
        num_streams: int,
        plan: Optional[FaultPlan],
    ) -> "FleetCapacityGate":
        """Build a gate from a config plus a fault plan's device specs.

        Only each device's *first* loss matters (a device dies once);
        every ``DEVICE_THROTTLE`` window feeds the graded routing weights.
        """
        loss_times: Dict[int, float] = {}
        throttles: Dict[int, List[Tuple[float, float, float]]] = {}
        if plan is not None:
            for spec in plan:
                if spec.kind is FaultKind.DEVICE_LOSS:
                    dev = spec.effective_device % fleet.num_devices
                    if dev not in loss_times or spec.time < loss_times[dev]:
                        loss_times[dev] = spec.time
                elif spec.kind is FaultKind.DEVICE_THROTTLE:
                    dev = spec.effective_device % fleet.num_devices
                    throttles.setdefault(dev, []).append(
                        (spec.time, spec.time + spec.duration, spec.factor)
                    )
        return cls(
            fleet.num_devices,
            num_streams,
            detection_latency=fleet.detection_latency,
            loss_times=loss_times,
            throttle_windows=throttles,
            scope_breakers=fleet.scope_breakers,
            slow_start_window=fleet.slow_start_window,
            slow_start_floor=fleet.slow_start_floor,
        )

    # -- health ------------------------------------------------------------

    def device_lost(self, index: int, now: float) -> bool:
        """Whether ``index``'s loss has been detected by ``now``."""
        detect = self.detect_times.get(index)
        return detect is not None and now >= detect

    def healthy_devices(self, now: float) -> List[int]:
        """Devices in the healthy set at ``now`` (detection-based)."""
        return [
            i for i in range(self.num_devices) if not self.device_lost(i, now)
        ]

    def devices_lost(self, now: float) -> int:
        """Number of devices whose loss has been detected by ``now``."""
        return self.num_devices - len(self.healthy_devices(now))

    # -- admission ---------------------------------------------------------

    def capacity(self, now: float) -> int:
        """In-flight ceiling at ``now``: the surviving share of streams.

        Never below 1: even a fleet reduced to its last device keeps
        serving (matching the degraded-but-alive philosophy of the
        dispatchers' starvation guard).

        With ``slow_start_window > 0`` the ceiling does not jump to the
        full surviving share the instant a loss is detected: it starts at
        ``slow_start_floor`` of the post-loss steady value and rises
        linearly over the window, so the survivors absorb redistributed
        load gradually instead of in one step.
        """
        healthy = len(self.healthy_devices(now))
        steady = self.num_streams * healthy / self.num_devices
        if self.slow_start_window > 0:
            latest = max(
                (t for t in self.detect_times.values() if t <= now),
                default=None,
            )
            if latest is not None and now < latest + self.slow_start_window:
                progress = (now - latest) / self.slow_start_window
                floor = self.slow_start_floor
                steady *= floor + (1.0 - floor) * progress
        return max(1, math.ceil(steady))

    def may_admit(self, in_flight: int, now: float) -> bool:
        """Whether another job fits under the current fleet capacity."""
        return in_flight < self.capacity(now)

    def throttle_factor(self, index: int, now: float) -> float:
        """Slowdown factor of ``index``'s open throttle window (1.0 = none)."""
        for start, end, factor in self.throttle_windows.get(index, ()):
            if start <= now < end:
                return factor
        return 1.0

    def health_weight(self, index: int, now: float) -> float:
        """Graded routing weight of one device at ``now``.

        0 for a (detected) lost device; ``1/factor`` inside a throttle
        window — the same "how much slower than the fleet" number a
        straggler detector's :class:`~repro.resilience.gray.HealthScore`
        grades a gray-degraded device with; 1.0 at full health.
        """
        if self.device_lost(index, now):
            return 0.0
        factor = self.throttle_factor(index, now)
        return 1.0 / factor if factor > 1.0 else 1.0

    def route(self, now: float) -> int:
        """Pick the device for the job being admitted.

        Smooth weighted round-robin (the nginx algorithm) over the
        per-device health weights: every admission adds each device's
        weight to its credit, the highest credit wins (lowest index on
        ties), and the winner pays back the total weight.  Uniform
        weights reproduce plain round-robin exactly; a half-weight
        (throttled) device is interleaved at half rate instead of being
        hammered equally while it crawls.  Falls back to device 0 when
        every device is lost (the capacity floor of 1 still admits, like
        a last-resort node).
        """
        weights = [
            self.health_weight(i, now) for i in range(self.num_devices)
        ]
        total = sum(weights)
        if total <= 0.0:
            self.admitted_per_device[0] += 1
            return 0
        best = -1
        for i, w in enumerate(weights):
            if w <= 0.0:
                continue
            self._credits[i] += w
            if best < 0 or self._credits[i] > self._credits[best] + 1e-12:
                best = i
        self._credits[best] -= total
        self.admitted_per_device[best] += 1
        return best

    # -- breaker scoping ---------------------------------------------------

    def breaker_key(self, record: "AppRecord") -> str:
        """Circuit-breaker scope for a routed job."""
        if self.scope_breakers:
            return f"dev{record.device_index}:{record.type_name}"
        return record.type_name
