"""Fleet-aware admission capacity, routing and breaker scoping.

The streaming engine simulates *one* executor; a serving deployment spans
several devices.  :class:`FleetCapacityGate` closes that gap as a pure
capacity/routing model layered over the engine:

* **capacity** — the deployment's admission capacity is the stream budget
  spread evenly across devices; when a device loss is *detected* (loss
  instant + ``detection_latency``, mirroring the fleet health monitor)
  the in-flight ceiling shrinks proportionally.  Work already running is
  never killed — the model constrains what is *admitted*, matching how a
  load balancer reacts to a node dropping out of its healthy set.
* **routing** — each admitted job is stamped with a device index, drawn
  round-robin over the devices healthy at admission time, so per-device
  goodput is attributable in the results and journal.
* **breaker scoping** — breaker keys become ``dev<i>:<type>`` so one sick
  device's failures fail fast only on that device, instead of opening
  the breaker for an app type fleet-wide.

Everything is deterministic: loss/detection instants come from the fault
plan, and the routing cursor advances in admission order.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from ..resilience.faults import FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..framework.metrics import AppRecord
    from .config import FleetServingConfig

__all__ = ["FleetCapacityGate"]


class FleetCapacityGate:
    """Device-aware admission capacity for the serving layer."""

    def __init__(
        self,
        num_devices: int,
        num_streams: int,
        *,
        detection_latency: float = 2e-3,
        loss_times: Optional[Mapping[int, float]] = None,
        scope_breakers: bool = True,
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        self.num_devices = num_devices
        self.num_streams = num_streams
        self.scope_breakers = scope_breakers
        #: device index -> absolute instant its loss is *detected*.
        self.detect_times: Dict[int, float] = {
            int(dev) % num_devices: t + detection_latency
            for dev, t in (loss_times or {}).items()
        }
        self._cursor = 0
        self.admitted_per_device: Dict[int, int] = {
            i: 0 for i in range(num_devices)
        }

    @classmethod
    def from_plan(
        cls,
        fleet: "FleetServingConfig",
        num_streams: int,
        plan: Optional[FaultPlan],
    ) -> "FleetCapacityGate":
        """Build a gate from a config plus a fault plan's DEVICE_LOSS specs.

        Only each device's *first* loss matters (a device dies once).
        """
        loss_times: Dict[int, float] = {}
        if plan is not None:
            for spec in plan:
                if spec.kind is FaultKind.DEVICE_LOSS:
                    dev = spec.effective_device % fleet.num_devices
                    if dev not in loss_times or spec.time < loss_times[dev]:
                        loss_times[dev] = spec.time
        return cls(
            fleet.num_devices,
            num_streams,
            detection_latency=fleet.detection_latency,
            loss_times=loss_times,
            scope_breakers=fleet.scope_breakers,
        )

    # -- health ------------------------------------------------------------

    def device_lost(self, index: int, now: float) -> bool:
        """Whether ``index``'s loss has been detected by ``now``."""
        detect = self.detect_times.get(index)
        return detect is not None and now >= detect

    def healthy_devices(self, now: float) -> List[int]:
        """Devices in the healthy set at ``now`` (detection-based)."""
        return [
            i for i in range(self.num_devices) if not self.device_lost(i, now)
        ]

    def devices_lost(self, now: float) -> int:
        """Number of devices whose loss has been detected by ``now``."""
        return self.num_devices - len(self.healthy_devices(now))

    # -- admission ---------------------------------------------------------

    def capacity(self, now: float) -> int:
        """In-flight ceiling at ``now``: the surviving share of streams.

        Never below 1: even a fleet reduced to its last device keeps
        serving (matching the degraded-but-alive philosophy of the
        dispatchers' starvation guard).
        """
        healthy = len(self.healthy_devices(now))
        return max(
            1, math.ceil(self.num_streams * healthy / self.num_devices)
        )

    def may_admit(self, in_flight: int, now: float) -> bool:
        """Whether another job fits under the current fleet capacity."""
        return in_flight < self.capacity(now)

    def route(self, now: float) -> int:
        """Pick the device for the job being admitted (round-robin).

        Scans the full index space so the rotation is stable as devices
        drop out; falls back to device 0 when nothing is healthy (the
        capacity floor of 1 still admits, like a last-resort node).
        """
        for _ in range(self.num_devices):
            index = self._cursor % self.num_devices
            self._cursor += 1
            if not self.device_lost(index, now):
                self.admitted_per_device[index] += 1
                return index
        self.admitted_per_device[0] += 1
        return 0

    # -- breaker scoping ---------------------------------------------------

    def breaker_key(self, record: "AppRecord") -> str:
        """Circuit-breaker scope for a routed job."""
        if self.scope_breakers:
            return f"dev{record.device_index}:{record.type_name}"
        return record.type_name
